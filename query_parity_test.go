package periodica_test

// Query-language parity: a compiled query is just another spelling of an
// Options struct, so every legacy field must map to a pinned query clause
// (the golden table below) and a query-driven mine must be byte-identical
// to the struct-driven mine through every entry point and engine. CI runs
// the parity matrix with a PERIODICA_QUERY-driven leg on top of these.

import (
	"context"
	"errors"
	"os"
	"reflect"
	"testing"

	"periodica"
)

// TestQueryGoldenLegacyFields pins the two-way mapping between every legacy
// Options field and its query-clause spelling: lifting the struct renders
// the canonical string, and compiling that string recovers the identical
// struct. A new Options field that reaches this table without a clause
// spelling fails the lift (it would be silently dropped by the DSL).
func TestQueryGoldenLegacyFields(t *testing.T) {
	cases := []struct {
		name string
		opt  periodica.Options
		want string
	}{
		{"threshold", periodica.Options{Threshold: 0.8}, "conf >= 0.8"},
		{"threshold fraction", periodica.Options{Threshold: 2.0 / 3.0}, "conf >= 0.6666666666666666"},
		{"min period", periodica.Options{Threshold: 0.5, MinPeriod: 4}, "conf >= 0.5 and period >= 4"},
		{"max period", periodica.Options{Threshold: 0.5, MaxPeriod: 64}, "conf >= 0.5 and period <= 64"},
		{"period range", periodica.Options{Threshold: 0.5, MinPeriod: 2, MaxPeriod: 512}, "conf >= 0.5 and period in 2..512"},
		{"exact period", periodica.Options{Threshold: 0.5, MinPeriod: 7, MaxPeriod: 7}, "conf >= 0.5 and period = 7"},
		{"min pairs", periodica.Options{Threshold: 0.5, MinPairs: 3}, "conf >= 0.5 and pairs >= 3"},
		{"maximal only", periodica.Options{Threshold: 0.5, MaximalOnly: true}, "conf >= 0.5 and maximal only"},
		{"pattern period cap", periodica.Options{Threshold: 0.5, MaxPatternPeriod: 21}, "conf >= 0.5 and pattern period <= 21"},
		{"pattern mining off", periodica.Options{Threshold: 0.5, MaxPatternPeriod: -1}, "conf >= 0.5 and pattern period off"},
		{"patterns cap", periodica.Options{Threshold: 0.5, MaxPatterns: 100}, "conf >= 0.5 and patterns <= 100"},
		{"engine naive", periodica.Options{Threshold: 0.5, Engine: periodica.EngineNaive}, "conf >= 0.5 and engine naive"},
		{"engine bitset", periodica.Options{Threshold: 0.5, Engine: periodica.EngineBitset}, "conf >= 0.5 and engine bitset"},
		{"engine fft", periodica.Options{Threshold: 0.5, Engine: periodica.EngineFFT}, "conf >= 0.5 and engine fft"},
		{
			"every field",
			periodica.Options{
				Threshold: 0.75, MinPeriod: 2, MaxPeriod: 256, Engine: periodica.EngineBitset,
				MaxPatternPeriod: 32, MaxPatterns: 500, MaximalOnly: true, MinPairs: 2,
			},
			"conf >= 0.75 and period in 2..256 and pairs >= 2 and maximal only and pattern period <= 32 and patterns <= 500 and engine bitset",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := periodica.QueryFromOptions(tc.opt).String(); got != tc.want {
				t.Errorf("QueryFromOptions(%+v).String() = %q, want %q", tc.opt, got, tc.want)
			}
			q, err := periodica.CompileQuery(tc.want)
			if err != nil {
				t.Fatalf("CompileQuery(%q): %v", tc.want, err)
			}
			if got := q.Options(); !reflect.DeepEqual(got, tc.opt) {
				t.Errorf("CompileQuery(%q).Options() = %+v, want %+v", tc.want, got, tc.opt)
			}
		})
	}
}

// queryFor lifts opt into a compiled query the long way round — render,
// then recompile — so the test also covers the canonical string, not just
// the in-memory spec.
func queryFor(t *testing.T, opt periodica.Options) *periodica.Query {
	t.Helper()
	q, err := periodica.CompileQuery(periodica.QueryFromOptions(opt).String())
	if err != nil {
		t.Fatalf("recompiling lifted options %+v: %v", opt, err)
	}
	return q
}

// TestParityQueryDriven: for every engine, the query-driven entry points
// must produce byte-identical results to their struct-driven twins. The
// query carries no shaping clauses, so Shape must be an exact identity —
// any stray reordering or filtering in the query path shows up here.
func TestParityQueryDriven(t *testing.T) {
	for name, eng := range parityEngines(t) {
		t.Run(name, func(t *testing.T) {
			symbols := paritySymbols(605)
			opt := periodica.Options{Threshold: 0.6, Engine: eng, MinPairs: 3, MaxPatternPeriod: 21}
			q := queryFor(t, opt)

			s, err := periodica.NewSeries(symbols)
			if err != nil {
				t.Fatal(err)
			}
			want, err := periodica.Mine(s, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Periodicities) == 0 {
				t.Fatal("parity fixture detected nothing; the test is vacuous")
			}

			check := func(path string, res *periodica.Result, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if !reflect.DeepEqual(want, res) {
					t.Errorf("%s result differs from struct-driven Mine", path)
				}
			}
			res, err := periodica.MineQuery(s, q)
			check("MineQuery", res, err)
			res, err = periodica.MineQueryContext(context.Background(), s, q)
			check("MineQueryContext", res, err)
			res, err = periodica.MineQueryParallel(s, q)
			check("MineQueryParallel", res, err)

			st, err := periodica.NewStream("a", "b", "c")
			if err != nil {
				t.Fatal(err)
			}
			inc, err := periodica.NewIncremental(len(symbols)/2, "a", "b", "c")
			if err != nil {
				t.Fatal(err)
			}
			for _, sym := range symbols {
				if err := st.Append(sym); err != nil {
					t.Fatal(err)
				}
				if err := inc.Append(sym); err != nil {
					t.Fatal(err)
				}
			}
			res, err = st.FinishQuery(q)
			check("Stream.FinishQuery", res, err)
			res, err = st.FinishQueryContext(context.Background(), q)
			check("Stream.FinishQueryContext", res, err)
			res, err = inc.MineQuery(q)
			check("Incremental.MineQuery", res, err)

			wantPeriods, err := periodica.CandidatePeriods(s, opt.Threshold, opt.MaxPeriod)
			if err != nil {
				t.Fatal(err)
			}
			gotPeriods, err := periodica.CandidatePeriodsQuery(s, q)
			if err != nil {
				t.Fatalf("CandidatePeriodsQuery: %v", err)
			}
			if !reflect.DeepEqual(wantPeriods, gotPeriods) {
				t.Errorf("CandidatePeriodsQuery = %v, want %v", gotPeriods, wantPeriods)
			}
		})
	}
}

// TestQueryShaping covers the clauses the struct API cannot spell: symbol
// filtering and limits act after mining, and their composition with the
// mining clauses must be deterministic.
func TestQueryShaping(t *testing.T) {
	s, err := periodica.NewSeries(paritySymbols(605))
	if err != nil {
		t.Fatal(err)
	}
	base, err := periodica.MineQuery(s, mustCompile(t, "conf >= 0.6 and pairs >= 3 and pattern period <= 21"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Periodicities) == 0 {
		t.Fatal("shaping fixture detected nothing; the test is vacuous")
	}

	shaped, err := periodica.MineQuery(s, mustCompile(t, "conf >= 0.6 and pairs >= 3 and pattern period <= 21 and symbol in {a}"))
	if err != nil {
		t.Fatal(err)
	}
	if len(shaped.Periodicities) == 0 || len(shaped.Periodicities) >= len(base.Periodicities) {
		t.Fatalf("symbol filter kept %d of %d periodicities; expected a strict, non-empty subset",
			len(shaped.Periodicities), len(base.Periodicities))
	}
	for _, p := range shaped.Periodicities {
		if p.Symbol != "a" {
			t.Fatalf("symbol filter leaked periodicity for %q", p.Symbol)
		}
	}

	limited, err := periodica.MineQuery(s, mustCompile(t, "conf >= 0.6 and pairs >= 3 and pattern period <= 21 and limit 3 by conf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Periodicities) != 3 {
		t.Fatalf("limit 3 by conf kept %d periodicities", len(limited.Periodicities))
	}
	worst := limited.Periodicities[0].Confidence
	for _, p := range limited.Periodicities {
		if p.Confidence < worst {
			worst = p.Confidence
		}
	}
	dropped := 0
	for _, p := range base.Periodicities {
		if p.Confidence > worst {
			dropped++
		}
	}
	if dropped > len(limited.Periodicities) {
		t.Errorf("limit by conf dropped a periodicity more confident than one it kept")
	}
}

// TestParityEnvQuery is the PERIODICA_QUERY CI leg: the environment names
// an arbitrary query (shaping clauses included), and the query-driven mine
// of it must equal the struct-driven mine of its Options followed by an
// explicit Shape — serial and parallel. Without the variable a
// representative shaped query runs, so the test is never vacuous locally.
func TestParityEnvQuery(t *testing.T) {
	src := os.Getenv("PERIODICA_QUERY")
	if src == "" {
		src = "conf >= 0.6 and pairs >= 3 and pattern period <= 21 and limit 5 by conf"
	}
	q := mustCompile(t, src)
	s, err := periodica.NewSeries(paritySymbols(605))
	if err != nil {
		t.Fatal(err)
	}
	base, err := periodica.Mine(s, q.Options())
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Shape(s, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := periodica.MineQuery(s, q)
	if err != nil {
		t.Fatalf("MineQuery(%q): %v", src, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("MineQuery(%q) differs from struct-driven Mine + Shape", src)
	}
	gotPar, err := periodica.MineQueryParallel(s, q)
	if err != nil {
		t.Fatalf("MineQueryParallel(%q): %v", src, err)
	}
	if !reflect.DeepEqual(want, gotPar) {
		t.Errorf("MineQueryParallel(%q) differs from struct-driven Mine + Shape", src)
	}
}

func mustCompile(t *testing.T, src string) *periodica.Query {
	t.Helper()
	q, err := periodica.CompileQuery(src)
	if err != nil {
		t.Fatalf("CompileQuery(%q): %v", src, err)
	}
	return q
}

// TestQueryInvalidIsErrInvalidInput: compile errors surface as
// ErrInvalidInput so callers (and the HTTP 400 mapping) can classify them
// without string matching.
func TestQueryInvalidIsErrInvalidInput(t *testing.T) {
	for _, src := range []string{"", "conf >=", "conf >= 2", "period in 9..2", "bogus 1"} {
		if _, err := periodica.CompileQuery(src); err == nil {
			t.Errorf("CompileQuery(%q) succeeded, want error", src)
		} else if !errors.Is(err, periodica.ErrInvalidInput) {
			t.Errorf("CompileQuery(%q) error %v is not ErrInvalidInput", src, err)
		}
	}
}
