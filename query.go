package periodica

// The public face of the pattern-query language: a Query compiles once from
// a string like
//
//	conf >= 0.8 and period in 2..512 and symbol in {a, b} and maximal only
//
// into a canonical, validated spec, and every mining entry point of the
// package is reachable from it — batch (MineQuery), context-bounded
// (MineQueryContext), parallel (MineQueryParallel), streaming
// (Stream.FinishQuery), online (Incremental.MineQuery), candidate detection
// (CandidatePeriodsQuery), and, through httpapi and the distributed tier,
// remote and sharded mines. The mining clauses become Options; the shaping
// clauses (symbol constraints, limit) are applied to the Result by Shape;
// the input clauses (levels, discretize) drive DiscretizeValues.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"periodica/internal/query"
)

// Query is a compiled pattern query: the typed, canonical form of a query
// string. The zero value is not usable; build one with CompileQuery.
type Query struct {
	spec   query.Spec
	source string
}

// invalidQueryError marks query compilation and shaping failures as invalid
// input, so services map them to client errors with errors.Is(err,
// ErrInvalidInput) exactly like struct-path validation failures.
type invalidQueryError struct{ err error }

func (e *invalidQueryError) Error() string { return e.err.Error() }

func (e *invalidQueryError) Unwrap() error { return e.err }

func (e *invalidQueryError) Is(target error) bool { return target == ErrInvalidInput }

// CompileQuery compiles a pattern-query string. Compilation validates
// everything knowable without a concrete series — clause types, value
// ranges, enum spellings, duplicates — so a Query that compiles can only
// fail against a series whose length contradicts its period range. Repeated
// compilations of the same string are served from a bounded process-wide
// cache. The error matches ErrInvalidInput.
func CompileQuery(src string) (*Query, error) {
	sp, err := query.Compile(src)
	if err != nil {
		return nil, &invalidQueryError{err: err}
	}
	return &Query{spec: sp, source: src}, nil
}

// QueryFromOptions lifts legacy Options to the equivalent Query — the exact
// inverse mapping the golden tests pin field by field. Options carry no
// symbol constraints or limits, so the resulting query only has mining
// clauses.
func QueryFromOptions(opt Options) *Query {
	sp := opt.spec()
	return &Query{spec: sp, source: sp.Render()}
}

// spec lifts Options to the query Spec it abbreviates.
func (o Options) spec() query.Spec {
	return query.Spec{
		Threshold:        o.Threshold,
		MinPeriod:        o.MinPeriod,
		MaxPeriod:        o.MaxPeriod,
		Engine:           o.Engine.name(),
		MaxPatternPeriod: o.MaxPatternPeriod,
		MaxPatterns:      o.MaxPatterns,
		MaximalOnly:      o.MaximalOnly,
		MinPairs:         o.MinPairs,
	}
}

// name maps a public Engine to its query spelling ("" = unset/auto).
func (e Engine) name() string {
	switch e {
	case EngineNaive:
		return query.EngineNaive
	case EngineBitset:
		return query.EngineBitset
	case EngineFFT:
		return query.EngineFFT
	}
	return ""
}

// ParseEngine maps an engine name ("auto", "naive", "bitset", "fft") to its
// Engine constant; the empty string means auto. The error matches
// ErrInvalidInput.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", query.EngineAuto:
		return EngineAuto, nil
	case query.EngineNaive:
		return EngineNaive, nil
	case query.EngineBitset:
		return EngineBitset, nil
	case query.EngineFFT:
		return EngineFFT, nil
	}
	return 0, &invalidQueryError{err: errQuery("unknown engine %q", name)}
}

// String returns the canonical form of the query: clauses in fixed order,
// literals formatted minimally. Compiling the canonical form yields the
// same Query.
func (q *Query) String() string { return q.spec.Render() }

// Source returns the string the query was compiled from.
func (q *Query) Source() string { return q.source }

// MarshalJSON renders the compiled spec (not the source string), so logs
// and the `opminer query check` subcommand show the typed plan.
func (q *Query) MarshalJSON() ([]byte, error) { return json.Marshal(q.spec) }

// Options returns the mining options the query compiles to. Shaping and
// input clauses (symbol constraints, limit, levels, discretize, workers) do
// not appear here — they act outside the core mining call.
func (q *Query) Options() Options {
	eng, _ := ParseEngine(q.spec.Engine) // validated at compile time
	return Options{
		Threshold:        q.spec.Threshold,
		MinPeriod:        q.spec.MinPeriod,
		MaxPeriod:        q.spec.MaxPeriod,
		Engine:           eng,
		MaxPatternPeriod: q.spec.MaxPatternPeriod,
		MaxPatterns:      q.spec.MaxPatterns,
		MaximalOnly:      q.spec.MaximalOnly,
		MinPairs:         q.spec.MinPairs,
	}
}

// Symbols returns the query's symbol constraint (sorted, distinct), or nil.
func (q *Query) Symbols() []string { return append([]string(nil), q.spec.Symbols...) }

// Limit returns the result cap and its ordering ("conf", "support",
// "period"); 0 means unlimited.
func (q *Query) Limit() (int, string) { return q.spec.Limit, q.spec.LimitBy }

// Levels returns the discretization level count; 0 means the default.
func (q *Query) Levels() int { return q.spec.Levels }

// Discretization returns the discretization scheme ("width", "sax"); empty
// means the consumer's default (equal-width).
func (q *Query) Discretization() string { return q.spec.Discretize }

// Workers returns the query's parallelism hint; 0 means the runtime
// decides.
func (q *Query) Workers() int { return q.spec.Workers }

// DiscretizeValues symbolizes raw numeric values the way the query asks:
// "levels N" sets the alphabet size (default 5) and "discretize sax"
// selects the SAX pipeline over the default equal-width binning.
func (q *Query) DiscretizeValues(values []float64) (*Series, error) {
	levels := q.spec.Levels
	if levels == 0 {
		levels = 5
	}
	if q.spec.Discretize == query.DiscretizeSAX {
		return DiscretizeSAX(values, SAXOptions{Levels: levels})
	}
	return DiscretizeEqualWidth(values, levels)
}

// MineQuery mines s as the query directs and shapes the result: the
// equivalent of Mine(s, q.Options()) followed by q.Shape(s, ·).
func MineQuery(s *Series, q *Query) (*Result, error) {
	res, err := Mine(s, q.Options())
	if err != nil {
		return nil, err
	}
	return q.Shape(s, res)
}

// MineQueryContext is MineQuery with cooperative cancellation.
func MineQueryContext(ctx context.Context, s *Series, q *Query) (*Result, error) {
	res, err := MineContext(ctx, s, q.Options())
	if err != nil {
		return nil, err
	}
	return q.Shape(s, res)
}

// MineQueryParallel is MineQuery with the per-period work spread over the
// query's "workers N" hint (0 = all CPUs); the result is identical.
func MineQueryParallel(s *Series, q *Query) (*Result, error) {
	res, err := MineParallel(s, q.Options(), q.spec.Workers)
	if err != nil {
		return nil, err
	}
	return q.Shape(s, res)
}

// CandidatePeriodsQuery runs the one-pass detection phase under the query's
// threshold and period bounds.
func CandidatePeriodsQuery(s *Series, q *Query) ([]int, error) {
	return CandidatePeriods(s, q.spec.Threshold, q.spec.MaxPeriod)
}

// CandidatePeriodsQueryContext is CandidatePeriodsQuery with cooperative
// cancellation.
func CandidatePeriodsQueryContext(ctx context.Context, s *Series, q *Query) ([]int, error) {
	return CandidatePeriodsContext(ctx, s, q.spec.Threshold, q.spec.MaxPeriod)
}

// FinishQuery mines the stream ingested so far as the query directs.
func (st *Stream) FinishQuery(q *Query) (*Result, error) {
	res, err := st.Finish(q.Options())
	if err != nil {
		return nil, err
	}
	return q.Shape(&Series{inner: st.inner.Series()}, res)
}

// FinishQueryContext is FinishQuery with cooperative cancellation.
func (st *Stream) FinishQueryContext(ctx context.Context, q *Query) (*Result, error) {
	res, err := st.FinishContext(ctx, q.Options())
	if err != nil {
		return nil, err
	}
	return q.Shape(&Series{inner: st.inner.Series()}, res)
}

// MineQuery mines the online stream seen so far as the query directs.
func (inc *Incremental) MineQuery(q *Query) (*Result, error) {
	res, err := inc.Mine(q.Options())
	if err != nil {
		return nil, err
	}
	return q.Shape(&Series{inner: inc.inner.Series()}, res)
}

// Shape applies the query's output-shaping clauses to a mined result: the
// symbol constraint drops periodicities and patterns over other symbols,
// and "limit N by conf|support|period" keeps the top N under that ordering
// (ties broken by the result's canonical order, so shaping is
// deterministic). The series provides the alphabet for exact multi-symbol
// pattern filtering; shaping a filtered query over a multi-rune alphabet is
// rejected, matching the wire format's single-rune constraint. Without
// shaping clauses the result is returned unchanged.
func (q *Query) Shape(s *Series, res *Result) (*Result, error) {
	if len(q.spec.Symbols) == 0 && q.spec.Limit == 0 {
		return res, nil
	}
	out := &Result{
		Periodicities:        res.Periodicities,
		SingleSymbolPatterns: res.SingleSymbolPatterns,
		Patterns:             res.Patterns,
		Truncated:            res.Truncated,
	}
	if len(q.spec.Symbols) > 0 {
		allowed := make(map[string]bool, len(q.spec.Symbols))
		for _, sym := range q.spec.Symbols {
			allowed[sym] = true
		}
		for _, sym := range s.Alphabet() {
			if len([]rune(sym)) > 1 {
				return nil, &invalidQueryError{err: errQuery(
					"symbol constraint requires single-rune symbols; alphabet has %q", sym)}
			}
		}
		var pers []Periodicity
		var singles []Pattern
		for i, sp := range out.Periodicities {
			if allowed[sp.Symbol] {
				pers = append(pers, sp)
				singles = append(singles, out.SingleSymbolPatterns[i])
			}
		}
		out.Periodicities, out.SingleSymbolPatterns = pers, singles
		var multis []Pattern
		for _, pt := range out.Patterns {
			if patternWithin(pt.Text, allowed) {
				multis = append(multis, pt)
			}
		}
		out.Patterns = multis
	}
	switch q.spec.LimitBy {
	case query.LimitByConf:
		keep := topIndices(len(out.Periodicities), q.spec.Limit, func(i, j int) bool {
			return out.Periodicities[i].Confidence > out.Periodicities[j].Confidence
		})
		out.Periodicities = selectPeriodicities(out.Periodicities, keep)
		out.SingleSymbolPatterns = selectPatterns(out.SingleSymbolPatterns, keep)
	case query.LimitBySupport:
		keep := topIndices(len(out.Patterns), q.spec.Limit, func(i, j int) bool {
			return out.Patterns[i].Support > out.Patterns[j].Support
		})
		out.Patterns = selectPatterns(out.Patterns, keep)
	case query.LimitByPeriod:
		if smallest := smallestPeriods(out, q.spec.Limit); smallest != nil {
			out.Periodicities, out.SingleSymbolPatterns = filterByPeriod(
				out.Periodicities, out.SingleSymbolPatterns, smallest)
			var multis []Pattern
			for _, pt := range out.Patterns {
				if smallest[pt.Period] {
					multis = append(multis, pt)
				}
			}
			out.Patterns = multis
		}
	}
	out.Periods = derivePeriods(out)
	return out, nil
}

// errQuery builds a plain query-layer error message.
func errQuery(format string, args ...any) error {
	return fmt.Errorf("periodica: "+format, args...)
}

// patternWithin reports whether every fixed (non-'*') symbol of a rendered
// pattern is in the allowed set. Patterns render one rune per position for
// single-rune alphabets, which Shape has already required.
func patternWithin(text string, allowed map[string]bool) bool {
	for _, r := range text {
		if r == '*' {
			continue
		}
		if !allowed[string(r)] {
			return false
		}
	}
	return true
}

// topIndices returns the indices of the top limit entries under less as a
// membership set, breaking ties by original index so selection is
// deterministic and the survivors keep their canonical order.
func topIndices(n, limit int, less func(i, j int) bool) map[int]bool {
	if n <= limit {
		return nil // nothing to drop
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	keep := make(map[int]bool, limit)
	for _, i := range idx[:limit] {
		keep[i] = true
	}
	return keep
}

func selectPeriodicities(in []Periodicity, keep map[int]bool) []Periodicity {
	if keep == nil {
		return in
	}
	var out []Periodicity
	for i, sp := range in {
		if keep[i] {
			out = append(out, sp)
		}
	}
	return out
}

func selectPatterns(in []Pattern, keep map[int]bool) []Pattern {
	if keep == nil {
		return in
	}
	var out []Pattern
	for i, pt := range in {
		if keep[i] {
			out = append(out, pt)
		}
	}
	return out
}

// smallestPeriods returns the limit smallest distinct periods present in
// the result as a membership set, or nil when nothing would be dropped.
func smallestPeriods(res *Result, limit int) map[int]bool {
	distinct := map[int]bool{}
	for _, sp := range res.Periodicities {
		distinct[sp.Period] = true
	}
	for _, pt := range res.Patterns {
		distinct[pt.Period] = true
	}
	if len(distinct) <= limit {
		return nil
	}
	periods := make([]int, 0, len(distinct))
	for p := range distinct {
		periods = append(periods, p)
	}
	sort.Ints(periods)
	keep := make(map[int]bool, limit)
	for _, p := range periods[:limit] {
		keep[p] = true
	}
	return keep
}

func filterByPeriod(pers []Periodicity, singles []Pattern, keep map[int]bool) ([]Periodicity, []Pattern) {
	var outP []Periodicity
	var outS []Pattern
	for i, sp := range pers {
		if keep[sp.Period] {
			outP = append(outP, sp)
			outS = append(outS, singles[i])
		}
	}
	return outP, outS
}

// derivePeriods recomputes the distinct ascending period list from the
// shaped result, the same derivation a mine applies to its periodicities.
func derivePeriods(res *Result) []int {
	distinct := map[int]bool{}
	for _, sp := range res.Periodicities {
		distinct[sp.Period] = true
	}
	for _, pt := range res.Patterns {
		distinct[pt.Period] = true
	}
	if len(distinct) == 0 {
		return nil
	}
	periods := make([]int, 0, len(distinct))
	for p := range distinct {
		periods = append(periods, p)
	}
	sort.Ints(periods)
	return periods
}
