module periodica

go 1.22
