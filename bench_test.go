// Benchmarks regenerating every figure and table of the paper's evaluation
// (§4), at reduced scale so `go test -bench=.` completes in minutes. The
// opbench command runs the same harnesses with printed output and supports
// paper-scale runs (-full).
package periodica_test

import (
	"fmt"
	"testing"

	"periodica/internal/cimeg"
	"periodica/internal/core"
	"periodica/internal/experiments"
	"periodica/internal/gen"
	"periodica/internal/series"
	"periodica/internal/trends"
	"periodica/internal/walmart"
)

var benchCorrectness = experiments.CorrectnessConfig{
	Length: 20000, Sigma: 10, Periods: []int{25, 32},
	Dists:     []gen.Distribution{gen.Uniform, gen.Normal},
	Multiples: 3, Runs: 2, Seed: 1,
}

// BenchmarkFig3aCorrectnessInerrant regenerates Fig. 3(a): the miner's
// confidence at P, 2P, 3P on inerrant data (all points must be 1).
func BenchmarkFig3aCorrectnessInerrant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Correctness(benchCorrectness, experiments.MinerConfidence())
		if err != nil {
			b.Fatal(err)
		}
		reportMeanConfidence(b, pointsConf(points))
	}
}

// BenchmarkFig3bCorrectnessNoisy regenerates Fig. 3(b): the miner's
// confidence under 20% replacement noise (expected above ~0.7, unbiased in
// the period).
func BenchmarkFig3bCorrectnessNoisy(b *testing.B) {
	cfg := benchCorrectness
	cfg.Noise = gen.Replacement
	cfg.Ratio = 0.2
	for i := 0; i < b.N; i++ {
		points, err := experiments.Correctness(cfg, experiments.MinerConfidence())
		if err != nil {
			b.Fatal(err)
		}
		reportMeanConfidence(b, pointsConf(points))
	}
}

// BenchmarkFig4aTrendsInerrant regenerates Fig. 4(a): the periodic-trends
// baseline's normalized-rank confidence on inerrant data.
func BenchmarkFig4aTrendsInerrant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Correctness(benchCorrectness, experiments.TrendsConfidence(false, 0, 1))
		if err != nil {
			b.Fatal(err)
		}
		reportMeanConfidence(b, pointsConf(points))
	}
}

// BenchmarkFig4bTrendsNoisy regenerates Fig. 4(b): the trends baseline under
// noise, where its large-period bias shows.
func BenchmarkFig4bTrendsNoisy(b *testing.B) {
	cfg := benchCorrectness
	cfg.Noise = gen.Replacement
	cfg.Ratio = 0.3
	for i := 0; i < b.N; i++ {
		points, err := experiments.Correctness(cfg, experiments.TrendsConfidence(false, 0, 1))
		if err != nil {
			b.Fatal(err)
		}
		reportMeanConfidence(b, pointsConf(points))
	}
}

// BenchmarkFig5Detection regenerates Fig. 5's two curves: wall-clock time of
// the miner's one-pass detection phase and of the trends baseline's sketch,
// per input size. The paper's claim is the shape — both near-linear on
// log-log axes, the miner ahead by the missing log factor.
func BenchmarkFig5Detection(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15, 1 << 17, 1 << 19} {
		s := walmartSized(b, n)
		b.Run(fmt.Sprintf("miner/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DetectCandidates(s, 0.8, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("trends/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trends.Sketched(s, 0, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6NoiseResilience regenerates Fig. 6: confidence at the
// embedded period per noise mixture and ratio.
func BenchmarkFig6NoiseResilience(b *testing.B) {
	for _, kind := range experiments.AllNoiseKinds {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiments.NoiseResilience(experiments.NoiseConfig{
					Length: 20000, Sigma: 10, Period: 25, Dist: gen.Uniform,
					Kinds: []gen.Noise{kind}, Ratios: []float64{0.1, 0.3, 0.5},
					Runs: 2, Seed: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				var confs []float64
				for _, pt := range points {
					confs = append(confs, pt.Confidence)
				}
				reportMeanConfidence(b, confs)
			}
		})
	}
}

// BenchmarkTable1Periods regenerates Table 1: detected period values per
// threshold for the Wal-Mart and CIMEG substitutes.
func BenchmarkTable1Periods(b *testing.B) {
	wm := walmart.Series(walmart.Config{Months: 15, Seed: 3})
	cm := cimeg.Series(cimeg.Config{Days: 365, Seed: 3})
	thresholds := []int{100, 90, 80, 70, 60, 50, 40, 30, 20, 10}
	b.Run("walmart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := experiments.PeriodTable(wm, thresholds, 0, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rows[5].NumPeriods), "periods@50%")
		}
	})
	b.Run("cimeg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := experiments.PeriodTable(cm, thresholds, 0, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rows[5].NumPeriods), "periods@50%")
		}
	})
}

// BenchmarkTable2SinglePatterns regenerates Table 2: periodic single-symbol
// patterns at period 24 (Wal-Mart) and period 7 (CIMEG) per threshold.
func BenchmarkTable2SinglePatterns(b *testing.B) {
	wm := walmart.Series(walmart.Config{Months: 15, Seed: 4})
	cm := cimeg.Series(cimeg.Config{Days: 365, Seed: 4})
	thresholds := []int{100, 90, 80, 70, 60, 50}
	b.Run("walmart/p=24", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := experiments.SinglePatternTable(wm, 24, thresholds)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(rows[4].Patterns)), "patterns@60%")
		}
	})
	b.Run("cimeg/p=7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := experiments.SinglePatternTable(cm, 7, thresholds)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(rows[5].Patterns)), "patterns@50%")
		}
	})
}

// BenchmarkTable3Patterns regenerates Table 3: multi-symbol periodic
// patterns of the Wal-Mart substitute at period 24, ψ = 35%.
func BenchmarkTable3Patterns(b *testing.B) {
	wm := walmart.Series(walmart.Config{Months: 15, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PatternTable(wm, 24, 0.35, 1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "patterns")
	}
}

func pointsConf(points []experiments.CorrectnessPoint) []float64 {
	out := make([]float64, len(points))
	for i, pt := range points {
		out[i] = pt.Confidence
	}
	return out
}

func reportMeanConfidence(b *testing.B, confs []float64) {
	b.Helper()
	if len(confs) == 0 {
		return
	}
	sum := 0.0
	for _, c := range confs {
		sum += c
	}
	b.ReportMetric(sum/float64(len(confs)), "confidence")
}

func walmartSized(b *testing.B, n int) *series.Series {
	b.Helper()
	months := n/(30*24) + 1
	s := walmart.Series(walmart.Config{Months: months, Seed: 6})
	return s.Slice(0, n)
}
