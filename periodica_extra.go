package periodica

import (
	"context"
	"fmt"
	"os"
	"time"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/prep"
	"periodica/internal/series"
	"periodica/internal/timegrid"
)

// Incremental maintains the mining result of a growing symbol stream online:
// each arriving symbol updates the consecutive-match counts for every period
// up to the configured bound in O(maxPeriod), so periodicities for the
// stream so far are available at any moment without rescanning. Two
// Incrementals over adjacent segments combine with Merge.
type Incremental struct {
	inner *core.IncrementalMiner
	alpha *alphabet.Alphabet
}

// NewIncremental returns an online miner over the given alphabet, tracking
// periods 1..maxPeriod.
func NewIncremental(maxPeriod int, symbols ...string) (*Incremental, error) {
	alpha, err := alphabet.New(symbols...)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewIncrementalMiner(alpha, maxPeriod)
	if err != nil {
		return nil, err
	}
	return &Incremental{inner: inner, alpha: alpha}, nil
}

// Append ingests the next symbol; O(maxPeriod).
func (inc *Incremental) Append(symbol string) error { return inc.inner.AppendSymbol(symbol) }

// Len returns the number of symbols ingested.
func (inc *Incremental) Len() int { return inc.inner.Len() }

// Periodicities returns the symbol periodicities of the stream so far at the
// given threshold, computed from the maintained counts alone.
func (inc *Incremental) Periodicities(threshold float64) ([]Periodicity, error) {
	pers, err := inc.inner.Periodicities(threshold)
	if err != nil {
		return nil, err
	}
	var out []Periodicity
	for _, sp := range pers {
		out = append(out, Periodicity{
			Symbol:     inc.alpha.Symbol(sp.Symbol),
			Period:     sp.Period,
			Position:   sp.Position,
			Matches:    sp.F2,
			Pairs:      sp.Pairs,
			Confidence: sp.Confidence,
		})
	}
	return out, nil
}

// Mine runs the full algorithm (including pattern formation) on the stream
// seen so far.
func (inc *Incremental) Mine(opt Options) (*Result, error) {
	res, err := inc.inner.Mine(opt.internal())
	if err != nil {
		return nil, err
	}
	return convertResult(&Series{inner: inc.inner.Series()}, res), nil
}

// Merge appends the stream held by next to this miner, stitching the
// boundary matches; both miners must share the alphabet and period bound.
// next is left untouched.
func (inc *Incremental) Merge(next *Incremental) error {
	return inc.inner.Merge(next.inner)
}

// WriteFile stores the series in the binary on-disk format accepted by
// CandidatePeriodsFile.
func (s *Series) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := series.WriteBinary(f, s.inner); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadSeriesFile loads a series stored by WriteFile.
func ReadSeriesFile(path string) (*Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	inner, err := series.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return &Series{inner: inner}, nil
}

// CandidatePeriodsFile runs the one-pass detection phase over a series
// stored on disk by WriteFile, using the external (out-of-core) FFT: neither
// the series nor the transform working arrays are loaded into memory.
func CandidatePeriodsFile(path string, threshold float64, maxPeriod int) ([]int, error) {
	cands, err := core.DetectCandidatesFile(path, threshold, maxPeriod, core.ExternalConfig{})
	if err != nil {
		return nil, err
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Period
	}
	return out, nil
}

// Event is one timestamped nominal observation of an irregular stream.
type Event struct {
	Time   time.Time
	Symbol string
}

// GridEvents bins irregular timestamped events onto a regular symbol grid at
// the given resolution: empty bins receive the idle symbol, and when several
// events share a bin the earliest wins. The result spans the first to the
// last event and is ready for Mine.
func GridEvents(events []Event, bin time.Duration, idle string) (*Series, error) {
	converted := make([]timegrid.Event, len(events))
	for i, e := range events {
		converted[i] = timegrid.Event{Time: e.Time, Symbol: e.Symbol}
	}
	inner, err := timegrid.Grid(converted, timegrid.Config{Bin: bin, Idle: idle})
	if err != nil {
		return nil, err
	}
	return &Series{inner: inner}, nil
}

// SAXOptions tune DiscretizeSAX.
type SAXOptions struct {
	// Levels is the alphabet size σ (2..10); default 5.
	Levels int
	// Frame is the piecewise-aggregate frame length; 1 (default) keeps
	// every point. PAA divides embedded periods by Frame.
	Frame int
	// DetrendWindow, when > 0, removes a centred moving average of that
	// window before normalization.
	DetrendWindow int
}

// DiscretizeSAX converts raw numeric values to symbols through the standard
// SAX pipeline: optional detrend, z-score, optional piecewise aggregate
// approximation, then equal-probability Gaussian levels "a", "b", ….
func DiscretizeSAX(values []float64, opt SAXOptions) (*Series, error) {
	inner, err := prep.SAX(values, prep.SAXConfig{
		Levels: opt.Levels, Frame: opt.Frame, DetrendWindow: opt.DetrendWindow,
	})
	if err != nil {
		return nil, err
	}
	return &Series{inner: inner}, nil
}

// ScoredPeriodicity is a periodicity with its significance against the
// independent-symbols null model.
type ScoredPeriodicity struct {
	Periodicity
	PValue float64
}

// Significant scores every periodicity of res against the null model of
// independently drawn symbols (Binomial(pairs, ρ²) matches) and returns, in
// res order, those with p-value ≤ alpha. When bonferroni is true, alpha is
// divided by the number of hypotheses a full mine over s examines. Raw
// Definition-1 confidence admits confident-looking flukes at large periods
// (one match in a two-slot projection is confidence 1); this separates
// structure from chance.
func Significant(s *Series, res *Result, alpha float64, bonferroni bool) ([]ScoredPeriodicity, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("periodica: alpha %v outside (0,1]", alpha)
	}
	if bonferroni {
		tests := core.TestsForRange(s.inner.Alphabet().Size(), 1, s.Len()/2)
		alpha /= float64(tests)
	}
	sig := core.NewSignificance(s.inner)
	var out []ScoredPeriodicity
	for _, sp := range res.Periodicities {
		k, ok := s.inner.Alphabet().Index(sp.Symbol)
		if !ok {
			return nil, fmt.Errorf("periodica: result symbol %q not in series alphabet", sp.Symbol)
		}
		pv := sig.PValue(core.SymbolPeriodicity{
			Symbol: k, Period: sp.Period, Position: sp.Position,
			F2: sp.Matches, Pairs: sp.Pairs, Confidence: sp.Confidence,
		})
		if pv <= alpha {
			out = append(out, ScoredPeriodicity{Periodicity: sp, PValue: pv})
		}
	}
	return out, nil
}

// ErrInvalidInput marks mining errors caused by invalid caller input (a
// threshold outside (0,1], an impossible period range, …) as opposed to
// internal or cancellation failures. Services front-ending the miner match
// it with errors.Is to map bad input to a 4xx rather than a 5xx.
var ErrInvalidInput = core.ErrInvalidInput

// MineContext is Mine with cooperative cancellation: the context is polled
// at every candidate period, inside the per-symbol detection loop, and
// throughout pattern enumeration, so a cancelled or timed-out context aborts
// the mine promptly with the context's error.
func MineContext(ctx context.Context, s *Series, opt Options) (*Result, error) {
	res, err := core.MineContext(ctx, s.inner, opt.internal())
	if err != nil {
		return nil, err
	}
	if opt.MaximalOnly {
		res.Patterns = core.FilterMaximal(res.Patterns)
	}
	return convertResult(s, res), nil
}

// FinishContext is Stream.Finish with cooperative cancellation, sharing
// MineContext's polling points: a cancelled or timed-out context aborts the
// mine promptly with the context's error and no partial result.
func (st *Stream) FinishContext(ctx context.Context, opt Options) (*Result, error) {
	res, err := st.inner.FinishContext(ctx, opt.internal())
	if err != nil {
		return nil, err
	}
	return convertResult(&Series{inner: st.inner.Series()}, res), nil
}

// MineContext is Incremental.Mine with cooperative cancellation, sharing
// MineContext's polling points: a cancelled or timed-out context aborts the
// mine promptly with the context's error and no partial result.
func (inc *Incremental) MineContext(ctx context.Context, opt Options) (*Result, error) {
	res, err := inc.inner.MineContext(ctx, opt.internal())
	if err != nil {
		return nil, err
	}
	return convertResult(&Series{inner: inc.inner.Series()}, res), nil
}

// CandidatePeriodsContext is CandidatePeriods with cooperative cancellation:
// a cancelled or timed-out context aborts the detection sweep promptly with
// the context's error.
func CandidatePeriodsContext(ctx context.Context, s *Series, threshold float64, maxPeriod int) ([]int, error) {
	cands, err := core.DetectCandidatesContext(ctx, s.inner, threshold, maxPeriod)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Period
	}
	return out, nil
}

// MineParallel is Mine with the per-period work spread over the given
// number of goroutines (0 = all CPUs); the result is identical.
func MineParallel(s *Series, opt Options, workers int) (*Result, error) {
	res, err := core.MineParallel(s.inner, opt.internal(), workers)
	if err != nil {
		return nil, err
	}
	if opt.MaximalOnly {
		res.Patterns = core.FilterMaximal(res.Patterns)
	}
	return convertResult(s, res), nil
}

// Counter maintains the periodicities of an unbounded stream with memory
// independent of the stream length: only the last maxPeriod symbols and the
// per-(symbol, period, position) counts are retained, so it runs forever at
// O(σ·maxPeriod²) bytes. Unlike Incremental it cannot mine patterns (that
// needs the data) and unlike Monitor nothing ever ages out — counts cover
// the whole stream.
type Counter struct {
	inner *core.StreamCounter
	alpha *alphabet.Alphabet
}

// NewCounter returns a bounded-memory stream counter over the given
// alphabet, tracking periods 1..maxPeriod.
func NewCounter(maxPeriod int, symbols ...string) (*Counter, error) {
	alpha, err := alphabet.New(symbols...)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewStreamCounter(alpha.Size(), maxPeriod)
	if err != nil {
		return nil, err
	}
	return &Counter{inner: inner, alpha: alpha}, nil
}

// Append ingests the next symbol; O(maxPeriod).
func (c *Counter) Append(symbol string) error {
	k, ok := c.alpha.Index(symbol)
	if !ok {
		return fmt.Errorf("periodica: symbol %q not in alphabet %v", symbol, c.alpha)
	}
	return c.inner.Append(k)
}

// Len returns the number of symbols seen.
func (c *Counter) Len() int { return c.inner.Len() }

// MemoryBytes estimates the counter's resident size, independent of Len.
func (c *Counter) MemoryBytes() int { return c.inner.MemoryBytes() }

// Periodicities returns the whole-stream periodicities at the threshold.
func (c *Counter) Periodicities(threshold float64) ([]Periodicity, error) {
	pers, err := c.inner.Periodicities(threshold)
	if err != nil {
		return nil, err
	}
	var out []Periodicity
	for _, sp := range pers {
		out = append(out, Periodicity{
			Symbol:     c.alpha.Symbol(sp.Symbol),
			Period:     sp.Period,
			Position:   sp.Position,
			Matches:    sp.F2,
			Pairs:      sp.Pairs,
			Confidence: sp.Confidence,
		})
	}
	return out, nil
}

// Describe renders a periodicity the way the paper narrates its Table 2,
// e.g. "under 200 transactions occurs in hour 7 of the day for 80% of the
// cycles". levelNames maps symbols (in alphabet order) to meanings; unit and
// cycle name the timestamp granularity ("hour", "day") — any may be empty.
func (s *Series) Describe(sp Periodicity, levelNames []string, unit, cycle string) string {
	k, ok := s.inner.Alphabet().Index(sp.Symbol)
	if !ok {
		return fmt.Sprintf("unknown symbol %q", sp.Symbol)
	}
	it := core.Interpretation{LevelNames: levelNames, Unit: unit, Cycle: cycle}
	return it.Describe(s.inner.Alphabet(), core.SymbolPeriodicity{
		Symbol: k, Period: sp.Period, Position: sp.Position,
		F2: sp.Matches, Pairs: sp.Pairs, Confidence: sp.Confidence,
	})
}

// Monitor maintains the periodicities of the most recent Window symbols of
// an unbounded stream: arriving symbols add their matches, symbols sliding
// out retract theirs, so stale behaviour ages out of the answers. Positions
// are reported in absolute stream phase (stream index mod period), keeping a
// stable pattern at a stable label while the window slides.
type Monitor struct {
	inner *core.WindowMiner
	alpha *alphabet.Alphabet
}

// NewMonitor returns a sliding-window miner over the given alphabet,
// tracking periods 1..maxPeriod within a window of the given size
// (window > maxPeriod).
func NewMonitor(maxPeriod, window int, symbols ...string) (*Monitor, error) {
	alpha, err := alphabet.New(symbols...)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewWindowMiner(alpha.Size(), maxPeriod, window)
	if err != nil {
		return nil, err
	}
	return &Monitor{inner: inner, alpha: alpha}, nil
}

// Append ingests the next symbol, evicting the oldest once the window is
// full; O(maxPeriod).
func (m *Monitor) Append(symbol string) error {
	k, ok := m.alpha.Index(symbol)
	if !ok {
		return fmt.Errorf("periodica: symbol %q not in alphabet %v", symbol, m.alpha)
	}
	return m.inner.Append(k)
}

// Len returns the number of symbols currently in the window.
func (m *Monitor) Len() int { return m.inner.Len() }

// Periodicities returns the periodicities of the current window.
func (m *Monitor) Periodicities(threshold float64) ([]Periodicity, error) {
	pers, err := m.inner.Periodicities(threshold)
	if err != nil {
		return nil, err
	}
	var out []Periodicity
	for _, sp := range pers {
		out = append(out, Periodicity{
			Symbol:     m.alpha.Symbol(sp.Symbol),
			Period:     sp.Period,
			Position:   sp.Position,
			Matches:    sp.F2,
			Pairs:      sp.Pairs,
			Confidence: sp.Confidence,
		})
	}
	return out, nil
}

// DatabasePattern is a periodic pattern aggregated over a database of
// series: it reached the per-series threshold in Sequences of the mined
// series, with MeanSupport averaged over those.
type DatabasePattern struct {
	Period      int
	Text        string
	Sequences   int
	MeanSupport float64
}

// MineDatabase mines every series of a time-series database — e.g. one
// consumption series per customer — and aggregates the multi-symbol patterns
// across series: a pattern is reported when it reaches opt.Threshold in at
// least minFraction of the series. All series must use the same symbols; the
// first series' alphabet ordering governs.
func MineDatabase(db []*Series, opt Options, minFraction float64) ([]DatabasePattern, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("periodica: empty database")
	}
	alpha := db[0].inner.Alphabet()
	inner := make([]*series.Series, len(db))
	for i, s := range db {
		re, err := reencode(s.inner, alpha)
		if err != nil {
			return nil, fmt.Errorf("periodica: series %d: %v", i, err)
		}
		inner[i] = re
	}
	res, err := core.MineDatabase(inner, opt.internal(), minFraction)
	if err != nil {
		return nil, err
	}
	var out []DatabasePattern
	for _, dp := range res.Patterns {
		out = append(out, DatabasePattern{
			Period:      dp.Pattern.Period,
			Text:        dp.Pattern.Render(alpha),
			Sequences:   dp.Sequences,
			MeanSupport: dp.MeanSupport,
		})
	}
	return out, nil
}

// reencode maps a series onto the target alphabet by symbol name.
func reencode(s *series.Series, alpha *alphabet.Alphabet) (*series.Series, error) {
	if s.Alphabet() == alpha {
		return s, nil
	}
	idx := make([]int, s.Len())
	for i := 0; i < s.Len(); i++ {
		name := s.Alphabet().Symbol(s.At(i))
		k, ok := alpha.Index(name)
		if !ok {
			return nil, fmt.Errorf("symbol %q not in the database alphabet %v", name, alpha)
		}
		idx[i] = k
	}
	return series.New(alpha, idx)
}

// CandidatePeriodsParallel is CandidatePeriods with the per-symbol FFTs run
// concurrently on the given number of goroutines (0 = GOMAXPROCS).
func CandidatePeriodsParallel(s *Series, threshold float64, maxPeriod, workers int) ([]int, error) {
	cands, err := core.ParallelDetectCandidates(s.inner, threshold, maxPeriod, workers)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Period
	}
	return out, nil
}
