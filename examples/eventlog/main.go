// Eventlog mines a network monitoring event stream — the second data model
// of the paper's §2.1, where each element is an event type rather than a
// discretized measurement. Events arrive one at a time and are ingested in a
// single pass (the paper's data-stream motivation); a heartbeat fires every
// 60 ticks and a backup job every 97 ticks, buried under random alerts, and
// the miner recovers both periods from the stream without being told either.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"periodica"
)

const (
	ticks           = 50000
	heartbeatPeriod = 60
	backupPeriod    = 97
)

func main() {
	events := []string{"ok", "warn", "err", "auth", "scan", "heartbeat", "backup"}
	st, err := periodica.NewStream(events...)
	if err != nil {
		log.Fatal(err)
	}

	// One pass over the live stream: each tick carries exactly one event.
	rng := rand.New(rand.NewSource(13))
	background := []string{"ok", "ok", "ok", "warn", "err", "auth", "scan"}
	for t := 0; t < ticks; t++ {
		switch {
		case t%heartbeatPeriod == 0 && rng.Float64() < 0.95: // drops 5%
			err = st.Append("heartbeat")
		case t%backupPeriod == 3:
			err = st.Append("backup")
		default:
			err = st.Append(background[rng.Intn(len(background))])
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d events in one pass\n\n", st.Len())

	res, err := st.Finish(periodica.Options{
		Threshold: 0.85, MaxPeriod: 200, MaxPatternPeriod: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detected periods (ψ=0.85): %v\n\n", res.Periods)
	fmt.Println("periodic events:")
	for _, sp := range res.Periodicities {
		fmt.Printf("  %-10s every %3d ticks (offset %3d) — %.0f%% confidence\n",
			sp.Symbol, sp.Period, sp.Position, sp.Confidence*100)
	}

	check(res, "heartbeat", heartbeatPeriod)
	check(res, "backup", backupPeriod)
}

func check(res *periodica.Result, event string, period int) {
	for _, sp := range res.Periodicities {
		if sp.Symbol == event && sp.Period == period {
			fmt.Printf("\n✓ recovered %s period %d from the stream\n", event, period)
			return
		}
	}
	fmt.Printf("\n✗ %s period %d NOT detected\n", event, period)
}
