// Fleet mines a database of series — one power-consumption series per
// customer — and reports the weekly patterns shared across the customer
// base, the database-of-sequences setting the paper's introduction
// motivates. Each customer's data is noisy on its own; aggregation across
// the fleet makes the shared structure explicit.
package main

import (
	"fmt"
	"log"

	"periodica"
	"periodica/internal/cimeg"
)

func main() {
	// Twelve customers, one year of daily consumption each; all share the
	// weekly rhythm (very low on the away day, high weekends) but with
	// independent noise.
	const customers = 12
	raw := cimeg.Customers(customers, cimeg.Config{Days: 365, Seed: 31, Seasonal: true})
	db := make([]*periodica.Series, customers)
	for i, s := range raw {
		pub, err := periodica.NewSeriesFromString(s.String())
		if err != nil {
			log.Fatal(err)
		}
		db[i] = pub
	}
	fmt.Printf("database: %d customers × %d days\n\n", customers, db[0].Len())

	// Patterns must reach 35% weekly support within a customer and recur in
	// at least 2/3 of the customer base.
	pats, err := periodica.MineDatabase(db, periodica.Options{
		Threshold: 0.35, MinPeriod: 7, MaxPeriod: 7, MaxPatternPeriod: 7,
	}, 2.0/3.0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("weekly patterns shared by ≥ %d of %d customers:\n", customers*2/3, customers)
	for i, dp := range pats {
		if i == 12 {
			fmt.Printf("  … %d more\n", len(pats)-i)
			break
		}
		fmt.Printf("  %-8s in %2d customers, mean support %.0f%%\n",
			dp.Text, dp.Sequences, dp.MeanSupport*100)
	}

	// Per-customer view of the strongest shared pattern, for contrast.
	if len(pats) > 0 {
		fmt.Printf("\nstrongest shared pattern %q per customer:\n", pats[0].Text)
		for i, s := range db {
			res, err := periodica.Mine(s, periodica.Options{
				Threshold: 0.2, MinPeriod: 7, MaxPeriod: 7, MaxPatternPeriod: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			support := 0.0
			for _, pt := range res.Patterns {
				if pt.Text == pats[0].Text {
					support = pt.Support
				}
			}
			fmt.Printf("  customer %2d: %.0f%%\n", i, support*100)
		}
	}
}
