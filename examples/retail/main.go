// Retail mines hourly transaction counts from a store — the paper's Wal-Mart
// scenario. Counts are discretized into the paper's five levels (very low =
// closed, low < 200 tx/h, then 200-wide bands) and the miner recovers the
// daily rhythm (period 24), the weekly rhythm (period 168), and
// interpretable hourly patterns such as "fewer than 200 transactions between
// 7 and 8 am on most days" — all without being told any period.
package main

import (
	"fmt"
	"log"
	"sort"

	"periodica"
	"periodica/internal/walmart"
)

func main() {
	// 15 months of synthetic hourly transactions; stands in for the paper's
	// Wal-Mart Teradata trace (see DESIGN.md on the substitution).
	counts := walmart.Generate(walmart.Config{Months: 15, Seed: 11, DST: true})
	fmt.Printf("raw data: %d hourly readings (%d days)\n\n", len(counts), len(counts)/24)

	// The paper's discretization: very low = 0 tx/h, low < 200, 200-bands.
	s, err := periodica.DiscretizeBreakpoints(counts, []float64{1e-9, 200, 400, 600})
	if err != nil {
		log.Fatal(err)
	}

	// Which periods dominate? Rank candidates by how confidently they are
	// detected.
	type cand struct {
		p    int
		conf float64
	}
	var cands []cand
	for _, p := range []int{12, 24, 48, 168, 24 * 30} {
		cands = append(cands, cand{p, periodica.PeriodConfidence(s, p)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].conf > cands[j].conf })
	fmt.Println("confidence per candidate period:")
	for _, c := range cands {
		fmt.Printf("  p=%-5d %.3f\n", c.p, c.conf)
	}

	// Mine the daily period in full.
	res, err := periodica.Mine(s, periodica.Options{
		Threshold: 0.8, MinPeriod: 24, MaxPeriod: 24, MaxPatternPeriod: 24,
	})
	if err != nil {
		log.Fatal(err)
	}

	levels := []string{"closed/idle", "under 200 tx", "200-400 tx", "400-600 tx", "over 600 tx"}
	fmt.Println("\ndaily hour-by-hour periodicities (ψ=0.8):")
	for _, sp := range res.Periodicities {
		fmt.Printf("  %02d:00-%02d:59  %-14s %.0f%% of days\n",
			sp.Position, sp.Position, levels[int(sp.Symbol[0]-'a')], sp.Confidence*100)
	}

	fmt.Println("\ntop daily patterns:")
	for i, pt := range res.Patterns {
		if i == 5 {
			break
		}
		fmt.Printf("  %s  support %.0f%%\n", pt.Text, pt.Support*100)
	}
}
