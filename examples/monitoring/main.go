// Monitoring watches a live event stream through a sliding window and
// reports when the stream's rhythm changes — the regime-shift view of the
// paper's data-stream motivation. A service emits a heartbeat every 12 ticks;
// mid-stream the schedule drifts to every 15 ticks. The monitor notices: the
// old periodicity ages out of the window and the new one takes its place.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"periodica"
)

func main() {
	const window, maxPeriod = 240, 40
	m, err := periodica.NewMonitor(maxPeriod, window, "ok", "warn", "beat")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))

	emit := func(tick, period int) {
		ev := "ok"
		switch {
		case tick%period == 0:
			ev = "beat"
		case rng.Float64() < 0.1:
			ev = "warn"
		}
		if err := m.Append(ev); err != nil {
			log.Fatal(err)
		}
	}

	report := func(label string) {
		pers, err := m.Periodicities(0.9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — window of %d events:\n", label, m.Len())
		seen := map[int]bool{}
		for _, sp := range pers {
			if sp.Symbol != "beat" || seen[sp.Period] || sp.Pairs < 4 {
				continue
			}
			seen[sp.Period] = true
			fmt.Printf("  beat every %2d ticks (%.0f%% of the window)\n", sp.Period, sp.Confidence*100)
		}
		if len(seen) == 0 {
			fmt.Println("  no stable beat")
		}
		fmt.Println()
	}

	// Regime 1: heartbeat every 12 ticks.
	for t := 0; t < 600; t++ {
		emit(t, 12)
	}
	report("regime 1 (schedule: 12)")

	// Drift: the scheduler now fires every 15 ticks.
	for t := 0; t < 600; t++ {
		emit(t, 15)
	}
	report("regime 2 (schedule: 15)")
}
