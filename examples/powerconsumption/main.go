// Powerconsumption mines a year of daily power-consumption readings — the
// paper's CIMEG scenario. Raw Watts/day values are discretized into the
// paper's five expert levels ("very low" below 6000 W, then 2000-W bands),
// and the miner discovers the weekly rhythm (period 7 and its multiples)
// plus the customer's very-low-consumption day, with no period supplied.
package main

import (
	"fmt"
	"log"

	"periodica"
	"periodica/internal/cimeg"
)

func main() {
	// One year of synthetic daily consumption for one customer; stands in
	// for the CIMEG project database (see DESIGN.md on the substitution).
	watts := cimeg.Generate(cimeg.Config{Days: 365, Seed: 7, Seasonal: true})
	fmt.Printf("raw data: %d days, first week %.0f\n\n", len(watts), watts[:7])

	// The paper's discretization: very low < 6000 W/day, then 2000-W bands.
	s, err := periodica.DiscretizeBreakpoints(watts, []float64{6000, 8000, 10000, 12000})
	if err != nil {
		log.Fatal(err)
	}
	levels := []string{"very low", "low", "medium", "high", "very high"}

	// Stage 1 — how confidently is each plausible rhythm detected? The
	// weekly period and its multiples dominate.
	fmt.Println("confidence per candidate period:")
	for _, p := range []int{5, 6, 7, 14, 21, 30} {
		fmt.Printf("  p=%-3d %.3f\n", p, periodica.PeriodConfidence(s, p))
	}

	// Stage 2 — full mining of the weekly period. Daily noise keeps
	// individual day-confidences near 50%, so patterns are mined at a
	// moderate threshold, as the paper does for its real data (ψ = 35%).
	res, err := periodica.Mine(s, periodica.Options{
		Threshold: 0.35, MinPeriod: 7, MaxPeriod: 7, MaxPatternPeriod: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nweekly symbol periodicities:")
	for _, sp := range res.Periodicities {
		level := levels[int(sp.Symbol[0]-'a')]
		fmt.Printf("  day %d of the week is %-9s — %.0f%% of weeks\n",
			sp.Position, level, sp.Confidence*100)
	}

	fmt.Println("\nweekly patterns (≥ 2 fixed days):")
	for i, pt := range res.Patterns {
		if i == 10 {
			fmt.Printf("  … %d more\n", len(res.Patterns)-i)
			break
		}
		fmt.Printf("  %s  support %.0f%%\n", pt.Text, pt.Support*100)
	}
}
