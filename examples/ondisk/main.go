// Ondisk mines a series that lives on disk without loading it — the paper's
// §3.1 remark that "an external FFT algorithm can be used for large sizes of
// databases mined while on disk". A store trace is written to a file; the
// candidate-period detection then streams the file once to split per-symbol
// indicators and runs the convolution through the out-of-core four-step FFT,
// so neither the series nor the 32×-larger complex working arrays are ever
// resident. The candidates are verified against the in-memory path.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"periodica"
	"periodica/internal/walmart"
)

func main() {
	// Six months of hourly transactions, discretized and written to disk.
	s := walmart.Series(walmart.Config{Months: 6, Seed: 21})
	pub, err := periodica.NewSeriesFromString(s.String())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "periodica-ondisk-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	path := filepath.Join(dir, "transactions.pser")
	if err := pub.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d hourly symbols (%d bytes) to %s\n", pub.Len(), info.Size(), path)

	// Detect candidate periods straight from the file.
	onDisk, err := periodica.CandidatePeriodsFile(path, 0.9, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidate periods from disk (ψ=0.9, p ≤ 400): %d found\n", len(onDisk))
	show := onDisk
	if len(show) > 12 {
		show = show[:12]
	}
	fmt.Println("  leading candidates:", show)

	// Cross-check against the in-memory detection phase.
	inMem, err := periodica.CandidatePeriods(pub, 0.9, 400)
	if err != nil {
		log.Fatal(err)
	}
	if len(onDisk) != len(inMem) {
		log.Fatalf("on-disk and in-memory candidate sets differ: %d vs %d", len(onDisk), len(inMem))
	}
	for i := range onDisk {
		if onDisk[i] != inMem[i] {
			log.Fatalf("candidate mismatch at %d: %d vs %d", i, onDisk[i], inMem[i])
		}
	}
	fmt.Println("\n✓ on-disk detection matches the in-memory result period for period")

	// Resolve the daily period in full (in memory, on the interesting range).
	res, err := periodica.Mine(pub, periodica.Options{
		Threshold: 0.9, MinPeriod: 24, MaxPeriod: 24, MaxPatternPeriod: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperiod 24 resolved: %d hourly periodicities at ψ=0.9\n", len(res.Periodicities))
}
