// Quickstart walks the public API through the paper's running example
// T = abcabbabcb: the miner discovers — without being told any period — that
// symbol a recurs every 3 positions at offset 0, symbol b every 3 positions
// at offset 1, and that together they form the periodic pattern "ab*" holding
// in 2 of every 3 period occurrences.
package main

import (
	"fmt"
	"log"

	"periodica"
)

func main() {
	s, err := periodica.NewSeriesFromString("abcabbabcb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series: %s (n=%d, alphabet %v)\n\n", s, s.Len(), s.Alphabet())

	res, err := periodica.Mine(s, periodica.Options{Threshold: 2.0 / 3.0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("detected periods:", res.Periods)

	fmt.Println("\nsymbol periodicities (Definition 1):")
	for _, sp := range res.Periodicities {
		fmt.Printf("  %q every %d positions at offset %d — confidence %.2f\n",
			sp.Symbol, sp.Period, sp.Position, sp.Confidence)
	}

	fmt.Println("\nsingle-symbol patterns (Definition 2):")
	for _, pt := range res.SingleSymbolPatterns {
		fmt.Printf("  %-6s support %.2f\n", pt.Text, pt.Support)
	}

	fmt.Println("\nmulti-symbol patterns (Definition 3):")
	for _, pt := range res.Patterns {
		fmt.Printf("  %-6s support %.2f\n", pt.Text, pt.Support)
	}
}
