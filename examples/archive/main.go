// Archive stores a long symbol stream in the embedded segment store and
// answers periodicity queries over arbitrary stretches of its history from
// the per-segment summaries alone — merge mining as a database operation.
// A year of daily readings is appended; the rhythm changes mid-year, and
// range queries see each regime where it lived while whole-history queries
// see the blend.
package main

import (
	"fmt"
	"log"
	"os"

	"periodica/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "periodica-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup

	db, err := store.Open(dir, store.Options{Sigma: 4, MaxPeriod: 14, SegmentSize: 60})
	if err != nil {
		log.Fatal(err)
	}

	// First half-year: weekly rhythm (period 7). Second half: shift work
	// changes the cycle to period 4.
	for day := 0; day < 180; day++ {
		if err := db.Append(day % 7 % 4); err != nil {
			log.Fatal(err)
		}
	}
	for day := 0; day < 180; day++ {
		if err := db.Append(day % 4); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d days in %d sealed segments under %s\n\n", 360, 6, dir)

	// Reopen — answers come from the persisted summaries.
	db, err = store.Open(dir, store.Options{Sigma: 4, MaxPeriod: 14, SegmentSize: 60})
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, from, to int) {
		pers, err := db.PeriodicitiesRange(from, to, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		periods := map[int]bool{}
		for _, sp := range pers {
			if sp.Pairs >= 5 {
				periods[sp.Period] = true
			}
		}
		fmt.Printf("%-28s segments [%d,%d): periods", label, from, to)
		for p := 1; p <= 14; p++ {
			if periods[p] {
				fmt.Printf(" %d", p)
			}
		}
		fmt.Println()
	}

	report("first half (weekly regime)", 0, 3)
	report("second half (4-day regime)", 3, 6)
	report("whole year", 0, 6)
}
