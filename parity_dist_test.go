package periodica_test

// Distributed-path parity: a mine sharded across real HTTP workers must be
// byte-identical to the single-process mine — for every engine, at any
// shard plan, and through the coordinator's fault paths (a killed worker
// that forces retries, a stalled worker that forces a hedge). CI runs
// these under `go test -run ParityDist -race` with two workers
// (PERIODICA_DIST_WORKERS=2).

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"periodica"
	"periodica/internal/dist"
	"periodica/internal/httpapi"
	"periodica/internal/obs"
)

// distWorkerCount is the worker-pool size: PERIODICA_DIST_WORKERS when set
// (the CI integration job pins 2), otherwise 3 so the default run exercises
// a plan wider than the two-worker minimum.
func distWorkerCount(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("PERIODICA_DIST_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("PERIODICA_DIST_WORKERS=%q is not a positive integer", v)
		}
		return n
	}
	return 3
}

func quietLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// startWorker runs a real mining worker — the same httpapi handler opserve
// serves — and returns its base URL.
func startWorker(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(httpapi.New(httpapi.Config{Logger: quietLogger()}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = startWorker(t)
	}
	return urls
}

func distCoordinator(t *testing.T, cfg dist.Config) *dist.Coordinator {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	c, err := dist.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParityDistributed(t *testing.T) {
	workers := startWorkers(t, distWorkerCount(t))
	for _, n := range []int{605, 5000} {
		for name, eng := range parityEngines(t) {
			if eng == periodica.EngineNaive && n > 1000 {
				continue // quadratic reference stays on the small input
			}
			t.Run("n="+strconv.Itoa(n)+"/"+name, func(t *testing.T) {
				s, err := periodica.NewSeries(paritySymbols(n))
				if err != nil {
					t.Fatal(err)
				}
				opt := periodica.Options{Threshold: 0.6, Engine: eng, MinPairs: 3, MaxPatternPeriod: 21}
				want, err := periodica.Mine(s, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(want.Periodicities) == 0 {
					t.Fatal("parity fixture detected nothing; the test is vacuous")
				}
				// Different ShardsPerWorker values produce different shard
				// plans over the same period range; every plan must merge
				// to the same bytes.
				for _, spw := range []int{1, 3} {
					c := distCoordinator(t, dist.Config{Workers: workers, ShardsPerWorker: spw})
					got, err := c.Mine(context.Background(), s, opt)
					if err != nil {
						t.Fatalf("shardsPerWorker=%d: %v", spw, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("shardsPerWorker=%d: distributed result differs from Mine", spw)
					}
				}
			})
		}
	}
}

// TestParityDistributedRetry kills the first worker for its first few shard
// requests: the coordinator must retry onto a healthy worker and still
// produce the single-process bytes, with the retries visible in metrics.
func TestParityDistributedRetry(t *testing.T) {
	healthy := startWorker(t)
	target, err := url.Parse(healthy)
	if err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(1) <= 2 {
			http.Error(w, `{"error":"worker killed"}`, http.StatusInternalServerError)
			return
		}
		httputil.NewSingleHostReverseProxy(target).ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	s, err := periodica.NewSeries(paritySymbols(605))
	if err != nil {
		t.Fatal(err)
	}
	opt := periodica.Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}
	want, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}

	retriesBefore := obs.Dist().Retries.Value()
	c := distCoordinator(t, dist.Config{
		Workers:      []string{flaky.URL, healthy},
		RetryBackoff: time.Millisecond,
	})
	got, err := c.Mine(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("result differs from Mine after worker failures")
	}
	if obs.Dist().Retries.Value() == retriesBefore {
		t.Error("worker failures produced no retries in /metrics")
	}
}

// TestParityDistributedHedge stalls one worker indefinitely: the hedge
// timer must re-dispatch its shards to the healthy worker, first response
// wins, and the merged result must still match the single-process bytes.
func TestParityDistributedHedge(t *testing.T) {
	healthy := startWorker(t)
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server cannot watch for client
		// disconnect while unread request bytes are buffered.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(stalled.Close)

	s, err := periodica.NewSeries(paritySymbols(605))
	if err != nil {
		t.Fatal(err)
	}
	opt := periodica.Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}
	want, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}

	hedgesBefore := obs.Dist().Hedges.Value()
	c := distCoordinator(t, dist.Config{
		Workers:    []string{stalled.URL, healthy},
		HedgeAfter: 20 * time.Millisecond,
	})
	got, err := c.Mine(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("result differs from Mine after hedged re-dispatch")
	}
	if obs.Dist().Hedges.Value() == hedgesBefore {
		t.Error("a stalled worker produced no hedges in /metrics")
	}
}

// TestParityDistributedQueryDriven closes the loop the acceptance criteria
// name: a mine whose parameters arrive as a query string must produce the
// same bytes through the sharded coordinator as the struct-driven local
// mine, at any worker count. The coordinator re-renders the options to the
// canonical query for the shard wire, so this also exercises the
// compile → render → compile fixed point end to end over HTTP.
func TestParityDistributedQueryDriven(t *testing.T) {
	workers := startWorkers(t, distWorkerCount(t))
	s, err := periodica.NewSeries(paritySymbols(605))
	if err != nil {
		t.Fatal(err)
	}
	opt := periodica.Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}
	q, err := periodica.CompileQuery(periodica.QueryFromOptions(opt).String())
	if err != nil {
		t.Fatal(err)
	}
	want, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Periodicities) == 0 {
		t.Fatal("parity fixture detected nothing; the test is vacuous")
	}
	for _, spw := range []int{1, 3} {
		c := distCoordinator(t, dist.Config{Workers: workers, ShardsPerWorker: spw})
		got, err := c.Mine(context.Background(), s, q.Options())
		if err != nil {
			t.Fatalf("shardsPerWorker=%d: %v", spw, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shardsPerWorker=%d: query-driven distributed result differs from struct-driven Mine", spw)
		}
	}
}
