package periodica_test

import (
	"strings"
	"testing"

	"periodica"
)

func TestMineRunningExample(t *testing.T) {
	s, err := periodica.NewSeriesFromString("abcabbabcb")
	if err != nil {
		t.Fatal(err)
	}
	res, err := periodica.Mine(s, periodica.Options{Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	foundA, foundB, foundAB := false, false, false
	for _, sp := range res.Periodicities {
		if sp.Symbol == "a" && sp.Period == 3 && sp.Position == 0 {
			foundA = true
		}
		if sp.Symbol == "b" && sp.Period == 3 && sp.Position == 1 && sp.Confidence == 1 {
			foundB = true
		}
	}
	for _, pt := range res.Patterns {
		if pt.Text == "ab*" {
			foundAB = true
			if pt.Support < 0.66 || pt.Support > 0.67 {
				t.Fatalf("ab* support %v, want 2/3", pt.Support)
			}
		}
	}
	if !foundA || !foundB || !foundAB {
		t.Fatalf("missing paper results: a=%v b=%v ab=%v", foundA, foundB, foundAB)
	}
}

func TestNewSeries(t *testing.T) {
	s, err := periodica.NewSeries([]string{"high", "low", "high", "low"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	alpha := s.Alphabet()
	if len(alpha) != 2 || alpha[0] != "high" || alpha[1] != "low" {
		t.Fatalf("Alphabet = %v", alpha)
	}
	res, err := periodica.Mine(s, periodica.Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 2 {
		t.Fatalf("Periods = %v, want [2]", res.Periods)
	}
}

func TestNewSeriesEmpty(t *testing.T) {
	if _, err := periodica.NewSeries(nil); err == nil {
		t.Fatal("empty series: want error")
	}
	if _, err := periodica.NewSeriesFromString(""); err == nil {
		t.Fatal("empty string: want error")
	}
}

func TestDiscretizeEqualWidth(t *testing.T) {
	s, err := periodica.DiscretizeEqualWidth([]float64{0, 5, 10, 0, 5, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "abcabc" {
		t.Fatalf("discretized = %q, want abcabc", s.String())
	}
	res, err := periodica.Mine(s, periodica.Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 3 {
		t.Fatalf("Periods = %v, want leading 3", res.Periods)
	}
}

func TestDiscretizeEqualWidthErrors(t *testing.T) {
	if _, err := periodica.DiscretizeEqualWidth(nil, 3); err == nil {
		t.Fatal("no values: want error")
	}
	if _, err := periodica.DiscretizeEqualWidth([]float64{1, 1}, 3); err == nil {
		t.Fatal("constant values: want error")
	}
}

func TestDiscretizeBreakpoints(t *testing.T) {
	s, err := periodica.DiscretizeBreakpoints([]float64{100, 300, 700}, []float64{200, 500})
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "abc" {
		t.Fatalf("discretized = %q, want abc", s.String())
	}
	if _, err := periodica.DiscretizeBreakpoints(nil, []float64{1}); err == nil {
		t.Fatal("no values: want error")
	}
	if _, err := periodica.DiscretizeBreakpoints([]float64{1}, nil); err == nil {
		t.Fatal("no breakpoints: want error")
	}
}

func TestCandidatePeriods(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("abcd", 32))
	if err != nil {
		t.Fatal(err)
	}
	periods, err := periodica.CandidatePeriods(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	has4 := false
	for _, p := range periods {
		if p == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Fatalf("period 4 missing from candidates %v", periods)
	}
	if _, err := periodica.CandidatePeriods(s, 0, 0); err == nil {
		t.Fatal("threshold 0: want error")
	}
}

func TestPeriodConfidence(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("xyz", 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := periodica.PeriodConfidence(s, 3); got != 1 {
		t.Fatalf("confidence(3) = %v, want 1", got)
	}
	if got := periodica.PeriodConfidence(s, 2); got == 1 {
		t.Fatal("confidence(2) = 1 on period-3 data with distinct symbols")
	}
}

func TestStream(t *testing.T) {
	st, err := periodica.NewStream("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := st.Append(string(rune('a' + i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 30 {
		t.Fatalf("Len = %d", st.Len())
	}
	res, err := st.Finish(periodica.Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 3 {
		t.Fatalf("Periods = %v, want leading 3", res.Periods)
	}
	if err := st.Append("z"); err == nil {
		t.Fatal("unknown symbol: want error")
	}
}

func TestNewStreamInvalidAlphabet(t *testing.T) {
	if _, err := periodica.NewStream("a", "a"); err == nil {
		t.Fatal("duplicate alphabet symbols: want error")
	}
}

func TestEnginesExposedAgree(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("aabcb", 40))
	if err != nil {
		t.Fatal(err)
	}
	var results []*periodica.Result
	for _, eng := range []periodica.Engine{periodica.EngineAuto, periodica.EngineNaive, periodica.EngineBitset, periodica.EngineFFT} {
		res, err := periodica.Mine(s, periodica.Options{Threshold: 0.8, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i].Periodicities) != len(results[0].Periodicities) {
			t.Fatalf("engine %d disagrees on periodicity count", i)
		}
	}
}

func TestSingleSymbolPatternsExposed(t *testing.T) {
	s, err := periodica.NewSeriesFromString("abcabbabcb")
	if err != nil {
		t.Fatal(err)
	}
	res, err := periodica.Mine(s, periodica.Options{Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SingleSymbolPatterns) != len(res.Periodicities) {
		t.Fatal("one single-symbol pattern per periodicity expected")
	}
	found := false
	for _, pt := range res.SingleSymbolPatterns {
		if pt.Text == "*b*" && pt.Support == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("pattern *b* with support 1 missing")
	}
}

func TestMineInvalidOptions(t *testing.T) {
	s, err := periodica.NewSeriesFromString("abcabc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := periodica.Mine(s, periodica.Options{Threshold: 0}); err == nil {
		t.Fatal("threshold 0: want error")
	}
}
