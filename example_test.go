package periodica_test

import (
	"fmt"
	"log"
	"time"

	"periodica"
)

// The paper's running example: the miner discovers period 3 and the pattern
// "ab*" without being told any period.
func ExampleMine() {
	s, err := periodica.NewSeriesFromString("abcabbabcb")
	if err != nil {
		log.Fatal(err)
	}
	res, err := periodica.Mine(s, periodica.Options{Threshold: 2.0 / 3.0})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range res.Patterns {
		fmt.Printf("%s support %.2f\n", pt.Text, pt.Support)
	}
	// Output:
	// ab* support 0.67
}

// Numeric readings are discretized into levels before mining.
func ExampleDiscretizeEqualWidth() {
	readings := []float64{10, 55, 90, 12, 57, 88, 9, 54, 91, 11, 56, 89}
	s, err := periodica.DiscretizeEqualWidth(readings, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
	res, err := periodica.Mine(s, periodica.Options{Threshold: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("periods:", res.Periods)
	// Output:
	// abcabcabcabc
	// periods: [3 6]
}

// A stream is ingested one element at a time — the paper's single pass — and
// mined when it ends.
func ExampleStream() {
	st, err := periodica.NewStream("ok", "warn", "beat")
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < 40; t++ {
		ev := "ok"
		if t%5 == 0 {
			ev = "beat"
		}
		if err := st.Append(ev); err != nil {
			log.Fatal(err)
		}
	}
	res, err := st.Finish(periodica.Options{Threshold: 1, MaxPeriod: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, sp := range res.Periodicities {
		if sp.Symbol == "beat" && sp.Period == 5 {
			fmt.Printf("%s every %d ticks at offset %d\n", sp.Symbol, sp.Period, sp.Position)
		}
	}
	// Output:
	// beat every 5 ticks at offset 0
}

// A sliding-window monitor tracks the rhythm of the most recent events;
// stale regimes age out.
func ExampleMonitor() {
	m, err := periodica.NewMonitor(10, 60, "tick", "tock")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sym := "tick"
		if i%4 == 0 {
			sym = "tock"
		}
		if err := m.Append(sym); err != nil {
			log.Fatal(err)
		}
	}
	pers, err := m.Periodicities(1)
	if err != nil {
		log.Fatal(err)
	}
	for _, sp := range pers {
		if sp.Symbol == "tock" && sp.Period == 4 {
			fmt.Printf("tock every %d in the last %d events\n", sp.Period, m.Len())
			break
		}
	}
	// Output:
	// tock every 4 in the last 60 events
}

// Irregular timestamped events are binned onto the regular grid the miner
// needs.
func ExampleGridEvents() {
	start := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	var events []periodica.Event
	for m := 0; m < 120; m += 20 {
		events = append(events, periodica.Event{
			Time: start.Add(time.Duration(m) * time.Minute), Symbol: "backup",
		})
	}
	s, err := periodica.GridEvents(events, 10*time.Minute, "quiet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid of %d bins, backup confidence at period 2: %.0f%%\n",
		s.Len(), periodica.PeriodConfidence(s, 2)*100)
	// Output:
	// grid of 11 bins, backup confidence at period 2: 100%
}

// The incremental miner answers at any moment, updating online per symbol.
func ExampleIncremental() {
	inc, err := periodica.NewIncremental(8, "a", "b")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		sym := "a"
		if i%2 == 1 {
			sym = "b"
		}
		if err := inc.Append(sym); err != nil {
			log.Fatal(err)
		}
	}
	pers, err := inc.Periodicities(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s has period %d\n", pers[0].Symbol, pers[0].Period)
	// Output:
	// a has period 2
}
