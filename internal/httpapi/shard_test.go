package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/series"
)

// shardBody marshals a ShardRequest for the test server.
func shardBody(t *testing.T, req ShardRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardEndpoint: the endpoint must return exactly the slots
// core.MineShardSlots computes — including under an alphabet with a symbol
// the text never uses, which pins the explicit-alphabet wire decode.
func TestShardEndpoint(t *testing.T) {
	text := strings.Repeat("abcabbabcb", 10)
	req := ShardRequest{
		ShardID:   42,
		Alphabet:  []string{"a", "b", "c", "d"}, // d never occurs
		Symbols:   text,
		Threshold: 0.6, MinPeriod: 1, MaxPeriod: 20,
		SymbolLo: 0, SymbolHi: 4,
	}
	rec := post(t, quiet(Config{}), "/v1/shard", shardBody(t, req))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp ShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ShardID != 42 {
		t.Fatalf("shard id %d, want 42", resp.ShardID)
	}

	alpha := alphabet.MustNew("a", "b", "c", "d")
	ser, err := series.FromAlphabetText(alpha, text)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MineShardSlots(context.Background(), ser,
		core.Options{Threshold: 0.6, MinPeriod: 1, MaxPeriod: 20}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no slots; the test is vacuous")
	}
	got := make([]core.SymbolPeriodicity, 0, len(resp.Slots))
	for _, sl := range resp.Slots {
		got = append(got, core.SymbolPeriodicity{
			Symbol: sl.Symbol, Period: sl.Period, Position: sl.Position,
			F2: sl.F2, Pairs: sl.Pairs,
			Confidence: float64(sl.F2) / float64(sl.Pairs),
		})
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("endpoint slots differ from MineShardSlots:\nwant %v\ngot  %v", want, got)
	}
}

func TestShardBadRequests(t *testing.T) {
	h := quiet(Config{})
	base := ShardRequest{
		Alphabet: []string{"a", "b"}, Symbols: "abababab",
		Threshold: 0.5, MinPeriod: 1, MaxPeriod: 4, SymbolLo: 0, SymbolHi: 2,
	}
	mutate := func(f func(*ShardRequest)) string {
		req := base
		req.Alphabet = append([]string(nil), base.Alphabet...)
		f(&req)
		return shardBody(t, req)
	}
	cases := map[string]string{
		"empty alphabet":        mutate(func(r *ShardRequest) { r.Alphabet = nil }),
		"duplicate alphabet":    mutate(func(r *ShardRequest) { r.Alphabet = []string{"a", "a"} }),
		"rune not in alphabet":  mutate(func(r *ShardRequest) { r.Symbols = "abxab" }),
		"empty symbols":         mutate(func(r *ShardRequest) { r.Symbols = "" }),
		"unknown engine":        mutate(func(r *ShardRequest) { r.Engine = "quantum" }),
		"bad threshold":         mutate(func(r *ShardRequest) { r.Threshold = 0 }),
		"inverted symbol range": mutate(func(r *ShardRequest) { r.SymbolLo, r.SymbolHi = 2, 1 }),
		"symbol range too wide": mutate(func(r *ShardRequest) { r.SymbolHi = 5 }),
		"bad period band":       mutate(func(r *ShardRequest) { r.MinPeriod, r.MaxPeriod = 4, 100 }),
		"unknown field":         `{"alphabet":["a","b"],"symbols":"abab","threshold":0.5,"bogus":1}`,
		"invalid json":          `{`,
	}
	for name, body := range cases {
		rec := post(t, h, "/v1/shard", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/shard", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}
}

// TestShardClientRoundTrip drives the client against a real worker server.
func TestShardClientRoundTrip(t *testing.T) {
	worker := httptest.NewServer(quiet(Config{}))
	defer worker.Close()
	var c ShardClient
	req := &ShardRequest{
		ShardID: 7, Alphabet: []string{"a", "b", "c"}, Symbols: strings.Repeat("abcabbabcb", 5),
		Threshold: 0.6, MinPeriod: 1, MaxPeriod: 10, SymbolLo: 0, SymbolHi: 3,
	}
	resp, err := c.MineShard(context.Background(), worker.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardID != 7 || len(resp.Slots) == 0 {
		t.Fatalf("response %+v", resp)
	}
}

// TestShardClientStatusErrors: a shed worker (429) is retryable, a rejected
// request (400) is not, and both surface as WorkerStatusError.
func TestShardClientStatusErrors(t *testing.T) {
	s := quiet(Config{MaxConcurrency: 1})
	worker := httptest.NewServer(s)
	defer worker.Close()
	var c ShardClient
	good := &ShardRequest{
		ShardID: 1, Alphabet: []string{"a", "b"}, Symbols: "abababab",
		Threshold: 0.5, MinPeriod: 1, MaxPeriod: 4, SymbolLo: 0, SymbolHi: 2,
	}

	if !s.gate.TryAcquire() {
		t.Fatal("fresh gate refused its first slot")
	}
	_, err := c.MineShard(context.Background(), worker.URL, good)
	s.gate.Release()
	var wse *WorkerStatusError
	if !errors.As(err, &wse) || wse.Status != http.StatusTooManyRequests || !wse.Retryable() {
		t.Fatalf("shed: err = %v, want retryable 429 WorkerStatusError", err)
	}

	bad := *good
	bad.Threshold = 0
	_, err = c.MineShard(context.Background(), worker.URL, &bad)
	if !errors.As(err, &wse) || wse.Status != http.StatusBadRequest || wse.Retryable() {
		t.Fatalf("rejected: err = %v, want non-retryable 400 WorkerStatusError", err)
	}
}

// TestShardResponseStampedAndVerifiable: the worker stamps its response with
// the request echoes and a checksum the client's acceptance rule verifies.
func TestShardResponseStampedAndVerifiable(t *testing.T) {
	req := ShardRequest{
		ShardID: 9, Alphabet: []string{"a", "b", "c"}, Symbols: strings.Repeat("abcabbabcb", 5),
		Threshold: 0.6, MinPeriod: 2, MaxPeriod: 8, SymbolLo: 1, SymbolHi: 3,
	}
	rec := post(t, quiet(Config{}), "/v1/shard", shardBody(t, req))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp ShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if err := VerifyShardResponse(&req, &resp); err != nil {
		t.Fatalf("worker's own response fails verification: %v", err)
	}
	if resp.MinPeriod != 2 || resp.MaxPeriod != 8 || resp.SymbolLo != 1 || resp.SymbolHi != 3 {
		t.Fatalf("echoes %+v do not match the request block", resp)
	}
	if resp.AlphaCRC != AlphabetCRC(req.Alphabet) {
		t.Fatal("alphabet hash echo differs from the request alphabet")
	}
}

// TestShardClientRejectsCorruptResponses: every corruption of a valid 200
// body must surface as ShardIntegrityError, never as a decoded response.
func TestShardClientRejectsCorruptResponses(t *testing.T) {
	req := &ShardRequest{
		ShardID: 3, Alphabet: []string{"a", "b"}, Symbols: strings.Repeat("abab", 10),
		Threshold: 0.5, MinPeriod: 1, MaxPeriod: 6, SymbolLo: 0, SymbolHi: 2,
	}
	worker := httptest.NewServer(quiet(Config{}))
	defer worker.Close()
	var c ShardClient
	good, err := c.MineShard(context.Background(), worker.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}

	reencode := func(f func(*ShardResponse)) []byte {
		r := *good
		r.Slots = append([]ShardSlot(nil), good.Slots...)
		f(&r)
		b, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := map[string][]byte{
		"truncated":          pristine[:len(pristine)/2],
		"not json":           []byte("<html>504 gateway</html>"),
		"slot value changed": reencode(func(r *ShardResponse) { r.Slots[0].F2++ }),
		"slot dropped":       reencode(func(r *ShardResponse) { r.Slots = r.Slots[1:] }),
		"wrong shard id": reencode(func(r *ShardResponse) {
			r.ShardID = 99
			r.Checksum = ShardChecksum(r) // internally consistent, wrong block
		}),
		"wrong band": reencode(func(r *ShardResponse) {
			r.MaxPeriod = 7
			r.Checksum = ShardChecksum(r)
		}),
		"wrong alphabet": reencode(func(r *ShardResponse) {
			r.AlphaCRC++
			r.Checksum = ShardChecksum(r)
		}),
		"checksum zeroed": reencode(func(r *ShardResponse) { r.Checksum = 0 }),
	}
	for name, body := range cases {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write(body)
		}))
		_, err := c.MineShard(context.Background(), srv.URL, req)
		srv.Close()
		var ie *ShardIntegrityError
		if !errors.As(err, &ie) {
			t.Errorf("%s: err = %v, want ShardIntegrityError", name, err)
		}
	}
}

// TestShardClientParsesRetryAfter: integer seconds clamp to [1s,30s]; dates
// and garbage read as zero.
func TestShardClientParsesRetryAfter(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"3", 3 * time.Second},
		{"1", time.Second},
		{"9999", 30 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0},
		{"", 0},
	}
	req := &ShardRequest{
		ShardID: 1, Alphabet: []string{"a"}, Symbols: "aaaa",
		Threshold: 0.5, MinPeriod: 1, MaxPeriod: 2, SymbolLo: 0, SymbolHi: 1,
	}
	var c ShardClient
	for _, tc := range cases {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if tc.header != "" {
				w.Header().Set("Retry-After", tc.header)
			}
			w.WriteHeader(http.StatusTooManyRequests)
		}))
		_, err := c.MineShard(context.Background(), srv.URL, req)
		srv.Close()
		var wse *WorkerStatusError
		if !errors.As(err, &wse) {
			t.Fatalf("header %q: err = %v, want WorkerStatusError", tc.header, err)
		}
		if wse.RetryAfter != tc.want {
			t.Errorf("header %q: RetryAfter = %v, want %v", tc.header, wse.RetryAfter, tc.want)
		}
	}
}

// TestShardSurvivorsRequest: a shipped survivor set yields the same slots as
// self-detection, and malformed sets are rejected as bad requests.
func TestShardSurvivorsRequest(t *testing.T) {
	text := strings.Repeat("abcabbabcb", 10)
	base := ShardRequest{
		ShardID: 5, Alphabet: []string{"a", "b", "c"}, Symbols: text,
		Threshold: 0.6, MinPeriod: 2, MaxPeriod: 8, SymbolLo: 0, SymbolHi: 3,
	}
	h := quiet(Config{})
	rec := post(t, h, "/v1/shard", shardBody(t, base))
	if rec.Code != http.StatusOK {
		t.Fatalf("self-detect status %d: %s", rec.Code, rec.Body)
	}
	var want ShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Slots) == 0 {
		t.Fatal("fixture produced no slots; the test is vacuous")
	}

	alpha := alphabet.MustNew("a", "b", "c")
	ser, err := series.FromAlphabetText(alpha, text)
	if err != nil {
		t.Fatal(err)
	}
	surv, err := core.ShardSurvivors(context.Background(), ser,
		core.Options{Threshold: 0.6, MinPeriod: 2, MaxPeriod: 8})
	if err != nil {
		t.Fatal(err)
	}
	shipped := base
	shipped.Survivors = surv
	rec = post(t, h, "/v1/shard", shardBody(t, shipped))
	if rec.Code != http.StatusOK {
		t.Fatalf("shipped status %d: %s", rec.Code, rec.Body)
	}
	var got ShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Slots, got.Slots) {
		t.Fatal("shipped-survivor slots differ from self-detected slots")
	}

	for name, surv := range map[string][][]int32{
		"wrong span":      {{0}},
		"symbol past hi":  {{0, 7}, {}, {}, {}, {}, {}, {}},
		"descending list": {{1, 0}, {}, {}, {}, {}, {}, {}},
	} {
		bad := base
		bad.Survivors = surv
		rec := post(t, h, "/v1/shard", shardBody(t, bad))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, rec.Code, rec.Body)
		}
	}
}

// TestRetryAfterComputed: the 429 Retry-After must scale with the observed
// mine durations and gate occupancy, clamped to [1, 60].
func TestRetryAfterComputed(t *testing.T) {
	cases := []struct {
		name string
		mean time.Duration
		want string
	}{
		{"no history", 0, "1"},
		{"5s mean", 5 * time.Second, "5"},
		{"clamped", 10 * time.Minute, "60"},
	}
	for _, c := range cases {
		s := quiet(Config{MaxConcurrency: 1})
		if c.mean > 0 {
			s.Metrics().Endpoint("/v1/mine").ObserveMine(c.mean)
		}
		if !s.gate.TryAcquire() {
			t.Fatal("fresh gate refused its first slot")
		}
		rec := post(t, s, "/v1/mine", `{"symbols":"abab","threshold":0.5}`)
		s.gate.Release()
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429", c.name, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != c.want {
			t.Errorf("%s: Retry-After = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestDrainRetryAfterWindow(t *testing.T) {
	s := quiet(Config{})
	s.drainSecs.Store(7)
	s.SetReady(false)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
}
