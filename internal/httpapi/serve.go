package httpapi

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Run serves hs on ln until ctx is cancelled, then drains gracefully: the
// /readyz endpoint flips to 503 so load balancers stop routing here, new
// connections are refused, and in-flight requests get up to drain to finish
// before the server is torn down. hs.Handler defaults to the Server itself.
// A clean drain — including the http.ErrServerClosed that Serve returns
// after Shutdown — yields a nil error.
func (s *Server) Run(ctx context.Context, hs *http.Server, ln net.Listener, drain time.Duration) error {
	if hs.Handler == nil {
		hs.Handler = s
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed before any shutdown was requested.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}

	s.drainSecs.Store(int64((drain + time.Second - 1) / time.Second))
	s.SetReady(false)
	s.log.Info("draining", "timeout", drain, "in_flight", s.metrics.InFlight().Value())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	if err != nil {
		s.log.Error("shutdown incomplete", "err", err)
		return err
	}
	s.log.Info("drained")
	return nil
}
