// Package httpapi exposes the miner as a small JSON-over-HTTP service: a
// time-series database component would deploy this next to its storage
// layer. Stateless by design — every request carries its series (symbols or
// raw numeric values) and its mining parameters.
//
// The serving path is built for production traffic: every mine is driven by
// the request context plus a configurable deadline (a disconnected client
// stops consuming CPU), a semaphore admission controller sheds load with
// 429 + Retry-After instead of queueing unboundedly, and an obs.Registry
// records per-endpoint request counts, status classes, an in-flight gauge,
// and mine-duration histograms served at /metrics. /healthz reports
// liveness, /readyz flips to 503 during drain, and structured access logs
// carry a request ID per request.
package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"periodica"
	"periodica/internal/exec"
	"periodica/internal/obs"
	"periodica/internal/query"
)

// MaxBodyBytes is the default request-body cap (64 MiB).
const MaxBodyBytes = 64 << 20

// DefaultRequestTimeout bounds each mining request when Config.RequestTimeout
// is zero.
const DefaultRequestTimeout = 2 * time.Minute

// StatusClientClosedRequest is the de-facto status (nginx's 499) recorded
// when the client disconnected before the mine finished. The client never
// sees it; it keeps logs and metrics honest about who ended the request.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// MaxConcurrency caps the number of simultaneously mining requests;
	// excess requests are shed with 429 + Retry-After. 0 means twice
	// GOMAXPROCS.
	MaxConcurrency int
	// RequestTimeout bounds each mining call via the request context;
	// 0 means DefaultRequestTimeout, negative disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 means the MaxBodyBytes constant.
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives structured access and error logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// Metrics receives the serving metrics; nil means a fresh registry.
	Metrics *obs.Registry
	// Distributor, when set, shards /v1/mine requests across worker nodes
	// instead of mining in-process. /v1/candidates and /v1/shard always run
	// locally.
	Distributor Distributor
	// DefaultQuery, when set, is the pattern query applied to /v1/mine and
	// /v1/candidates requests that carry no mining parameters of their own
	// (no query string and no legacy option fields). opserve sets it from
	// -query / PERIODICA_QUERY after compiling it at startup.
	DefaultQuery string
}

// Server is the mining service: an http.Handler plus the lifecycle state
// (readiness, admission gate, metrics) behind it. Admission delegates to an
// exec.Gate, so the request-level concurrency limit lives in the same
// package as the engine-level worker budget it protects.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	gate    *exec.Gate
	ready   atomic.Bool
	metrics *obs.Registry
	log     *slog.Logger
	reqSeq  atomic.Uint64 // request-ID fallback when crypto/rand fails
	// drainSecs is the drain window in whole seconds, stored by Run when
	// shutdown begins so /readyz can tell callers how long to stay away.
	drainSecs atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxConcurrency == 0 {
		cfg.MaxConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = MaxBodyBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		gate:    exec.NewGate(cfg.MaxConcurrency),
		metrics: cfg.Metrics,
		log:     cfg.Logger,
	}
	s.ready.Store(true)
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("/readyz", s.instrument("/readyz", s.handleReady))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/v1/mine", s.instrument("/v1/mine", s.handleMine))
	s.mux.HandleFunc("/v1/candidates", s.instrument("/v1/candidates", s.handleCandidates))
	s.mux.HandleFunc("/v1/shard", s.instrument("/v1/shard", s.handleShard))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the service's HTTP handler with default configuration.
func Handler() http.Handler { return New(Config{}) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetReady flips the /readyz answer; Run flips it to false when draining so
// load balancers stop routing new work here while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// MineRequest is the body of POST /v1/mine and POST /v1/candidates. Exactly
// one of Symbols and Values must be set. The mining parameters come either
// from Query — a pattern-query string like "conf >= 0.8 and period in
// 2..64" — or from the legacy option fields; setting both is an error.
// Internally the legacy fields are just a Spec builder: both forms funnel
// through the one query validator, so defaults and error messages cannot
// differ between them.
type MineRequest struct {
	// Symbols is a string of single-rune symbols.
	Symbols string `json:"symbols,omitempty"`
	// Values are raw numeric readings, discretized into Levels equal-width
	// levels (default 5; a query's "levels"/"discretize" clauses override).
	Values []float64 `json:"values,omitempty"`
	Levels int       `json:"levels,omitempty"`

	// Query is a pattern-query string; when set, every other mining
	// parameter (threshold through minPairs, and levels) must be unset.
	Query string `json:"query,omitempty"`

	Threshold        float64 `json:"threshold,omitempty"`
	MinPeriod        int     `json:"minPeriod,omitempty"`
	MaxPeriod        int     `json:"maxPeriod,omitempty"`
	MaxPatternPeriod int     `json:"maxPatternPeriod,omitempty"`
	MaximalOnly      bool    `json:"maximalOnly,omitempty"`
	MinPairs         int     `json:"minPairs,omitempty"`
}

// hasLegacyOptions reports whether any legacy mining-parameter field is set.
func (req *MineRequest) hasLegacyOptions() bool {
	return req.Threshold != 0 || req.MinPeriod != 0 || req.MaxPeriod != 0 || //opvet:ignore floatcmp zero means unset
		req.MaxPatternPeriod != 0 || req.MaximalOnly || req.MinPairs != 0 ||
		req.Levels != 0
}

// resolveQuery compiles the request's effective query: the Query string
// when present, the server's default query when the request carries no
// parameters at all, or a Spec built from the legacy option fields. This is
// the collapse point for what used to be two hand-rolled option paths —
// every /v1/mine and /v1/candidates request now passes the single query
// validator exactly once. On failure it has written the 400.
func (s *Server) resolveQuery(w http.ResponseWriter, req *MineRequest) (*periodica.Query, bool) {
	src := req.Query
	if src != "" && req.hasLegacyOptions() {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "set either query or the option fields (threshold, minPeriod, …, levels), not both"})
		return nil, false
	}
	if src == "" && !req.hasLegacyOptions() && s.cfg.DefaultQuery != "" {
		src = s.cfg.DefaultQuery
	}
	if src == "" {
		spec := query.Spec{
			Threshold: req.Threshold, MinPeriod: req.MinPeriod, MaxPeriod: req.MaxPeriod,
			MaxPatternPeriod: req.MaxPatternPeriod, MaximalOnly: req.MaximalOnly,
			MinPairs: req.MinPairs, Levels: req.Levels,
		}
		if err := spec.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("invalid options: %v", err)})
			return nil, false
		}
		src = spec.Render()
	}
	q, err := periodica.CompileQuery(src)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return nil, false
	}
	return q, true
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// CandidatesResponse is the body of a successful POST /v1/candidates.
type CandidatesResponse struct {
	Threshold float64 `json:"threshold"`
	Periods   []int   `json:"periods"`
}

// statusRecorder captures the response status and size for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the observability layer: request IDs,
// in-flight gauge, per-endpoint counters and latency histograms, and one
// structured access-log line per request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = s.newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		s.metrics.InFlight().Inc()
		defer s.metrics.InFlight().Dec()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		elapsed := time.Since(start)
		ep.ObserveRequest(sr.status, elapsed)
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sr.status,
			"bytes", sr.bytes,
			"duration", elapsed,
			"remote", r.RemoteAddr,
		)
	}
}

// newRequestID returns 16 hex chars of crypto randomness, falling back to a
// process-local sequence number if the system entropy source fails.
func (s *Server) newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%d", s.reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// allowReadOnly gates a handler to GET and HEAD, answering 405 otherwise.
func allowReadOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET or HEAD required"})
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !allowReadOnly(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !allowReadOnly(w, r) {
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", strconv.FormatInt(max(s.drainSecs.Load(), 1), 10))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowReadOnly(w, r) {
		return
	}
	s.metrics.Handler().ServeHTTP(w, r)
}

// admit reserves an admission slot, or sheds the request with 429. The
// returned release must be called when mining finishes. Admission wraps only
// the mining call, not the body read: a slow client trickling its upload
// must not hold a mining slot.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.gate.TryAcquire() {
		return s.gate.Release, true
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeJSON(w, http.StatusTooManyRequests,
		ErrorResponse{Error: "server is at its mining concurrency limit; retry later"})
	return nil, false
}

// retryAfterSeconds estimates when an admission slot will free: the mean
// mine duration observed so far across all endpoints, scaled by how full
// the gate is, rounded up to whole seconds and clamped to [1, 60]. Before
// any mine has completed, the estimate is one second.
func (s *Server) retryAfterSeconds() int {
	mean := time.Second
	if count, sum := s.metrics.MineDurations(); count > 0 {
		mean = sum / time.Duration(count)
	}
	est := mean * time.Duration(s.gate.InUse()) / time.Duration(s.gate.Capacity())
	secs := int((est + time.Second - 1) / time.Second)
	return min(max(secs, 1), 60)
}

// requestContext derives the mining context from the client's: it is
// cancelled when the client disconnects and, unless disabled, bounded by
// the configured per-request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout < 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// writeMineError maps a mining failure to the status its cause deserves:
// client disconnect → 499, deadline → 504, invalid input → 400, anything
// else → 500 with the detail kept out of the response.
func (s *Server) writeMineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		writeJSON(w, StatusClientClosedRequest, ErrorResponse{Error: "client closed request"})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
			Error: fmt.Sprintf("mining exceeded the %v request deadline", s.cfg.RequestTimeout)})
	case errors.Is(err, periodica.ErrInvalidInput):
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	default:
		s.log.Error("internal mining error", "path", r.URL.Path, "err", err)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "internal error"})
	}
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	q, ok := s.resolveQuery(w, &req)
	if !ok {
		return
	}
	series, ok := s.buildSeries(w, &req, q)
	if !ok {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	var (
		res *periodica.Result
		err error
	)
	if s.cfg.Distributor != nil {
		res, err = s.cfg.Distributor.Mine(ctx, series, q.Options())
		if err == nil {
			res, err = q.Shape(series, res)
		}
	} else {
		res, err = periodica.MineQueryContext(ctx, series, q)
	}
	s.metrics.Endpoint("/v1/mine").ObserveMine(time.Since(start))
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	q, ok := s.resolveQuery(w, &req)
	if !ok {
		return
	}
	series, ok := s.buildSeries(w, &req, q)
	if !ok {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	periods, err := periodica.CandidatePeriodsQueryContext(ctx, series, q)
	s.metrics.Endpoint("/v1/candidates").ObserveMine(time.Since(start))
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, CandidatesResponse{Threshold: q.Options().Threshold, Periods: periods})
}

// decodeRequest parses a /v1/mine or /v1/candidates body; on failure it has
// already written the error response.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (MineRequest, bool) {
	var req MineRequest
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return req, false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return req, false
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return req, false
	}
	return req, true
}

// buildSeries constructs the input series: symbols verbatim, values through
// the resolved query's discretization clauses (which subsume the legacy
// levels field — resolveQuery folded it into the query). On failure it has
// already written the error response.
func (s *Server) buildSeries(w http.ResponseWriter, req *MineRequest, q *periodica.Query) (*periodica.Series, bool) {
	var (
		series *periodica.Series
		err    error
	)
	switch {
	case req.Symbols != "" && req.Values != nil:
		err = fmt.Errorf("set either symbols or values, not both")
	case req.Symbols != "":
		series, err = periodica.NewSeriesFromString(req.Symbols)
	case req.Values != nil:
		if len(req.Values) == 0 {
			err = fmt.Errorf("values must not be empty")
			break
		}
		series, err = q.DiscretizeValues(req.Values)
	default:
		err = fmt.Errorf("symbols or values required")
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return nil, false
	}
	return series, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
