// Package httpapi exposes the miner as a small JSON-over-HTTP service: a
// time-series database component would deploy this next to its storage
// layer. Stateless by design — every request carries its series (symbols or
// raw numeric values) and its mining parameters.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"periodica"
)

// MaxBodyBytes caps request bodies (64 MiB).
const MaxBodyBytes = 64 << 20

// MineRequest is the body of POST /v1/mine and POST /v1/candidates. Exactly
// one of Symbols and Values must be set.
type MineRequest struct {
	// Symbols is a string of single-rune symbols.
	Symbols string `json:"symbols,omitempty"`
	// Values are raw numeric readings, discretized into Levels equal-width
	// levels (default 5).
	Values []float64 `json:"values,omitempty"`
	Levels int       `json:"levels,omitempty"`

	Threshold        float64 `json:"threshold"`
	MinPeriod        int     `json:"minPeriod,omitempty"`
	MaxPeriod        int     `json:"maxPeriod,omitempty"`
	MaxPatternPeriod int     `json:"maxPatternPeriod,omitempty"`
	MaximalOnly      bool    `json:"maximalOnly,omitempty"`
	MinPairs         int     `json:"minPairs,omitempty"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// CandidatesResponse is the body of a successful POST /v1/candidates.
type CandidatesResponse struct {
	Threshold float64 `json:"threshold"`
	Periods   []int   `json:"periods"`
}

// Handler returns the service's HTTP handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/v1/mine", handleMine)
	mux.HandleFunc("/v1/candidates", handleCandidates)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleMine(w http.ResponseWriter, r *http.Request) {
	req, s, ok := decodeSeries(w, r)
	if !ok {
		return
	}
	res, err := periodica.Mine(s, periodica.Options{
		Threshold: req.Threshold, MinPeriod: req.MinPeriod, MaxPeriod: req.MaxPeriod,
		MaxPatternPeriod: req.MaxPatternPeriod, MaximalOnly: req.MaximalOnly,
		MinPairs: req.MinPairs,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func handleCandidates(w http.ResponseWriter, r *http.Request) {
	req, s, ok := decodeSeries(w, r)
	if !ok {
		return
	}
	periods, err := periodica.CandidatePeriods(s, req.Threshold, req.MaxPeriod)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, CandidatesResponse{Threshold: req.Threshold, Periods: periods})
}

// decodeSeries parses the request and builds the series; on failure it has
// already written the error response.
func decodeSeries(w http.ResponseWriter, r *http.Request) (MineRequest, *periodica.Series, bool) {
	var req MineRequest
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return req, nil, false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return req, nil, false
	}
	var (
		s   *periodica.Series
		err error
	)
	switch {
	case req.Symbols != "" && req.Values != nil:
		err = fmt.Errorf("set either symbols or values, not both")
	case req.Symbols != "":
		s, err = periodica.NewSeriesFromString(req.Symbols)
	case req.Values != nil:
		levels := req.Levels
		if levels == 0 {
			levels = 5
		}
		s, err = periodica.DiscretizeEqualWidth(req.Values, levels)
	default:
		err = fmt.Errorf("symbols or values required")
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return req, nil, false
	}
	return req, s, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
