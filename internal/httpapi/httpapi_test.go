package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"periodica"
)

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
}

func TestMineSymbols(t *testing.T) {
	rec := post(t, Handler(), "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res periodica.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	foundAB := false
	for _, pt := range res.Patterns {
		if pt.Text == "ab*" {
			foundAB = true
		}
	}
	if !foundAB {
		t.Fatalf("pattern ab* missing from service result: %+v", res.Patterns)
	}
}

func TestMineValues(t *testing.T) {
	rec := post(t, Handler(), "/v1/mine",
		`{"values":[1,5,9,1,5,9,1,5,9,1,5,9],"levels":3,"threshold":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res periodica.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 3 {
		t.Fatalf("periods %v, want leading 3", res.Periods)
	}
}

func TestCandidates(t *testing.T) {
	rec := post(t, Handler(), "/v1/candidates",
		`{"symbols":"`+strings.Repeat("abcd", 50)+`","threshold":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res CandidatesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	has4 := false
	for _, p := range res.Periods {
		if p == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Fatalf("period 4 missing: %v", res.Periods)
	}
}

func TestBadRequests(t *testing.T) {
	h := Handler()
	cases := map[string]string{
		"neither symbols nor values": `{"threshold":0.5}`,
		"both symbols and values":    `{"symbols":"ab","values":[1],"threshold":0.5}`,
		"bad threshold":              `{"symbols":"abab","threshold":0}`,
		"invalid json":               `{`,
		"unknown field":              `{"symbols":"abab","threshold":0.5,"bogus":1}`,
		"constant values":            `{"values":[2,2,2,2],"threshold":0.5}`,
	}
	for name, body := range cases {
		rec := post(t, h, "/v1/mine", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error envelope missing: %s", name, rec.Body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/mine", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

func TestCandidatesBadMaxPeriod(t *testing.T) {
	rec := post(t, Handler(), "/v1/candidates", `{"symbols":"abab","threshold":0.5,"maxPeriod":100}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}
