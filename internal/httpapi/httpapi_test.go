package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"periodica"
)

// quiet returns a server with the given config and a discarded access log.
func quiet(cfg Config) *Server {
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return New(cfg)
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// largeSeriesBody builds a mine request over a large pseudo-random series:
// mining it takes far longer than the cancellation bounds under test.
func largeSeriesBody(n int) string {
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + rng.Intn(8)))
	}
	return fmt.Sprintf(`{"symbols":%q,"threshold":0.05}`, b.String())
}

func TestHealthz(t *testing.T) {
	rec := httptest.NewRecorder()
	quiet(Config{}).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
}

func TestMineSymbols(t *testing.T) {
	rec := post(t, quiet(Config{}), "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res periodica.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	foundAB := false
	for _, pt := range res.Patterns {
		if pt.Text == "ab*" {
			foundAB = true
		}
	}
	if !foundAB {
		t.Fatalf("pattern ab* missing from service result: %+v", res.Patterns)
	}
}

func TestMineValues(t *testing.T) {
	rec := post(t, quiet(Config{}), "/v1/mine",
		`{"values":[1,5,9,1,5,9,1,5,9,1,5,9],"levels":3,"threshold":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res periodica.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 3 {
		t.Fatalf("periods %v, want leading 3", res.Periods)
	}
}

func TestCandidates(t *testing.T) {
	rec := post(t, quiet(Config{}), "/v1/candidates",
		`{"symbols":"`+strings.Repeat("abcd", 50)+`","threshold":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res CandidatesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	has4 := false
	for _, p := range res.Periods {
		if p == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Fatalf("period 4 missing: %v", res.Periods)
	}
}

func TestBadRequests(t *testing.T) {
	h := quiet(Config{})
	cases := map[string]string{
		"neither symbols nor values": `{"threshold":0.5}`,
		"both symbols and values":    `{"symbols":"ab","values":[1],"threshold":0.5}`,
		"bad threshold":              `{"symbols":"abab","threshold":0}`,
		"invalid json":               `{`,
		"unknown field":              `{"symbols":"abab","threshold":0.5,"bogus":1}`,
		"constant values":            `{"values":[2,2,2,2],"threshold":0.5}`,
		"negative levels":            `{"values":[1,2,3,4],"levels":-3,"threshold":0.5}`,
		"explicit empty values":      `{"values":[],"threshold":0.5}`,
	}
	for name, body := range cases {
		rec := post(t, h, "/v1/mine", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error envelope missing: %s", name, rec.Body)
		}
	}
}

func TestValidationErrorMessages(t *testing.T) {
	h := quiet(Config{})
	rec := post(t, h, "/v1/mine", `{"values":[1,2,3,4],"levels":-3,"threshold":0.5}`)
	if !strings.Contains(rec.Body.String(), "levels must be non-negative") {
		t.Errorf("negative levels: unhelpful message %s", rec.Body)
	}
	rec = post(t, h, "/v1/mine", `{"values":[],"threshold":0.5}`)
	if !strings.Contains(rec.Body.String(), "values must not be empty") {
		t.Errorf("empty values: unhelpful message %s", rec.Body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	quiet(Config{}).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/mine", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

func TestReadOnlyEndpointsRejectWrites(t *testing.T) {
	h := quiet(Config{})
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader("{}")))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow = %q", method, path, allow)
			}
		}
		for _, method := range []string{http.MethodGet, http.MethodHead} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusOK {
				t.Errorf("%s %s: status %d, want 200", method, path, rec.Code)
			}
		}
	}
}

func TestCandidatesBadMaxPeriod(t *testing.T) {
	rec := post(t, quiet(Config{}), "/v1/candidates", `{"symbols":"abab","threshold":0.5,"maxPeriod":100}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

func TestRequestEntityTooLarge(t *testing.T) {
	s := quiet(Config{MaxBodyBytes: 64})
	rec := post(t, s, "/v1/mine", `{"symbols":"`+strings.Repeat("ab", 200)+`","threshold":0.5}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "64-byte limit") {
		t.Fatalf("unhelpful message: %s", rec.Body)
	}
}

func TestAdmissionControl(t *testing.T) {
	s := quiet(Config{MaxConcurrency: 1})
	if !s.gate.TryAcquire() { // occupy the only mining slot
		t.Fatal("fresh gate refused its first slot")
	}
	rec := post(t, s, "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	s.gate.Release() // free the slot; the same request must now succeed
	rec = post(t, s, "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: status %d: %s", rec.Code, rec.Body)
	}
	// Cheap endpoints are never shed.
	if !s.gate.TryAcquire() {
		t.Fatal("released gate refused a slot")
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz under load: status %d", rec.Code)
	}
	s.gate.Release()
}

func TestRequestTimeout504(t *testing.T) {
	s := quiet(Config{RequestTimeout: time.Millisecond})
	rec := post(t, s, "/v1/mine", largeSeriesBody(200000))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String()[:min(200, rec.Body.Len())])
	}
}

func TestClientCancel499(t *testing.T) {
	s := quiet(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/mine",
		strings.NewReader(`{"symbols":"abcabbabcb","threshold":0.66}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499: %s", rec.Code, rec.Body)
	}
	if got := s.Metrics().Endpoint("/v1/mine").Requests("4xx"); got == 0 {
		t.Fatal("499 not recorded in the 4xx class")
	}
}

// TestClientDisconnectStopsMining proves the acceptance property end to end:
// a mid-mine disconnect causes the handler to stop work and return promptly,
// long before the full mine would have completed.
func TestClientDisconnectStopsMining(t *testing.T) {
	s := quiet(Config{})
	body := largeSeriesBody(400000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/mine", strings.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		done <- rec.Code
	}()
	time.Sleep(100 * time.Millisecond) // let the mine get going
	cancel()                           // client disconnects
	start := time.Now()
	select {
	case code := <-done:
		if code != StatusClientClosedRequest {
			t.Fatalf("status %d, want 499", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler still mining 5s after client disconnect")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("handler took %v to notice the disconnect", elapsed)
	}
}

func TestWriteMineErrorMapping(t *testing.T) {
	s := quiet(Config{})
	cases := []struct {
		err  error
		want int
	}{
		{context.Canceled, StatusClientClosedRequest},
		{fmt.Errorf("mine: %w", context.Canceled), StatusClientClosedRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{periodica.ErrInvalidInput, http.StatusBadRequest},
		{fmt.Errorf("wrapped: %w", periodica.ErrInvalidInput), http.StatusBadRequest},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.writeMineError(rec, httptest.NewRequest(http.MethodPost, "/v1/mine", nil), c.err)
		if rec.Code != c.want {
			t.Errorf("%v: status %d, want %d", c.err, rec.Code, c.want)
		}
	}
	// Internal details must not leak to the client.
	rec := httptest.NewRecorder()
	s.writeMineError(rec, httptest.NewRequest(http.MethodPost, "/v1/mine", nil), errors.New("disk on fire"))
	if strings.Contains(rec.Body.String(), "disk on fire") {
		t.Fatalf("500 leaked internals: %s", rec.Body)
	}
}

func TestReadyzFlipsDuringDrain(t *testing.T) {
	s := quiet(Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready: status %d", rec.Code)
	}
	s.SetReady(false)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining body %s", rec.Body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := quiet(Config{})
	if rec := post(t, s, "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`); rec.Code != 200 {
		t.Fatalf("mine: %d", rec.Code)
	}
	if rec := post(t, s, "/v1/mine", `{"threshold":0.5}`); rec.Code != 400 {
		t.Fatalf("bad mine: %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	text := rec.Body.String()
	for _, line := range []string{
		`periodica_http_requests_total{endpoint="/v1/mine",class="2xx"} 1`,
		`periodica_http_requests_total{endpoint="/v1/mine",class="4xx"} 1`,
		`periodica_http_in_flight 1`, // the /metrics request itself
		`periodica_mine_duration_seconds_count{endpoint="/v1/mine"} 1`,
		`periodica_http_request_duration_seconds_bucket{endpoint="/v1/mine"`,
		// The exec pipeline behind the mine reports per-stage durations and
		// its queue depth (0 when idle) through the same registry.
		`# TYPE periodica_exec_queue_depth gauge`,
		`periodica_exec_queue_depth 0`,
		`# TYPE periodica_stage_duration_seconds histogram`,
		`periodica_stage_duration_seconds_bucket{stage="detect"`,
		`periodica_stage_duration_seconds_count{stage="sweep"}`,
		`periodica_stage_duration_seconds_count{stage="resolve"}`,
		`periodica_stage_duration_seconds_count{stage="enumerate"}`,
		// The FFT kernel counters render with their full label set (zero or
		// not), plus the autotune calibration metrics — a stable schema
		// whether or not this process has run an FFT or a calibration sweep.
		`# TYPE periodica_fft_kernel_total counter`,
		`periodica_fft_kernel_total{kernel="radix2"}`,
		`periodica_fft_kernel_total{kernel="fourstep"}`,
		`periodica_fft_kernel_total{kernel="real"}`,
		`periodica_fft_kernel_total{kernel="batch"}`,
		`# TYPE periodica_fft_autotune_runs_total counter`,
		`# TYPE periodica_fft_autotune_duration_seconds gauge`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q:\n%s", line, text)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s := quiet(Config{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-chosen-id")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "caller-chosen-id" {
		t.Fatalf("X-Request-Id = %q, want the caller's", got)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if got := rec.Header().Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("generated X-Request-Id = %q, want 16 hex chars", got)
	}
}

func TestAccessLogFields(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := New(Config{Logger: logger})
	rec := post(t, s, "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	line := buf.String()
	for _, field := range []string{"id=", "method=POST", "path=/v1/mine", "status=200", "duration="} {
		if !strings.Contains(line, field) {
			t.Errorf("access log missing %q: %s", field, line)
		}
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	off := quiet(Config{})
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", rec.Code)
	}
	on := quiet(Config{EnablePprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof on: status %d, want 200", rec.Code)
	}
}

// TestGracefulShutdown drives Run end to end: an in-flight request survives
// the drain, /readyz flips to 503 while draining, and Run returns nil.
func TestGracefulShutdown(t *testing.T) {
	s := quiet(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "slow done")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, hs, ln, 10*time.Second) }()

	base := "http://" + ln.Addr().String()
	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			slowDone <- err
			return
		}
		defer func() { _ = resp.Body.Close() }()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK || string(body) != "slow done" {
			slowDone <- fmt.Errorf("slow request: status %d body %q", resp.StatusCode, body)
			return
		}
		slowDone <- nil
	}()

	<-started
	cancel() // begin the drain with the slow request still in flight

	// While draining, readiness must report 503 (existing connections are
	// still served; new ones may be refused, which is also a valid drain
	// behaviour — accept either, but a 200 is a bug).
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener already closed: fine
		}
		code := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		_ = resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if retryAfter == "" {
				t.Fatal("drain 503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz still %d during drain", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request did not complete during drain: %v", err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
}
