package httpapi

// The distributed shard endpoint and its client. A coordinator cuts a mine
// into (symbol × candidate-period) blocks, POSTs each block to a worker's
// /v1/shard, and merges the returned slots; the wire carries integers only
// (F2, Pairs) so the merged result is byte-identical to a single-process
// mine. The handler reuses the same admission gate, request deadline,
// metrics, and error taxonomy as /v1/mine — a worker is just a Server.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"periodica"
	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/query"
	"periodica/internal/series"
)

// Distributor shards a mine across worker nodes. When Config.Distributor is
// set, /v1/mine routes through it instead of mining in-process; the
// implementation lives in internal/dist (the interface is declared here so
// httpapi does not import its own client's consumer).
type Distributor interface {
	Mine(ctx context.Context, s *periodica.Series, opt periodica.Options) (*periodica.Result, error)
}

// ShardRequest is the body of POST /v1/shard: one (symbol × period) block of
// a distributed mine. The alphabet travels explicitly — a discretized series
// may never use some of its levels, so rebuilding the alphabet from the text
// alone would renumber the symbols and corrupt the coordinator's indices.
type ShardRequest struct {
	// ShardID identifies the block within its mine; the response echoes it,
	// which makes hedged duplicate responses safe to deduplicate.
	ShardID int `json:"shardId"`
	// Alphabet lists the symbols in coordinator index order.
	Alphabet []string `json:"alphabet"`
	// Symbols is the full series text; every rune must name an Alphabet
	// symbol.
	Symbols string `json:"symbols"`

	// Query is the mine's compiled pattern query in canonical form
	// (query.Spec.Render). When set it is the authoritative source of the
	// mining parameters — the worker compiles it and overrides only the
	// period band below — so every worker provably runs the same query the
	// coordinator normalized once. The scalar fields remain for wire
	// compatibility with pre-query coordinators and are ignored when Query
	// is present (except the band and symbol range, which are per-shard).
	Query string `json:"query,omitempty"`

	Threshold float64 `json:"threshold"`
	// MinPeriod and MaxPeriod are the shard's candidate-period band,
	// inclusive, already normalized by the coordinator.
	MinPeriod int `json:"minPeriod"`
	MaxPeriod int `json:"maxPeriod"`
	// SymbolLo and SymbolHi restrict the sweep to symbols [lo, hi).
	SymbolLo int `json:"symbolLo"`
	SymbolHi int `json:"symbolHi"`
	MinPairs int `json:"minPairs,omitempty"`
	// Engine is the evaluation strategy by name ("auto", "naive", "bitset",
	// "fft"); empty means auto. Every engine yields identical slot values.
	Engine string `json:"engine,omitempty"`
	// Survivors, when present, are the coordinator's precomputed sweep
	// results for this shard: entry i lists, strictly ascending, the symbols
	// in [SymbolLo, SymbolHi) still viable at period MinPeriod+i. The worker
	// then resolves those cells directly instead of re-running detection over
	// the whole series. Omitted (nil) means the worker detects for itself.
	Survivors [][]int32 `json:"survivors,omitempty"`
}

// ShardSlot is one symbol periodicity on the wire. Integers only: the
// coordinator re-derives each confidence as F2/Pairs, so no float crosses
// the network and no decimal round-trip can perturb the merged result.
type ShardSlot struct {
	Symbol   int `json:"symbol"`
	Period   int `json:"period"`
	Position int `json:"position"`
	F2       int `json:"f2"`
	Pairs    int `json:"pairs"`
}

// ShardResponse is the body of a successful POST /v1/shard. Beyond the
// slots it echoes the request coordinates it answered (shard ID, period
// band, symbol range, alphabet hash) and carries a checksum over the whole
// payload, so a coordinator can tell a corrupted or misrouted reply from a
// genuine one before merging — merging a wrong slot silently changes the
// mine's bytes, which the distributed tier promises never happens.
type ShardResponse struct {
	ShardID int         `json:"shardId"`
	Slots   []ShardSlot `json:"slots"`
	// MinPeriod..SymbolHi echo the request block this response answers.
	MinPeriod int `json:"minPeriod"`
	MaxPeriod int `json:"maxPeriod"`
	SymbolLo  int `json:"symbolLo"`
	SymbolHi  int `json:"symbolHi"`
	// AlphaCRC is AlphabetCRC of the request's alphabet: a response computed
	// against a different symbol numbering must never be merged.
	AlphaCRC uint32 `json:"alphaCrc"`
	// QueryCRC is QueryStringCRC of the request's Query (0 when the request
	// carried none): a response mined under a different query must never be
	// merged, even if its block coordinates line up.
	QueryCRC uint32 `json:"queryCrc,omitempty"`
	// Checksum is ShardChecksum over every other field, computed by the
	// worker and verified by the client. JSON is self-describing enough that
	// truncation breaks decoding, but a bit flip inside a digit is valid
	// JSON; the checksum turns it into a detected integrity failure.
	Checksum uint32 `json:"checksum"`
}

// AlphabetCRC hashes a symbol list order-sensitively (each symbol
// length-prefixed, so ["ab","c"] and ["a","bc"] differ).
func AlphabetCRC(symbols []string) uint32 {
	h := crc32.New(shardCRCTable)
	var pre [8]byte
	for _, s := range symbols {
		binary.LittleEndian.PutUint64(pre[:], uint64(len(s)))
		_, _ = h.Write(pre[:])
		_, _ = h.Write([]byte(s))
	}
	return h.Sum32()
}

var shardCRCTable = crc32.MakeTable(crc32.Castagnoli)

// QueryStringCRC hashes a canonical query string for the QueryCRC echo; the
// empty string hashes to 0 so pre-query requests keep their old checksums.
func QueryStringCRC(query string) uint32 {
	if query == "" {
		return 0
	}
	return crc32.Checksum([]byte(query), shardCRCTable)
}

// ShardChecksum is the CRC-32C of a response's canonical encoding: every
// field except Checksum itself, little-endian, slots in wire order. Both
// sides compute it from their own decoded values, so any field the network
// perturbed — slot integers, echoes, even slot count — mismatches.
func ShardChecksum(resp *ShardResponse) uint32 {
	buf := make([]byte, 0, 56+40*len(resp.Slots))
	put := func(v int) { buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v))) }
	put(resp.ShardID)
	put(resp.MinPeriod)
	put(resp.MaxPeriod)
	put(resp.SymbolLo)
	put(resp.SymbolHi)
	buf = binary.LittleEndian.AppendUint32(buf, resp.AlphaCRC)
	buf = binary.LittleEndian.AppendUint32(buf, resp.QueryCRC)
	put(len(resp.Slots))
	for _, sl := range resp.Slots {
		put(sl.Symbol)
		put(sl.Period)
		put(sl.Position)
		put(sl.F2)
		put(sl.Pairs)
	}
	return crc32.Checksum(buf, shardCRCTable)
}

// shardOptions resolves a shard request to mining options through the query
// layer: a request with a Query compiles it and overrides the per-shard
// period band; a legacy request lifts its scalar fields into a Spec first.
// Either way core.OptionsFromSpec is the one conversion point, so the shard
// wire cannot drift from what the other layers accept.
func shardOptions(req *ShardRequest) (core.Options, error) {
	var sp query.Spec
	if req.Query != "" {
		compiled, err := query.Compile(req.Query)
		if err != nil {
			return core.Options{}, err
		}
		sp = compiled
	} else {
		sp = query.Spec{Threshold: req.Threshold, MinPairs: req.MinPairs, Engine: req.Engine}
	}
	sp.MinPeriod, sp.MaxPeriod = req.MinPeriod, req.MaxPeriod
	return core.OptionsFromSpec(sp)
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return
	}
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	alpha, err := alphabet.New(req.Alphabet...)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	ser, err := series.FromAlphabetText(alpha, req.Symbols)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	opt, err := shardOptions(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	var slots []core.SymbolPeriodicity
	if req.Survivors != nil {
		slots, err = core.MineShardSlotsFromSurvivors(ctx, ser, opt, req.SymbolLo, req.SymbolHi, req.Survivors)
	} else {
		slots, err = core.MineShardSlots(ctx, ser, opt, req.SymbolLo, req.SymbolHi)
	}
	s.metrics.Endpoint("/v1/shard").ObserveMine(time.Since(start))
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	resp := ShardResponse{
		ShardID: req.ShardID, Slots: make([]ShardSlot, 0, len(slots)),
		MinPeriod: req.MinPeriod, MaxPeriod: req.MaxPeriod,
		SymbolLo: req.SymbolLo, SymbolHi: req.SymbolHi,
		AlphaCRC: AlphabetCRC(req.Alphabet),
		QueryCRC: QueryStringCRC(req.Query),
	}
	for _, sp := range slots {
		resp.Slots = append(resp.Slots, ShardSlot{
			Symbol: sp.Symbol, Period: sp.Period, Position: sp.Position,
			F2: sp.F2, Pairs: sp.Pairs,
		})
	}
	resp.Checksum = ShardChecksum(&resp)
	writeJSON(w, http.StatusOK, resp)
}

// ShardClient issues /v1/shard calls against worker base URLs on behalf of
// the coordinator.
type ShardClient struct {
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// WorkerStatusError is a non-200 /v1/shard reply.
type WorkerStatusError struct {
	Worker string
	Status int
	Msg    string
	// RetryAfter is the worker's Retry-After header as a duration (integer
	// seconds, clamped to [1s, 30s]); zero when absent or unparseable. The
	// coordinator uses it as a floor under its own backoff.
	RetryAfter time.Duration
}

func (e *WorkerStatusError) Error() string {
	return fmt.Sprintf("worker %s: status %d: %s", e.Worker, e.Status, e.Msg)
}

// parseRetryAfter reads an integer-seconds Retry-After value. The HTTP-date
// form is ignored — a fault injector or shedding worker sends seconds, and a
// wall-clock comparison would make backoff depend on clock skew.
func parseRetryAfter(header string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || secs <= 0 {
		return 0
	}
	const maxRetryAfter = 30 * time.Second
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// ShardIntegrityError is a /v1/shard reply that arrived but cannot be
// trusted: undecodable body, wrong echo coordinates, or checksum mismatch.
// Always retryable — the worker may answer correctly next time — but counted
// separately from status failures so corruption is visible in metrics.
type ShardIntegrityError struct {
	Worker string
	Detail string
}

func (e *ShardIntegrityError) Error() string {
	return fmt.Sprintf("worker %s: shard integrity: %s", e.Worker, e.Detail)
}

// Retryable reports whether another attempt could succeed: the worker shed
// the request (429) or failed server-side (5xx), as opposed to rejecting the
// request outright (4xx), which every retry would repeat.
func (e *WorkerStatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// MineShard POSTs one shard to a worker and returns its slots. The response
// must echo the request's shard ID.
func (c *ShardClient) MineShard(ctx context.Context, worker string, req *ShardRequest) (*ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }() // response fully read or discarded below
	if resp.StatusCode != http.StatusOK {
		msg := ""
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			var er ErrorResponse
			if json.Unmarshal(b, &er) == nil && er.Error != "" {
				msg = er.Error
			} else {
				msg = strings.TrimSpace(string(b))
			}
		}
		return nil, &WorkerStatusError{
			Worker: worker, Status: resp.StatusCode, Msg: msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	var out ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		// Truncated or mangled beyond JSON: same trust failure as a checksum
		// mismatch, so classify it the same way.
		return nil, &ShardIntegrityError{Worker: worker, Detail: fmt.Sprintf("undecodable response: %v", err)}
	}
	if err := VerifyShardResponse(req, &out); err != nil {
		return nil, &ShardIntegrityError{Worker: worker, Detail: err.Error()}
	}
	return &out, nil
}

// VerifyShardResponse checks a decoded response against the request it
// answers: checksum first (any perturbed field), then the echoes (a
// well-formed response to the wrong question). Exported so double-dispatch
// verification can reuse the exact acceptance rule.
func VerifyShardResponse(req *ShardRequest, resp *ShardResponse) error {
	if got := ShardChecksum(resp); got != resp.Checksum {
		return fmt.Errorf("checksum mismatch: response declares %08x, contents hash to %08x", resp.Checksum, got)
	}
	if resp.ShardID != req.ShardID {
		return fmt.Errorf("shard id mismatch: sent %d, got %d", req.ShardID, resp.ShardID)
	}
	if resp.MinPeriod != req.MinPeriod || resp.MaxPeriod != req.MaxPeriod ||
		resp.SymbolLo != req.SymbolLo || resp.SymbolHi != req.SymbolHi {
		return fmt.Errorf("block echo mismatch: sent periods [%d,%d] symbols [%d,%d), got periods [%d,%d] symbols [%d,%d)",
			req.MinPeriod, req.MaxPeriod, req.SymbolLo, req.SymbolHi,
			resp.MinPeriod, resp.MaxPeriod, resp.SymbolLo, resp.SymbolHi)
	}
	if want := AlphabetCRC(req.Alphabet); resp.AlphaCRC != want {
		return fmt.Errorf("alphabet hash mismatch: request alphabet hashes to %08x, response answered %08x", want, resp.AlphaCRC)
	}
	if want := QueryStringCRC(req.Query); resp.QueryCRC != want {
		return fmt.Errorf("query hash mismatch: request query hashes to %08x, response answered %08x", want, resp.QueryCRC)
	}
	return nil
}
