package httpapi

// The distributed shard endpoint and its client. A coordinator cuts a mine
// into (symbol × candidate-period) blocks, POSTs each block to a worker's
// /v1/shard, and merges the returned slots; the wire carries integers only
// (F2, Pairs) so the merged result is byte-identical to a single-process
// mine. The handler reuses the same admission gate, request deadline,
// metrics, and error taxonomy as /v1/mine — a worker is just a Server.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"periodica"
	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/series"
)

// Distributor shards a mine across worker nodes. When Config.Distributor is
// set, /v1/mine routes through it instead of mining in-process; the
// implementation lives in internal/dist (the interface is declared here so
// httpapi does not import its own client's consumer).
type Distributor interface {
	Mine(ctx context.Context, s *periodica.Series, opt periodica.Options) (*periodica.Result, error)
}

// ShardRequest is the body of POST /v1/shard: one (symbol × period) block of
// a distributed mine. The alphabet travels explicitly — a discretized series
// may never use some of its levels, so rebuilding the alphabet from the text
// alone would renumber the symbols and corrupt the coordinator's indices.
type ShardRequest struct {
	// ShardID identifies the block within its mine; the response echoes it,
	// which makes hedged duplicate responses safe to deduplicate.
	ShardID int `json:"shardId"`
	// Alphabet lists the symbols in coordinator index order.
	Alphabet []string `json:"alphabet"`
	// Symbols is the full series text; every rune must name an Alphabet
	// symbol.
	Symbols string `json:"symbols"`

	Threshold float64 `json:"threshold"`
	// MinPeriod and MaxPeriod are the shard's candidate-period band,
	// inclusive, already normalized by the coordinator.
	MinPeriod int `json:"minPeriod"`
	MaxPeriod int `json:"maxPeriod"`
	// SymbolLo and SymbolHi restrict the sweep to symbols [lo, hi).
	SymbolLo int `json:"symbolLo"`
	SymbolHi int `json:"symbolHi"`
	MinPairs int `json:"minPairs,omitempty"`
	// Engine is the evaluation strategy by name ("auto", "naive", "bitset",
	// "fft"); empty means auto. Every engine yields identical slot values.
	Engine string `json:"engine,omitempty"`
}

// ShardSlot is one symbol periodicity on the wire. Integers only: the
// coordinator re-derives each confidence as F2/Pairs, so no float crosses
// the network and no decimal round-trip can perturb the merged result.
type ShardSlot struct {
	Symbol   int `json:"symbol"`
	Period   int `json:"period"`
	Position int `json:"position"`
	F2       int `json:"f2"`
	Pairs    int `json:"pairs"`
}

// ShardResponse is the body of a successful POST /v1/shard.
type ShardResponse struct {
	ShardID int         `json:"shardId"`
	Slots   []ShardSlot `json:"slots"`
}

// parseEngine maps the wire engine name (core.Engine.String values) back to
// the engine constant; empty means auto.
func parseEngine(name string) (core.Engine, error) {
	switch name {
	case "", "auto":
		return core.EngineAuto, nil
	case "naive":
		return core.EngineNaive, nil
	case "bitset":
		return core.EngineBitset, nil
	case "fft":
		return core.EngineFFT, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return
	}
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	alpha, err := alphabet.New(req.Alphabet...)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	ser, err := series.FromAlphabetText(alpha, req.Symbols)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	eng, err := parseEngine(req.Engine)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	slots, err := core.MineShardSlots(ctx, ser, core.Options{
		Threshold: req.Threshold, MinPeriod: req.MinPeriod, MaxPeriod: req.MaxPeriod,
		MinPairs: req.MinPairs, Engine: eng,
	}, req.SymbolLo, req.SymbolHi)
	s.metrics.Endpoint("/v1/shard").ObserveMine(time.Since(start))
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	resp := ShardResponse{ShardID: req.ShardID, Slots: make([]ShardSlot, 0, len(slots))}
	for _, sp := range slots {
		resp.Slots = append(resp.Slots, ShardSlot{
			Symbol: sp.Symbol, Period: sp.Period, Position: sp.Position,
			F2: sp.F2, Pairs: sp.Pairs,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ShardClient issues /v1/shard calls against worker base URLs on behalf of
// the coordinator.
type ShardClient struct {
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// WorkerStatusError is a non-200 /v1/shard reply.
type WorkerStatusError struct {
	Worker string
	Status int
	Msg    string
}

func (e *WorkerStatusError) Error() string {
	return fmt.Sprintf("worker %s: status %d: %s", e.Worker, e.Status, e.Msg)
}

// Retryable reports whether another attempt could succeed: the worker shed
// the request (429) or failed server-side (5xx), as opposed to rejecting the
// request outright (4xx), which every retry would repeat.
func (e *WorkerStatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// MineShard POSTs one shard to a worker and returns its slots. The response
// must echo the request's shard ID.
func (c *ShardClient) MineShard(ctx context.Context, worker string, req *ShardRequest) (*ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }() // response fully read or discarded below
	if resp.StatusCode != http.StatusOK {
		msg := ""
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			var er ErrorResponse
			if json.Unmarshal(b, &er) == nil && er.Error != "" {
				msg = er.Error
			} else {
				msg = strings.TrimSpace(string(b))
			}
		}
		return nil, &WorkerStatusError{Worker: worker, Status: resp.StatusCode, Msg: msg}
	}
	var out ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("worker %s: bad shard response: %w", worker, err)
	}
	if out.ShardID != req.ShardID {
		return nil, fmt.Errorf("worker %s: shard id mismatch: sent %d, got %d", worker, req.ShardID, out.ShardID)
	}
	return &out, nil
}
