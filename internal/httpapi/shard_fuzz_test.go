package httpapi

// Fuzzing over the /v1/shard wire. The distributed tier's safety claim is
// that no byte stream a network can produce makes the coordinator merge
// wrong slots: the request fuzzer pins the handler against arbitrary bodies,
// and the response fuzzer pins the client's acceptance rule — whatever bytes
// come back, MineShard either rejects them or returns a response that
// verifies against the request.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fuzzWorkerRequest is the fixed request both fuzzers answer for.
var fuzzWorkerRequest = ShardRequest{
	ShardID: 11, Alphabet: []string{"a", "b"}, Symbols: "abababababab",
	Threshold: 0.5, MinPeriod: 1, MaxPeriod: 4, SymbolLo: 0, SymbolHi: 2,
}

// canned returns the fuzzed bytes as a 200 response without a network hop.
type canned struct{ body []byte }

func (c canned) RoundTrip(*http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(bytes.NewReader(c.body)),
	}, nil
}

func FuzzShardRequestDecode(f *testing.F) {
	valid, err := json.Marshal(fuzzWorkerRequest)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"shardId":1,"alphabet":["a"],"symbols":"aaaa","threshold":0.5,"survivors":[[0],[0]]}`))
	f.Add([]byte(`{"alphabet":["a","b"],"symbols":"abab","threshold":0.5,"symbolHi":2,"survivors":[[1,0]]}`))
	f.Add(valid[:len(valid)/3])
	f.Add([]byte(`[`))
	h := quiet(Config{})
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/shard", bytes.NewReader(body))
		h.ServeHTTP(rec, req) // must not panic
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d for fuzzed request body", rec.Code)
		}
		if rec.Code != http.StatusOK {
			return
		}
		// Anything the worker accepted it must also have answered verifiably.
		var resp ShardResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("200 with undecodable body: %v", err)
		}
		if got := ShardChecksum(&resp); got != resp.Checksum {
			t.Fatalf("200 response fails its own checksum: declared %08x, computed %08x", resp.Checksum, got)
		}
	})
}

func FuzzShardSlotDecode(f *testing.F) {
	worker := httptest.NewServer(quiet(Config{}))
	defer worker.Close()
	var c ShardClient
	good, err := c.MineShard(context.Background(), worker.URL, &fuzzWorkerRequest)
	if err != nil {
		f.Fatal(err)
	}
	pristine, err := json.Marshal(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	f.Add(pristine[:len(pristine)-2])
	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte(`{"shardId":11,"slots":[]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		c := ShardClient{HTTP: &http.Client{Transport: canned{body: body}}}
		resp, err := c.MineShard(context.Background(), "http://worker", &fuzzWorkerRequest)
		if err != nil {
			return // rejected: the safe outcome for arbitrary bytes
		}
		// Accepted: the bytes must re-verify against the request — there is
		// no third outcome between "rejected" and "proven intact". (The CRC
		// is not a MAC: it detects transit damage, not a byzantine worker,
		// so in-block slot ranges are re-validated at assembly instead.)
		if verr := VerifyShardResponse(&fuzzWorkerRequest, resp); verr != nil {
			t.Fatalf("MineShard accepted a response that fails verification: %v", verr)
		}
	})
}
