package httpapi

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMineQueryRequest: a query-driven request must produce the exact bytes
// of its legacy-field spelling — resolveQuery collapses both onto one Spec.
func TestMineQueryRequest(t *testing.T) {
	h := quiet(Config{})
	legacy := post(t, h, "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	if legacy.Code != 200 {
		t.Fatalf("legacy status %d: %s", legacy.Code, legacy.Body)
	}
	query := post(t, h, "/v1/mine", `{"symbols":"abcabbabcb","query":"conf >= 0.66"}`)
	if query.Code != 200 {
		t.Fatalf("query status %d: %s", query.Code, query.Body)
	}
	if legacy.Body.String() != query.Body.String() {
		t.Errorf("query-driven body differs from legacy-field body:\n%s\nvs\n%s", query.Body, legacy.Body)
	}
}

// TestMineQueryLevels: the levels clause discretizes a values request just
// like the legacy levels field.
func TestMineQueryLevels(t *testing.T) {
	h := quiet(Config{})
	legacy := post(t, h, "/v1/mine", `{"values":[1,5,9,1,5,9,1,5,9,1,5,9],"levels":3,"threshold":1}`)
	query := post(t, h, "/v1/mine", `{"values":[1,5,9,1,5,9,1,5,9,1,5,9],"query":"conf >= 1 and levels 3"}`)
	if legacy.Code != 200 || query.Code != 200 {
		t.Fatalf("status %d / %d: %s %s", legacy.Code, query.Code, legacy.Body, query.Body)
	}
	if legacy.Body.String() != query.Body.String() {
		t.Errorf("levels clause result differs from legacy levels field:\n%s\nvs\n%s", query.Body, legacy.Body)
	}
}

// TestMineQueryConflict: mixing the query string with legacy option fields
// has no sane precedence rule, so it is a 400.
func TestMineQueryConflict(t *testing.T) {
	rec := post(t, quiet(Config{}), "/v1/mine",
		`{"symbols":"abcabbabcb","query":"conf >= 0.66","threshold":0.5}`)
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "not both") {
		t.Errorf("conflict message unhelpful: %s", rec.Body)
	}
}

// TestMineBadQuery: compile errors surface as a 400 with the compiler's
// positioned message in the error envelope.
func TestMineBadQuery(t *testing.T) {
	h := quiet(Config{})
	for _, body := range []string{
		`{"symbols":"abab","query":"conf >="}`,
		`{"symbols":"abab","query":"conf >= 2"}`,
		`{"symbols":"abab","query":"bogus 1"}`,
	} {
		rec := post(t, h, "/v1/mine", body)
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", body, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error envelope missing: %s", body, rec.Body)
		}
	}
}

// TestDefaultQueryApplied: a request with no mining parameters inherits the
// server's default query; any explicit parameter — query or legacy field —
// overrides it entirely.
func TestDefaultQueryApplied(t *testing.T) {
	withDefault := quiet(Config{DefaultQuery: "conf >= 0.66"})
	explicit := post(t, quiet(Config{}), "/v1/mine", `{"symbols":"abcabbabcb","threshold":0.66}`)
	bare := post(t, withDefault, "/v1/mine", `{"symbols":"abcabbabcb"}`)
	if bare.Code != 200 {
		t.Fatalf("bare request status %d: %s", bare.Code, bare.Body)
	}
	if bare.Body.String() != explicit.Body.String() {
		t.Errorf("default query result differs from its explicit spelling:\n%s\nvs\n%s", bare.Body, explicit.Body)
	}

	// A legacy threshold must win over the default query, not merge with it.
	strict := post(t, withDefault, "/v1/mine", `{"symbols":"abcabbabcb","threshold":1}`)
	strictDirect := post(t, quiet(Config{}), "/v1/mine", `{"symbols":"abcabbabcb","threshold":1}`)
	if strict.Code != 200 || strict.Body.String() != strictDirect.Body.String() {
		t.Errorf("legacy fields did not override the default query: %s", strict.Body)
	}

	// Without a default, a parameterless request is still an error (the
	// compiled query would be empty).
	none := post(t, quiet(Config{}), "/v1/mine", `{"symbols":"abcabbabcb"}`)
	if none.Code != 400 {
		t.Errorf("parameterless request without a default: status %d, want 400: %s", none.Code, none.Body)
	}
}

// TestCandidatesQueryRequest: /v1/candidates accepts the same query field
// and echoes the query's threshold.
func TestCandidatesQueryRequest(t *testing.T) {
	rec := post(t, quiet(Config{}), "/v1/candidates",
		`{"symbols":"`+strings.Repeat("abcd", 50)+`","query":"conf >= 1"}`)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res CandidatesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Threshold != 1 {
		t.Errorf("threshold echo %v, want 1", res.Threshold)
	}
	has4 := false
	for _, p := range res.Periods {
		if p == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Errorf("period 4 missing: %v", res.Periods)
	}
}

// TestResolveQueryGoldenLegacyFields pins the canonical query each legacy
// MineRequest field lifts to — the wire-level counterpart of the public
// Options golden table.
func TestResolveQueryGoldenLegacyFields(t *testing.T) {
	s := quiet(Config{})
	cases := []struct {
		name string
		req  MineRequest
		want string
	}{
		{"threshold", MineRequest{Threshold: 0.8}, "conf >= 0.8"},
		{"minPeriod", MineRequest{Threshold: 0.5, MinPeriod: 4}, "conf >= 0.5 and period >= 4"},
		{"maxPeriod", MineRequest{Threshold: 0.5, MaxPeriod: 64}, "conf >= 0.5 and period <= 64"},
		{"range", MineRequest{Threshold: 0.5, MinPeriod: 2, MaxPeriod: 512}, "conf >= 0.5 and period in 2..512"},
		{"minPairs", MineRequest{Threshold: 0.5, MinPairs: 3}, "conf >= 0.5 and pairs >= 3"},
		{"maximalOnly", MineRequest{Threshold: 0.5, MaximalOnly: true}, "conf >= 0.5 and maximal only"},
		{"maxPatternPeriod", MineRequest{Threshold: 0.5, MaxPatternPeriod: 21}, "conf >= 0.5 and pattern period <= 21"},
		{"levels", MineRequest{Threshold: 0.5, Levels: 3}, "conf >= 0.5 and levels 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			q, ok := s.resolveQuery(rec, &tc.req)
			if !ok {
				t.Fatalf("resolveQuery failed: %s", rec.Body)
			}
			if got := q.String(); got != tc.want {
				t.Errorf("legacy fields %+v lift to %q, want %q", tc.req, got, tc.want)
			}
		})
	}
}
