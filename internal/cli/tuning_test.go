package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"periodica"
	"periodica/internal/fft"
)

func TestBootstrapTuningEnvMissingFileIsAdvisory(t *testing.T) {
	t.Cleanup(periodica.ResetTuning)
	t.Setenv(periodica.TuneFileEnv, filepath.Join(t.TempDir(), "nope.json"))
	var warned string
	if err := BootstrapTuning(0, "", func(msg string) { warned = msg }); err != nil {
		t.Fatalf("missing env profile became an error: %v", err)
	}
	if !strings.Contains(warned, "pinned defaults") {
		t.Fatalf("warning %q does not explain the fallback", warned)
	}
	if fft.Tuned() != nil {
		t.Fatal("a profile is applied after a failed env load")
	}
}

func TestBootstrapTuningEnvGarbageIsAdvisory(t *testing.T) {
	t.Cleanup(periodica.ResetTuning)
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(periodica.TuneFileEnv, path)
	warned := false
	if err := BootstrapTuning(0, "", func(string) { warned = true }); err != nil {
		t.Fatalf("unparseable env profile became an error: %v", err)
	}
	if !warned {
		t.Fatal("no warning for an unparseable env profile")
	}
}

func TestBootstrapTuningExplicitFileIsRequired(t *testing.T) {
	t.Cleanup(periodica.ResetTuning)
	err := BootstrapTuning(0, filepath.Join(t.TempDir(), "nope.json"), func(msg string) {
		t.Errorf("explicit -tune failure downgraded to warning: %s", msg)
	})
	if err == nil {
		t.Fatal("missing explicit profile did not error")
	}
}

func TestBootstrapTuningEnvValidProfileApplies(t *testing.T) {
	t.Cleanup(periodica.ResetTuning)
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := periodica.AutotuneToFile(time.Millisecond, path); err != nil {
		t.Fatal(err)
	}
	periodica.ResetTuning()
	t.Setenv(periodica.TuneFileEnv, path)
	if err := BootstrapTuning(0, "", func(msg string) { t.Errorf("unexpected warning: %s", msg) }); err != nil {
		t.Fatal(err)
	}
	if fft.Tuned() == nil {
		t.Fatal("valid env profile was not applied")
	}
}
