// Package cli holds bootstrap logic shared by the periodica commands.
package cli

import (
	"fmt"
	"time"

	"periodica"
)

// BootstrapTuning applies convolution tuning before a command starts mining.
// Precedence: autotune-and-save, autotune, explicit profile file, then the
// PERIODICA_TUNE_FILE environment variable.
//
// The explicit flags are hard requirements — a bad path or profile is an
// error the caller should exit on. The environment profile is advisory: a
// missing or unparseable file emits one warning through warn and the process
// continues on the pinned defaults (after a reset, so nothing partially
// applied lingers). Tuning only moves work between byte-identical kernels,
// so serving degraded beats having a fleet-wide env push with a stale path
// take every replica down.
func BootstrapTuning(autotune time.Duration, tuneFile string, warn func(msg string)) error {
	switch {
	case autotune > 0 && tuneFile != "":
		return periodica.AutotuneToFile(autotune, tuneFile)
	case autotune > 0:
		periodica.Autotune(autotune)
	case tuneFile != "":
		return periodica.LoadTuneFile(tuneFile)
	default:
		if _, err := periodica.LoadTuneFromEnv(); err != nil {
			periodica.ResetTuning()
			warn(fmt.Sprintf("%s: %v; continuing with pinned defaults", periodica.TuneFileEnv, err))
		}
	}
	return nil
}
