package series

import (
	"math/rand"
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
)

func TestFromStringRunningExample(t *testing.T) {
	s := FromString("abcabbabcb")
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if s.Alphabet().Size() != 3 {
		t.Fatalf("σ = %d, want 3", s.Alphabet().Size())
	}
	if s.String() != "abcabbabcb" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestProjectionPaperExamples(t *testing.T) {
	// π_{4,1}(abcabbabcb) = bbb, π_{3,0} = aaab (paper §2.2).
	s := FromString("abcabbabcb")
	b, _ := s.Alphabet().Index("b")
	a, _ := s.Alphabet().Index("a")
	p41 := s.Projection(4, 1)
	if len(p41) != 3 || p41[0] != b || p41[1] != b || p41[2] != b {
		t.Fatalf("π_{4,1} = %v, want [b b b]", p41)
	}
	p30 := s.Projection(3, 0)
	want := []int{a, a, a, b}
	if len(p30) != 4 {
		t.Fatalf("π_{3,0} length %d, want 4", len(p30))
	}
	for i := range want {
		if p30[i] != want[i] {
			t.Fatalf("π_{3,0} = %v, want %v", p30, want)
		}
	}
}

func TestProjectionLen(t *testing.T) {
	s := FromString("abcabbabcb")
	if got := s.ProjectionLen(3, 0); got != 4 {
		t.Fatalf("ProjectionLen(3,0) = %d, want 4", got)
	}
	if got := s.ProjectionLen(3, 1); got != 3 {
		t.Fatalf("ProjectionLen(3,1) = %d, want 3", got)
	}
	if got := s.ProjectionLen(4, 1); got != 3 {
		t.Fatalf("ProjectionLen(4,1) = %d, want 3", got)
	}
}

func TestF2StringPaperExample(t *testing.T) {
	// T = abbaaabaa: F2(a,T) = 3, F2(b,T) = 1 (paper §2.2).
	s := FromString("abbaaabaa")
	a, _ := s.Alphabet().Index("a")
	b, _ := s.Alphabet().Index("b")
	seq := make([]int, s.Len())
	for i := range seq {
		seq[i] = s.At(i)
	}
	if got := F2String(seq, a); got != 3 {
		t.Fatalf("F2(a, abbaaabaa) = %d, want 3", got)
	}
	if got := F2String(seq, b); got != 1 {
		t.Fatalf("F2(b, abbaaabaa) = %d, want 1", got)
	}
}

func TestF2PaperExample(t *testing.T) {
	// F2(a, π_{3,0}(abcabbabcb)) = 2 with denominator ⌈10/3⌉−1 = 3 → 2/3.
	s := FromString("abcabbabcb")
	a, _ := s.Alphabet().Index("a")
	b, _ := s.Alphabet().Index("b")
	if got := s.F2(a, 3, 0); got != 2 {
		t.Fatalf("F2(a,3,0) = %d, want 2", got)
	}
	if got := s.F2(b, 3, 1); got != 2 {
		t.Fatalf("F2(b,3,1) = %d, want 2", got)
	}
	if got := s.F2(b, 4, 1); got != 2 {
		t.Fatalf("F2(b,4,1) = %d, want 2", got)
	}
}

func TestF2EqualsF2StringOnProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alpha := alphabet.Letters(4)
	idx := make([]uint16, 200)
	for i := range idx {
		idx[i] = uint16(rng.Intn(4))
	}
	s := FromIndices(alpha, idx)
	for p := 1; p <= 10; p++ {
		for l := 0; l < p; l++ {
			for k := 0; k < 4; k++ {
				if got, want := s.F2(k, p, l), F2String(s.Projection(p, l), k); got != want {
					t.Fatalf("F2(%d,%d,%d) = %d, want %d", k, p, l, got, want)
				}
			}
		}
	}
}

func TestMatchCount(t *testing.T) {
	// abcabbabcb vs shift 3: matches at i = 0,1,3,4 (paper: four matches).
	s := FromString("abcabbabcb")
	if got := s.MatchCount(3); got != 4 {
		t.Fatalf("MatchCount(3) = %d, want 4", got)
	}
}

func TestNewValidates(t *testing.T) {
	alpha := alphabet.Letters(3)
	if _, err := New(alpha, []int{0, 3}); err == nil {
		t.Fatal("New with out-of-range index: want error")
	}
	s, err := New(alpha, []int{0, 1, 2, 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.String() != "abcb" {
		t.Fatalf("String = %q, want abcb", s.String())
	}
}

func TestFromIndicesPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromIndices with bad index: want panic")
		}
	}()
	FromIndices(alphabet.Letters(2), []uint16{0, 5})
}

func TestIndicator(t *testing.T) {
	s := FromString("abab")
	a, _ := s.Alphabet().Index("a")
	ind := s.Indicator(a)
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if ind[i] != want[i] {
			t.Fatalf("Indicator(a) = %v, want %v", ind, want)
		}
	}
}

func TestCounts(t *testing.T) {
	s := FromString("abcabbabcb")
	got := s.Counts()
	want := []int{3, 5, 2} // a, b, c
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", got, want)
		}
	}
}

func TestSlice(t *testing.T) {
	s := FromString("abcabbabcb")
	sub := s.Slice(3, 6)
	if sub.String() != "abb" {
		t.Fatalf("Slice(3,6) = %q, want abb", sub.String())
	}
	if sub.Alphabet() != s.Alphabet() {
		t.Fatal("Slice changed alphabet")
	}
}

func TestProjectionInvalidPanics(t *testing.T) {
	s := FromString("abc")
	for _, c := range [][2]int{{0, 0}, {3, 3}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Projection(%d,%d): want panic", c[0], c[1])
				}
			}()
			s.Projection(c[0], c[1])
		}()
	}
}

func TestF2SumOverPhasesEqualsMatchCountProperty(t *testing.T) {
	// Σ_k Σ_l F2(k,p,l) must equal MatchCount(p) for every p.
	f := func(seed int64, ln uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(ln)%100 + 2
		p := int(pRaw)%(n-1) + 1
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(3))
		}
		s := FromIndices(alphabet.Letters(3), idx)
		sum := 0
		for k := 0; k < 3; k++ {
			for l := 0; l < p; l++ {
				sum += s.F2(k, p, l)
			}
		}
		return sum == s.MatchCount(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
