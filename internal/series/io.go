package series

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"periodica/internal/alphabet"
)

// ReadText parses a series of single-rune symbols from r, skipping
// whitespace; the alphabet is derived from the distinct runes in sorted
// order.
func ReadText(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	var b strings.Builder
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if !unicode.IsSpace(ch) {
			b.WriteRune(ch)
		}
	}
	if b.Len() == 0 {
		return nil, fmt.Errorf("series: empty input")
	}
	return FromString(b.String()), nil
}

// WriteText writes the series as one line of concatenated symbols.
func WriteText(w io.Writer, s *Series) error {
	bw := bufio.NewWriter(w)
	for _, k := range s.data {
		if _, err := bw.WriteString(s.alpha.Symbol(int(k))); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadValues parses numeric values, one per line (blank lines skipped),
// for discretization.
func ReadValues(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("series: line %d: %v", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("series: no values")
	}
	return out, nil
}

// WriteBinary writes the series in the binary symbol-index format: a small
// header (magic, σ, n) followed by one byte per position. σ must be ≤ 256.
func WriteBinary(w io.Writer, s *Series) error {
	if s.alpha.Size() > 256 {
		return fmt.Errorf("series: binary format supports σ ≤ 256, have %d", s.alpha.Size())
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "PSER1 %d %d\n", s.alpha.Size(), len(s.data)); err != nil {
		return err
	}
	for _, k := range s.data {
		if err := bw.WriteByte(byte(k)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the format written by WriteBinary, assigning the
// single-letter alphabet of the recorded size.
func ReadBinary(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	var sigma, n int
	if _, err := fmt.Sscanf(header, "PSER1 %d %d", &sigma, &n); err != nil {
		return nil, fmt.Errorf("series: bad binary header %q", strings.TrimSpace(header))
	}
	if sigma < 1 || sigma > 26 || n < 1 {
		return nil, fmt.Errorf("series: bad binary header σ=%d n=%d", sigma, n)
	}
	alpha := alphabet.Letters(sigma)
	data := make([]uint16, n)
	buf := make([]byte, 64*1024)
	read := 0
	for read < n {
		want := min(len(buf), n-read)
		got, err := io.ReadFull(br, buf[:want])
		if err != nil {
			return nil, fmt.Errorf("series: truncated binary body: %v", err)
		}
		for i := 0; i < got; i++ {
			if int(buf[i]) >= sigma {
				return nil, fmt.Errorf("series: symbol byte %d at position %d exceeds σ=%d", buf[i], read+i, sigma)
			}
			data[read+i] = uint16(buf[i])
		}
		read += got
	}
	return &Series{alpha: alpha, data: data}, nil
}
