// Package series defines the discretized symbol time series the miner
// operates on, together with the projection π_{p,l} and consecutive-occurrence
// count F2 from the paper's problem definition (§2).
package series

import (
	"fmt"

	"periodica/internal/alphabet"
)

// Series is a time series T = t_0, t_1, …, t_{n−1} of symbols over an
// alphabet, stored as dense symbol indices.
type Series struct {
	alpha *alphabet.Alphabet
	data  []uint16
}

// MaxAlphabet is the largest alphabet size a Series supports.
const MaxAlphabet = 1 << 16

// New builds a series over alpha from symbol indices. The indices are copied.
func New(alpha *alphabet.Alphabet, indices []int) (*Series, error) {
	if alpha.Size() > MaxAlphabet {
		return nil, fmt.Errorf("series: alphabet size %d exceeds %d", alpha.Size(), MaxAlphabet)
	}
	s := &Series{alpha: alpha, data: make([]uint16, len(indices))}
	for i, k := range indices {
		if k < 0 || k >= alpha.Size() {
			return nil, fmt.Errorf("series: symbol index %d at position %d out of range [0,%d)", k, i, alpha.Size())
		}
		s.data[i] = uint16(k)
	}
	return s, nil
}

// FromString parses a series of single-rune symbols, deriving the alphabet
// from the distinct runes in sorted order. "abcabbabcb" yields the paper's
// running example with a=0, b=1, c=2.
func FromString(text string) *Series {
	alpha := alphabet.FromString(text)
	s := &Series{alpha: alpha}
	for _, r := range text {
		k, _ := alpha.Index(string(r))
		s.data = append(s.data, uint16(k))
	}
	return s
}

// FromAlphabetText parses a series of single-rune symbols against an
// explicit alphabet: each rune of text must name an alphabet symbol, and the
// stored indices are the alphabet's. This is the distributed wire decode —
// unlike FromString, the alphabet (size, order, possibly symbols absent from
// text) travels with the data, so a worker rebuilding the series assigns
// exactly the coordinator's symbol indices.
func FromAlphabetText(alpha *alphabet.Alphabet, text string) (*Series, error) {
	if alpha.Size() > MaxAlphabet {
		return nil, fmt.Errorf("series: alphabet size %d exceeds %d", alpha.Size(), MaxAlphabet)
	}
	s := &Series{alpha: alpha, data: make([]uint16, 0, len(text))}
	for i, r := range text {
		k, ok := alpha.Index(string(r))
		if !ok {
			return nil, fmt.Errorf("series: symbol %q at byte %d not in alphabet %v", string(r), i, alpha)
		}
		s.data = append(s.data, uint16(k))
	}
	if len(s.data) == 0 {
		return nil, fmt.Errorf("series: empty series")
	}
	return s, nil
}

// FromIndices builds a series without validation; it panics on an out-of-range
// index. Intended for generators that construct indices programmatically.
func FromIndices(alpha *alphabet.Alphabet, indices []uint16) *Series {
	for i, k := range indices {
		if int(k) >= alpha.Size() {
			panic(fmt.Sprintf("series: symbol index %d at position %d out of range [0,%d)", k, i, alpha.Size()))
		}
	}
	return &Series{alpha: alpha, data: indices}
}

// Len returns n, the series length.
func (s *Series) Len() int { return len(s.data) }

// Alphabet returns the series alphabet.
func (s *Series) Alphabet() *alphabet.Alphabet { return s.alpha }

// At returns the symbol index at position i.
func (s *Series) At(i int) int { return int(s.data[i]) }

// Indices returns the backing symbol-index slice. The caller must not mutate
// it.
func (s *Series) Indices() []uint16 { return s.data }

// String renders the series by concatenating its symbols.
func (s *Series) String() string {
	out := ""
	for _, k := range s.data {
		out += s.alpha.Symbol(int(k))
	}
	return out
}

// Slice returns the subseries [lo, hi) sharing the same alphabet.
func (s *Series) Slice(lo, hi int) *Series {
	return &Series{alpha: s.alpha, data: s.data[lo:hi]}
}

// ProjectionLen returns m = ⌈(n−l)/p⌉, the length of π_{p,l}(T).
func (s *Series) ProjectionLen(p, l int) int {
	n := len(s.data)
	if l >= n {
		return 0
	}
	return (n - l + p - 1) / p
}

// Projection returns π_{p,l}(T) = t_l, t_{l+p}, t_{l+2p}, … as symbol indices.
// Requires 0 ≤ l < p.
func (s *Series) Projection(p, l int) []int {
	if p <= 0 || l < 0 || l >= p {
		panic(fmt.Sprintf("series: invalid projection p=%d l=%d", p, l))
	}
	var out []int
	for i := l; i < len(s.data); i += p {
		out = append(out, int(s.data[i]))
	}
	return out
}

// F2 returns the number of times symbol index k occurs in two consecutive
// positions of the projection π_{p,l}(T); equivalently the number of i ≡ l
// (mod p) with t_i = t_{i+p} = s_k. This is the paper's F2(s_k, π_{p,l}(T)).
func (s *Series) F2(k, p, l int) int {
	if p <= 0 || l < 0 || l >= p {
		panic(fmt.Sprintf("series: invalid F2 p=%d l=%d", p, l))
	}
	count := 0
	for i := l; i+p < len(s.data); i += p {
		if int(s.data[i]) == k && int(s.data[i+p]) == k {
			count++
		}
	}
	return count
}

// F2String counts consecutive equal-symbol pairs of symbol k in an arbitrary
// index sequence, matching the paper's F2(s, T) on a plain string (e.g.
// F2(a, "abbaaabaa") = 3).
func F2String(seq []int, k int) int {
	count := 0
	for i := 0; i+1 < len(seq); i++ {
		if seq[i] == k && seq[i+1] == k {
			count++
		}
	}
	return count
}

// MatchCount returns the number of positions i with t_i = t_{i+p}, i.e. the
// total symbol matches when T is compared to its p-shift T(p).
func (s *Series) MatchCount(p int) int {
	count := 0
	for i := 0; i+p < len(s.data); i++ {
		if s.data[i] == s.data[i+p] {
			count++
		}
	}
	return count
}

// Indicator returns the 0/1 indicator vector of symbol k as float64, for FFT
// correlation.
func (s *Series) Indicator(k int) []float64 {
	return s.IndicatorInto(k, make([]float64, len(s.data)))
}

// IndicatorInto writes the indicator vector of symbol k into out, which must
// have length ≥ Len, and returns out[:Len]. It lets batch FFT drivers reuse
// one buffer per worker instead of allocating σ vectors per sweep.
func (s *Series) IndicatorInto(k int, out []float64) []float64 {
	out = out[:len(s.data)]
	for i, v := range s.data {
		if int(v) == k {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out
}

// Counts returns the number of occurrences of each symbol.
func (s *Series) Counts() []int {
	out := make([]int, s.alpha.Size())
	for _, v := range s.data {
		out[v]++
	}
	return out
}
