package series

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTextSkipsWhitespace(t *testing.T) {
	s, err := ReadText(strings.NewReader("ab c\nab  cb\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "abcabcb" {
		t.Fatalf("ReadText = %q", s.String())
	}
}

func TestReadTextEmpty(t *testing.T) {
	if _, err := ReadText(strings.NewReader("  \n ")); err == nil {
		t.Fatal("whitespace-only input: want error")
	}
}

func TestWriteTextRoundTrip(t *testing.T) {
	s := FromString("abcabbabcb")
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip: %q != %q", back.String(), s.String())
	}
}

func TestReadValues(t *testing.T) {
	vals, err := ReadValues(strings.NewReader("1.5\n\n-2\n3e2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 300}
	if len(vals) != len(want) {
		t.Fatalf("got %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("got %v, want %v", vals, want)
		}
	}
}

func TestReadValuesErrors(t *testing.T) {
	if _, err := ReadValues(strings.NewReader("abc\n")); err == nil {
		t.Fatal("non-numeric: want error")
	}
	if _, err := ReadValues(strings.NewReader("")); err == nil {
		t.Fatal("empty: want error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := FromString("abcabbabcbddddaa")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip: %q != %q", back.String(), s.String())
	}
	if back.Alphabet().Size() != s.Alphabet().Size() {
		t.Fatalf("σ = %d, want %d", back.Alphabet().Size(), s.Alphabet().Size())
	}
}

func TestReadBinaryRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad magic":       "XXXX 3 2\nab",
		"sigma too large": "PSER1 99 2\nab",
		"zero length":     "PSER1 3 0\n",
		"truncated body":  "PSER1 3 10\nab",
		"byte beyond σ":   "PSER1 2 2\n\x00\x05",
	}
	for name, input := range cases {
		if _, err := ReadBinary(strings.NewReader(input)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
