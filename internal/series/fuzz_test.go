package series

import (
	"bytes"
	"testing"
)

// FuzzReadBinary ensures arbitrary bytes never panic the binary reader, and
// that whatever parses round-trips.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, FromString("abcabbabcb")); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("PSER1 3 2\nab"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, s); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.String() != s.String() {
			t.Fatal("binary round trip changed the series")
		}
	})
}

// FuzzProjectionF2 checks the F2/projection consistency invariant on
// arbitrary series and parameters.
func FuzzProjectionF2(f *testing.F) {
	f.Add([]byte("abcabbabcb"), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, pRaw, lRaw uint8) {
		if len(data) < 2 || len(data) > 300 {
			t.Skip()
		}
		s := FromString(string(normalize(data)))
		p := int(pRaw)%s.Len() + 1
		l := int(lRaw) % p
		for k := 0; k < s.Alphabet().Size(); k++ {
			if got, want := s.F2(k, p, l), F2String(s.Projection(p, l), k); got != want {
				t.Fatalf("F2(%d,%d,%d) = %d, want %d", k, p, l, got, want)
			}
		}
	})
}

func normalize(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = 'a' + b%5
	}
	return out
}
