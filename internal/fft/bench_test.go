package fft

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
)

func benchData(n int) []complex128 {
	rng := rand.New(rand.NewSource(1))
	return randComplex(rng, n)
}

func BenchmarkForward(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		data := benchData(n)
		work := make([]complex128, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, data)
				Forward(work)
			}
		})
	}
}

// BenchmarkPlanForward compares the planned transform (cached tables,
// fused stage pairs) against the seed recurrence network at each size, and
// the parallel butterfly path against the serial one.
func BenchmarkPlanForward(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 20} {
		data := benchData(n)
		work := make([]complex128, n)
		p := PlanFor(n)
		b.Run(fmt.Sprintf("planned/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, data)
				p.Transform(work, false, 1)
			}
		})
		b.Run(fmt.Sprintf("unplanned/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, data)
				transformRecurrence(work, false)
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, data)
				p.Transform(work, false, runtime.GOMAXPROCS(0))
			}
		})
	}
}

// BenchmarkPlanPairCounts measures the zero-alloc packed pair path, the unit
// of work the detection sweep schedules per symbol pair.
func BenchmarkPlanPairCounts(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 18} {
		rng := rand.New(rand.NewSource(9))
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				x1[i] = 1
			}
			if rng.Intn(4) == 0 {
				x2[i] = 1
			}
		}
		p := PlanFor(NextPow2(2 * n))
		out1 := make([]int64, n)
		out2 := make([]int64, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.AutocorrelateCountsPairInto(x1, x2, out1, out2, 1)
			}
		})
	}
}

func BenchmarkConvolve(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		rng := rand.New(rand.NewSource(2))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Convolve(x, y)
			}
		})
	}
}

func BenchmarkAutocorrelateCounts(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		rng := rand.New(rand.NewSource(3))
		x := make([]float64, n)
		for i := range x {
			if rng.Intn(4) == 0 {
				x[i] = 1
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AutocorrelateCounts(x)
			}
		})
	}
}

// BenchmarkExternalVsInMemory quantifies the out-of-core transform's
// overhead against the in-memory FFT at equal sizes.
func BenchmarkExternalVsInMemory(b *testing.B) {
	n := 1 << 14
	data := benchData(n)
	b.Run("in-memory", func(b *testing.B) {
		work := make([]complex128, n)
		for i := 0; i < b.N; i++ {
			copy(work, data)
			Forward(work)
		}
	})
	b.Run("external", func(b *testing.B) {
		dir := b.TempDir()
		path := filepath.Join(dir, "data.cpx")
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := WriteComplexFile(path, data); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := TransformFile(path, n, false, ExternalOptions{TmpDir: dir}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
