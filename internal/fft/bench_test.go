package fft

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func benchData(n int) []complex128 {
	rng := rand.New(rand.NewSource(1))
	return randComplex(rng, n)
}

func BenchmarkForward(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		data := benchData(n)
		work := make([]complex128, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, data)
				Forward(work)
			}
		})
	}
}

func BenchmarkConvolve(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		rng := rand.New(rand.NewSource(2))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Convolve(x, y)
			}
		})
	}
}

func BenchmarkAutocorrelateCounts(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		rng := rand.New(rand.NewSource(3))
		x := make([]float64, n)
		for i := range x {
			if rng.Intn(4) == 0 {
				x[i] = 1
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AutocorrelateCounts(x)
			}
		})
	}
}

// BenchmarkExternalVsInMemory quantifies the out-of-core transform's
// overhead against the in-memory FFT at equal sizes.
func BenchmarkExternalVsInMemory(b *testing.B) {
	n := 1 << 14
	data := benchData(n)
	b.Run("in-memory", func(b *testing.B) {
		work := make([]complex128, n)
		for i := 0; i < b.N; i++ {
			copy(work, data)
			Forward(work)
		}
	})
	b.Run("external", func(b *testing.B) {
		dir := b.TempDir()
		path := filepath.Join(dir, "data.cpx")
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := WriteComplexFile(path, data); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := TransformFile(path, n, false, ExternalOptions{TmpDir: dir}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
