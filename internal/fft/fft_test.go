package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-7

// dftNaive is the O(n²) reference transform.
func dftNaive(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randComplex(rng, n)
		want := dftNaive(x, false)
		got := append([]complex128(nil), x...)
		Forward(got)
		if d := maxDiff(got, want); d > eps*float64(n) {
			t.Fatalf("n=%d: Forward deviates from naive DFT by %g", n, d)
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 128} {
		x := randComplex(rng, n)
		want := dftNaive(x, true)
		got := append([]complex128(nil), x...)
		Inverse(got)
		if d := maxDiff(got, want); d > eps*float64(n) {
			t.Fatalf("n=%d: Inverse deviates from naive inverse DFT by %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randComplex(rng, 512)
	y := append([]complex128(nil), x...)
	Forward(y)
	Inverse(y)
	if d := maxDiff(x, y); d > eps {
		t.Fatalf("Forward∘Inverse deviates by %g", d)
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward on length 3: want panic")
		}
	}()
	Forward(make([]complex128, 3))
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randComplex(rng, 256)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	Forward(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(len(x))
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: time %g vs freq %g", timeEnergy, freqEnergy)
	}
}

func convolveNaive(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			out[i+j] += a[i] * b[j]
		}
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, pair := range [][2]int{{1, 1}, {3, 5}, {17, 17}, {100, 31}, {64, 64}} {
		a := make([]float64, pair[0])
		b := make([]float64, pair[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := Convolve(a, b)
		want := convolveNaive(a, b)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("Convolve[%d] = %g, want %g", i, got[i], want[i])
			}
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil || Convolve([]float64{1}, nil) != nil {
		t.Fatal("Convolve with empty input: want nil")
	}
}

func TestConvolveIdentity(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5}
	got := Convolve(a, []float64{1})
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-9 {
			t.Fatalf("Convolve with delta: got %v", got)
		}
	}
}

func crossCorrelateNaive(a, b []float64) []float64 {
	out := make([]float64, len(b))
	for p := range out {
		for i := 0; i < len(a) && i+p < len(b); i++ {
			out[p] += a[i] * b[i+p]
		}
	}
	return out
}

func TestCrossCorrelateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, pair := range [][2]int{{5, 5}, {8, 20}, {33, 7}, {100, 100}} {
		a := make([]float64, pair[0])
		b := make([]float64, pair[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := CrossCorrelate(a, b)
		want := crossCorrelateNaive(a, b)
		for p := range want {
			if math.Abs(got[p]-want[p]) > 1e-6 {
				t.Fatalf("CrossCorrelate[%d] = %g, want %g", p, got[p], want[p])
			}
		}
	}
}

func TestAutocorrelateCountsOnIndicators(t *testing.T) {
	// x = indicator of {0,3,6,9}: lag-3 matches = 3, lag-6 = 2, lag-9 = 1.
	x := make([]float64, 12)
	for i := 0; i < 12; i += 3 {
		x[i] = 1
	}
	r := AutocorrelateCounts(x)
	want := map[int]int64{0: 4, 3: 3, 6: 2, 9: 1, 1: 0, 2: 0}
	for p, w := range want {
		if r[p] != w {
			t.Fatalf("r[%d] = %d, want %d", p, r[p], w)
		}
	}
}

func TestAutocorrelateCountsPairMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 7, 64, 1000} {
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				x1[i] = 1
			}
			if rng.Intn(4) == 0 {
				x2[i] = 1
			}
		}
		got1, got2 := AutocorrelateCountsPair(x1, x2)
		want1 := AutocorrelateCounts(x1)
		want2 := AutocorrelateCounts(x2)
		for p := 0; p < n; p++ {
			if got1[p] != want1[p] || got2[p] != want2[p] {
				t.Fatalf("n=%d p=%d: pair (%d,%d) vs singles (%d,%d)",
					n, p, got1[p], got2[p], want1[p], want2[p])
			}
		}
	}
}

func TestAutocorrelateCountsPairEmpty(t *testing.T) {
	a, b := AutocorrelateCountsPair(nil, nil)
	if a != nil || b != nil {
		t.Fatal("empty pair: want nil results")
	}
}

func TestAutocorrelateCountsPairLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch: want panic")
		}
	}()
	AutocorrelateCountsPair(make([]float64, 3), make([]float64, 4))
}

func TestValidateCountPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 1<<15)
	for i := range x {
		if rng.Intn(2) == 0 {
			x[i] = 1
		}
	}
	if worst := ValidateCountPrecision(x); worst > 1e-3 {
		t.Fatalf("autocorrelation count error %g too close to 0.5 at n=%d", worst, len(x))
	}
}

func TestConvolveLinearityProperty(t *testing.T) {
	// (a1+a2) * b == a1*b + a2*b
	f := func(seed int64, n1, n2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n1)%40 + 1
		m := int(n2)%40 + 1
		a1 := make([]float64, n)
		a2 := make([]float64, n)
		b := make([]float64, m)
		for i := range a1 {
			a1[i], a2[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		left := Convolve(sum, b)
		r1 := Convolve(a1, b)
		r2 := Convolve(a2, b)
		for i := range left {
			if math.Abs(left[i]-(r1[i]+r2[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
