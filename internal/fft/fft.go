// Package fft implements the fast Fourier transform and the convolution and
// correlation primitives the miner builds on. The transform is an iterative
// in-place radix-2 decimation-in-time FFT over []complex128; helpers cover
// linear convolution and autocorrelation of real sequences, which is how the
// paper evaluates its modified convolution in O(n log n).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of x. len(x) must be a power of
// two.
func Forward(x []complex128) { transform(x, false) }

// Inverse computes the in-place inverse DFT of x, including the 1/n scaling.
// len(x) must be a power of two.
func Inverse(x []complex128) {
	transform(x, true)
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

// transform runs the radix-2 iterative Cooley-Tukey butterfly network.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := uint(64 - bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// Convolve returns the linear convolution of real sequences a and b:
// out[i] = Σ_j a[j]·b[i−j], with len(out) = len(a)+len(b)−1. Either input may
// be empty, in which case the result is nil.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	Forward(fa)
	Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	Inverse(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// CrossCorrelate returns r[p] = Σ_i a[i]·b[i+p] for p = 0..len(b)-1, treating
// out-of-range terms as zero. With a == b this is the (non-circular)
// autocorrelation used to count lag-p symbol matches.
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	m := NextPow2(len(a) + len(b))
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	Forward(fa)
	Forward(fb)
	for i := range fa {
		// conj(FFT(a)) · FFT(b) gives correlation at non-negative lags.
		ar, ai := real(fa[i]), imag(fa[i])
		fa[i] = complex(ar, -ai) * fb[i]
	}
	Inverse(fa)
	out := make([]float64, len(b))
	for p := range out {
		out[p] = real(fa[p])
	}
	return out
}

// AutocorrelateCounts returns r[p] = Σ_i x[i]·x[i+p] for p = 0..len(x)-1,
// rounded to the nearest integer. It is intended for 0/1 indicator vectors,
// where r[p] is the exact number of lag-p matches; rounding removes FFT
// round-off (the error is far below 0.5 for any series that fits in memory,
// and ValidateCountPrecision makes the bound checkable).
func AutocorrelateCounts(x []float64) []int64 {
	r := CrossCorrelate(x, x)
	out := make([]int64, len(r))
	for i, v := range r {
		out[i] = int64(math.Round(v))
	}
	return out
}

// AutocorrelateCountsPair computes the autocorrelation counts of two 0/1
// indicator vectors of equal length with a single forward and a single
// inverse transform: the inputs are packed as the real and imaginary parts
// of one complex vector, the two spectra are separated by Hermitian
// symmetry, and both (real) autocorrelations travel back through one inverse
// transform packed the same way. Identical results to two AutocorrelateCounts
// calls at roughly a third of the transforms.
func AutocorrelateCountsPair(x1, x2 []float64) ([]int64, []int64) {
	if len(x1) != len(x2) {
		panic(fmt.Sprintf("fft: pair length mismatch %d vs %d", len(x1), len(x2)))
	}
	n := len(x1)
	if n == 0 {
		return nil, nil
	}
	m := NextPow2(2 * n)
	z := make([]complex128, m)
	for i := 0; i < n; i++ {
		z[i] = complex(x1[i], x2[i])
	}
	Forward(z)
	// Z(k) = X1(k) + i·X2(k) with X1, X2 the transforms of the real inputs:
	// X1(k) = (Z(k) + conj(Z(m−k)))/2, X2(k) = (Z(k) − conj(Z(m−k)))/(2i).
	// The packed spectrum of the pair of autocorrelations is
	// |X1(k)|² + i·|X2(k)|², inverse-transformed in one go.
	spec := make([]complex128, m)
	for k := 0; k < m; k++ {
		zk := z[k]
		zmk := z[(m-k)%m]
		cr := complex(real(zmk), -imag(zmk))
		a := (zk + cr) / 2             // X1(k)
		b := (zk - cr) / complex(0, 2) // X2(k)
		p1 := real(a)*real(a) + imag(a)*imag(a)
		p2 := real(b)*real(b) + imag(b)*imag(b)
		spec[k] = complex(p1, p2)
	}
	Inverse(spec)
	out1 := make([]int64, n)
	out2 := make([]int64, n)
	for p := 0; p < n; p++ {
		out1[p] = int64(math.Round(real(spec[p])))
		out2[p] = int64(math.Round(imag(spec[p])))
	}
	return out1, out2
}

// ValidateCountPrecision reports the worst absolute deviation from an integer
// across the autocorrelation of x. Callers can assert it is < 0.5 to confirm
// the rounding in AutocorrelateCounts is sound at a given size.
func ValidateCountPrecision(x []float64) float64 {
	r := CrossCorrelate(x, x)
	worst := 0.0
	for _, v := range r {
		d := math.Abs(v - math.Round(v))
		if d > worst {
			worst = d
		}
	}
	return worst
}
