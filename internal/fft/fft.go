// Package fft implements the fast Fourier transform and the convolution and
// correlation primitives the miner builds on. The transform is an iterative
// in-place radix-2 decimation-in-time FFT over []complex128, executed through
// cached per-size plans (see plan.go) that precompute twiddle tables and the
// bit-reversal permutation; helpers cover linear convolution and
// autocorrelation of real sequences, which is how the paper evaluates its
// modified convolution in O(n log n).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of x. len(x) must be a power of
// two. It runs through the cached plan for len(x).
func Forward(x []complex128) { PlanFor(len(x)).Forward(x) }

// Inverse computes the in-place inverse DFT of x, including the 1/n scaling.
// len(x) must be a power of two.
func Inverse(x []complex128) { PlanFor(len(x)).Inverse(x) }

// transformRecurrence is the pre-plan radix-2 network that regenerates each
// stage's twiddles with the w *= wStep recurrence. It is retained as the
// accuracy and performance baseline the plan is tested against (the
// recurrence accumulates rounding error with every butterfly of a stage,
// the tables do not).
func transformRecurrence(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := uint(64 - bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
		}
	}
}

// Convolve returns the linear convolution of real sequences a and b:
// out[i] = Σ_j a[j]·b[i−j], with len(out) = len(a)+len(b)−1. Either input may
// be empty, in which case the result is nil.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	p := PlanFor(m)
	fap, fbp := p.scratch(), p.scratch()
	fa, fb := *fap, *fbp
	loadPadded(fa, a)
	loadPadded(fb, b)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	p.release(fap)
	p.release(fbp)
	return out
}

// CrossCorrelate returns r[p] = Σ_i a[i]·b[i+p] for p = 0..len(b)-1, treating
// out-of-range terms as zero. With a == b (the same slice) this is the
// (non-circular) autocorrelation used to count lag-p symbol matches, and the
// plan's self-correlation path saves one forward transform.
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return PlanFor(NextPow2(len(a)+len(b))).CrossCorrelate(a, b)
}

// AutocorrelateCounts returns r[p] = Σ_i x[i]·x[i+p] for p = 0..len(x)-1,
// rounded to the nearest integer. It is intended for 0/1 indicator vectors,
// where r[p] is the exact number of lag-p matches; rounding removes FFT
// round-off (the error is far below 0.5 for any series that fits in memory,
// and ValidateCountPrecision makes the bound checkable). It costs one forward
// and one inverse transform.
func AutocorrelateCounts(x []float64) []int64 {
	if len(x) == 0 {
		return nil
	}
	return PlanFor(NextPow2(2 * len(x))).AutocorrelateCounts(x)
}

// AutocorrelateCountsPair computes the autocorrelation counts of two 0/1
// indicator vectors of equal length with a single forward and a single
// inverse transform: the inputs are packed as the real and imaginary parts
// of one complex vector, the two spectra are separated by Hermitian
// symmetry, and both (real) autocorrelations travel back through one inverse
// transform packed the same way. Identical results to two AutocorrelateCounts
// calls at half the transforms.
func AutocorrelateCountsPair(x1, x2 []float64) ([]int64, []int64) {
	if len(x1) != len(x2) {
		panic(fmt.Sprintf("fft: pair length mismatch %d vs %d", len(x1), len(x2)))
	}
	if len(x1) == 0 {
		return nil, nil
	}
	return PlanFor(NextPow2(2*len(x1))).AutocorrelateCountsPair(x1, x2)
}

// ValidateCountPrecision reports the worst absolute deviation from an integer
// across the autocorrelation of x. Callers can assert it is < 0.5 to confirm
// the rounding in AutocorrelateCounts is sound at a given size.
func ValidateCountPrecision(x []float64) float64 {
	r := CrossCorrelate(x, x)
	worst := 0.0
	for _, v := range r {
		d := math.Abs(v - math.Round(v))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// ValidateCountPrecisionPair is ValidateCountPrecision for the pair-packed
// path: it reports the worst deviation from an integer across both raw
// (pre-rounding) autocorrelations of the packed transform of x1 and x2.
func ValidateCountPrecisionPair(x1, x2 []float64) float64 {
	if len(x1) != len(x2) {
		panic(fmt.Sprintf("fft: pair length mismatch %d vs %d", len(x1), len(x2)))
	}
	n := len(x1)
	if n == 0 {
		return 0
	}
	p := PlanFor(NextPow2(2 * n))
	specp := p.pairSpectrum(x1, x2, p.autoWorkers())
	spec := *specp
	worst := 0.0
	for i := 0; i < n; i++ {
		for _, v := range [2]float64{real(spec[i]), imag(spec[i])} {
			if d := math.Abs(v - math.Round(v)); d > worst {
				worst = d
			}
		}
	}
	p.release(specp)
	return worst
}
