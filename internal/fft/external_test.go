package fft

import (
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeTempComplex(t *testing.T, values []complex128) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.cpx")
	if err := WriteComplexFile(path, values); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTransformFileMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 16, 64, 256, 4096} {
		x := randComplex(rng, n)
		path := writeTempComplex(t, x)
		// Force small memory so transposes and row passes tile.
		opts := ExternalOptions{MemElements: max(4*NextPow2(n), 64)}
		if err := TransformFile(path, n, false, opts); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := ReadComplexFile(path, n)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]complex128(nil), x...)
		Forward(want)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-6*float64(n) {
				t.Fatalf("n=%d: external[%d]=%v, in-memory %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestTransformFileInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	x := randComplex(rng, n)
	path := writeTempComplex(t, x)
	opts := ExternalOptions{MemElements: 4 * n}
	if err := TransformFile(path, n, false, opts); err != nil {
		t.Fatal(err)
	}
	if err := TransformFile(path, n, true, opts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadComplexFile(path, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("round trip deviates at %d: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestTransformFileValidates(t *testing.T) {
	path := writeTempComplex(t, make([]complex128, 8))
	if err := TransformFile(path, 6, false, ExternalOptions{}); err == nil {
		t.Fatal("non-power-of-two length: want error")
	}
	if err := TransformFile(path, 16, false, ExternalOptions{}); err == nil {
		t.Fatal("length/file-size mismatch: want error")
	}
	if err := TransformFile(path, 8, false, ExternalOptions{MemElements: 2}); err == nil {
		t.Fatal("absurd memory limit: want error")
	}
	if err := TransformFile(filepath.Join(t.TempDir(), "missing"), 8, false, ExternalOptions{}); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestAutocorrelateFileMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3000
	ind := make([]byte, n)
	x := make([]float64, n)
	for i := range ind {
		if rng.Intn(3) == 0 {
			ind[i] = 1
			x[i] = 1
		}
	}
	path := filepath.Join(t.TempDir(), "indicator.bin")
	if err := os.WriteFile(path, ind, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := AutocorrelateFile(path, n, ExternalOptions{MemElements: 4 * NextPow2(2*n)})
	if err != nil {
		t.Fatal(err)
	}
	want := AutocorrelateCounts(x)
	for p := 0; p < n; p++ {
		if got[p] != want[p] {
			t.Fatalf("r[%d] = %d, want %d", p, got[p], want[p])
		}
	}
}

func TestAutocorrelateFileMissing(t *testing.T) {
	if _, err := AutocorrelateFile(filepath.Join(t.TempDir(), "nope"), 10, ExternalOptions{}); err == nil {
		t.Fatal("missing file: want error")
	}
}
