// Plan-based FFT engine. A Plan precomputes, for one power-of-two size,
// everything the transform would otherwise recompute per call — the
// bit-reversal permutation and per-stage twiddle-factor tables (each root
// evaluated directly with math.Cos/Sin rather than the error-accumulating
// w *= wStep recurrence) — and owns a pool of reusable scratch buffers, so
// the convolution entry points are allocation-free after warm-up. Large
// transforms optionally split each stage's independent butterflies across
// worker goroutines; every partitioning performs the identical floating-point
// operations per element, so parallel and serial outputs are bit-identical.
package fft

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"periodica/internal/obs"
)

// DefaultParallelThreshold is the initial parallelism threshold: the
// transform length at or above which Forward and Inverse may split butterfly
// stages across GOMAXPROCS goroutines.
const DefaultParallelThreshold = 1 << 16

// parallelThreshold holds the current threshold. Transforms read it on every
// call, possibly from many goroutines at once (the batched autocorrelation
// workers), so it is atomic rather than a plain package variable.
var parallelThreshold atomic.Int64

func init() { parallelThreshold.Store(DefaultParallelThreshold) }

// ParallelThreshold returns the transform length at or above which Forward
// and Inverse may split butterfly stages across GOMAXPROCS goroutines.
// Lengths below it always run serially.
func ParallelThreshold() int { return int(parallelThreshold.Load()) }

// SetParallelThreshold changes the parallelism threshold. Tune it together
// with GOMAXPROCS; raising it (or setting GOMAXPROCS=1) forces serial
// transforms. Safe to call concurrently with running transforms: each
// transform reads the threshold once, atomically, when it starts.
func SetParallelThreshold(n int) { parallelThreshold.Store(int64(n)) }

// minParallelChunk bounds the per-worker chunk of the contiguous early
// stages; smaller chunks spend more time at barriers than in butterflies.
const minParallelChunk = 1 << 12

// Plan holds the precomputed tables for transforms of one fixed power-of-two
// size. A plan's tables are immutable after construction and the plan is safe
// for concurrent use: the transform methods touch only the caller's slice and
// pooled scratch, and the lazily built sub-plans (the half-size plan behind
// the real-input kernel, the row/column plans behind the four-step
// decomposition) are created once under subMu and immutable afterwards.
type Plan struct {
	n     int
	swaps []int32      // flattened (i, j) pairs of the bit-reversal permutation, i < j
	twf   []complex128 // twf[half+k] = exp(-2πi·k/size), size = 2·half (forward)
	twi   []complex128 // conjugate table for inverse transforms
	pool  sync.Pool    // scratch []complex128 of length n

	subMu sync.Mutex
	subs  map[int]*Plan // lazily built sub-plans, keyed by size
}

// subPlan returns (building on first use) the plan for sub-transforms of
// length n. The real-input kernel uses the half-size plan; the four-step
// decomposition uses the row and column plans.
func (p *Plan) subPlan(n int) *Plan {
	p.subMu.Lock()
	defer p.subMu.Unlock()
	if p.subs == nil {
		p.subs = map[int]*Plan{}
	}
	sp := p.subs[n]
	if sp == nil {
		sp = NewPlan(n)
		p.subs[n] = sp
	}
	return sp
}

// halfPlan returns the plan for the half-size complex transforms behind the
// real-input kernel.
func (p *Plan) halfPlan() *Plan { return p.subPlan(p.n / 2) }

// NewPlan builds a plan for transforms of length n (a power of two).
// Most callers should use PlanFor, which caches plans by size.
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: plan length %d is not a power of two", n))
	}
	p := &Plan{n: n}
	// The pool stores *[]complex128: putting a bare slice would box its
	// header into an interface and allocate on every release.
	p.pool.New = func() any { b := make([]complex128, n); return &b }
	if n == 1 {
		return p
	}
	shift := uint(64 - log2(n))
	for i := 0; i < n; i++ {
		j := int(reverse64(uint64(i)) >> shift)
		if j > i {
			p.swaps = append(p.swaps, int32(i), int32(j))
		}
	}
	p.twf = make([]complex128, n)
	p.twi = make([]complex128, n)
	for half := 1; half < n; half <<= 1 {
		size := 2 * half
		for k := 0; k < half; k++ {
			ang := 2 * math.Pi * float64(k) / float64(size)
			s, c := math.Sincos(ang)
			p.twf[half+k] = complex(c, -s)
			p.twi[half+k] = complex(c, s)
		}
	}
	return p
}

// reverse64 mirrors the 64-bit word; split out so NewPlan has no direct
// dependency on the transform body it replaces.
func reverse64(v uint64) uint64 {
	v = v>>32 | v<<32
	v = v>>16&0x0000FFFF0000FFFF | v&0x0000FFFF0000FFFF<<16
	v = v>>8&0x00FF00FF00FF00FF | v&0x00FF00FF00FF00FF<<8
	v = v>>4&0x0F0F0F0F0F0F0F0F | v&0x0F0F0F0F0F0F0F0F<<4
	v = v>>2&0x3333333333333333 | v&0x3333333333333333<<2
	v = v>>1&0x5555555555555555 | v&0x5555555555555555<<1
	return v
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// PlanCache maps transform sizes to plans. A mutex (not sync.Map)
// serializes construction so two goroutines never build the same multi-MB
// table twice. Plans are immutable after construction (scratch lives in a
// pool), so a plan may be shared freely between caches. The zero value is
// not usable; call NewPlanCache.
type PlanCache struct {
	mu    sync.Mutex
	plans map[int]*Plan
}

// NewPlanCache returns an empty plan cache. Mining sessions hold a cache so
// plan reuse is an injection point rather than ambient global state; most
// sessions share SharedPlans, while tests and short-lived tools may isolate
// themselves with a fresh cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: map[int]*Plan{}}
}

// For returns the cached plan for transforms of length n, building it on
// first use. n must be a power of two.
func (c *PlanCache) For(n int) *Plan {
	if !IsPow2(n) {
		// Panic before taking the lock so a recovered caller cannot leave
		// the cache poisoned.
		panic(fmt.Sprintf("fft: plan length %d is not a power of two", n))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.plans[n]
	if p == nil {
		p = NewPlan(n)
		c.plans[n] = p
	}
	return p
}

// sharedPlans is the process-wide cache behind PlanFor.
var sharedPlans = NewPlanCache()

// SharedPlans returns the process-wide plan cache.
func SharedPlans() *PlanCache { return sharedPlans }

// PlanFor returns the shared cached plan for transforms of length n,
// building it on first use. n must be a power of two.
func PlanFor(n int) *Plan { return sharedPlans.For(n) }

// scratch borrows a length-n buffer from the plan's pool; release returns it.
//
//opvet:acquire
func (p *Plan) scratch() *[]complex128 {
	return p.pool.Get().(*[]complex128)
}

//opvet:release
func (p *Plan) release(buf *[]complex128) { p.pool.Put(buf) }

// autoWorkers picks the worker count for one transform: GOMAXPROCS for
// lengths at or above the parallel threshold, 1 below it.
func (p *Plan) autoWorkers() int {
	if p.n >= ParallelThreshold() {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// Forward computes the in-place forward DFT of x. len(x) must equal Size.
// Transforms of length ≥ ParallelThreshold() use GOMAXPROCS workers; use
// ForwardWorkers for explicit control.
func (p *Plan) Forward(x []complex128) { p.Transform(x, false, p.autoWorkers()) }

// Inverse computes the in-place inverse DFT of x, including the 1/n scaling.
func (p *Plan) Inverse(x []complex128) { p.Transform(x, true, p.autoWorkers()) }

// ForwardWorkers is Forward with an explicit worker count (≤ 1 means serial).
func (p *Plan) ForwardWorkers(x []complex128, workers int) { p.Transform(x, false, workers) }

// InverseWorkers is Inverse with an explicit worker count (≤ 1 means serial).
func (p *Plan) InverseWorkers(x []complex128, workers int) { p.Transform(x, true, workers) }

// Transform runs the planned butterfly network over x, forward or inverse,
// with the given worker count. The output is bit-identical for every worker
// count: partitioning never reorders the operations applied to an element.
//
//opvet:noalloc
func (p *Plan) Transform(x []complex128, inverse bool, workers int) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: plan size %d, input length %d", n, len(x)))
	}
	if n == 1 {
		return
	}
	tw := p.twf
	if inverse {
		tw = p.twi
	}
	if p.useFourStep() {
		obs.FFT().KernelFourStep.Inc()
		p.transformFourStep(x, inverse, workers)
	} else {
		obs.FFT().KernelRadix2.Inc()
		if workers > 1 && n/workers >= minParallelChunk {
			p.transformParallel(x, tw, workers)
		} else {
			applySwaps(x, p.swaps)
			runStages(x, tw, 0, n, n)
		}
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
		}
	}
}

// applySwaps performs the bit-reversal permutation from a flattened pair
// list. The pairs are disjoint transpositions, so any partition of the list
// can run concurrently without conflicting writes.
//
//opvet:noalloc
func applySwaps(x []complex128, swaps []int32) {
	for i := 0; i < len(swaps); i += 2 {
		a, b := swaps[i], swaps[i+1]
		x[a], x[b] = x[b], x[a]
	}
}

// runStages runs the butterfly stages of sizes 2..maxSize over x[lo:hi),
// which must be an aligned multiple of maxSize. Stages 2 and 4 are fused
// into one radix-4 pass (their twiddles are ±1, ±i — no multiplications),
// and later stages are fused in pairs that keep the intermediate stage in
// registers, halving the passes over memory. Every twiddle a fused pass
// multiplies by is the same table entry the unfused stage would read, so
// fusing changes no floating-point operation: any stage partitioning
// produces bit-identical output.
//
//opvet:noalloc
func runStages(x []complex128, tw []complex128, lo, hi, maxSize int) {
	if !stageHead(x, tw, lo, hi, maxSize) {
		return
	}
	for size := 8; size <= maxSize; size <<= 2 {
		stageGroup(x, tw, lo, hi, maxSize, size)
	}
}

// stageHead runs the first butterfly stages — the fused radix-4 pass when
// maxSize ≥ 4 (its twiddles are ±1, ±i — no multiplications), or the single
// no-twiddle size-2 stage when maxSize == 2. It reports whether later stages
// remain (false exactly when maxSize == 2). Split from runStages so batched
// transforms can interleave buffers at stage granularity.
//
//opvet:noalloc
func stageHead(x []complex128, tw []complex128, lo, hi, maxSize int) bool {
	if maxSize < 4 {
		// maxSize == 2: a single no-twiddle stage.
		for i := lo; i < hi; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
		return false
	}
	// tw[3] = exp(∓2πi/4) = ∓i distinguishes forward from inverse.
	inverse := imag(tw[3]) > 0
	for i := lo; i < hi; i += 4 {
		a, b, c, d := x[i], x[i+1], x[i+2], x[i+3]
		t0, t1 := a+b, a-b
		t2, t3 := c+d, c-d
		// Stage-4 twiddle for the odd lane is ∓i; multiply without a
		// complex multiplication.
		var r3 complex128
		if inverse {
			r3 = complex(-imag(t3), real(t3)) // i·t3
		} else {
			r3 = complex(imag(t3), -real(t3)) // −i·t3
		}
		x[i], x[i+2] = t0+t2, t0-t2
		x[i+1], x[i+3] = t1+r3, t1-r3
	}
	return true
}

// stageGroup runs the stage of the given size — fused with the next stage
// when both fit under maxSize — matching one iteration of runStages' loop.
//
//opvet:noalloc
func stageGroup(x []complex128, tw []complex128, lo, hi, maxSize, size int) {
	if 2*size <= maxSize {
		fusedStagePair(x, tw, lo, hi, size)
	} else {
		half := size >> 1
		t := tw[half:size]
		for start := lo; start < hi; start += size {
			butterflies(x[start:start+size], t, 0, half)
		}
	}
}

// fusedStagePair applies the stages of size s and 2s in one pass: the four
// quarters of each size-2s block travel through both butterfly levels while
// their intermediates stay in registers.
//
//opvet:noalloc
func fusedStagePair(x []complex128, tw []complex128, lo, hi, s int) {
	q := s >> 1         // half of the first stage
	tA := tw[q : 2*q]   // twiddles of the size-s stage
	tB := tw[2*q : 4*q] // twiddles of the size-2s stage
	for start := lo; start < hi; start += 4 * q {
		x0 := x[start : start+q]
		x1 := x[start+q : start+2*q]
		x2 := x[start+2*q : start+3*q]
		x3 := x[start+3*q : start+4*q]
		for k := 0; k < q; k++ {
			wa := tA[k]
			a0, a1 := x0[k], x2[k]
			b0 := wa * x1[k]
			b1 := wa * x3[k]
			u0, u1 := a0+b0, a0-b0
			u2, u3 := a1+b1, a1-b1
			c0 := tB[k] * u2
			c1 := tB[k+q] * u3
			x0[k] = u0 + c0
			x2[k] = u0 - c0
			x1[k] = u1 + c1
			x3[k] = u1 - c1
		}
	}
}

// butterflies applies butterflies k0..k1 of one size-len(blk) block:
// blk[k], blk[k+half] ← blk[k] ± w_k·blk[k+half], with w_k = t[k].
//
//opvet:noalloc
func butterflies(blk []complex128, t []complex128, k0, k1 int) {
	half := len(t)
	hi := blk[half:]
	for k := k0; k < k1; k++ {
		a := blk[k]
		b := hi[k] * t[k]
		blk[k] = a + b
		hi[k] = a - b
	}
}

// transformParallel splits the network across workers: the swap list and the
// early stages (which stay inside aligned chunks) are partitioned by chunk,
// then each remaining stage's butterflies are split by flat index, with a
// barrier between stages. Every element sees the same operations in the same
// order as the serial path.
func (p *Plan) transformParallel(x []complex128, tw []complex128, workers int) {
	n := p.n
	// Round workers down to a power of two so chunks stay aligned, and keep
	// chunks at or above the minimum.
	for !IsPow2(workers) {
		workers--
	}
	for workers > 1 && n/workers < minParallelChunk {
		workers >>= 1
	}
	if workers <= 1 {
		applySwaps(x, p.swaps)
		runStages(x, tw, 0, n, n)
		return
	}
	chunk := n / workers

	// Phase 1: bit-reversal. The pair list is split evenly; pairs are
	// disjoint, so no two workers touch the same element.
	pairs := len(p.swaps) / 2
	parallelRange(workers, func(w int) {
		lo := 2 * (pairs * w / workers)
		hi := 2 * (pairs * (w + 1) / workers)
		applySwaps(x, p.swaps[lo:hi])
	})

	// Phase 2: stages with size ≤ chunk act entirely within one aligned
	// chunk; each worker runs them on its own chunk with no communication.
	parallelRange(workers, func(w int) {
		runStages(x, tw, w*chunk, (w+1)*chunk, chunk)
	})

	// Phase 3: the remaining log₂(workers) stages, split by flat butterfly
	// index. per divides half (both are powers of two with per ≤ half/2),
	// so each worker's range is a contiguous k-interval of one block.
	per := n / 2 / workers
	for size := chunk << 1; size <= n; size <<= 1 {
		half := size >> 1
		t := tw[half:size]
		parallelRange(workers, func(w int) {
			b := w * per
			blk := b / half
			k0 := b - blk*half
			butterflies(x[blk*size:blk*size+size], t, k0, k0+per)
		})
	}
}

// parallelRange runs f(0..workers-1) on separate goroutines and waits.
func parallelRange(workers int, f func(w int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

// loadPadded copies a real sequence into the zero-padded scratch buffer.
//
//opvet:noalloc
func loadPadded(dst []complex128, src []float64) {
	for i, v := range src {
		dst[i] = complex(v, 0)
	}
	clear(dst[len(src):])
}

// CrossCorrelate returns r[p] = Σ_i a[i]·b[i+p] for p = 0..len(b)-1. The plan
// size must be ≥ len(a)+len(b). When a and b alias the same slice it takes
// the autocorrelation path, saving one forward transform.
func (p *Plan) CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(b))
	p.crossCorrelateInto(a, b, out)
	return out
}

func sameSlice(a, b []float64) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// crossCorrelateInto writes the first len(out) correlation lags into out
// using pooled scratch only.
//
//opvet:noalloc
func (p *Plan) crossCorrelateInto(a, b []float64, out []float64) {
	if len(a)+len(b) > p.n {
		panic(fmt.Sprintf("fft: plan size %d too small for correlation of %d+%d", p.n, len(a), len(b)))
	}
	w := p.autoWorkers()
	if p.useReal(KernelAuto) {
		obs.FFT().KernelReal.Inc()
		p.crossCorrelateReal(a, b, out, w)
		return
	}
	fap := p.scratch()
	fa := *fap
	loadPadded(fa, a)
	if sameSlice(a, b) {
		// Self-correlation: one forward transform and |X|² in place.
		p.Transform(fa, false, w)
		for i := range fa {
			re, im := real(fa[i]), imag(fa[i])
			fa[i] = complex(re*re+im*im, 0)
		}
	} else {
		fbp := p.scratch()
		fb := *fbp
		loadPadded(fb, b)
		p.Transform(fa, false, w)
		p.Transform(fb, false, w)
		for i := range fa {
			ar, ai := real(fa[i]), imag(fa[i])
			fa[i] = complex(ar, -ai) * fb[i]
		}
		p.release(fbp)
	}
	p.Transform(fa, true, w)
	for i := range out {
		out[i] = real(fa[i])
	}
	p.release(fap)
}

// AutocorrelateCounts returns r[p] = Σ_i x[i]·x[i+p] rounded to integers,
// costing one forward and one inverse transform (the seed path ran two
// forwards on the identical input).
func (p *Plan) AutocorrelateCounts(x []float64) []int64 {
	if len(x) == 0 {
		return nil
	}
	return p.AutocorrelateCountsInto(x, make([]int64, len(x)), 0)
}

// AutocorrelateCountsInto is AutocorrelateCounts writing into out (length
// len(x)); allocation-free after the scratch pool is warm. workers ≤ 0
// selects the automatic policy.
//
//opvet:noalloc
func (p *Plan) AutocorrelateCountsInto(x []float64, out []int64, workers int) []int64 {
	return p.AutocorrelateCountsKernelInto(x, out, workers, KernelAuto)
}

// AutocorrelateCountsKernelInto is AutocorrelateCountsInto with an explicit
// kernel choice. The kernels produce byte-identical counts (the raw spectra
// differ only far below the 0.5 rounding margin ValidateCountPrecision
// checks); forcing one exists for benchmarks and equality tests.
//
//opvet:noalloc
func (p *Plan) AutocorrelateCountsKernelInto(x []float64, out []int64, workers int, kernel Kernel) []int64 {
	if 2*len(x) > p.n {
		panic(fmt.Sprintf("fft: plan size %d too small for autocorrelation of %d", p.n, len(x)))
	}
	w := workers
	if w <= 0 {
		w = p.autoWorkers()
	}
	if p.useReal(kernel) {
		obs.FFT().KernelReal.Inc()
		p.autocorrRealInto(x, out, w)
		return out[:len(x)]
	}
	fap := p.scratch()
	fa := *fap
	loadPadded(fa, x)
	p.Transform(fa, false, w)
	for i := range fa {
		re, im := real(fa[i]), imag(fa[i])
		fa[i] = complex(re*re+im*im, 0)
	}
	p.Transform(fa, true, w)
	for i := range out[:len(x)] {
		out[i] = int64(math.Round(real(fa[i])))
	}
	p.release(fap)
	return out[:len(x)]
}

// AutocorrelateCountsPair computes the autocorrelation counts of two
// equal-length real vectors with one forward and one inverse transform,
// packing them as the real and imaginary parts of one complex vector.
func (p *Plan) AutocorrelateCountsPair(x1, x2 []float64) ([]int64, []int64) {
	if len(x1) != len(x2) {
		panic(fmt.Sprintf("fft: pair length mismatch %d vs %d", len(x1), len(x2)))
	}
	if len(x1) == 0 {
		return nil, nil
	}
	out1 := make([]int64, len(x1))
	out2 := make([]int64, len(x2))
	p.AutocorrelateCountsPairInto(x1, x2, out1, out2, 0)
	return out1, out2
}

// AutocorrelateCountsPairInto is AutocorrelateCountsPair writing into the
// caller's count slices (each of length len(x1)); allocation-free after the
// scratch pool is warm. workers ≤ 0 selects the automatic policy.
//
//opvet:noalloc
func (p *Plan) AutocorrelateCountsPairInto(x1, x2 []float64, out1, out2 []int64, workers int) {
	p.AutocorrelateCountsPairKernelInto(x1, x2, out1, out2, workers, KernelAuto)
}

// AutocorrelateCountsPairKernelInto is AutocorrelateCountsPairInto with an
// explicit kernel choice (see AutocorrelateCountsKernelInto).
//
//opvet:noalloc
func (p *Plan) AutocorrelateCountsPairKernelInto(x1, x2 []float64, out1, out2 []int64, workers int, kernel Kernel) {
	n := len(x1)
	if len(x2) != n {
		panic(fmt.Sprintf("fft: pair length mismatch %d vs %d", n, len(x2)))
	}
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = p.autoWorkers()
	}
	if p.useReal(kernel) {
		obs.FFT().KernelReal.Inc()
		p.autocorrRealPairInto(x1, x2, out1, out2, workers)
		return
	}
	specp := p.pairSpectrum(x1, x2, workers)
	spec := *specp
	for i := 0; i < n; i++ {
		out1[i] = int64(math.Round(real(spec[i])))
		out2[i] = int64(math.Round(imag(spec[i])))
	}
	p.release(specp)
}

// pairSpectrum runs the packed pair autocorrelation up to (but not
// including) rounding: element i of the result holds the two raw lag-i
// correlation values as (r1, r2). The returned buffer belongs to the plan's
// pool; the caller must release it.
//
//opvet:acquire
//opvet:noalloc
func (p *Plan) pairSpectrum(x1, x2 []float64, workers int) *[]complex128 {
	n := len(x1)
	m := p.n
	if 2*n > m {
		panic(fmt.Sprintf("fft: plan size %d too small for pair autocorrelation of %d", m, n))
	}
	zp := p.scratch()
	z := *zp
	for i := 0; i < n; i++ {
		z[i] = complex(x1[i], x2[i])
	}
	clear(z[n:])
	p.Transform(z, false, workers)
	// Z(k) = X1(k) + i·X2(k) for the real inputs x1, x2:
	// X1(k) = (Z(k) + conj(Z(m−k)))/2, X2(k) = (Z(k) − conj(Z(m−k)))/(2i),
	// and the packed spectrum of the pair of autocorrelations is
	// S(k) = |X1(k)|² + i·|X2(k)|². X1(m−k) = conj(X1(k)) and
	// X2(m−k) = conj(X2(k)) give S(m−k) = S(k), so the separation runs in
	// place over (k, m−k) pairs — no second buffer, half the arithmetic.
	for _, k := range [2]int{0, m / 2} {
		zk := z[k]
		re, im := real(zk), imag(zk)
		z[k] = complex(re*re, im*im)
	}
	for k := 1; 2*k < m; k++ {
		zk, zmk := z[k], z[m-k]
		cr := complex(real(zmk), -imag(zmk))
		a := (zk + cr) / 2
		b := (zk - cr) / complex(0, 2)
		p1 := real(a)*real(a) + imag(a)*imag(a)
		p2 := real(b)*real(b) + imag(b)*imag(b)
		s := complex(p1, p2)
		z[k], z[m-k] = s, s
	}
	p.Transform(z, true, workers)
	return zp
}
