package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestPlanForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := randComplex(rng, n)
		want := dftNaive(x, false)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		if d := maxDiff(got, want); d > eps*float64(n) {
			t.Fatalf("n=%d: planned Forward deviates from naive DFT by %g", n, d)
		}
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 8, 512, 4096} {
		p := PlanFor(n)
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > eps {
			t.Fatalf("n=%d: planned Forward∘Inverse deviates by %g", n, d)
		}
	}
}

func TestPlanRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("plan size 8 on length-4 input: want panic")
		}
	}()
	NewPlan(8).Forward(make([]complex128, 4))
}

func TestPlanForRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PlanFor(12): want panic")
		}
	}()
	PlanFor(12)
}

func TestPlanForCachesBySize(t *testing.T) {
	if PlanFor(256) != PlanFor(256) {
		t.Fatal("PlanFor(256) returned distinct plans for the same size")
	}
	if PlanFor(256) == PlanFor(512) {
		t.Fatal("PlanFor returned the same plan for different sizes")
	}
}

// autocorrExactInt counts lag matches of a 0/1 vector in integer arithmetic:
// an error-free reference for the correlation paths.
func autocorrExactInt(x []float64) []int64 {
	n := len(x)
	out := make([]int64, n)
	for lag := 0; lag < n; lag++ {
		var c int64
		for i := 0; i+lag < n; i++ {
			if x[i] == 1 && x[i+lag] == 1 {
				c++
			}
		}
		out[lag] = c
	}
	return out
}

// rawCountsRecurrence runs the seed's autocorrelation pipeline — forward,
// |X|², inverse — entirely on the w*=wStep recurrence network and returns the
// raw (unrounded) lag values.
func rawCountsRecurrence(x []float64) []float64 {
	m := NextPow2(2 * len(x))
	fa := make([]complex128, m)
	loadPadded(fa, x)
	transformRecurrence(fa, false)
	for i := range fa {
		re, im := real(fa[i]), imag(fa[i])
		fa[i] = complex(re*re+im*im, 0)
	}
	transformRecurrence(fa, true)
	out := make([]float64, len(x))
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

func worstCountError(raw []float64, exact []int64) float64 {
	worst := 0.0
	for i, v := range raw {
		if d := math.Abs(v - float64(exact[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// TestPlanAccuracyNoWorseThanRecurrence is the accuracy regression test of
// the twiddle tables. Two referees: a naive O(n²) DFT bounds the planned
// transform's per-element error, and — because a float64 DFT reference
// carries round-off of its own, too noisy to rank two FFTs that differ by
// parts in 10¹³ — exact integer autocorrelation counts of a 0/1 indicator
// decide the plan-vs-recurrence comparison. Against those the table-driven
// plan must never lose to the w*=wStep recurrence, and at the largest size
// (where the recurrence has drifted through thousands of multiplies per
// stage) it must win outright. Fixed seed, so the comparisons cannot flake.
func TestPlanAccuracyNoWorseThanRecurrence(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n²) references at n=8192")
	}
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{64, 512, 2048, 8192} {
		x := randComplex(rng, n)
		want := dftNaive(x, false)
		planned := append([]complex128(nil), x...)
		PlanFor(n).Forward(planned)
		if d := maxDiff(planned, want); d > eps*float64(n) {
			t.Errorf("n=%d: planned error %g vs naive DFT above bound", n, d)
		}

		ind := make([]float64, n)
		for i := range ind {
			if rng.Intn(3) == 0 {
				ind[i] = 1
			}
		}
		exact := autocorrExactInt(ind)
		planWorst := worstCountError(PlanFor(NextPow2(2*n)).CrossCorrelate(ind, ind), exact)
		recWorst := worstCountError(rawCountsRecurrence(ind), exact)
		if planWorst > recWorst {
			t.Errorf("n=%d: planned count error %g exceeds recurrence count error %g",
				n, planWorst, recWorst)
		}
		if n == 8192 && planWorst >= recWorst {
			t.Errorf("n=%d: planned count error %g not strictly below recurrence %g",
				n, planWorst, recWorst)
		}
	}
}

// TestPlanMatchesRecurrenceWithinBound pins the two implementations together
// on randomized data: they may differ only by accumulated round-off.
func TestPlanMatchesRecurrenceWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{2, 16, 128, 4096, 32768} {
		x := randComplex(rng, n)
		a := append([]complex128(nil), x...)
		b := append([]complex128(nil), x...)
		PlanFor(n).Forward(a)
		transformRecurrence(b, false)
		var scale float64
		for _, v := range x {
			scale += cmplx.Abs(v)
		}
		if d := maxDiff(a, b); d > 1e-9*scale {
			t.Fatalf("n=%d: planned and recurrence transforms diverge by %g", n, d)
		}
	}
}

// TestPlanParallelBitIdentical asserts the parallel butterfly network is not
// merely close to the serial one but produces the exact same bits for every
// worker count, forward and inverse.
func TestPlanParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1 << 13, 1 << 14, 1 << 16} {
		p := PlanFor(n)
		x := randComplex(rng, n)
		for _, inverse := range []bool{false, true} {
			serial := append([]complex128(nil), x...)
			p.Transform(serial, inverse, 1)
			for _, workers := range []int{2, 3, 4, 7, 8, 16} {
				par := append([]complex128(nil), x...)
				p.Transform(par, inverse, workers)
				for i := range par {
					if par[i] != serial[i] {
						t.Fatalf("n=%d workers=%d inverse=%v: element %d differs: %v vs %v",
							n, workers, inverse, i, par[i], serial[i])
					}
				}
			}
		}
	}
}

func TestPlanCrossCorrelateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, pair := range [][2]int{{5, 5}, {8, 20}, {33, 7}, {100, 100}} {
		a := make([]float64, pair[0])
		b := make([]float64, pair[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := PlanFor(NextPow2(len(a)+len(b))).CrossCorrelate(a, b)
		want := crossCorrelateNaive(a, b)
		for p := range want {
			if math.Abs(got[p]-want[p]) > 1e-6 {
				t.Fatalf("CrossCorrelate[%d] = %g, want %g", p, got[p], want[p])
			}
		}
	}
}

// TestPlanSelfCorrelationPath covers the a == b fast path (one forward
// transform instead of two) against the generic two-input path.
func TestPlanSelfCorrelationPath(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 3, 64, 1000} {
		x := make([]float64, n)
		for i := range x {
			if rng.Intn(3) == 0 {
				x[i] = 1
			}
		}
		p := PlanFor(NextPow2(2 * n))
		self := p.CrossCorrelate(x, x)
		distinct := p.CrossCorrelate(x, append([]float64(nil), x...))
		naive := crossCorrelateNaive(x, x)
		for i := range self {
			if math.Abs(self[i]-naive[i]) > 1e-6 {
				t.Fatalf("n=%d lag %d: self path %g vs naive %g", n, i, self[i], naive[i])
			}
			if math.Abs(self[i]-distinct[i]) > 1e-6 {
				t.Fatalf("n=%d lag %d: self path %g vs two-input path %g", n, i, self[i], distinct[i])
			}
		}
	}
}

func TestPlanAutocorrelateCountsMatchesPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, n := range []int{1, 2, 7, 100, 4096} {
		x := make([]float64, n)
		for i := range x {
			if rng.Intn(4) == 0 {
				x[i] = 1
			}
		}
		p := PlanFor(NextPow2(2 * n))
		got := p.AutocorrelateCounts(x)
		want := AutocorrelateCounts(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d lag %d: plan count %d vs package count %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestPlanPairCountsBitIdenticalAcrossWorkers checks the packed pair path at
// every parallelism level against the serial per-symbol counts.
func TestPlanPairCountsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 1 << 13
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			x1[i] = 1
		}
		if rng.Intn(5) == 0 {
			x2[i] = 1
		}
	}
	want1 := AutocorrelateCounts(x1)
	want2 := AutocorrelateCounts(x2)
	p := PlanFor(NextPow2(2 * n))
	out1 := make([]int64, n)
	out2 := make([]int64, n)
	for _, workers := range []int{1, 2, 4, 8} {
		p.AutocorrelateCountsPairInto(x1, x2, out1, out2, workers)
		for i := 0; i < n; i++ {
			if out1[i] != want1[i] || out2[i] != want2[i] {
				t.Fatalf("workers=%d lag %d: pair (%d,%d) vs singles (%d,%d)",
					workers, i, out1[i], out2[i], want1[i], want2[i])
			}
		}
	}
}

// TestPlanZeroAllocAfterWarmup verifies the headline property: once the
// scratch pool is warm, the batched count paths allocate nothing.
func TestPlanZeroAllocAfterWarmup(t *testing.T) {
	n := 1 << 10
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for i := 0; i < n; i += 3 {
		x1[i] = 1
		x2[(i+1)%n] = 1
	}
	p := PlanFor(NextPow2(2 * n))
	out1 := make([]int64, n)
	out2 := make([]int64, n)
	p.AutocorrelateCountsPairInto(x1, x2, out1, out2, 1) // warm the pool
	p.AutocorrelateCountsInto(x1, out1, 1)
	allocs := testing.AllocsPerRun(20, func() {
		p.AutocorrelateCountsPairInto(x1, x2, out1, out2, 1)
		p.AutocorrelateCountsInto(x1, out1, 1)
	})
	// A concurrent GC sweep can occasionally empty the sync.Pool mid-run, so
	// tolerate a stray refill rather than flake.
	if allocs > 1 {
		t.Fatalf("count paths allocate %.1f times per run after warm-up", allocs)
	}
}

func TestValidateCountPrecisionPair(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n := 1 << 14
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			x1[i] = 1
		}
		if rng.Intn(3) == 0 {
			x2[i] = 1
		}
	}
	if worst := ValidateCountPrecisionPair(x1, x2); worst > 1e-3 {
		t.Fatalf("pair-packed count error %g too close to 0.5 at n=%d", worst, n)
	}
	if got := ValidateCountPrecisionPair(nil, nil); got != 0 {
		t.Fatalf("empty pair precision = %g, want 0", got)
	}
}

func TestValidateCountPrecisionPairMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch: want panic")
		}
	}()
	ValidateCountPrecisionPair(make([]float64, 2), make([]float64, 3))
}
