// Real-input FFT kernel. The per-symbol indicator sequences the miner
// correlates are real, so the full complex transform wastes half its work on
// an imaginary part that is identically zero. The standard remedy packs the
// even/odd samples of a length-m real sequence into a length-h = m/2 complex
// vector, runs one half-size complex transform, and recovers the true
// spectrum with an O(h) split post-pass — halving both the transform size
// and the pooled scratch. The half spectrum is stored packed in h slots:
// spec[k] = X(k) for 1 ≤ k < h, and spec[0] = (X(0), X(h)) — both real for
// real input — so every buffer the kernel touches is a pool-sized length-h
// slice. The upper half of the spectrum is implied by X(m−k) = conj(X(k)).
package fft

import (
	"fmt"
	"math"
)

// Kernel selects the transform kernel behind the correlation and count entry
// points. The kernels are interchangeable: counts are byte-identical because
// the raw spectra agree far within the 0.5 rounding margin.
type Kernel uint8

const (
	// KernelAuto picks the real-input kernel when the plan is large enough
	// for the split post-pass to pay for itself, else the complex kernel.
	KernelAuto Kernel = iota
	// KernelComplex forces the full-size complex transform path.
	KernelComplex
	// KernelReal forces the half-size real-input kernel.
	KernelReal
)

// realKernelMin is the plan size at or above which KernelAuto takes the
// real-input path; below it the O(h) post-pass overhead rivals the transform.
const realKernelMin = 32

// useReal reports whether the kernel choice resolves to the real-input path
// for this plan. The decision depends only on the plan size — never on the
// worker count — so any worker count yields bit-identical results.
func (p *Plan) useReal(k Kernel) bool {
	switch k {
	case KernelComplex:
		return false
	case KernelReal:
		return p.n >= 4 // the packed layout needs h = n/2 ≥ 2
	default:
		return p.n >= realKernelMin
	}
}

// packReal packs x into even/odd pairs, z[j] = (x[2j], x[2j+1]), zero-padding
// the tail of z.
//
//opvet:noalloc
func packReal(z []complex128, x []float64) {
	nx := len(x)
	j := 0
	for ; 2*j+1 < nx; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	if 2*j < nx {
		z[j] = complex(x[2*j], 0)
		j++
	}
	clear(z[j:])
}

// unpackReal writes the real sequence back out of the packed complex vector:
// x[2j] = Re z[j], x[2j+1] = Im z[j], for the prefix len(x) ≤ 2·len(z).
//
//opvet:noalloc
func unpackReal(x []float64, z []complex128) {
	n := len(x)
	for j := 0; 2*j < n; j++ {
		x[2*j] = real(z[j])
		if 2*j+1 < n {
			x[2*j+1] = imag(z[j])
		}
	}
}

// forwardRealPost converts the half-size transform Z of the packed sequence
// into the packed half spectrum, in place. With E(k), O(k) the DFTs of the
// even and odd samples, Z(k) = E(k) + i·O(k) and the Hermitian symmetry of
// both gives, over (k, h−k) pairs,
//
//	E = (Z(k) + conj(Z(h−k)))/2,  O = (Z(k) − conj(Z(h−k)))/(2i),
//	X(k) = E + w^k·O,  X(h−k) = conj(E − w^k·O),  w = exp(−2πi/m),
//
// with the self-paired slots k = 0 (→ packed (X(0), X(h))) and k = h/2
// (→ conj) handled directly. tw is the plan's forward table: tw[h+k] = w^k.
//
//opvet:noalloc
func forwardRealPost(z []complex128, tw []complex128) {
	h := len(z)
	z0 := z[0]
	z[0] = complex(real(z0)+imag(z0), real(z0)-imag(z0))
	zm := z[h/2]
	z[h/2] = complex(real(zm), -imag(zm))
	for k := 1; 2*k < h; k++ {
		zk, zhk := z[k], z[h-k]
		c := complex(real(zhk), -imag(zhk))
		e := (zk + c) * 0.5
		d := zk - c
		o := complex(imag(d)*0.5, -real(d)*0.5) // d/(2i)
		wo := tw[h+k] * o
		a := e + wo
		b := e - wo
		z[k] = a
		z[h-k] = complex(real(b), -imag(b))
	}
}

// inverseRealPre converts a packed half spectrum into the half-size complex
// vector whose inverse transform is the packed real sequence — the exact
// algebraic inverse of forwardRealPost, using the inverse table ti
// (ti[h+k] = w^{−k}) for the untwiddle. The half-size inverse transform's
// built-in 1/h scaling is precisely the factor the length-m real inverse
// needs; no extra scaling applies.
//
//opvet:noalloc
func inverseRealPre(z []complex128, ti []complex128) {
	h := len(z)
	z0 := z[0] // packed (X(0), X(h)), both real
	z[0] = complex((real(z0)+imag(z0))*0.5, (real(z0)-imag(z0))*0.5)
	zm := z[h/2]
	z[h/2] = complex(real(zm), -imag(zm))
	for k := 1; 2*k < h; k++ {
		xk, xhk := z[k], z[h-k]
		c := complex(real(xhk), -imag(xhk))
		e := (xk + c) * 0.5
		d := (xk - c) * 0.5
		o := ti[h+k] * d
		// Z(k) = E + i·O, Z(h−k) = conj(E) + i·conj(O).
		z[k] = complex(real(e)-imag(o), imag(e)+real(o))
		z[h-k] = complex(real(e)+imag(o), -imag(e)+real(o))
	}
}

// autocorrSpectrumReal fuses forwardRealPost, the power spectrum |X|², and
// inverseRealPre into one O(h) pass: z arrives as the half-size forward
// transform of the packed sequence and leaves ready for the half-size
// inverse transform, whose output unpacks to the raw autocorrelation. The
// power spectrum is real and symmetric (P(m−k) = P(k)), so with
// ep = (P(k)+P(h−k))/2 and dd = (P(k)−P(h−k))/2 the pre-passed value is
// Z(k) = ep + i·w^{−k}·dd and Z(h−k) = ep + i·w^k·dd.
//
//opvet:noalloc
func autocorrSpectrumReal(z []complex128, tw []complex128) {
	h := len(z)
	z0 := z[0]
	x0 := real(z0) + imag(z0)
	xh := real(z0) - imag(z0)
	p0, ph := x0*x0, xh*xh
	z[0] = complex((p0+ph)*0.5, (p0-ph)*0.5)
	zm := z[h/2]
	z[h/2] = complex(real(zm)*real(zm)+imag(zm)*imag(zm), 0)
	for k := 1; 2*k < h; k++ {
		zk, zhk := z[k], z[h-k]
		c := complex(real(zhk), -imag(zhk))
		e := (zk + c) * 0.5
		d := zk - c
		o := complex(imag(d)*0.5, -real(d)*0.5)
		w := tw[h+k]
		wo := w * o
		a := e + wo
		b := e - wo
		pk := real(a)*real(a) + imag(a)*imag(a)
		phk := real(b)*real(b) + imag(b)*imag(b)
		ep := (pk + phk) * 0.5
		dd := (pk - phk) * 0.5
		z[k] = complex(ep+imag(w)*dd, real(w)*dd)
		z[h-k] = complex(ep-imag(w)*dd, real(w)*dd)
	}
}

// ForwardReal computes the DFT of the real sequence x (len(x) ≤ Size,
// zero-padded) and writes the packed half spectrum into spec, which must
// have length Size/2: spec[k] = X(k) for 1 ≤ k < Size/2, and spec[0] packs
// (X(0), X(Size/2)). X(Size−k) = conj(X(k)) supplies the upper half.
func (p *Plan) ForwardReal(x []float64, spec []complex128) {
	p.ForwardRealWorkers(x, spec, p.autoWorkers())
}

// ForwardRealWorkers is ForwardReal with an explicit worker count.
//
//opvet:noalloc
func (p *Plan) ForwardRealWorkers(x []float64, spec []complex128, workers int) {
	p.checkReal(len(x), len(spec))
	packReal(spec, x)
	p.halfPlan().Transform(spec, false, workers)
	forwardRealPost(spec, p.twf)
}

// InverseReal recovers the real sequence from a packed half spectrum (the
// ForwardReal layout), writing the first len(x) ≤ Size samples into x. spec
// is consumed: the transform runs in place through it as scratch.
func (p *Plan) InverseReal(spec []complex128, x []float64) {
	p.InverseRealWorkers(spec, x, p.autoWorkers())
}

// InverseRealWorkers is InverseReal with an explicit worker count.
//
//opvet:noalloc
func (p *Plan) InverseRealWorkers(spec []complex128, x []float64, workers int) {
	p.checkReal(len(x), len(spec))
	inverseRealPre(spec, p.twi)
	p.halfPlan().Transform(spec, true, workers)
	unpackReal(x, spec)
}

// checkReal validates a real-kernel call: the plan must be large enough for
// the packed layout (Size ≥ 4), the sequence must fit, and the spectrum
// buffer must be exactly the packed half length.
func (p *Plan) checkReal(nx, nspec int) int {
	h := p.n / 2
	if h < 2 {
		panic(fmt.Sprintf("fft: plan size %d too small for the real-input kernel (need ≥ 4)", p.n))
	}
	if nx > p.n {
		panic(fmt.Sprintf("fft: plan size %d, real input length %d", p.n, nx))
	}
	if nspec != h {
		panic(fmt.Sprintf("fft: packed spectrum length %d, want %d", nspec, h))
	}
	return h
}

// autocorrRealInto computes rounded autocorrelation counts through the
// real-input kernel: pack, half-size forward, fused spectral pass, half-size
// inverse, round. Everything runs in one pooled half-size buffer.
//
//opvet:noalloc
func (p *Plan) autocorrRealInto(x []float64, out []int64, workers int) {
	q := p.halfPlan()
	zp := q.scratch()
	z := *zp
	packReal(z, x)
	q.Transform(z, false, workers)
	autocorrSpectrumReal(z, p.twf)
	q.Transform(z, true, workers)
	n := len(x)
	for j := 0; 2*j < n; j++ {
		out[2*j] = int64(math.Round(real(z[j])))
		if 2*j+1 < n {
			out[2*j+1] = int64(math.Round(imag(z[j])))
		}
	}
	q.release(zp)
}

// autocorrRealPairInto runs two same-length autocorrelations through the
// real-input kernel, sharing the half plan's swap and twiddle passes: the
// serial path interleaves the two buffers stage by stage (one table walk
// while the entries are hot), the parallel path splits each transform's
// butterflies across the workers. Either way each buffer sees exactly the
// operations of the single-input path, so results are bit-identical.
//
//opvet:noalloc
func (p *Plan) autocorrRealPairInto(x1, x2 []float64, out1, out2 []int64, workers int) {
	q := p.halfPlan()
	z1p, z2p := q.scratch(), q.scratch()
	z1, z2 := *z1p, *z2p
	packReal(z1, x1)
	packReal(z2, x2)
	q.transformPair(z1, z2, false, workers)
	autocorrSpectrumReal(z1, p.twf)
	autocorrSpectrumReal(z2, p.twf)
	q.transformPair(z1, z2, true, workers)
	n := len(x1)
	for j := 0; 2*j < n; j++ {
		out1[2*j] = int64(math.Round(real(z1[j])))
		out2[2*j] = int64(math.Round(real(z2[j])))
		if 2*j+1 < n {
			out1[2*j+1] = int64(math.Round(imag(z1[j])))
			out2[2*j+1] = int64(math.Round(imag(z2[j])))
		}
	}
	q.release(z1p)
	q.release(z2p)
}

// crossCorrelateReal is the real-input path of crossCorrelateInto: forward
// both sequences through the packed half spectrum, multiply conj(A)·B
// Hermitian-wise (slot 0 multiplies the packed DC and Nyquist terms
// pointwise — both spectra are real there), and invert.
//
//opvet:noalloc
func (p *Plan) crossCorrelateReal(a, b []float64, out []float64, workers int) {
	q := p.halfPlan()
	h := p.n / 2
	zap := q.scratch()
	za := *zap
	if sameSlice(a, b) {
		packReal(za, a)
		q.Transform(za, false, workers)
		autocorrSpectrumReal(za, p.twf)
		q.Transform(za, true, workers)
	} else {
		zbp := q.scratch()
		zb := *zbp
		packReal(za, a)
		packReal(zb, b)
		q.transformPair(za, zb, false, workers)
		forwardRealPost(za, p.twf)
		forwardRealPost(zb, p.twf)
		a0, b0 := za[0], zb[0]
		za[0] = complex(real(a0)*real(b0), imag(a0)*imag(b0))
		for k := 1; k < h; k++ {
			za[k] = complex(real(za[k]), -imag(za[k])) * zb[k]
		}
		q.release(zbp)
		inverseRealPre(za, p.twi)
		q.Transform(za, true, workers)
	}
	unpackReal(out, za)
	q.release(zap)
}
