// Batched multi-buffer transforms. The detect stage runs σ same-size
// transforms (one per alphabet symbol); re-entering the plan per buffer
// walks the swap list and every twiddle block σ times from cold. The batch
// entry points run the whole set through one pass of the plan's setup: the
// serial path interleaves buffers at stage granularity, so each stage's
// twiddle block is loaded once and reused across all buffers while hot; the
// parallel path spreads whole buffers (and, when buffers outnumber workers,
// their butterfly ranges) across the worker budget. Both paths apply exactly
// the per-element operations of the single-buffer transform in the same
// order, so batch output is bit-identical to calling Transform per buffer at
// any worker count.
package fft

import "periodica/internal/obs"

// TransformBatch transforms every buffer in xs (each of length Size) in
// place, forward or inverse, sharing one setup pass across the batch.
func (p *Plan) TransformBatch(xs [][]complex128, inverse bool, workers int) {
	n := p.n
	for _, x := range xs {
		if len(x) != n {
			panic("fft: batch buffer length does not match plan size")
		}
	}
	if len(xs) == 0 || n == 1 {
		return
	}
	obs.FFT().KernelBatch.Inc()
	if len(xs) == 1 {
		p.Transform(xs[0], inverse, workers)
		return
	}
	tw := p.twf
	if inverse {
		tw = p.twi
	}
	fourStep := p.useFourStep()
	if workers > 1 {
		// Split the worker budget: buffers across groups, then leftover
		// parallelism inside each buffer's transform.
		groups := min(workers, len(xs))
		inner := workers / groups
		parallelRange(groups, func(g int) {
			lo := len(xs) * g / groups
			hi := len(xs) * (g + 1) / groups
			for _, x := range xs[lo:hi] {
				switch {
				case fourStep:
					p.transformFourStep(x, inverse, inner)
				case inner > 1 && n/inner >= minParallelChunk:
					p.transformParallel(x, tw, inner)
				default:
					applySwaps(x, p.swaps)
					runStages(x, tw, 0, n, n)
				}
			}
		})
	} else if fourStep {
		for _, x := range xs {
			p.transformFourStep(x, inverse, 1)
		}
	} else {
		p.transformBatchSerial(xs, tw)
	}
	if inverse {
		inv := 1 / float64(n)
		for _, x := range xs {
			for i := range x {
				x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
			}
		}
	}
}

// transformBatchSerial interleaves the buffers stage by stage: all swap
// passes, then the radix-4 head of every buffer, then each later stage group
// across every buffer — one walk of each twiddle block per batch instead of
// per buffer.
//
//opvet:noalloc
func (p *Plan) transformBatchSerial(xs [][]complex128, tw []complex128) {
	n := p.n
	for _, x := range xs {
		applySwaps(x, p.swaps)
		stageHead(x, tw, 0, n, n)
	}
	for size := 8; size <= n; size <<= 2 {
		for _, x := range xs {
			stageGroup(x, tw, 0, n, n, size)
		}
	}
}

// transformPair transforms two buffers with a shared setup. The serial path
// goes through the stage-interleaved batch kernel with a stack-allocated
// two-element batch — no per-call heap traffic, which keeps the pair
// autocorrelation hot loop allocation-free; the parallel and four-step paths
// delegate to the per-buffer kernels.
//
//opvet:noalloc
func (p *Plan) transformPair(z1, z2 []complex128, inverse bool, workers int) {
	if p.useFourStep() || (workers > 1 && p.n/workers >= minParallelChunk) {
		p.Transform(z1, inverse, workers)
		p.Transform(z2, inverse, workers)
		return
	}
	obs.FFT().KernelBatch.Inc()
	tw := p.twf
	if inverse {
		tw = p.twi
	}
	var both [2][]complex128
	both[0], both[1] = z1, z2
	p.transformBatchSerial(both[:], tw)
	if inverse {
		inv := 1 / float64(p.n)
		for i := range z1 {
			z1[i] = complex(real(z1[i])*inv, imag(z1[i])*inv)
		}
		for i := range z2 {
			z2[i] = complex(real(z2[i])*inv, imag(z2[i])*inv)
		}
	}
}
