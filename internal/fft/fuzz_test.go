package fft

import (
	"math"
	"testing"
)

// FuzzPlanTransformEquivalence drives the planned engine with fuzz-shaped
// indicator vectors and checks its three contracts at once: autocorrelation
// counts from the plan equal the counts from the seed recurrence transform,
// the pair-packed path equals the per-vector path, and parallel butterflies
// equal serial ones bit-for-bit.
func FuzzPlanTransformEquivalence(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0, 0, 1, 0}, []byte{0, 1, 1, 0})
	f.Add([]byte{1}, []byte{1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, d1, d2 []byte) {
		if len(d1) == 0 || len(d1) > 1024 {
			t.Skip()
		}
		n := len(d1)
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		for i := range x1 {
			if d1[i]&1 == 1 {
				x1[i] = 1
			}
			if i < len(d2) && d2[i]&1 == 1 {
				x2[i] = 1
			}
		}
		m := NextPow2(2 * n)
		p := PlanFor(m)

		// Counts via the recurrence network (seed semantics).
		fa := make([]complex128, m)
		loadPadded(fa, x1)
		transformRecurrence(fa, false)
		for i := range fa {
			re, im := real(fa[i]), imag(fa[i])
			fa[i] = complex(re*re+im*im, 0)
		}
		transformRecurrence(fa, true)

		got := p.AutocorrelateCounts(x1)
		for i := 0; i < n; i++ {
			want := int64(math.Round(real(fa[i])))
			if got[i] != want {
				t.Fatalf("lag %d: plan count %d, recurrence count %d", i, got[i], want)
			}
		}

		// Pair-packed path against per-vector counts, at several worker counts.
		want2 := p.AutocorrelateCounts(x2)
		out1 := make([]int64, n)
		out2 := make([]int64, n)
		for _, workers := range []int{1, 4} {
			p.AutocorrelateCountsPairInto(x1, x2, out1, out2, workers)
			for i := 0; i < n; i++ {
				if out1[i] != got[i] || out2[i] != want2[i] {
					t.Fatalf("workers=%d lag %d: pair (%d,%d) vs singles (%d,%d)",
						workers, i, out1[i], out2[i], got[i], want2[i])
				}
			}
		}

		// Raw parallel vs serial transforms must be bit-identical.
		serial := make([]complex128, m)
		par := make([]complex128, m)
		loadPadded(serial, x1)
		loadPadded(par, x1)
		p.Transform(serial, false, 1)
		p.Transform(par, false, 4)
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("element %d: serial %v vs parallel %v", i, serial[i], par[i])
			}
		}
	})
}
