// External (out-of-core) FFT via the four-step decomposition: a length-N
// transform, N = R·C, becomes R-point FFTs over columns, a twiddle pass, and
// C-point FFTs over rows, glued by blocked on-disk transposes. Only
// O(√N + tile²) elements are resident at a time, which is the paper's route
// (its reference [19]) to running the convolution over databases that do not
// fit in memory.
package fft

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

const complexBytes = 16

// ExternalOptions tune the out-of-core transform.
type ExternalOptions struct {
	// TmpDir holds the scratch transpose file; defaults to the data file's
	// directory.
	TmpDir string
	// MemElements caps the number of complex values held in memory at once
	// (minimum 4·√N; default 1<<20 ≈ 16 MiB).
	MemElements int
}

func (o ExternalOptions) withDefaults() ExternalOptions {
	if o.MemElements == 0 {
		o.MemElements = 1 << 20
	}
	return o
}

// TransformFile runs an in-place forward or inverse DFT over a file of n
// little-endian complex128 values (16 bytes each: real, imaginary). n must be
// a power of two ≥ 4.
func TransformFile(path string, n int, inverse bool, opts ExternalOptions) (err error) {
	opts = opts.withDefaults()
	if !IsPow2(n) || n < 4 {
		return fmt.Errorf("fft: external transform needs a power-of-two length ≥ 4, got %d", n)
	}
	// Split N = R·C with R ≤ C, both powers of two.
	r := 1 << (uint(log2(n)) / 2)
	c := n / r
	if opts.MemElements < 4*c {
		return fmt.Errorf("fft: MemElements %d too small for n=%d (need ≥ %d)", opts.MemElements, n, 4*c)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer func() {
		// f was written in place; a close failure can hide lost writes.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := checkSize(f, n); err != nil {
		return err
	}

	dir := opts.TmpDir
	if dir == "" {
		dir = filepath.Dir(path)
	}
	scratch, err := os.CreateTemp(dir, "fft-scratch-*")
	if err != nil {
		return err
	}
	defer func() { // scratch is discarded either way; cleanup is best-effort
		_ = scratch.Close()
		_ = os.Remove(scratch.Name())
	}()
	if err := scratch.Truncate(int64(n) * complexBytes); err != nil {
		return err
	}

	tile := tileSize(opts.MemElements)

	// Step 1: transpose R×C → C×R so each original column is a contiguous
	// row of length R.
	if err := transpose(f, scratch, r, c, tile); err != nil {
		return err
	}
	// Step 2: FFT each length-R row and apply the twiddle w_N^{s·c}, where
	// the row index is c and the in-row index is s.
	if err := rowPass(scratch, c, r, inverse, n, opts.MemElements); err != nil {
		return err
	}
	// Step 3: transpose back C×R → R×C.
	if err := transpose(scratch, f, c, r, tile); err != nil {
		return err
	}
	// Step 4: FFT each length-C row (no twiddle).
	if err := rowPass(f, r, c, inverse, 0, opts.MemElements); err != nil {
		return err
	}
	// Step 5: transpose R×C → C×R; reading the result row-major yields the
	// transform in natural order.
	if err := transpose(f, scratch, r, c, tile); err != nil {
		return err
	}
	return copyFile(scratch, f, n)
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

func tileSize(memElements int) int {
	t := 1
	for (t*2)*(t*2) <= memElements/2 {
		t *= 2
	}
	return t
}

func checkSize(f *os.File, n int) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() != int64(n)*complexBytes {
		return fmt.Errorf("fft: file holds %d bytes, want %d for n=%d", st.Size(), int64(n)*complexBytes, n)
	}
	return nil
}

// transpose writes the transpose of the rows×cols matrix in src to dst,
// tile by tile.
func transpose(src, dst *os.File, rows, cols, tile int) error {
	buf := make([]complex128, tile*tile)
	out := make([]complex128, tile*tile)
	for r0 := 0; r0 < rows; r0 += tile {
		rh := min(tile, rows-r0)
		for c0 := 0; c0 < cols; c0 += tile {
			cw := min(tile, cols-c0)
			for i := 0; i < rh; i++ {
				off := int64((r0+i)*cols+c0) * complexBytes
				if err := readComplex(src, off, buf[i*cw:(i+1)*cw]); err != nil {
					return err
				}
			}
			for i := 0; i < rh; i++ {
				for j := 0; j < cw; j++ {
					out[j*rh+i] = buf[i*cw+j]
				}
			}
			for j := 0; j < cw; j++ {
				off := int64((c0+j)*rows+r0) * complexBytes
				if err := writeComplex(dst, off, out[j*rh:(j+1)*rh]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// rowPass FFTs every length-rowLen row of the rows×rowLen matrix in f,
// batching as many rows as fit in memory. When twiddleN > 0, element s of
// row c is multiplied by w_twiddleN^{s·c} (conjugated for inverse
// transforms) after the FFT.
func rowPass(f *os.File, rows, rowLen int, inverse bool, twiddleN, memElements int) error {
	batch := max(1, memElements/(2*rowLen))
	buf := make([]complex128, batch*rowLen)
	// All rows share one length, so one cached plan serves the whole pass —
	// the twiddle tables and bit-reversal permutation are built once, not
	// once per row.
	plan := PlanFor(rowLen)
	for r0 := 0; r0 < rows; r0 += batch {
		rh := min(batch, rows-r0)
		chunk := buf[:rh*rowLen]
		off := int64(r0*rowLen) * complexBytes
		if err := readComplex(f, off, chunk); err != nil {
			return err
		}
		for i := 0; i < rh; i++ {
			row := chunk[i*rowLen : (i+1)*rowLen]
			if inverse {
				plan.Inverse(row)
			} else {
				plan.Forward(row)
			}
			if twiddleN > 0 {
				c := r0 + i
				applyTwiddle(row, c, twiddleN, inverse)
			}
		}
		if err := writeComplex(f, off, chunk); err != nil {
			return err
		}
	}
	return nil
}

func applyTwiddle(row []complex128, c, n int, inverse bool) {
	ang := -2 * math.Pi * float64(c) / float64(n)
	if inverse {
		ang = -ang
	}
	step := complex(math.Cos(ang), math.Sin(ang))
	w := complex(1, 0)
	for s := range row {
		row[s] *= w
		w *= step
	}
}

func readComplex(f *os.File, off int64, dst []complex128) error {
	raw := make([]byte, len(dst)*complexBytes)
	if _, err := f.ReadAt(raw, off); err != nil {
		return err
	}
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
		dst[i] = complex(re, im)
	}
	return nil
}

func writeComplex(f *os.File, off int64, src []complex128) error {
	raw := make([]byte, len(src)*complexBytes)
	for i, v := range src {
		binary.LittleEndian.PutUint64(raw[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(raw[i*16+8:], math.Float64bits(imag(v)))
	}
	_, err := f.WriteAt(raw, off)
	return err
}

func copyFile(src, dst *os.File, n int) error {
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := dst.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := io.CopyN(dst, src, int64(n)*complexBytes)
	return err
}

// WriteComplexFile writes values as a complex file TransformFile accepts.
func WriteComplexFile(path string, values []complex128) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeComplex(f, 0, values); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadComplexFile reads n complex values from a file written by
// WriteComplexFile or produced by TransformFile.
func ReadComplexFile(path string, n int) ([]complex128, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	out := make([]complex128, n)
	if err := readComplex(f, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AutocorrelateFile computes the lag-match counts r[p] = Σ_i x_i·x_{i+p} of
// a 0/1 indicator stored on disk (one byte per position, values 0 or 1),
// running the convolution entirely through the external FFT: the padded
// complex working arrays — 32× the input size — never reside in memory.
func AutocorrelateFile(indicatorPath string, n int, opts ExternalOptions) ([]int64, error) {
	opts = opts.withDefaults()
	in, err := os.Open(indicatorPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = in.Close() }() // read-only; nothing to lose on close

	m := NextPow2(2 * n)
	if m < 4 {
		m = 4
	}
	dir := opts.TmpDir
	if dir == "" {
		dir = filepath.Dir(indicatorPath)
	}
	work, err := os.CreateTemp(dir, "fft-work-*")
	if err != nil {
		return nil, err
	}
	defer func() { // work is discarded either way; cleanup is best-effort
		_ = work.Close()
		_ = os.Remove(work.Name())
	}()
	if err := work.Truncate(int64(m) * complexBytes); err != nil {
		return nil, err
	}

	// Stream the indicator bytes into the zero-padded complex file.
	const chunk = 1 << 16
	raw := make([]byte, chunk)
	vals := make([]complex128, chunk)
	for off := 0; off < n; off += chunk {
		want := min(chunk, n-off)
		if _, err := io.ReadFull(in, raw[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			if raw[i] != 0 {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		}
		if err := writeComplex(work, int64(off)*complexBytes, vals[:want]); err != nil {
			return nil, err
		}
	}

	if err := TransformFile(work.Name(), m, false, opts); err != nil {
		return nil, err
	}
	// Pointwise |X|² (= conj(X)·X), streamed.
	batch := make([]complex128, min(m, chunk))
	for off := 0; off < m; off += len(batch) {
		want := min(len(batch), m-off)
		if err := readComplex(work, int64(off)*complexBytes, batch[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			re, im := real(batch[i]), imag(batch[i])
			batch[i] = complex(re*re+im*im, 0)
		}
		if err := writeComplex(work, int64(off)*complexBytes, batch[:want]); err != nil {
			return nil, err
		}
	}
	if err := TransformFile(work.Name(), m, true, opts); err != nil {
		return nil, err
	}

	out := make([]int64, n)
	for off := 0; off < n; off += len(batch) {
		want := min(len(batch), n-off)
		if err := readComplex(work, int64(off)*complexBytes, batch[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			out[off+i] = int64(math.Round(real(batch[i])))
		}
	}
	return out, nil
}
