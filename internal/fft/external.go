// External (out-of-core) FFT via the four-step decomposition: a length-N
// transform, N = R·C, becomes R-point FFTs over columns, a twiddle pass, and
// C-point FFTs over rows, glued by blocked on-disk transposes. Only
// O(√N + tile²) elements are resident at a time, which is the paper's route
// (its reference [19]) to running the convolution over databases that do not
// fit in memory.
//
// Crash safety: by default the input file is never mutated — all passes run
// over scratch files and the finished transform is committed by a single
// atomic rename next to the data file, so a crash at any point leaves the
// input either untouched or fully transformed. The pre-durability in-place
// mode remains available behind ExternalOptions.InPlace; it records a stage
// manifest (<path>.fftstate) while running so an interrupted multi-pass
// transform is detected as ErrInterrupted instead of being read back
// half-applied.
package fft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"periodica/internal/iofault"
)

const complexBytes = 16

// stateSuffix names the stage manifest an in-place transform leaves beside
// its data file until it completes.
const stateSuffix = ".fftstate"

// ErrInterrupted reports that a data file carries the stage manifest of an
// in-place transform that never completed: its content is part-way between
// input and output and must be restored from a copy.
var ErrInterrupted = errors.New("fft: interrupted in-place transform detected; file content is partially transformed")

// ExternalOptions tune the out-of-core transform.
type ExternalOptions struct {
	// TmpDir holds intermediate scratch files; defaults to the data file's
	// directory. The commit shadow always lives in the data file's directory
	// regardless, so the final rename never crosses a filesystem boundary
	// and stays atomic.
	TmpDir string
	// MemElements caps the number of complex values held in memory at once
	// (minimum 4·√N; default 1<<20 ≈ 16 MiB).
	MemElements int
	// InPlace mutates the data file directly (the pre-durability
	// behaviour): roughly half the scratch I/O, but a crash mid-transform
	// corrupts the file. Off by default.
	InPlace bool
	// FS overrides the file layer (fault injection in tests); nil uses the
	// real filesystem.
	FS iofault.FS
}

func (o ExternalOptions) withDefaults() ExternalOptions {
	if o.MemElements == 0 {
		o.MemElements = 1 << 20
	}
	if o.FS == nil {
		o.FS = iofault.OS()
	}
	return o
}

// TransformFile runs a forward or inverse DFT over a file of n little-endian
// complex128 values (16 bytes each: real, imaginary). n must be a power of
// two ≥ 4. The default mode is crash-safe: the result is built in scratch
// files and committed over path by atomic rename.
func TransformFile(path string, n int, inverse bool, opts ExternalOptions) error {
	opts = opts.withDefaults()
	if !IsPow2(n) || n < 4 {
		return fmt.Errorf("fft: external transform needs a power-of-two length ≥ 4, got %d", n)
	}
	// Split N = R·C with R ≤ C, both powers of two.
	r := 1 << (uint(log2(n)) / 2)
	c := n / r
	if opts.MemElements < 4*c {
		return fmt.Errorf("fft: MemElements %d too small for n=%d (need ≥ %d)", opts.MemElements, n, 4*c)
	}
	if _, err := opts.FS.Stat(path + stateSuffix); err == nil {
		return fmt.Errorf("%w (stale %s)", ErrInterrupted, path+stateSuffix)
	}
	if opts.InPlace {
		return transformInPlace(path, n, r, c, inverse, opts)
	}
	return transformShadow(path, n, r, c, inverse, opts)
}

// transformShadow runs all passes over two scratch files and commits the
// result by renaming the shadow (created in the data file's directory) over
// path. The input is opened read-only and never touched; on any error both
// scratch files are removed.
func transformShadow(path string, n, r, c int, inverse bool, opts ExternalOptions) (err error) {
	fsys := opts.FS
	src, err := iofault.Open(fsys, path)
	if err != nil {
		return err
	}
	defer func() { _ = src.Close() }() // read-only; nothing to lose on close
	if err := checkSize(src, n); err != nil {
		return err
	}

	commitDir := filepath.Dir(path)
	tmpDir := opts.TmpDir
	if tmpDir == "" {
		tmpDir = commitDir
	}
	// shadow carries the final result and must sit beside the data file so
	// the commit rename cannot cross a filesystem; scratch may live on a
	// different (faster or roomier) TmpDir.
	shadow, err := fsys.CreateTemp(commitDir, "fft-shadow-*")
	if err != nil {
		return err
	}
	shadowName := shadow.Name()
	committed := false
	shadowClosed := false
	defer func() {
		if !shadowClosed {
			_ = shadow.Close() // commit already failed; the close error adds nothing
		}
		if !committed {
			_ = fsys.Remove(shadowName) // best-effort cleanup on the error path
		}
	}()
	scratch, err := fsys.CreateTemp(tmpDir, "fft-scratch-*")
	if err != nil {
		return err
	}
	defer func() { // scratch is discarded either way; cleanup is best-effort
		_ = scratch.Close()
		_ = fsys.Remove(scratch.Name())
	}()
	if err := shadow.Truncate(int64(n) * complexBytes); err != nil {
		return err
	}
	if err := scratch.Truncate(int64(n) * complexBytes); err != nil {
		return err
	}

	tile := tileSize(opts.MemElements)
	// Step 1: transpose R×C → C×R so each original column is a contiguous
	// row of length R. Reads the input, writes the shadow.
	if err := transpose(src, shadow, r, c, tile); err != nil {
		return err
	}
	// Step 2: FFT each length-R row and apply the twiddle w_N^{s·c}.
	if err := rowPass(shadow, c, r, inverse, n, opts.MemElements); err != nil {
		return err
	}
	// Step 3: transpose back C×R → R×C.
	if err := transpose(shadow, scratch, c, r, tile); err != nil {
		return err
	}
	// Step 4: FFT each length-C row (no twiddle).
	if err := rowPass(scratch, r, c, inverse, 0, opts.MemElements); err != nil {
		return err
	}
	// Step 5: transpose R×C → C×R; reading the result row-major yields the
	// transform in natural order. Lands in the shadow for the commit.
	if err := transpose(scratch, shadow, r, c, tile); err != nil {
		return err
	}

	// Commit: fsync the shadow, rename it over the data file, fsync the
	// directory. A crash before the rename leaves the input untouched; after
	// it, the transform is complete.
	if err := shadow.Sync(); err != nil {
		return err
	}
	shadowClosed = true
	if err := shadow.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(shadowName, path); err != nil {
		return err
	}
	committed = true
	return fsys.SyncDir(commitDir)
}

// transformInPlace is the pre-durability path: it mutates path directly,
// guarded by a stage manifest that marks the file suspect until the last
// pass completes. The manifest is removed whenever this function returns —
// an error return hands the (possibly mangled) file back to a caller who
// knows the transform failed — and survives only a process crash, which is
// exactly when detection is needed.
func transformInPlace(path string, n, r, c int, inverse bool, opts ExternalOptions) (err error) {
	fsys := opts.FS
	state, err := iofault.Create(fsys, path+stateSuffix)
	if err != nil {
		return err
	}
	stateName := state.Name()
	if _, err := fmt.Fprintf(state, "in-place transform n=%d inverse=%v\n", n, inverse); err != nil {
		_ = state.Close() // the write error is the one worth reporting
		return err
	}
	if err := state.Sync(); err != nil {
		_ = state.Close() // the sync error is the one worth reporting
		return err
	}
	stage := func(i int) {
		// Stage progress is advisory (existence is what gates detection);
		// its write errors must not fail the transform.
		_, _ = fmt.Fprintf(state, "stage %d done\n", i)
	}
	defer func() {
		_ = state.Close()          // advisory manifest; content already synced
		_ = fsys.Remove(stateName) // error return already marks the file suspect
	}()

	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer func() {
		// f was written in place; a close failure can hide lost writes.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := checkSize(f, n); err != nil {
		return err
	}

	dir := opts.TmpDir
	if dir == "" {
		dir = filepath.Dir(path)
	}
	scratch, err := fsys.CreateTemp(dir, "fft-scratch-*")
	if err != nil {
		return err
	}
	defer func() { // scratch is discarded either way; cleanup is best-effort
		_ = scratch.Close()
		_ = fsys.Remove(scratch.Name())
	}()
	if err := scratch.Truncate(int64(n) * complexBytes); err != nil {
		return err
	}

	tile := tileSize(opts.MemElements)
	// Step 1: transpose R×C → C×R so each original column is a contiguous
	// row of length R.
	if err := transpose(f, scratch, r, c, tile); err != nil {
		return err
	}
	stage(1)
	// Step 2: FFT each length-R row and apply the twiddle w_N^{s·c}, where
	// the row index is c and the in-row index is s.
	if err := rowPass(scratch, c, r, inverse, n, opts.MemElements); err != nil {
		return err
	}
	stage(2)
	// Step 3: transpose back C×R → R×C.
	if err := transpose(scratch, f, c, r, tile); err != nil {
		return err
	}
	stage(3)
	// Step 4: FFT each length-C row (no twiddle).
	if err := rowPass(f, r, c, inverse, 0, opts.MemElements); err != nil {
		return err
	}
	stage(4)
	// Step 5: transpose R×C → C×R; reading the result row-major yields the
	// transform in natural order.
	if err := transpose(f, scratch, r, c, tile); err != nil {
		return err
	}
	stage(5)
	return copyFile(scratch, f, n)
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

func tileSize(memElements int) int {
	t := 1
	for (t*2)*(t*2) <= memElements/2 {
		t *= 2
	}
	return t
}

func checkSize(f iofault.File, n int) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() != int64(n)*complexBytes {
		return fmt.Errorf("fft: file holds %d bytes, want %d for n=%d", st.Size(), int64(n)*complexBytes, n)
	}
	return nil
}

// transpose writes the transpose of the rows×cols matrix in src to dst,
// tile by tile.
func transpose(src, dst iofault.File, rows, cols, tile int) error {
	buf := make([]complex128, tile*tile)
	out := make([]complex128, tile*tile)
	for r0 := 0; r0 < rows; r0 += tile {
		rh := min(tile, rows-r0)
		for c0 := 0; c0 < cols; c0 += tile {
			cw := min(tile, cols-c0)
			for i := 0; i < rh; i++ {
				off := int64((r0+i)*cols+c0) * complexBytes
				if err := readComplex(src, off, buf[i*cw:(i+1)*cw]); err != nil {
					return err
				}
			}
			for i := 0; i < rh; i++ {
				for j := 0; j < cw; j++ {
					out[j*rh+i] = buf[i*cw+j]
				}
			}
			for j := 0; j < cw; j++ {
				off := int64((c0+j)*rows+r0) * complexBytes
				if err := writeComplex(dst, off, out[j*rh:(j+1)*rh]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// rowPass FFTs every length-rowLen row of the rows×rowLen matrix in f,
// batching as many rows as fit in memory. When twiddleN > 0, element s of
// row c is multiplied by w_twiddleN^{s·c} (conjugated for inverse
// transforms) after the FFT.
func rowPass(f iofault.File, rows, rowLen int, inverse bool, twiddleN, memElements int) error {
	batch := max(1, memElements/(2*rowLen))
	buf := make([]complex128, batch*rowLen)
	// All rows share one length, so one cached plan serves the whole pass —
	// the twiddle tables and bit-reversal permutation are built once, not
	// once per row.
	plan := PlanFor(rowLen)
	for r0 := 0; r0 < rows; r0 += batch {
		rh := min(batch, rows-r0)
		chunk := buf[:rh*rowLen]
		off := int64(r0*rowLen) * complexBytes
		if err := readComplex(f, off, chunk); err != nil {
			return err
		}
		for i := 0; i < rh; i++ {
			row := chunk[i*rowLen : (i+1)*rowLen]
			if inverse {
				plan.Inverse(row)
			} else {
				plan.Forward(row)
			}
			if twiddleN > 0 {
				c := r0 + i
				applyTwiddle(row, c, twiddleN, inverse)
			}
		}
		if err := writeComplex(f, off, chunk); err != nil {
			return err
		}
	}
	return nil
}

func applyTwiddle(row []complex128, c, n int, inverse bool) {
	ang := -2 * math.Pi * float64(c) / float64(n)
	if inverse {
		ang = -ang
	}
	step := complex(math.Cos(ang), math.Sin(ang))
	w := complex(1, 0)
	for s := range row {
		row[s] *= w
		w *= step
	}
}

func readComplex(f iofault.File, off int64, dst []complex128) error {
	raw := make([]byte, len(dst)*complexBytes)
	if _, err := f.ReadAt(raw, off); err != nil {
		return err
	}
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
		dst[i] = complex(re, im)
	}
	return nil
}

func writeComplex(f iofault.File, off int64, src []complex128) error {
	raw := make([]byte, len(src)*complexBytes)
	for i, v := range src {
		binary.LittleEndian.PutUint64(raw[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(raw[i*16+8:], math.Float64bits(imag(v)))
	}
	_, err := f.WriteAt(raw, off)
	return err
}

func copyFile(src, dst iofault.File, n int) error {
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := dst.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := io.CopyN(dst, src, int64(n)*complexBytes)
	return err
}

// WriteComplexFile writes values as a complex file TransformFile accepts.
func WriteComplexFile(path string, values []complex128) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeComplex(f, 0, values); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadComplexFile reads n complex values from a file written by
// WriteComplexFile or produced by TransformFile.
func ReadComplexFile(path string, n int) ([]complex128, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	out := make([]complex128, n)
	if err := readComplex(f, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AutocorrelateFile computes the lag-match counts r[p] = Σ_i x_i·x_{i+p} of
// a 0/1 indicator stored on disk (one byte per position, values 0 or 1),
// running the convolution entirely through the external FFT: the padded
// complex working arrays — 32× the input size — never reside in memory. The
// indicator file itself is never written; the transforms run in place over a
// private scratch file, which (with its stage manifest) is removed on every
// return path.
func AutocorrelateFile(indicatorPath string, n int, opts ExternalOptions) ([]int64, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	in, err := iofault.Open(fsys, indicatorPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = in.Close() }() // read-only; nothing to lose on close

	m := NextPow2(2 * n)
	if m < 4 {
		m = 4
	}
	dir := opts.TmpDir
	if dir == "" {
		dir = filepath.Dir(indicatorPath)
	}
	work, err := fsys.CreateTemp(dir, "fft-work-*")
	if err != nil {
		return nil, err
	}
	defer func() { // work is discarded either way; cleanup is best-effort
		_ = work.Close()
		_ = fsys.Remove(work.Name())
		_ = fsys.Remove(work.Name() + stateSuffix)
	}()
	if err := work.Truncate(int64(m) * complexBytes); err != nil {
		return nil, err
	}

	// Stream the indicator bytes into the zero-padded complex file.
	const chunk = 1 << 16
	raw := make([]byte, chunk)
	vals := make([]complex128, chunk)
	for off := 0; off < n; off += chunk {
		want := min(chunk, n-off)
		if _, err := io.ReadFull(in, raw[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			if raw[i] != 0 {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		}
		if err := writeComplex(work, int64(off)*complexBytes, vals[:want]); err != nil {
			return nil, err
		}
	}

	// The work file is already private scratch, so the in-place mode is the
	// right choice here: a crash only ever loses the scratch, and shadow
	// copies would double the I/O.
	workOpts := opts
	workOpts.InPlace = true
	if err := TransformFile(work.Name(), m, false, workOpts); err != nil {
		return nil, err
	}
	// Pointwise |X|² (= conj(X)·X), streamed.
	batch := make([]complex128, min(m, chunk))
	for off := 0; off < m; off += len(batch) {
		want := min(len(batch), m-off)
		if err := readComplex(work, int64(off)*complexBytes, batch[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			re, im := real(batch[i]), imag(batch[i])
			batch[i] = complex(re*re+im*im, 0)
		}
		if err := writeComplex(work, int64(off)*complexBytes, batch[:want]); err != nil {
			return nil, err
		}
	}
	if err := TransformFile(work.Name(), m, true, workOpts); err != nil {
		return nil, err
	}

	out := make([]int64, n)
	for off := 0; off < n; off += len(batch) {
		want := min(len(batch), n-off)
		if err := readComplex(work, int64(off)*complexBytes, batch[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			out[off+i] = int64(math.Round(real(batch[i])))
		}
	}
	return out, nil
}
