// Cache-blocked four-step (Bailey) transform. Past a few hundred KB the
// iterative radix-2/4 kernel's late stages stride the whole vector and
// thrash L2. The four-step decomposition views the length-n vector as an
// n1×n2 matrix (n = n1·n2), runs the n2 column transforms of length n1,
// multiplies by the twiddles exp(−2πi·k1·j2/n), then runs the n1 row
// transforms of length n2 — every sub-transform is contiguous and
// cache-resident, and the only whole-vector traffic is the L2-blocked
// transposes that keep the data unit-stride for each phase. Sub-transforms
// reuse the small plans' fused radix-2/4 kernel; the final transpose
// restores natural order so the output is the ordinary DFT.
package fft

import (
	"math"
	"sync/atomic"
)

// DefaultFourStepMin is the initial transform length at or above which
// Transform takes the four-step path. The pinned default is deliberately
// conservative — above every quick-scale working set — because where the
// crossover sits (and whether four-step wins at all) is a property of the
// host: on small-core machines with aggressive prefetchers the radix-2/4
// kernel's sequential strides stay ahead of the transposes well past 2^22.
// The autotuner measures the real crossover and moves the threshold down
// (or disables the path) per host.
const DefaultFourStepMin = 1 << 22

// fourStepFloor is the hard lower bound: below it the decomposition has no
// cache effect to exploit and the extra transposes only cost.
const fourStepFloor = 1 << 12

// FourStepDisabled is the threshold value that keeps every in-memory
// transform on the radix-2/4 kernel.
const FourStepDisabled = math.MaxInt32

// transposeBlock is the square tile edge of the blocked transposes: 64
// complex128s per row = 1 KB, so a src+dst tile pair stays well inside L2.
const transposeBlock = 64

var fourStepMin atomic.Int64

func init() { fourStepMin.Store(DefaultFourStepMin) }

// FourStepMin returns the transform length at or above which Transform uses
// the four-step decomposition.
func FourStepMin() int { return int(fourStepMin.Load()) }

// SetFourStepMin changes the four-step threshold. Values below the built-in
// floor are clamped up to it ("as early as possible"); pass FourStepDisabled
// to force the radix-2/4 kernel at every size. Safe to call concurrently
// with running transforms: each transform reads the threshold once when it
// starts, so the choice never changes mid-transform — and both kernels
// compute bit-identical counts, so flipping it never changes mining results.
func SetFourStepMin(n int) {
	if n < fourStepFloor {
		n = fourStepFloor
	}
	fourStepMin.Store(int64(n))
}

// useFourStep reports whether this plan's transforms take the four-step
// path. The decision depends only on the plan size and the global threshold,
// never on the worker count.
func (p *Plan) useFourStep() bool {
	return p.n >= fourStepFloor && int64(p.n) >= fourStepMin.Load()
}

// transformFourStep runs the five-phase decomposition over x with pooled
// scratch. Work is partitioned by matrix row (or transpose tile row), and
// each row's operations are independent of the partitioning, so every worker
// count produces bit-identical output. Inverse scaling is NOT applied here:
// the sub-transforms run raw (unscaled) on the inverse table and Transform's
// common tail applies the single 1/n, exactly as on the radix-2 path.
func (p *Plan) transformFourStep(x []complex128, inverse bool, workers int) {
	n := p.n
	n1 := 1 << (uint(log2(n)) / 2)
	n2 := n / n1
	p1, p2 := p.subPlan(n1), p.subPlan(n2)
	tw, tw1, tw2 := p.twf, p1.twf, p2.twf
	if inverse {
		tw, tw1, tw2 = p.twi, p1.twi, p2.twi
	}
	half := n / 2
	sp := p.scratch()
	s := *sp
	if workers > 1 {
		// Phase 1: transpose x (n1×n2) into s (n2×n1), tiled by row range.
		parallelRange(workers, func(w int) {
			transposeRange(s, x, n1, n2, n1*w/workers, n1*(w+1)/workers)
		})
		// Phase 2: length-n1 transform of each of the n2 rows of s (the
		// original columns), fused with the twiddle multiply.
		parallelRange(workers, func(w int) {
			fourStepColumns(s, p1, tw, tw1, n1, half, n2*w/workers, n2*(w+1)/workers)
		})
		// Phase 3: transpose back so each length-n2 transform is contiguous.
		parallelRange(workers, func(w int) {
			transposeRange(x, s, n2, n1, n2*w/workers, n2*(w+1)/workers)
		})
		// Phase 4: length-n2 transform of each of the n1 rows of x.
		parallelRange(workers, func(w int) {
			fourStepRows(x, p2, tw2, n2, n1*w/workers, n1*(w+1)/workers)
		})
		// Phase 5: final transpose to natural order, then copy back.
		parallelRange(workers, func(w int) {
			transposeRange(s, x, n1, n2, n1*w/workers, n1*(w+1)/workers)
		})
		parallelRange(workers, func(w int) {
			copy(x[n*w/workers:n*(w+1)/workers], s[n*w/workers:n*(w+1)/workers])
		})
	} else {
		transposeRange(s, x, n1, n2, 0, n1)
		fourStepColumns(s, p1, tw, tw1, n1, half, 0, n2)
		transposeRange(x, s, n2, n1, 0, n2)
		fourStepRows(x, p2, tw2, n2, 0, n1)
		transposeRange(s, x, n1, n2, 0, n1)
		copy(x, s)
	}
	p.release(sp)
}

// transposeRange transposes rows r0..r1 of the rows×cols matrix src into
// dst (cols×rows), in square tiles so one src tile row and one dst tile
// column stay cache-resident together.
//
//opvet:noalloc
func transposeRange(dst, src []complex128, rows, cols, r0, r1 int) {
	for rb := r0; rb < r1; rb += transposeBlock {
		rhi := min(rb+transposeBlock, r1)
		for cb := 0; cb < cols; cb += transposeBlock {
			chi := min(cb+transposeBlock, cols)
			for r := rb; r < rhi; r++ {
				base := r * cols
				for c := cb; c < chi; c++ {
					dst[c*rows+r] = src[base+c]
				}
			}
		}
	}
}

// fourStepColumns transforms rows r0..r1 of the n2×n1 matrix s (each row is
// one column of the original view) with the length-n1 sub-plan, then
// multiplies element k1 of row j2 by the inter-phase twiddle w^(k1·j2),
// where w = exp(∓2πi/n). The exponent e = k1·j2 < n indexes the full-size
// table directly: tw[half+e] for e < half, and −tw[e] above (the table's
// second half-period), so no root is recomputed.
//
//opvet:noalloc
func fourStepColumns(s []complex128, p1 *Plan, tw, tw1 []complex128, n1, half int, r0, r1 int) {
	for j2 := r0; j2 < r1; j2++ {
		row := s[j2*n1 : (j2+1)*n1]
		applySwaps(row, p1.swaps)
		runStages(row, tw1, 0, n1, n1)
		if j2 == 0 {
			continue
		}
		for k1 := 1; k1 < n1; k1++ {
			e := k1 * j2
			if e < half {
				row[k1] *= tw[half+e]
			} else {
				row[k1] *= -tw[e]
			}
		}
	}
}

// fourStepRows transforms rows r0..r1 of the n1×n2 matrix x with the
// length-n2 sub-plan.
//
//opvet:noalloc
func fourStepRows(x []complex128, p2 *Plan, tw2 []complex128, n2 int, r0, r1 int) {
	for k1 := r0; k1 < r1; k1++ {
		row := x[k1*n2 : (k1+1)*n2]
		applySwaps(row, p2.swaps)
		runStages(row, tw2, 0, n2, n2)
	}
}
