// Startup autotuner. Three crossovers govern the convolution hot path — the
// series length where the FFT engine overtakes the quadratic scan
// (core.resolveEngine's pinned 4096), the transform length where splitting
// butterflies across goroutines pays (ParallelThreshold), and the length
// where the cache-blocked four-step kernel beats the fused radix-2/4 kernel
// (FourStepMin) — and all three are properties of the host, not the program.
// Autotune measures them with a short calibration sweep and returns a
// TunedProfile; ApplyTuned installs it, Save/LoadTuned persist it as JSON so
// long-lived deployments calibrate once (honoring PERIODICA_TUNE_FILE), and
// ResetTuned restores the pinned defaults. Every knob only moves a
// crossover between kernels that compute byte-identical counts, so a tuned
// and an untuned process mine byte-identical results.
package fft

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"periodica/internal/obs"
)

// TuneFileEnv names the environment variable holding the path of a tuned
// profile JSON to load at startup (see LoadTunedFromEnv).
const TuneFileEnv = "PERIODICA_TUNE_FILE"

// TunedProfile is the persisted result of one calibration sweep. Zero-valued
// thresholds mean "keep the built-in default" — a profile from an older
// build stays applicable when a knob it does not know about is added.
type TunedProfile struct {
	// Host and CreatedAt identify where and when the sweep ran; profiles are
	// per-host measurements and should not travel between machines.
	Host      string `json:"host,omitempty"`
	CreatedAt string `json:"createdAt,omitempty"`
	// GoMaxProcs is the parallelism the sweep saw; a profile measured at a
	// different GOMAXPROCS may misplace the parallel crossover.
	GoMaxProcs int `json:"gomaxprocs"`
	// CalibrationSecs is how long the sweep actually took.
	CalibrationSecs float64 `json:"calibrationSecs"`
	// EngineCrossover is the series length at or above which EngineAuto
	// resolves to the FFT engine (core.resolveEngine's pinned 4096 when 0).
	EngineCrossover int `json:"engineCrossover"`
	// ParallelThreshold is the transform length at or above which butterfly
	// stages split across goroutines.
	ParallelThreshold int `json:"parallelThreshold"`
	// FourStepMin is the transform length at or above which the four-step
	// kernel replaces the fused radix-2/4 kernel.
	FourStepMin int `json:"fourStepMin"`
	// Source records provenance: "autotune" for a fresh sweep, the file path
	// for a loaded profile, "" for the untuned defaults. Not persisted.
	Source string `json:"-"`
}

// tunedProfile holds the currently applied profile (nil when untuned).
var tunedProfile atomic.Pointer[TunedProfile]

// Tuned returns the currently applied profile, or nil if the process runs on
// the built-in defaults.
func Tuned() *TunedProfile { return tunedProfile.Load() }

// TunedEngineCrossover returns the tuned Naive/FFT series-length crossover,
// or 0 when untuned (callers fall back to their pinned default).
func TunedEngineCrossover() int {
	if p := tunedProfile.Load(); p != nil && p.EngineCrossover > 0 {
		return p.EngineCrossover
	}
	return 0
}

// ApplyTuned installs the profile's thresholds (zero fields keep the current
// value) and records it as the active profile.
func ApplyTuned(p *TunedProfile) {
	if p == nil {
		return
	}
	if p.ParallelThreshold > 0 {
		SetParallelThreshold(p.ParallelThreshold)
	}
	if p.FourStepMin > 0 {
		SetFourStepMin(p.FourStepMin)
	}
	cp := *p
	tunedProfile.Store(&cp)
}

// ResetTuned restores the built-in defaults and clears the active profile.
func ResetTuned() {
	SetParallelThreshold(DefaultParallelThreshold)
	fourStepMin.Store(DefaultFourStepMin)
	tunedProfile.Store(nil)
}

// Save writes the profile as indented JSON at path, through the same
// write-temp → fsync → rename seam the store uses: a crash mid-save must
// not leave a truncated profile that poisons every later startup.
func (p *TunedProfile) Save(path string) (err error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("fft: encode tuned profile: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fft: write tuned profile: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close()        // may already be closed; the first error wins
			_ = os.Remove(tmpName) // best-effort cleanup on the error path
		}
	}()
	if _, err = tmp.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fft: write tuned profile: %w", err)
	}
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("fft: write tuned profile: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fft: sync tuned profile: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fft: close tuned profile: %w", err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fft: commit tuned profile: %w", err)
	}
	return nil
}

// LoadTuned reads and validates a profile from path without applying it.
func LoadTuned(path string) (*TunedProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fft: read tuned profile: %w", err)
	}
	var p TunedProfile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fft: parse tuned profile %s: %w", path, err)
	}
	if p.EngineCrossover < 0 || p.ParallelThreshold < 0 || p.FourStepMin < 0 {
		return nil, fmt.Errorf("fft: tuned profile %s has negative thresholds", path)
	}
	p.Source = path
	return &p, nil
}

// LoadTunedFromEnv loads and applies the profile named by PERIODICA_TUNE_FILE.
// It reports whether a profile was applied; with the variable unset it is a
// no-op returning (nil, false, nil).
func LoadTunedFromEnv() (*TunedProfile, bool, error) {
	path := os.Getenv(TuneFileEnv)
	if path == "" {
		return nil, false, nil
	}
	p, err := LoadTuned(path)
	if err != nil {
		return nil, false, err
	}
	ApplyTuned(p)
	return p, true, nil
}

// Autotune runs a calibration sweep of roughly the given duration (≤ 0 means
// the default ~100ms) and returns the measured profile without applying it.
// The sweep runs real kernels on pooled scratch, so it warms the shared plan
// cache but changes no tuning state itself.
func Autotune(budget time.Duration) *TunedProfile {
	if budget <= 0 {
		budget = 100 * time.Millisecond
	}
	start := time.Now()
	p := &TunedProfile{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Source:     "autotune",
	}
	// Budget split: the four-step sweep touches the largest buffers and gets
	// the biggest share; the engine crossover extrapolates from small probes.
	p.FourStepMin = tuneFourStep(start.Add(budget / 2))
	p.ParallelThreshold = tuneParallel(start.Add(3 * budget / 4))
	p.EngineCrossover = tuneEngineCrossover(start.Add(budget))
	p.CalibrationSecs = time.Since(start).Seconds()
	if host, err := os.Hostname(); err == nil {
		p.Host = host
	}
	p.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	obs.FFT().ObserveAutotune(time.Since(start))
	return p
}

// timeKernel measures f's best-of-reps wall time, running at least once and
// stopping early past the deadline.
func timeKernel(deadline time.Time, reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return best
}

// calInput fills x with a deterministic pseudo-random walk; the kernels are
// data-oblivious, so any non-trivial fill measures the same arithmetic.
func calInput(x []complex128) {
	s := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		re := float64(int64(s>>11)) / float64(1<<53)
		s = s*6364136223846793005 + 1442695040888963407
		im := float64(int64(s>>11)) / float64(1<<53)
		x[i] = complex(re, im)
	}
}

// tuneFourStep finds the smallest transform length where the four-step
// kernel beats the serial fused radix-2/4 kernel, returning FourStepDisabled
// when it never wins inside the sweep range.
func tuneFourStep(deadline time.Time) int {
	for size := 1 << 15; size <= 1<<21; size <<= 1 {
		if time.Now().After(deadline) {
			break
		}
		p := PlanFor(size)
		bufp := p.scratch()
		buf := *bufp
		calInput(buf)
		radix2 := timeKernel(deadline, 3, func() {
			applySwaps(buf, p.swaps)
			runStages(buf, p.twf, 0, size, size)
		})
		fourStep := timeKernel(deadline, 3, func() {
			p.transformFourStep(buf, false, 1)
		})
		p.release(bufp)
		// Require a clear win: a noise-level tie should keep the simpler
		// kernel rather than flap between profiles across runs.
		if fourStep < radix2*97/100 {
			return size
		}
	}
	return FourStepDisabled
}

// tuneParallel finds the smallest transform length where splitting the
// butterfly stages across GOMAXPROCS goroutines beats the serial kernel,
// returning a sentinel above the sweep when parallelism never wins.
func tuneParallel(deadline time.Time) int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 {
		return 1 << 30 // a single P can only lose to goroutine overhead
	}
	for size := 1 << 13; size <= 1<<19; size <<= 1 {
		if time.Now().After(deadline) {
			break
		}
		p := PlanFor(size)
		bufp := p.scratch()
		buf := *bufp
		calInput(buf)
		serial := timeKernel(deadline, 3, func() { p.Transform(buf, false, 1) })
		parallel := timeKernel(deadline, 3, func() { p.Transform(buf, false, procs) })
		p.release(bufp)
		if parallel < serial*97/100 {
			return size
		}
	}
	return 1 << 30
}

// tuneEngineCrossover finds the series length where the FFT counting path
// overtakes the naive quadratic scan. Both sides are measured as per-unit
// costs on small probes and extrapolated: the naive cost grows as n² (n
// candidate periods × O(n) positions each), the FFT cost as the measured
// autocorrelation at plan size NextPow2(2n).
func tuneEngineCrossover(deadline time.Time) int {
	// Per-comparison cost of the quadratic scan, from one O(n²) probe.
	const probe = 2048
	data := make([]uint8, probe)
	s := uint64(1)
	for i := range data {
		s = s*6364136223846793005 + 1442695040888963407
		data[i] = uint8(s >> 62)
	}
	sink := 0
	naiveProbe := timeKernel(deadline, 3, func() {
		c := 0
		for per := 1; per <= probe/2; per++ {
			for i := 0; i+per < probe; i++ {
				if data[i] == data[i+per] {
					c++
				}
			}
		}
		sink += c
	})
	_ = sink
	comparisons := float64(probe) * float64(probe) * 3 / 8 // Σ_{per≤n/2}(n−per)
	perCmp := float64(naiveProbe) / comparisons

	// Walk candidate lengths; the first where the measured FFT
	// autocorrelation beats the extrapolated scan is the crossover.
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = float64(i & 1)
	}
	out := make([]int64, 1<<14)
	for n := 512; n <= 1<<14; n <<= 1 {
		if time.Now().After(deadline) {
			break
		}
		p := PlanFor(NextPow2(2 * n))
		fftCost := timeKernel(deadline, 3, func() {
			p.AutocorrelateCountsInto(x[:n], out[:n], 1)
		})
		naiveCost := time.Duration(perCmp * float64(n) * float64(n) * 3 / 8)
		if fftCost < naiveCost {
			return n
		}
	}
	return 1 << 14
}
