package fft

// Crash-consistency for the external transform. The shadow-commit contract:
// after a fault at ANY write operation, the data file holds either the
// original bytes or the fully transformed bytes — never anything in between
// — and a clean rerun completes the job. The in-place contract is weaker by
// design: a crash may mangle the file, but then the stage manifest survives
// and the next TransformFile refuses with ErrInterrupted.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"periodica/internal/iofault"
)

const crashN = 64

func crashInput() []complex128 {
	vals := make([]complex128, crashN)
	for i := range vals {
		vals[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	return vals
}

// writeCrashInput materialises the test vector and returns its path and raw
// bytes.
func writeCrashInput(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, "data.cpx")
	if err := WriteComplexFile(path, crashInput()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// committedBytes runs one fault-free transform and returns the resulting
// file bytes; the algorithm is deterministic, so faulted runs that commit
// must produce these exact bytes.
func committedBytes(t *testing.T, opts ExternalOptions) []byte {
	t.Helper()
	dir := t.TempDir()
	path, _ := writeCrashInput(t, dir)
	if err := TransformFile(path, crashN, false, opts); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// countTransformOps enumerates the write operations of one transform.
func countTransformOps(t *testing.T, opts ExternalOptions) int64 {
	t.Helper()
	dir := t.TempDir()
	path, _ := writeCrashInput(t, dir)
	in := iofault.NewInjector(iofault.OS(), iofault.ModeCount, 0, 1)
	opts.FS = in
	if err := TransformFile(path, crashN, false, opts); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	if in.Ops() == 0 {
		t.Fatal("transform performed no write operations")
	}
	return in.Ops()
}

func TestCrashConsistencyShadowCommitSweep(t *testing.T) {
	want := committedBytes(t, ExternalOptions{})
	total := countTransformOps(t, ExternalOptions{})
	for _, mode := range []iofault.Mode{iofault.ModeCrash, iofault.ModeTorn} {
		for at := int64(1); at <= total; at++ {
			dir := t.TempDir()
			path, original := writeCrashInput(t, dir)
			in := iofault.NewInjector(iofault.OS(), mode, at, at*31+7)
			err := TransformFile(path, crashN, false, ExternalOptions{FS: in})
			if err == nil {
				// The fault landed in post-commit best-effort cleanup (its
				// errors are deliberately swallowed); the transform itself
				// must have fully committed.
				raw, rerr := os.ReadFile(path)
				if rerr != nil || !bytes.Equal(raw, want) {
					t.Fatalf("mode %d @%d: nil error but file not committed (%v)", mode, at, rerr)
				}
				continue
			}
			if !errors.Is(err, iofault.ErrCrashed) {
				t.Fatalf("mode %d @%d: err = %v, want ErrCrashed", mode, at, err)
			}
			raw, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("mode %d @%d: data file unreadable after crash: %v", mode, at, rerr)
			}
			switch {
			case bytes.Equal(raw, want):
				// Crash after the commit rename: transform fully applied.
			case bytes.Equal(raw, original):
				// Crash before the commit: input untouched. Cleaning up the
				// stranded temps (a real restart would sweep them) and
				// rerunning must finish the transform.
				removeTempFiles(t, dir, filepath.Base(path))
				if err := TransformFile(path, crashN, false, ExternalOptions{}); err != nil {
					t.Fatalf("mode %d @%d: clean rerun: %v", mode, at, err)
				}
				raw, rerr = os.ReadFile(path)
				if rerr != nil || !bytes.Equal(raw, want) {
					t.Fatalf("mode %d @%d: rerun did not produce the committed bytes (%v)", mode, at, rerr)
				}
			default:
				t.Fatalf("mode %d @%d: data file is neither original nor committed (torn commit)", mode, at)
			}
		}
	}
}

// TestFaultEIOShadowCleanupSweep faults each write op with a transient EIO; the
// error path must remove every scratch and shadow file it created, the
// input must survive (or be fully committed, when the fault lands after the
// rename), and an immediate retry on the same handle-free state succeeds.
func TestFaultEIOShadowCleanupSweep(t *testing.T) {
	want := committedBytes(t, ExternalOptions{})
	total := countTransformOps(t, ExternalOptions{})
	for at := int64(1); at <= total; at++ {
		dir := t.TempDir()
		path, original := writeCrashInput(t, dir)
		in := iofault.NewInjector(iofault.OS(), iofault.ModeEIO, at, at)
		err := TransformFile(path, crashN, false, ExternalOptions{FS: in})
		if err == nil {
			// Fault swallowed by post-commit best-effort cleanup; a stray
			// scratch file may survive (the cleanup is what failed), but the
			// transform must be committed.
			raw, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(raw, want) {
				t.Fatalf("eio@%d: nil error but file not committed (%v)", at, rerr)
			}
			continue
		}
		if !errors.Is(err, iofault.ErrInjected) {
			t.Fatalf("eio@%d: err = %v, want ErrInjected", at, err)
		}
		entries, lerr := os.ReadDir(dir)
		if lerr != nil {
			t.Fatal(lerr)
		}
		for _, e := range entries {
			if e.Name() != filepath.Base(path) {
				t.Fatalf("eio@%d: stray file %s left behind after error return", at, e.Name())
			}
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(raw, original) {
			// The only op whose failure can postdate the commit is the
			// directory sync; then the file must hold the full transform.
			if !bytes.Equal(raw, want) {
				t.Fatalf("eio@%d: data file is neither original nor committed", at)
			}
			continue
		}
		if err := TransformFile(path, crashN, false, ExternalOptions{}); err != nil {
			t.Fatalf("eio@%d: retry: %v", at, err)
		}
		raw, rerr = os.ReadFile(path)
		if rerr != nil || !bytes.Equal(raw, want) {
			t.Fatalf("eio@%d: retry did not produce the committed bytes (%v)", at, rerr)
		}
	}
}

// TestCrashConsistencyInPlaceDetection sweeps crashes through the opt-in
// in-place mode: at every crash point the data file is either still the
// original bytes, or the stage manifest survives and the next TransformFile
// refuses with ErrInterrupted instead of double-transforming a half-written
// file.
func TestCrashConsistencyInPlaceDetection(t *testing.T) {
	opts := ExternalOptions{InPlace: true}
	total := countTransformOps(t, opts)
	sawInterrupted := false
	for at := int64(1); at <= total; at++ {
		dir := t.TempDir()
		path, original := writeCrashInput(t, dir)
		in := iofault.NewInjector(iofault.OS(), iofault.ModeCrash, at, at*13+1)
		err := TransformFile(path, crashN, false, ExternalOptions{InPlace: true, FS: in})
		if err == nil {
			// Fault landed in the deferred state-file removal: the transform
			// completed, and if the manifest survived, detection must still
			// fire (a conservative false positive, never a missed tear).
			if _, serr := os.Stat(path + stateSuffix); serr == nil {
				if rerun := TransformFile(path, crashN, false, ExternalOptions{}); !errors.Is(rerun, ErrInterrupted) {
					t.Fatalf("inplace@%d: stale state file, rerun err = %v, want ErrInterrupted", at, rerun)
				}
			}
			continue
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if _, serr := os.Stat(path + stateSuffix); serr == nil {
			rerun := TransformFile(path, crashN, false, ExternalOptions{})
			if !errors.Is(rerun, ErrInterrupted) {
				t.Fatalf("inplace@%d: stale state file, rerun err = %v, want ErrInterrupted", at, rerun)
			}
			sawInterrupted = true
		} else if !bytes.Equal(raw, original) {
			t.Fatalf("inplace@%d: file mutated but no stage manifest survived the crash", at)
		}
	}
	if !sawInterrupted {
		t.Fatal("sweep never exercised the ErrInterrupted detection path")
	}
}

// TestTransformFileTmpDirCrossDir is the regression test for scratch living
// on a different directory (possibly another filesystem) than the data
// file: the transform must still commit atomically beside the data file and
// leave both directories clean.
func TestTransformFileTmpDirCrossDir(t *testing.T) {
	want := committedBytes(t, ExternalOptions{})
	dataDir := t.TempDir()
	tmpDir := t.TempDir()
	path, _ := writeCrashInput(t, dataDir)
	if err := TransformFile(path, crashN, false, ExternalOptions{TmpDir: tmpDir}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("cross-dir TmpDir changed the transform result")
	}
	for _, d := range []string{dataDir, tmpDir} {
		entries, err := os.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() != filepath.Base(path) {
				t.Fatalf("stray file %s left in %s", e.Name(), d)
			}
		}
	}
}

// TestAutocorrelateFileCleanupOnFault checks that the autocorrelation
// pipeline removes its private work file (and the work file's stage
// manifest) on both success and every faulted write op, and never touches
// the indicator.
func TestAutocorrelateFileCleanupOnFault(t *testing.T) {
	const n = 48
	indicator := make([]byte, n)
	for i := range indicator {
		if i%5 == 0 || i%7 == 0 {
			indicator[i] = 1
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "indicator.bin")
	if err := os.WriteFile(path, indicator, 0o644); err != nil {
		t.Fatal(err)
	}
	counter := iofault.NewInjector(iofault.OS(), iofault.ModeCount, 0, 1)
	want, err := AutocorrelateFile(path, n, ExternalOptions{FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	assertOnlyFile(t, dir, "indicator.bin")
	// Spot-check against the direct definition.
	for p := 0; p < n; p++ {
		var r int64
		for i := 0; i+p < n; i++ {
			if indicator[i] == 1 && indicator[i+p] == 1 {
				r++
			}
		}
		if want[p] != r {
			t.Fatalf("r[%d] = %d, want %d", p, want[p], r)
		}
	}

	for at := int64(1); at <= counter.Ops(); at++ {
		fdir := t.TempDir()
		fpath := filepath.Join(fdir, "indicator.bin")
		if err := os.WriteFile(fpath, indicator, 0o644); err != nil {
			t.Fatal(err)
		}
		in := iofault.NewInjector(iofault.OS(), iofault.ModeEIO, at, at)
		got, err := AutocorrelateFile(fpath, n, ExternalOptions{FS: in})
		if err == nil {
			// Fault swallowed by best-effort scratch cleanup (a stray work
			// file may remain); the counts must still be right.
			for p := range want {
				if got[p] != want[p] {
					t.Fatalf("eio@%d: nil error but r[%d] = %d, want %d", at, p, got[p], want[p])
				}
			}
			continue
		}
		assertOnlyFile(t, fdir, "indicator.bin")
		raw, err := os.ReadFile(fpath)
		if err != nil || !bytes.Equal(raw, indicator) {
			t.Fatalf("eio@%d: indicator mutated (%v)", at, err)
		}
	}
}

func assertOnlyFile(t *testing.T, dir, name string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != name {
			t.Fatalf("stray file %s left in %s", e.Name(), dir)
		}
	}
}

// removeTempFiles clears stranded shadow/scratch temps after a simulated
// crash, standing in for the restart-time sweep a caller would run.
func removeTempFiles(t *testing.T, dir, keep string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != keep {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
}
