package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// forceFourStep lowers the four-step threshold to its floor for the duration
// of a test, restoring the previous value afterwards. Tests in this package
// run sequentially, so flipping the process-wide knob cannot race another
// test — and the knob only moves a crossover between kernels proven
// bit-identical on counts, so even a leak could not change results.
func forceFourStep(t *testing.T) {
	t.Helper()
	old := FourStepMin()
	SetFourStepMin(fourStepFloor)
	t.Cleanup(func() { fourStepMin.Store(int64(old)) })
}

func randIndicator(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		if rng.Intn(3) == 0 {
			x[i] = 1
		}
	}
	return x
}

// TestRealSpectrumMatchesComplex checks ForwardReal against the full complex
// transform, slot by slot including the packed DC/Nyquist pair, and the
// InverseReal round trip back to the input.
func TestRealSpectrumMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{4, 8, 16, 64, 512, 4096, 1 << 15} {
		p := PlanFor(m)
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := make([]complex128, m/2)
		p.ForwardRealWorkers(x, spec, 1)

		z := make([]complex128, m)
		loadPadded(z, x)
		p.Transform(z, false, 1)
		tol := eps * float64(m)
		if d := cmplx.Abs(spec[0] - complex(real(z[0]), real(z[m/2]))); d > tol {
			t.Fatalf("m=%d: packed (DC, Nyquist) off by %g", m, d)
		}
		for k := 1; k < m/2; k++ {
			if d := cmplx.Abs(spec[k] - z[k]); d > tol {
				t.Fatalf("m=%d k=%d: real spectrum off by %g (%v vs %v)", m, k, d, spec[k], z[k])
			}
		}

		back := make([]float64, m)
		p.InverseRealWorkers(spec, back, 1)
		for i := range x {
			if d := back[i] - x[i]; d > eps || d < -eps {
				t.Fatalf("m=%d i=%d: real round trip off by %g", m, i, d)
			}
		}
	}
}

// TestKernelCountsBitIdentical is the exhaustive cross-kernel equality sweep
// the dispatch relies on: for plan sizes 2^4..2^21, autocorrelation counts
// through the complex kernel, the real-input kernel, and both again with the
// four-step transform forced on must agree bit for bit (and, where the
// quadratic reference is affordable, exactly with ground truth). Counts are
// the mining-visible output, and they are integers: the kernels' raw spectra
// differ only far below the 0.5 rounding margin.
func TestKernelCountsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	maxLog := 21
	if testing.Short() {
		maxLog = 16
	}
	for lg := 4; lg <= maxLog; lg++ {
		m := 1 << lg
		// NewPlan, not PlanFor: the biggest tables (tens of MB) should be
		// collectable when the size's subtest ends, not pinned in the shared
		// cache for the rest of the package run.
		p := NewPlan(m)
		n := m / 2 // the longest input the plan admits
		x := randIndicator(rng, n)

		complexCounts := make([]int64, n)
		realCounts := make([]int64, n)
		p.AutocorrelateCountsKernelInto(x, complexCounts, 1, KernelComplex)
		p.AutocorrelateCountsKernelInto(x, realCounts, 1, KernelReal)
		for i := range complexCounts {
			if complexCounts[i] != realCounts[i] {
				t.Fatalf("m=2^%d lag %d: complex %d vs real %d", lg, i, complexCounts[i], realCounts[i])
			}
		}
		if lg <= 12 {
			exact := autocorrExactInt(x)
			for i := range exact {
				if complexCounts[i] != exact[i] {
					t.Fatalf("m=2^%d lag %d: kernel count %d vs exact %d", lg, i, complexCounts[i], exact[i])
				}
			}
		}

		if m >= fourStepFloor {
			forced := make([]int64, n)
			func() {
				old := FourStepMin()
				SetFourStepMin(fourStepFloor)
				defer fourStepMin.Store(int64(old))
				for _, kernel := range []Kernel{KernelComplex, KernelReal} {
					p.AutocorrelateCountsKernelInto(x, forced, 1, kernel)
					for i := range forced {
						if forced[i] != complexCounts[i] {
							t.Fatalf("m=2^%d lag %d kernel=%d: four-step %d vs radix-2 %d",
								lg, i, kernel, forced[i], complexCounts[i])
						}
					}
				}
			}()
		}
	}
}

// TestPairKernelCountsBitIdentical covers the pair path the detect stage
// actually runs: real vs complex pair kernels, serial and parallel, all bit
// identical.
func TestPairKernelCountsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{5, 100, 1 << 10, 1 << 13} {
		p := PlanFor(NextPow2(2 * n))
		x1 := randIndicator(rng, n)
		x2 := randIndicator(rng, n)
		wantC1, wantC2 := make([]int64, n), make([]int64, n)
		p.AutocorrelateCountsPairKernelInto(x1, x2, wantC1, wantC2, 1, KernelComplex)
		got1, got2 := make([]int64, n), make([]int64, n)
		for _, workers := range []int{1, 2, 4, 7} {
			for _, kernel := range []Kernel{KernelAuto, KernelReal} {
				if kernel == KernelReal && p.n < 4 {
					continue
				}
				p.AutocorrelateCountsPairKernelInto(x1, x2, got1, got2, workers, kernel)
				for i := 0; i < n; i++ {
					if got1[i] != wantC1[i] || got2[i] != wantC2[i] {
						t.Fatalf("n=%d workers=%d kernel=%d lag %d: (%d,%d) vs (%d,%d)",
							n, workers, kernel, i, got1[i], got2[i], wantC1[i], wantC2[i])
					}
				}
			}
		}
	}
}

// TestFourStepTransformMatchesRadix2 pins the four-step transform itself (not
// just the rounded counts) to the radix-2 kernel within round-off, and
// requires bit-identical output across worker counts — the partitioning is by
// matrix row, so parallelism must not change a single bit.
func TestFourStepTransformMatchesRadix2(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{fourStepFloor, 1 << 14, 1 << 16} {
		p := NewPlan(n)
		x := randComplex(rng, n)
		for _, inverse := range []bool{false, true} {
			ref := append([]complex128(nil), x...)
			p.Transform(ref, inverse, 1) // threshold at default: radix-2

			serial := append([]complex128(nil), x...)
			func() {
				old := FourStepMin()
				SetFourStepMin(fourStepFloor)
				defer fourStepMin.Store(int64(old))
				p.Transform(serial, inverse, 1)
				var scale float64
				for _, v := range x {
					scale += cmplx.Abs(v)
				}
				if d := maxDiff(serial, ref); d > 1e-9*scale {
					t.Fatalf("n=%d inverse=%v: four-step diverges from radix-2 by %g", n, inverse, d)
				}
				for _, workers := range []int{2, 3, 8} {
					par := append([]complex128(nil), x...)
					p.Transform(par, inverse, workers)
					for i := range par {
						if par[i] != serial[i] {
							t.Fatalf("n=%d inverse=%v workers=%d: element %d differs", n, inverse, workers, i)
						}
					}
				}
			}()
		}
	}
}

// TestTransformBatchBitIdentical checks the batched entry point against
// per-buffer Transform calls — bit-for-bit, at every worker count, forward
// and inverse, with and without the four-step kernel.
func TestTransformBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{2, 64, 1 << 10, 1 << 12} {
		p := PlanFor(n)
		for _, count := range []int{1, 2, 3, 5} {
			xs := make([][]complex128, count)
			for b := range xs {
				xs[b] = randComplex(rng, n)
			}
			// The reference is per-buffer Transform under the SAME kernel
			// regime — batching must not change a bit, but the radix-2 and
			// four-step kernels legitimately differ in round-off on raw
			// transforms (only rounded counts are cross-kernel identical).
			check := func(workers int) {
				want := make([][]complex128, count)
				got := make([][]complex128, count)
				for b := range xs {
					want[b] = append([]complex128(nil), xs[b]...)
					p.Transform(want[b], true, 1)
					got[b] = append([]complex128(nil), xs[b]...)
				}
				p.TransformBatch(got, true, workers)
				for b := range got {
					for i := range got[b] {
						if got[b][i] != want[b][i] {
							t.Fatalf("n=%d count=%d workers=%d buf %d elem %d differs",
								n, count, workers, b, i)
						}
					}
				}
			}
			check(1)
			check(3)
			check(8)
			if n >= fourStepFloor {
				old := FourStepMin()
				SetFourStepMin(fourStepFloor)
				check(1)
				check(4)
				fourStepMin.Store(int64(old))
			}
		}
	}
}

// TestRealKernelZeroAllocAfterWarmup extends the zero-alloc guarantee to the
// new kernels: the real-input single and pair count paths and the four-step
// transform allocate nothing once the half-size scratch pool and sub-plans
// are warm.
func TestRealKernelZeroAllocAfterWarmup(t *testing.T) {
	n := 1 << 10
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for i := 0; i < n; i += 3 {
		x1[i] = 1
		x2[(i+1)%n] = 1
	}
	p := PlanFor(NextPow2(2 * n))
	out1 := make([]int64, n)
	out2 := make([]int64, n)
	p.AutocorrelateCountsKernelInto(x1, out1, 1, KernelReal) // warm pool + half plan
	p.AutocorrelateCountsPairKernelInto(x1, x2, out1, out2, 1, KernelReal)
	allocs := testing.AllocsPerRun(20, func() {
		p.AutocorrelateCountsKernelInto(x1, out1, 1, KernelReal)
		p.AutocorrelateCountsPairKernelInto(x1, x2, out1, out2, 1, KernelReal)
	})
	// A concurrent GC sweep can occasionally empty the sync.Pool mid-run, so
	// tolerate a stray refill rather than flake.
	if allocs > 1 {
		t.Fatalf("real kernel count paths allocate %.1f times per run after warm-up", allocs)
	}
}

func TestFourStepZeroAllocAfterWarmup(t *testing.T) {
	forceFourStep(t)
	n := fourStepFloor
	p := NewPlan(n)
	buf := make([]complex128, n)
	rng := rand.New(rand.NewSource(26))
	for i := range buf {
		buf[i] = complex(rng.Float64(), rng.Float64())
	}
	p.Transform(buf, false, 1) // warm scratch + sub-plans
	allocs := testing.AllocsPerRun(20, func() {
		p.Transform(buf, false, 1)
	})
	if allocs > 1 {
		t.Fatalf("four-step transform allocates %.1f times per run after warm-up", allocs)
	}
}

func TestTransformBatchZeroAllocAfterWarmup(t *testing.T) {
	n := 1 << 10
	p := PlanFor(n)
	xs := make([][]complex128, 4)
	for b := range xs {
		xs[b] = make([]complex128, n)
		for i := range xs[b] {
			xs[b][i] = complex(float64(b), float64(i&7))
		}
	}
	p.TransformBatch(xs, false, 1)
	allocs := testing.AllocsPerRun(20, func() {
		p.TransformBatch(xs, false, 1)
		p.TransformBatch(xs, true, 1)
	})
	if allocs > 0 {
		t.Fatalf("serial TransformBatch allocates %.1f times per run", allocs)
	}
}

// TestRealKernelRejectsBadShapes pins the panic contract of the real entry
// points.
func TestRealKernelRejectsBadShapes(t *testing.T) {
	p := PlanFor(16)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("tiny plan", func() {
		PlanFor(2).ForwardReal(make([]float64, 2), make([]complex128, 1))
	})
	mustPanic("input too long", func() {
		p.ForwardReal(make([]float64, 17), make([]complex128, 8))
	})
	mustPanic("wrong spectrum length", func() {
		p.ForwardReal(make([]float64, 16), make([]complex128, 16))
	})
	mustPanic("batch length mismatch", func() {
		p.TransformBatch([][]complex128{make([]complex128, 8)}, false, 1)
	})
}

// FuzzKernelCountsEquivalence fuzzes the cross-kernel equality: any 0/1
// input must produce bit-identical counts through the complex kernel, the
// real kernel, and the exact integer reference.
func FuzzKernelCountsEquivalence(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			t.Skip()
		}
		x := make([]float64, len(data))
		for i, b := range data {
			x[i] = float64(b & 1)
		}
		p := PlanFor(NextPow2(2 * len(x)))
		cc := make([]int64, len(x))
		rc := make([]int64, len(x))
		p.AutocorrelateCountsKernelInto(x, cc, 1, KernelComplex)
		if p.Size() >= 4 {
			p.AutocorrelateCountsKernelInto(x, rc, 1, KernelReal)
		} else {
			copy(rc, cc)
		}
		exact := autocorrExactInt(x)
		for i := range exact {
			if cc[i] != exact[i] || rc[i] != exact[i] {
				t.Fatalf("lag %d: complex %d, real %d, exact %d", i, cc[i], rc[i], exact[i])
			}
		}
	})
}
