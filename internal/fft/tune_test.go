package fft

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"periodica/internal/obs"
)

// TestAutotuneProfileRoundTrip runs a real (short) calibration sweep and
// checks the profile survives Save/LoadTuned and applies cleanly.
func TestAutotuneProfileRoundTrip(t *testing.T) {
	defer ResetTuned()
	before := obs.FFT().AutotuneRuns.Value()
	p := Autotune(50 * time.Millisecond)
	if p.EngineCrossover <= 0 || p.ParallelThreshold <= 0 || p.FourStepMin <= 0 {
		t.Fatalf("sweep produced non-positive thresholds: %+v", p)
	}
	if p.CalibrationSecs <= 0 {
		t.Fatalf("calibration duration not recorded: %+v", p)
	}
	if p.Source != "autotune" {
		t.Fatalf("Source = %q, want autotune", p.Source)
	}
	if obs.FFT().AutotuneRuns.Value() != before+1 {
		t.Fatal("autotune run not counted in obs")
	}
	if obs.FFT().AutotuneDuration() <= 0 {
		t.Fatal("autotune duration not recorded in obs")
	}

	path := filepath.Join(t.TempDir(), "tune.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTuned(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.EngineCrossover != p.EngineCrossover ||
		got.ParallelThreshold != p.ParallelThreshold ||
		got.FourStepMin != p.FourStepMin ||
		got.GoMaxProcs != p.GoMaxProcs {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, p)
	}
	if got.Source != path {
		t.Fatalf("loaded Source = %q, want %q", got.Source, path)
	}

	ApplyTuned(got)
	if Tuned() == nil {
		t.Fatal("no active profile after ApplyTuned")
	}
	if TunedEngineCrossover() != got.EngineCrossover {
		t.Fatalf("TunedEngineCrossover = %d, want %d", TunedEngineCrossover(), got.EngineCrossover)
	}
	ResetTuned()
	if Tuned() != nil || TunedEngineCrossover() != 0 {
		t.Fatal("ResetTuned did not clear the active profile")
	}
	if ParallelThreshold() != DefaultParallelThreshold || FourStepMin() != DefaultFourStepMin {
		t.Fatal("ResetTuned did not restore the default thresholds")
	}
}

// TestApplyTunedZeroFieldsKeepDefaults: a partial profile (older build, or a
// hand-written engine-only file) must leave unknown knobs alone.
func TestApplyTunedZeroFieldsKeepDefaults(t *testing.T) {
	defer ResetTuned()
	ApplyTuned(&TunedProfile{EngineCrossover: 2048})
	if ParallelThreshold() != DefaultParallelThreshold {
		t.Fatal("zero ParallelThreshold overwrote the default")
	}
	if FourStepMin() != DefaultFourStepMin {
		t.Fatal("zero FourStepMin overwrote the default")
	}
	if TunedEngineCrossover() != 2048 {
		t.Fatalf("TunedEngineCrossover = %d, want 2048", TunedEngineCrossover())
	}
}

func TestSetFourStepMinClampsToFloor(t *testing.T) {
	defer ResetTuned()
	SetFourStepMin(1)
	if FourStepMin() != fourStepFloor {
		t.Fatalf("FourStepMin = %d, want floor %d", FourStepMin(), fourStepFloor)
	}
	SetFourStepMin(FourStepDisabled)
	if PlanFor(1 << 13).useFourStep() {
		t.Fatal("FourStepDisabled did not disable the four-step path")
	}
}

func TestLoadTunedFromEnv(t *testing.T) {
	defer ResetTuned()
	t.Setenv(TuneFileEnv, "")
	if p, ok, err := LoadTunedFromEnv(); p != nil || ok || err != nil {
		t.Fatalf("unset env: got (%v, %v, %v), want no-op", p, ok, err)
	}

	path := filepath.Join(t.TempDir(), "tune.json")
	want := &TunedProfile{EngineCrossover: 1024, ParallelThreshold: 1 << 15, FourStepMin: 1 << 19}
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	t.Setenv(TuneFileEnv, path)
	p, ok, err := LoadTunedFromEnv()
	if err != nil || !ok || p == nil {
		t.Fatalf("LoadTunedFromEnv: (%v, %v, %v)", p, ok, err)
	}
	if TunedEngineCrossover() != 1024 || ParallelThreshold() != 1<<15 || FourStepMin() != 1<<19 {
		t.Fatal("env profile not applied")
	}
}

func TestLoadTunedRejectsBadFiles(t *testing.T) {
	if _, err := LoadTuned(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTuned(bad); err == nil {
		t.Fatal("malformed JSON: want error")
	}
	neg := filepath.Join(t.TempDir(), "neg.json")
	if err := os.WriteFile(neg, []byte(`{"engineCrossover":-5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTuned(neg); err == nil {
		t.Fatal("negative threshold: want error")
	}
}

// TestTunedCountsBitIdentical is the tuning-safety property at the fft
// layer: whatever thresholds a profile installs, counts do not change by a
// single bit.
func TestTunedCountsBitIdentical(t *testing.T) {
	defer ResetTuned()
	n := 1 << 13
	x := make([]float64, n)
	for i := 0; i < n; i += 5 {
		x[i] = 1
	}
	p := PlanFor(NextPow2(2 * n))
	want := make([]int64, n)
	p.AutocorrelateCountsInto(x, want, 0)
	got := make([]int64, n)
	for _, prof := range []*TunedProfile{
		{EngineCrossover: 512, ParallelThreshold: 1 << 12, FourStepMin: fourStepFloor},
		{EngineCrossover: 1 << 20, ParallelThreshold: 1 << 30, FourStepMin: FourStepDisabled},
	} {
		ApplyTuned(prof)
		p.AutocorrelateCountsInto(x, got, 0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("profile %+v lag %d: %d vs %d", prof, i, got[i], want[i])
			}
		}
		ResetTuned()
	}
}
