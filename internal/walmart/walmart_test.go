package walmart

import (
	"testing"

	"periodica/internal/core"
)

func TestGenerateLength(t *testing.T) {
	values := Generate(Config{Months: 2, Seed: 1})
	if len(values) != 2*30*24 {
		t.Fatalf("len = %d, want %d", len(values), 2*30*24)
	}
}

func TestOvernightHoursAreZeroOnRegularDays(t *testing.T) {
	values := Generate(Config{Months: 1, Seed: 1, SpecialDayProb: -1})
	for day := 0; day < 30; day++ {
		for _, hour := range []int{0, 3, 5, 23} {
			if v := values[day*24+hour]; v != 0 {
				t.Fatalf("day %d hour %d = %v, want 0 (store closed)", day, hour, v)
			}
		}
	}
}

func TestSpecialDaysAddOvernightTraffic(t *testing.T) {
	values := Generate(Config{Months: 12, Seed: 2, SpecialDayProb: 0.5})
	nonzero := 0
	for day := 0; day < 360; day++ {
		if values[day*24] > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no special days at probability 0.5")
	}
}

func TestDiscretizeLevels(t *testing.T) {
	s := Discretize([]float64{0, 100, 250, 450, 900})
	if s.String() != "abcde" {
		t.Fatalf("levels = %q, want abcde", s.String())
	}
}

func TestSeriesDetectsDailyPeriod(t *testing.T) {
	// Table 1: period 24 must be detected at thresholds ≤ 70%.
	s := Series(Config{Months: 3, Seed: 3})
	if conf := core.PeriodConfidence(s, 24); conf < 0.7 {
		t.Fatalf("confidence at period 24 = %v, want ≥ 0.7", conf)
	}
}

func TestSeriesDetectsWeeklyPeriod(t *testing.T) {
	// Table 1: period 168 (24·7) appears as the weekly pattern.
	s := Series(Config{Months: 6, Seed: 4})
	if conf := core.PeriodConfidence(s, 168); conf < 0.6 {
		t.Fatalf("confidence at period 168 = %v, want ≥ 0.6", conf)
	}
}

func TestOvernightPatternBelowFullConfidence(t *testing.T) {
	// Special days keep even the most stable pattern below 100% (the paper's
	// Table 2 finds no patterns at threshold 100%)…
	s := Series(Config{Months: 15, Seed: 5})
	conf := core.PeriodConfidence(s, 24)
	if conf >= 1 {
		t.Fatalf("confidence at period 24 = %v, want < 1 with special days", conf)
	}
	// …while the overnight "very low" hours still clear 90%.
	if conf < 0.9 {
		t.Fatalf("confidence at period 24 = %v, want ≥ 0.9", conf)
	}
}

func TestQuietMorningHourIsLow(t *testing.T) {
	// The paper's Table 2 pattern (b,7): fewer than 200 transactions in the
	// 7th hour for ~80% of days.
	s := Series(Config{Months: 15, Seed: 6})
	res, err := core.Mine(s, core.Options{Threshold: 0.5, MinPeriod: 24, MaxPeriod: 24, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Alphabet().Index("b")
	found := false
	for _, sp := range res.Periodicities {
		if sp.Symbol == b && sp.Position == 7 {
			found = true
			if sp.Confidence < 0.5 {
				t.Fatalf("(b,7) confidence %v", sp.Confidence)
			}
		}
	}
	if !found {
		t.Fatal("pattern (b,7) not detected at period 24")
	}
}

func TestDSTShiftsSummerPhase(t *testing.T) {
	withDST := Generate(Config{Months: 12, Seed: 7, DST: true, SpecialDayProb: -1})
	without := Generate(Config{Months: 12, Seed: 7, DST: false, SpecialDayProb: -1})
	// In summer, the shifted profile moves the closed hour 23 to nonzero.
	diff := 0
	for i := range withDST {
		if (withDST[i] == 0) != (without[i] == 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("DST shift changed nothing")
	}
	// Winter days (before day 90) are identical in zero-structure.
	for i := 0; i < 90*24; i++ {
		if (withDST[i] == 0) != (without[i] == 0) {
			t.Fatalf("DST altered winter hour %d", i)
		}
	}
}

func TestAlphabetFiveLevels(t *testing.T) {
	if Alphabet().Size() != 5 {
		t.Fatalf("alphabet size %d, want 5", Alphabet().Size())
	}
}

func TestDSTDisplacedPeriodsDetected(t *testing.T) {
	// The paper's most striking Table-1 finding: a period of 3961 hours —
	// "5.5 months plus one hour", the daylight-saving displacement. The
	// same mechanism in the substitute produces high-confidence periods
	// congruent to ±1 (mod 24): the daily pattern re-aligns with itself one
	// hour off across the DST boundary. Without DST no such period exists.
	s := Series(Config{Months: 15, Seed: 1, DST: true})
	best, err := core.BestConfidences(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	displaced := 0
	for p := 500; p < len(best); p++ {
		if (p%24 == 1 || p%24 == 23) && best[p] >= 0.99 {
			displaced++
		}
	}
	if displaced == 0 {
		t.Fatal("no DST-displaced (≡ ±1 mod 24) periods at confidence ≥ 0.99")
	}

	plain := Series(Config{Months: 15, Seed: 1, DST: false})
	bestPlain, err := core.BestConfidences(plain, 0)
	if err != nil {
		t.Fatal(err)
	}
	plainDisplaced := 0
	for p := 500; p < len(bestPlain); p++ {
		if (p%24 == 1 || p%24 == 23) && bestPlain[p] >= 0.99 {
			plainDisplaced++
		}
	}
	if plainDisplaced >= displaced {
		t.Fatalf("DST displacement not distinguishable: %d with DST vs %d without",
			displaced, plainDisplaced)
	}
}

func TestFleet(t *testing.T) {
	fleet := Fleet(3, Config{Months: 1, Seed: 10})
	if len(fleet) != 3 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	if fleet[0].String() == fleet[1].String() {
		t.Fatal("stores share a noise realization")
	}
	for _, s := range fleet {
		if s.Len() != 30*24 {
			t.Fatalf("store length %d", s.Len())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Months: 1, Seed: 9})
	b := Generate(Config{Months: 1, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}
