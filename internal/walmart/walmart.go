// Package walmart synthesizes the paper's Wal-Mart workload: hourly counts of
// timed sales transactions over 15 months. The real 70 GB Teradata database
// is not available, so the generator embeds the structures the paper's
// Tables 1–3 hinge on — a daily shape (period 24) with quiet overnight hours
// and a low-traffic early-morning hour, weekend modulation (period 168), and
// a daylight-saving one-hour phase shift that displaces the mid-year
// repetition by one hour (the paper's "5.5 months plus one hour" ≈ 3961 h
// finding). Discretization follows the paper exactly: "very low" is zero
// transactions per hour, "low" below 200, and each further level spans 200.
package walmart

import (
	"math"
	"math/rand"

	"periodica/internal/alphabet"
	"periodica/internal/discretize"
	"periodica/internal/series"
)

// Config describes a synthetic store trace.
type Config struct {
	// Months of hourly data; the paper's database spans 15. 30-day months.
	Months int
	// Seed for the noise generator.
	Seed int64
	// NoiseSD is the multiplicative log-normal noise on busy hours; default
	// 0.15.
	NoiseSD float64
	// DST applies the one-hour daylight-saving phase shift during the
	// "summer" half of each year.
	DST bool
	// SpecialDayProb is the chance a day runs extended hours (holiday
	// seasons, inventory nights), putting light overnight traffic where the
	// store is normally closed; this keeps even the most stable hourly
	// patterns below 100% confidence, as in the paper's Table 2. Default
	// 0.03; set negative to disable.
	SpecialDayProb float64
}

func (c Config) withDefaults() Config {
	if c.Months == 0 {
		c.Months = 15
	}
	if c.NoiseSD == 0 { //opvet:ignore floatcmp zero means unset
		c.NoiseSD = 0.15
	}
	if c.SpecialDayProb == 0 { //opvet:ignore floatcmp zero means unset
		c.SpecialDayProb = 0.03
	}
	if c.SpecialDayProb < 0 {
		c.SpecialDayProb = 0
	}
	return c
}

// hourShape is the base transactions-per-hour profile of one day: zero
// overnight, a quiet sub-200 hour in the early morning (hour 7, the paper's
// Table 2 pattern "(b,7)"), and a peak through the afternoon and evening.
var hourShape = [24]float64{
	0, 0, 0, 0, 0, 0, // 00:00–05:59 closed
	90,  // 06
	150, // 07  low: fewer than 200 transactions
	320, // 08
	480, // 09
	620, // 10
	740, // 11
	820, // 12
	800, // 13
	760, // 14
	730, // 15
	750, // 16
	810, // 17
	780, // 18
	620, // 19
	430, // 20
	260, // 21
	120, // 22
	0,   // 23 closed
}

// weekdayFactor scales each day of the week (0 = Monday).
var weekdayFactor = [7]float64{1.0, 0.96, 0.98, 1.02, 1.1, 1.3, 1.18}

// Generate returns hourly transaction counts for cfg.Months × 30 days.
func Generate(cfg Config) []float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	days := cfg.Months * 30
	out := make([]float64, 0, days*24)
	for day := 0; day < days; day++ {
		df := weekdayFactor[day%7]
		shift := 0
		if cfg.DST && summer(day) {
			shift = 1
		}
		special := rng.Float64() < cfg.SpecialDayProb
		for hour := 0; hour < 24; hour++ {
			base := hourShape[(hour+24-shift)%24]
			v := 0.0
			switch {
			case base > 0:
				v = base * df * math.Exp(rng.NormFloat64()*cfg.NoiseSD)
				if special {
					v += 120 + 160*rng.Float64() // promotional traffic
				}
			case special:
				v = 40 + 80*rng.Float64() // extended hours: light traffic
			}
			out = append(out, v)
		}
	}
	return out
}

// summer reports whether day-of-year (30-day months) falls in the
// daylight-saving window: April through October.
func summer(day int) bool {
	doy := day % 360
	return doy >= 90 && doy < 300
}

// Alphabet returns the five-level alphabet a..e used by the discretization
// (a = very low, …, e = very high).
func Alphabet() *alphabet.Alphabet { return alphabet.Letters(5) }

// Scheme returns the paper's Wal-Mart discretization: very low = zero
// transactions per hour, low < 200, then 200-wide bands.
func Scheme() discretize.Scheme {
	// Zero maps below the first breakpoint; any positive count below 200 is
	// "low".
	s, err := discretize.NewBreakpoints([]float64{1e-9, 200, 400, 600})
	if err != nil {
		panic(err)
	}
	return s
}

// Discretize converts hourly counts into the five-level symbol series.
func Discretize(values []float64) *series.Series {
	s, err := Scheme().Apply(values, Alphabet())
	if err != nil {
		panic(err)
	}
	return s
}

// Series is Generate followed by Discretize.
func Series(cfg Config) *series.Series {
	return Discretize(Generate(cfg))
}

// Fleet generates one discretized series per store: all stores share the
// daily/weekly rhythm but differ in noise realization and special days, the
// input shape for database-level mining.
func Fleet(stores int, cfg Config) []*series.Series {
	out := make([]*series.Series, stores)
	for i := range out {
		storeCfg := cfg
		storeCfg.Seed = cfg.Seed + int64(i)*6151
		out[i] = Series(storeCfg)
	}
	return out
}
