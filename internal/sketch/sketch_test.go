package sketch

import (
	"testing"

	"periodica/internal/series"
)

func TestSignValuesArePlusMinusOne(t *testing.T) {
	h := NewSign(20, 1)
	plus, minus := 0, 0
	for k := 0; k < 20; k++ {
		switch h.Of(k) {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("Of(%d) = %v, want ±1", k, h.Of(k))
		}
	}
	if plus == 0 || minus == 0 {
		t.Fatalf("degenerate sign hash: %d plus, %d minus", plus, minus)
	}
}

func TestSignDeterministicPerSeed(t *testing.T) {
	a, b := NewSign(10, 7), NewSign(10, 7)
	for k := 0; k < 10; k++ {
		if a.Of(k) != b.Of(k) {
			t.Fatal("same seed produced different hashes")
		}
	}
}

func TestProject(t *testing.T) {
	s := series.FromString("abab")
	h := NewSign(2, 3)
	v := h.Project(s)
	if len(v) != 4 {
		t.Fatalf("len = %d", len(v))
	}
	if v[0] != v[2] || v[1] != v[3] || v[0] != h.Of(0) {
		t.Fatalf("projection inconsistent: %v", v)
	}
}

func TestNewSignPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSign(0): want panic")
		}
	}()
	NewSign(0, 1)
}
