// Package sketch provides the randomized projections used by the periodic
// trends baseline: symbols are hashed to ±1 signs so that the squared
// distance between a projected series and its shift is, in expectation,
// proportional to the Hamming distance the trends algorithm ranks periods by.
package sketch

import (
	"fmt"
	"math/rand"

	"periodica/internal/series"
)

// Sign is a random ±1 hash over symbol indices.
type Sign struct {
	vals []float64
}

// NewSign draws a ±1 value per symbol of a σ-symbol alphabet.
func NewSign(sigma int, seed int64) *Sign {
	if sigma < 1 {
		panic(fmt.Sprintf("sketch: sigma %d < 1", sigma))
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, sigma)
	for i := range vals {
		if rng.Intn(2) == 0 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	return &Sign{vals: vals}
}

// Of returns the sign of symbol k.
func (h *Sign) Of(k int) float64 { return h.vals[k] }

// Project maps the series to its ±1 projection h(t_0), …, h(t_{n−1}).
func (h *Sign) Project(s *series.Series) []float64 {
	out := make([]float64, s.Len())
	for i := range out {
		out[i] = h.vals[s.At(i)]
	}
	return out
}
