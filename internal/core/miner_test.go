package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func find(res *Result, symbol, period, position int) (SymbolPeriodicity, bool) {
	for _, sp := range res.Periodicities {
		if sp.Symbol == symbol && sp.Period == period && sp.Position == position {
			return sp, true
		}
	}
	return SymbolPeriodicity{}, false
}

func TestMineRunningExample(t *testing.T) {
	// Paper §2.2: in T = abcabbabcb, symbol a is periodic with period 3 at
	// position 0 with confidence 2/3, and b with period 3 at position 1 with
	// confidence 1; b is also periodic with period 4 (positions 1,5,9).
	s := series.FromString("abcabbabcb")
	a, _ := s.Alphabet().Index("a")
	b, _ := s.Alphabet().Index("b")
	res, err := Mine(s, Options{Threshold: 2.0 / 3.0, Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}

	sp, ok := find(res, a, 3, 0)
	if !ok {
		t.Fatalf("missing periodicity (a,3,0); got %+v", res.Periodicities)
	}
	if sp.F2 != 2 || sp.Pairs != 3 {
		t.Fatalf("(a,3,0): F2=%d Pairs=%d, want 2 and 3", sp.F2, sp.Pairs)
	}
	if sp.Confidence < 0.666 || sp.Confidence > 0.667 {
		t.Fatalf("(a,3,0) confidence = %v, want 2/3", sp.Confidence)
	}

	sp, ok = find(res, b, 3, 1)
	if !ok || sp.Confidence != 1 {
		t.Fatalf("(b,3,1): got %+v ok=%v, want confidence 1", sp, ok)
	}
	if _, ok = find(res, b, 4, 1); !ok {
		t.Fatal("missing periodicity (b,4,1)")
	}
}

func TestMinePatternsRunningExample(t *testing.T) {
	// Paper §2.3 and §3.2: with S_{3,0}={a}, S_{3,1}={b}, the candidate
	// pattern ab* has support |W′_3|/⌊10/3⌋ = 2/3.
	s := series.FromString("abcabbabcb")
	res, err := Mine(s, Options{Threshold: 2.0 / 3.0, Engine: EngineBitset})
	if err != nil {
		t.Fatal(err)
	}
	var got *Pattern
	for i, pt := range res.Patterns {
		if pt.Period == 3 && pt.Render(s.Alphabet()) == "ab*" {
			got = &res.Patterns[i]
		}
	}
	if got == nil {
		t.Fatalf("pattern ab* not found; patterns: %v", renderAll(res.Patterns, s))
	}
	if got.Count != 2 {
		t.Fatalf("ab* count = %d, want 2", got.Count)
	}
	if got.Support < 0.666 || got.Support > 0.667 {
		t.Fatalf("ab* support = %v, want 2/3", got.Support)
	}
}

func renderAll(pts []Pattern, s *series.Series) []string {
	var out []string
	for _, pt := range pts {
		out = append(out, pt.Render(s.Alphabet()))
	}
	return out
}

func TestSingleSymbolPatterns(t *testing.T) {
	s := series.FromString("abcabbabcb")
	res, err := Mine(s, Options{Threshold: 2.0 / 3.0, Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SingleSymbol) != len(res.Periodicities) {
		t.Fatalf("single patterns %d, periodicities %d", len(res.SingleSymbol), len(res.Periodicities))
	}
	found := map[string]float64{}
	for _, pt := range res.SingleSymbol {
		if pt.Period == 3 {
			found[pt.Render(s.Alphabet())] = pt.Support
		}
	}
	if sup, ok := found["a**"]; !ok || sup < 0.66 || sup > 0.67 {
		t.Fatalf("single pattern a** support = %v (ok=%v), want 2/3", sup, ok)
	}
	if sup, ok := found["*b*"]; !ok || sup != 1 {
		t.Fatalf("single pattern *b* support = %v (ok=%v), want 1", sup, ok)
	}
}

func mineEq(t *testing.T, s *series.Series, psi float64) *Result {
	t.Helper()
	var results []*Result
	for _, eng := range []Engine{EngineNaive, EngineBitset, EngineFFT} {
		res, err := Mine(s, Options{Threshold: psi, Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Periodicities, results[i].Periodicities) {
			t.Fatalf("engines disagree on periodicities:\nnaive: %+v\nother: %+v",
				results[0].Periodicities, results[i].Periodicities)
		}
		if !reflect.DeepEqual(results[0].Patterns, results[i].Patterns) {
			t.Fatalf("engines disagree on patterns")
		}
		if !reflect.DeepEqual(results[0].Periods, results[i].Periods) {
			t.Fatalf("engines disagree on periods: %v vs %v", results[0].Periods, results[i].Periods)
		}
	}
	return results[0]
}

func TestEnginesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(200) + 20
		sigma := rng.Intn(4) + 2
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		for _, psi := range []float64{0.2, 0.5, 0.9} {
			mineEq(t, s, psi)
		}
	}
}

func TestEnginesAgreePeriodicWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := []uint16{0, 1, 2, 3, 1}
	idx := make([]uint16, 500)
	for i := range idx {
		idx[i] = base[i%len(base)]
		if rng.Float64() < 0.1 {
			idx[i] = uint16(rng.Intn(4))
		}
	}
	s := series.FromIndices(alphabet.Letters(4), idx)
	res := mineEq(t, s, 0.8)
	if _, ok := find(res, 0, 5, 0); !ok {
		t.Fatal("embedded period 5 for symbol a not detected at ψ=0.8")
	}
}

func TestPerfectlyPeriodicSeriesHasConfidenceOne(t *testing.T) {
	// A perfect repetition of "abcd" must yield confidence 1 at p = 4 and
	// every multiple, for every position.
	s := series.FromString("abcdabcdabcdabcdabcdabcd")
	for _, p := range []int{4, 8, 12} {
		if got := PeriodConfidence(s, p); got != 1 {
			t.Fatalf("PeriodConfidence(%d) = %v, want 1", p, got)
		}
	}
	if got := PeriodConfidence(s, 3); got == 1 {
		t.Fatal("PeriodConfidence(3) = 1 on pure period-4 data with distinct symbols")
	}
}

func TestMineValidatesOptions(t *testing.T) {
	s := series.FromString("abcabc")
	for _, opt := range []Options{
		{Threshold: 0},
		{Threshold: 1.5},
		{Threshold: 0.5, MinPeriod: 3, MaxPeriod: 2},
		{Threshold: 0.5, MaxPeriod: 100},
	} {
		if _, err := Mine(s, opt); err == nil {
			t.Errorf("Mine(%+v): want error", opt)
		}
	}
}

func TestMinPairsFiltersLowMassPeriodicities(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	idx := make([]uint16, 300)
	for i := range idx {
		idx[i] = uint16(rng.Intn(3))
	}
	s := series.FromIndices(alphabet.Letters(3), idx)
	base, err := Mine(s, Options{Threshold: 0.5, Engine: EngineNaive, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, minPairs := range []int{2, 5, 20} {
		var want []SymbolPeriodicity
		for _, sp := range base.Periodicities {
			if sp.Pairs >= minPairs {
				want = append(want, sp)
			}
		}
		for _, eng := range []Engine{EngineNaive, EngineBitset, EngineFFT} {
			got, err := Mine(s, Options{Threshold: 0.5, Engine: eng, MinPairs: minPairs, MaxPatternPeriod: -1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Periodicities, want) {
				t.Fatalf("engine=%v minPairs=%d: got %d periodicities, want %d",
					eng, minPairs, len(got.Periodicities), len(want))
			}
		}
	}
}

func TestMinPairsValidates(t *testing.T) {
	s := series.FromString("abcabc")
	if _, err := Mine(s, Options{Threshold: 0.5, MinPairs: -1}); err == nil {
		t.Fatal("negative MinPairs: want error")
	}
}

func TestMaxPatternsTruncates(t *testing.T) {
	s := series.FromString("abababababababababab")
	res, err := Mine(s, Options{Threshold: 0.1, MaxPatterns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PatternsTruncated {
		t.Fatal("expected truncation with MaxPatterns=1")
	}
	if len(res.Patterns) > 1 {
		t.Fatalf("got %d patterns, want ≤ 1", len(res.Patterns))
	}
}

func TestDisableMultiSymbolMining(t *testing.T) {
	s := series.FromString("abababababab")
	res, err := Mine(s, Options{Threshold: 0.5, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Fatalf("patterns mined despite MaxPatternPeriod<0: %d", len(res.Patterns))
	}
	if len(res.SingleSymbol) == 0 {
		t.Fatal("single-symbol patterns missing")
	}
}

// bruteForcePatternSupport counts occurrences m where every fixed position of
// the pattern matches at both m·p+l and (m+1)·p+l.
func bruteForcePatternSupport(s *series.Series, pt Pattern) (int, float64) {
	n, p := s.Len(), pt.Period
	total := n / p
	count := 0
	for m := 0; m < total; m++ {
		all := true
		for _, f := range pt.Fixed {
			i := m*p + f.Position
			if i+p >= n || s.At(i) != f.Symbol || s.At(i+p) != f.Symbol {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count, float64(count) / float64(total)
}

func TestPatternSupportMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(150) + 30
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(3))
		}
		s := series.FromIndices(alphabet.Letters(3), idx)
		res, err := Mine(s, Options{Threshold: 0.3, Engine: EngineBitset})
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range res.Patterns {
			count, sup := bruteForcePatternSupport(s, pt)
			if count != pt.Count || sup != pt.Support {
				t.Fatalf("pattern %s p=%d: miner count=%d sup=%v, brute count=%d sup=%v",
					pt.Render(s.Alphabet()), pt.Period, pt.Count, pt.Support, count, sup)
			}
		}
	}
}

func TestPatternsMeetThresholdAndAreMultiSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	idx := make([]uint16, 200)
	for i := range idx {
		idx[i] = uint16(rng.Intn(3))
	}
	s := series.FromIndices(alphabet.Letters(3), idx)
	res, err := Mine(s, Options{Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Patterns {
		if pt.FixedSymbols() < 2 {
			t.Fatalf("pattern %v has %d fixed symbols", pt.Fixed, pt.FixedSymbols())
		}
		if pt.Support < 0.25 {
			t.Fatalf("pattern support %v below threshold", pt.Support)
		}
	}
}

func TestApriorPatternSupportBoundedBySinglesProperty(t *testing.T) {
	// Definition 3 / Apriori: a multi-symbol pattern's support cannot exceed
	// the Definition-2 support of any of its fixed symbols... with the caveat
	// that denominators differ (⌊n/p⌋ vs ⌈(n−l)/p⌉−1). Compare counts, which
	// are directly comparable: |W′_p| ≤ |W_{p,k,l}| for every fixed (k,l).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(120) + 40
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(3))
		}
		s := series.FromIndices(alphabet.Letters(3), idx)
		res, err := Mine(s, Options{Threshold: 0.3})
		if err != nil {
			return false
		}
		singles := map[[3]int]int{}
		for _, sp := range res.Periodicities {
			singles[[3]int{sp.Symbol, sp.Period, sp.Position}] = sp.F2
		}
		for _, pt := range res.Patterns {
			for _, f := range pt.Fixed {
				f2, ok := singles[[3]int{f.Symbol, pt.Period, f.Position}]
				if !ok || pt.Count > f2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMinerMatchesBatch(t *testing.T) {
	text := "abcabbabcbabcabbabcb"
	s := series.FromString(text)
	m := NewStreamMiner(s.Alphabet())
	for _, r := range text {
		if err := m.Append(string(r)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != len(text) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(text))
	}
	got, err := m.Finish(Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(s, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Periodicities, want.Periodicities) {
		t.Fatal("stream miner result differs from batch")
	}
}

func TestStreamMinerRejectsUnknownSymbol(t *testing.T) {
	m := NewStreamMiner(alphabet.Letters(2))
	if err := m.Append("z"); err == nil {
		t.Fatal("Append(z): want error")
	}
	if err := m.AppendIndex(5); err == nil {
		t.Fatal("AppendIndex(5): want error")
	}
}

func TestStreamMinerEmptyFinish(t *testing.T) {
	m := NewStreamMiner(alphabet.Letters(2))
	if _, err := m.Finish(Options{Threshold: 0.5}); err == nil {
		t.Fatal("Finish on empty stream: want error")
	}
}

func TestPatternRender(t *testing.T) {
	alpha := alphabet.Letters(3)
	pt := Pattern{Period: 4, Fixed: []FixedSymbol{{Position: 0, Symbol: 0}, {Position: 2, Symbol: 2}}}
	if got := pt.Render(alpha); got != "a*c*" {
		t.Fatalf("Render = %q, want a*c*", got)
	}
	if got := pt.FixedSymbols(); got != 2 {
		t.Fatalf("FixedSymbols = %d, want 2", got)
	}
}

func TestInterpretationDescribe(t *testing.T) {
	alpha := alphabet.Letters(5)
	sp := SymbolPeriodicity{Symbol: 1, Period: 24, Position: 7, F2: 360, Pairs: 450, Confidence: 0.8}
	it := Interpretation{
		LevelNames: []string{"zero", "under 200 transactions"},
		Unit:       "hour", Cycle: "day",
	}
	got := it.Describe(alpha, sp)
	want := "under 200 transactions occurs in hour 7 of the day for 80% of the cycles"
	if got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
	// Defaults: symbol letter, generic unit and cycle.
	bare := Interpretation{}.Describe(alpha, SymbolPeriodicity{Symbol: 0, Period: 7, Position: 3, Confidence: 0.5})
	if bare != "a occurs in position 3 of the 7-position cycle for 50% of the cycles" {
		t.Fatalf("bare Describe = %q", bare)
	}
}

func TestSymbolPeriodicityString(t *testing.T) {
	sp := SymbolPeriodicity{Symbol: 2, Period: 24, Position: 7, F2: 3, Pairs: 4, Confidence: 0.75}
	if got := sp.String(); got != "(s2, p=24, l=7, 3/4=0.75)" {
		t.Fatalf("String = %q", got)
	}
}

func TestEngineString(t *testing.T) {
	cases := map[Engine]string{EngineAuto: "auto", EngineNaive: "naive", EngineBitset: "bitset", EngineFFT: "fft", Engine(9): "Engine(9)"}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
}

func TestPeriodsListsDistinctSorted(t *testing.T) {
	s := series.FromString("abcabcabcabcabcabc")
	res, err := Mine(s, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 6, 9}
	if !reflect.DeepEqual(res.Periods, want) {
		t.Fatalf("Periods = %v, want %v", res.Periods, want)
	}
}
