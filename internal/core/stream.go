package core

import (
	"context"
	"fmt"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// StreamMiner ingests a symbol stream one element at a time — the single pass
// over the data the paper requires — and mines it once the stream ends. Each
// arriving symbol is touched exactly once; memory is Θ(n) symbol indices plus
// the Θ(σn)-bit mapped vector built at Finish, matching the paper's
// convolution input.
type StreamMiner struct {
	alpha *alphabet.Alphabet
	data  []uint16
}

// NewStreamMiner returns a miner for symbols over alpha.
func NewStreamMiner(alpha *alphabet.Alphabet) *StreamMiner {
	return &StreamMiner{alpha: alpha}
}

// Append ingests the next symbol of the stream.
func (m *StreamMiner) Append(symbol string) error {
	k, ok := m.alpha.Index(symbol)
	if !ok {
		return fmt.Errorf("core: symbol %q not in alphabet %v", symbol, m.alpha)
	}
	m.data = append(m.data, uint16(k))
	return nil
}

// AppendIndex ingests the next symbol by alphabet index.
func (m *StreamMiner) AppendIndex(k int) error {
	if k < 0 || k >= m.alpha.Size() {
		return fmt.Errorf("core: symbol index %d out of range [0,%d)", k, m.alpha.Size())
	}
	m.data = append(m.data, uint16(k))
	return nil
}

// Len returns the number of symbols ingested so far.
func (m *StreamMiner) Len() int { return len(m.data) }

// Series returns the ingested stream as a series.
func (m *StreamMiner) Series() *series.Series {
	return series.FromIndices(m.alpha, m.data)
}

// Finish mines the ingested stream through the shared session pipeline. The
// miner can keep ingesting and Finish again later; results reflect the
// stream seen so far.
func (m *StreamMiner) Finish(opt Options) (*Result, error) {
	if len(m.data) == 0 {
		return nil, fmt.Errorf("core: empty stream")
	}
	return Mine(m.Series(), opt)
}

// FinishContext is Finish with cooperative cancellation, with the same
// polling points as MineContext.
func (m *StreamMiner) FinishContext(ctx context.Context, opt Options) (*Result, error) {
	if len(m.data) == 0 {
		return nil, fmt.Errorf("core: empty stream")
	}
	return MineContext(ctx, m.Series(), opt)
}
