package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// TestThresholdNestingProperty: everything reported at a higher threshold
// must be reported at any lower threshold (Table 1's nesting).
func TestThresholdNestingProperty(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint8) bool {
		lo := float64(loRaw%50+10) / 100
		hi := lo + float64(hiRaw%40+5)/100
		if hi > 1 {
			hi = 1
		}
		rng := rand.New(rand.NewSource(seed))
		idx := make([]uint16, 150)
		for i := range idx {
			idx[i] = uint16(rng.Intn(3))
		}
		s := series.FromIndices(alphabet.Letters(3), idx)
		resHi, err := Mine(s, Options{Threshold: hi, MaxPatternPeriod: -1})
		if err != nil {
			return false
		}
		resLo, err := Mine(s, Options{Threshold: lo, MaxPatternPeriod: -1})
		if err != nil {
			return false
		}
		inLo := map[SymbolPeriodicity]bool{}
		for _, sp := range resLo.Periodicities {
			inLo[sp] = true
		}
		for _, sp := range resHi.Periodicities {
			if !inLo[sp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodRangeRestrictionProperty: restricting [MinPeriod, MaxPeriod]
// yields exactly the full result filtered to that range.
func TestPeriodRangeRestrictionProperty(t *testing.T) {
	f := func(seed int64, loRaw, spanRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(3))
		}
		s := series.FromIndices(alphabet.Letters(3), idx)
		lo := int(loRaw)%20 + 1
		hi := lo + int(spanRaw)%20
		if hi > n/2 {
			hi = n / 2
		}
		if lo > hi {
			lo = hi
		}
		full, err := Mine(s, Options{Threshold: 0.4, MaxPatternPeriod: -1})
		if err != nil {
			return false
		}
		restricted, err := Mine(s, Options{Threshold: 0.4, MinPeriod: lo, MaxPeriod: hi, MaxPatternPeriod: -1})
		if err != nil {
			return false
		}
		var want []SymbolPeriodicity
		for _, sp := range full.Periodicities {
			if sp.Period >= lo && sp.Period <= hi {
				want = append(want, sp)
			}
		}
		return reflect.DeepEqual(want, restricted.Periodicities) ||
			(len(want) == 0 && len(restricted.Periodicities) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConfidenceEqualsRatioProperty: every reported confidence must equal
// F2/Pairs with the definitional values.
func TestConfidenceEqualsRatioProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := make([]uint16, 100)
		for i := range idx {
			idx[i] = uint16(rng.Intn(4))
		}
		s := series.FromIndices(alphabet.Letters(4), idx)
		res, err := Mine(s, Options{Threshold: 0.3, MaxPatternPeriod: -1})
		if err != nil {
			return false
		}
		for _, sp := range res.Periodicities {
			if sp.Pairs != pairsAt(s.Len(), sp.Period, sp.Position) {
				return false
			}
			if sp.F2 != s.F2(sp.Symbol, sp.Period, sp.Position) {
				return false
			}
			if sp.Confidence != float64(sp.F2)/float64(sp.Pairs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendInvarianceProperty: appending symbols never removes a match —
// F2 counts via the incremental miner are monotone in the stream.
func TestAppendInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewIncrementalMiner(alphabet.Letters(3), 8)
		if err != nil {
			return false
		}
		prev := make(map[[3]int]int)
		for i := 0; i < 120; i++ {
			if err := m.Append(rng.Intn(3)); err != nil {
				return false
			}
			for k := 0; k < 3; k++ {
				for p := 1; p <= 8; p++ {
					for l := 0; l < p; l++ {
						cur := m.F2(k, p, l)
						key := [3]int{k, p, l}
						if cur < prev[key] {
							return false
						}
						prev[key] = cur
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestMaximalFilterSoundProperty: FilterMaximal never keeps a pattern that
// is subsumed by another kept pattern, and never drops one that is not
// subsumed by any input pattern.
func TestMaximalFilterSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := make([]uint16, 90)
		for i := range idx {
			idx[i] = uint16(rng.Intn(2))
		}
		s := series.FromIndices(alphabet.Letters(2), idx)
		res, err := Mine(s, Options{Threshold: 0.3})
		if err != nil {
			return false
		}
		kept := FilterMaximal(res.Patterns)
		keptSet := map[string]bool{}
		for _, pt := range kept {
			keptSet[patternKey(pt)] = true
		}
		for _, a := range kept {
			for _, b := range kept {
				if a.Period == b.Period && len(b.Fixed) > len(a.Fixed) && subsumes(b, a) {
					return false // kept a subsumed pattern
				}
			}
		}
		for _, a := range res.Patterns {
			if keptSet[patternKey(a)] {
				continue
			}
			subsumed := false
			for _, b := range res.Patterns {
				if a.Period == b.Period && len(b.Fixed) > len(a.Fixed) && subsumes(b, a) {
					subsumed = true
					break
				}
			}
			if !subsumed {
				return false // dropped a non-subsumed pattern
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
