package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func TestDetectCandidatesSoundPrune(t *testing.T) {
	// Every period with a true Definition-1 periodicity must be in the
	// candidate set — the aggregate test is necessary, never falsely
	// dismissive.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(300) + 30
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(4))
		}
		s := series.FromIndices(alphabet.Letters(4), idx)
		for _, psi := range []float64{0.3, 0.7, 1} {
			cands, err := DetectCandidates(s, psi, 0)
			if err != nil {
				t.Fatal(err)
			}
			inCands := map[int]bool{}
			for _, c := range cands {
				inCands[c.Period] = true
			}
			res, err := Mine(s, Options{Threshold: psi, Engine: EngineNaive, MaxPatternPeriod: -1})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range res.Periods {
				if !inCands[p] {
					t.Fatalf("n=%d ψ=%v: true period %d missing from candidates", n, psi, p)
				}
			}
		}
	}
}

func TestDetectCandidatesPerfectPeriodic(t *testing.T) {
	s := series.FromString("abcdabcdabcdabcdabcdabcdabcdabcd")
	cands, err := DetectCandidates(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, c := range cands {
		got[c.Period] = true
	}
	for _, p := range []int{4, 8, 12, 16} {
		if !got[p] {
			t.Fatalf("period %d missing from candidates %v", p, cands)
		}
	}
	// With four distinct symbols cycling, no symbol ever matches at lag 1.
	if got[1] {
		t.Fatal("period 1 should not be a candidate at ψ=1")
	}
}

func TestDetectCandidatesValidates(t *testing.T) {
	s := series.FromString("abcabc")
	if _, err := DetectCandidates(s, 0, 0); err == nil {
		t.Fatal("ψ=0: want error")
	}
	if _, err := DetectCandidates(s, 1.2, 0); err == nil {
		t.Fatal("ψ>1: want error")
	}
	if _, err := DetectCandidates(s, 0.5, 10); err == nil {
		t.Fatal("maxPeriod ≥ n: want error")
	}
}

func TestDetectCandidatesBestSymbolCounts(t *testing.T) {
	s := series.FromString("ababababab")
	cands, err := DetectCandidates(s, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Period == 2 {
			// a matches at i = 0,2,4,6 and b at i = 1,3,5,7: 4 each.
			if c.MatchCount != 4 {
				t.Fatalf("lag-2 best count %d, want 4", c.MatchCount)
			}
			return
		}
	}
	t.Fatalf("period 2 not a candidate: %v", cands)
}

func TestDetectCandidatesSupersetProperty(t *testing.T) {
	f := func(seed int64, thr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 20
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(3))
		}
		s := series.FromIndices(alphabet.Letters(3), idx)
		psi := float64(thr%99+1) / 100
		cands, err := DetectCandidates(s, psi, 0)
		if err != nil {
			return false
		}
		inCands := map[int]bool{}
		for _, c := range cands {
			inCands[c.Period] = true
		}
		res, err := Mine(s, Options{Threshold: psi, Engine: EngineBitset, MaxPatternPeriod: -1})
		if err != nil {
			return false
		}
		for _, p := range res.Periods {
			if !inCands[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
