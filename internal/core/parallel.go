package core

import (
	"runtime"
	"sort"
	"sync"

	"periodica/internal/conv"
	"periodica/internal/series"
)

// ParallelBestConfidences is BestConfidences with the candidate periods
// swept by the given number of goroutines (0 means GOMAXPROCS). Each worker
// carries its own scratch detector over the shared, read-only indicators, so
// the result is identical to the serial sweep.
func ParallelBestConfidences(s *series.Series, maxPeriod, workers int) ([]float64, error) {
	n := s.Len()
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, invalidf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxPeriod {
		workers = maxPeriod
	}
	ind := conv.NewIndicators(s)
	out := make([]float64, maxPeriod+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			det := newDetectorFromIndicators(ind, nil)
			// Interleaved assignment balances the load: large periods cost
			// more per detect call.
			for p := w + 1; p <= maxPeriod; p += workers {
				best := 0.0
				det.detect(p, 1e-9, func(sp SymbolPeriodicity) {
					if sp.Confidence > best {
						best = sp.Confidence
					}
				})
				if best > 1 {
					best = 1
				}
				out[p] = best
			}
		}(w)
	}
	wg.Wait()
	return out, nil
}

// MineParallel is Mine with the per-period detection spread over the given
// number of goroutines (0 = GOMAXPROCS). The result is identical to the
// serial Mine with the same options; the naive engine is substituted by the
// bitset engine, which shares its semantics.
func MineParallel(s *series.Series, opt Options, workers int) (*Result, error) {
	opt, err := opt.withDefaults(s.Len())
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eng := opt.Engine
	if eng == EngineAuto || eng == EngineNaive {
		if s.Len() >= 4096 {
			eng = EngineFFT
		} else {
			eng = EngineBitset
		}
	}
	ind := conv.NewIndicators(s)
	var lag [][]int64
	if eng == EngineFFT {
		lag = conv.LagMatchCountsBatched(s, workers)
	}

	span := opt.MaxPeriod - opt.MinPeriod + 1
	if workers > span {
		workers = span
	}
	perWorker := make([][]SymbolPeriodicity, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			det := newDetectorFromIndicators(ind, lag)
			det.minPairs = opt.MinPairs
			for p := opt.MinPeriod + w; p <= opt.MaxPeriod; p += workers {
				det.detect(p, opt.Threshold, func(sp SymbolPeriodicity) {
					perWorker[w] = append(perWorker[w], sp)
				})
			}
		}(w)
	}
	wg.Wait()

	res := &Result{N: s.Len(), Sigma: s.Alphabet().Size(), Threshold: opt.Threshold}
	periodSet := map[int]bool{}
	for _, pers := range perWorker {
		for _, sp := range pers {
			res.Periodicities = append(res.Periodicities, sp)
			periodSet[sp.Period] = true
		}
	}
	for p := range periodSet {
		res.Periods = append(res.Periods, p)
	}
	sort.Ints(res.Periods)
	sort.Slice(res.Periodicities, func(i, j int) bool {
		a, b := res.Periodicities[i], res.Periodicities[j]
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		if a.Position != b.Position {
			return a.Position < b.Position
		}
		return a.Symbol < b.Symbol
	})
	for _, sp := range res.Periodicities {
		res.SingleSymbol = append(res.SingleSymbol, singlePattern(sp))
	}
	if opt.MaxPatternPeriod >= 0 {
		det := newDetectorFromIndicators(ind, lag)
		res.Patterns, res.PatternsTruncated, _ = minePatterns(det, res.Periodicities, opt, nil)
	}
	return res, nil
}

// ParallelDetectCandidates is DetectCandidates with the per-symbol FFT
// autocorrelations run concurrently (0 workers means GOMAXPROCS). The
// result is identical to the serial form.
func ParallelDetectCandidates(s *series.Series, psi float64, maxPeriod, workers int) ([]CandidatePeriod, error) {
	n := s.Len()
	if psi <= 0 || psi > 1 {
		return nil, invalidf("core: threshold ψ=%v outside (0,1]", psi)
	}
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, invalidf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}
	lag := conv.LagMatchCountsBatched(s, workers)
	var out []CandidatePeriod
	for p := 1; p <= maxPeriod; p++ {
		minPairs := pairsAt(n, p, p-1)
		if pairsAt(n, p, 0) < 1 {
			continue
		}
		if minPairs < 1 {
			minPairs = 1
		}
		best, bestCount := -1, int64(0)
		for k := range lag {
			r := lag[k][p]
			if float64(r) >= psi*float64(minPairs) && r > bestCount {
				best, bestCount = k, r
			}
		}
		if best >= 0 {
			out = append(out, CandidatePeriod{Period: p, BestSymbol: best, MatchCount: bestCount})
		}
	}
	return out, nil
}
