package core

import (
	"periodica/internal/conv"
	"periodica/internal/exec"
	"periodica/internal/series"
)

// ParallelBestConfidences is BestConfidences with the candidate periods
// sharded over the given number of scheduler workers (0 means GOMAXPROCS).
// Each worker carries its own scratch detector over the shared, read-only
// indicators and writes into its period's slot, so the result is identical
// to the serial sweep.
func ParallelBestConfidences(s *series.Series, maxPeriod, workers int) ([]float64, error) {
	n := s.Len()
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, invalidf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}
	ind := conv.NewIndicators(s)
	out := make([]float64, maxPeriod+1)
	sched := exec.New(exec.Config{Workers: workers})
	err := sched.Run(maxPeriod, workers, func(w int) func(i int) error {
		det := newDetectorFromIndicators(ind, nil)
		return func(i int) error {
			p := i + 1
			best := 0.0
			det.detect(p, 1e-9, func(sp SymbolPeriodicity) {
				if sp.Confidence > best {
					best = sp.Confidence
				}
			})
			if best > 1 {
				best = 1
			}
			out[p] = best
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MineParallel is Mine with the per-period stage work spread over the given
// number of scheduler workers (0 = GOMAXPROCS). The result is identical to
// the serial Mine with the same options; the naive engine is substituted by
// the bitset engine, which shares its semantics and shards cleanly.
func MineParallel(s *series.Series, opt Options, workers int) (*Result, error) {
	ses, err := newSession(s, opt, sessionConfig{
		workers:    workers,
		fftWorkers: workers,
		parallel:   true,
	})
	if err != nil {
		return nil, err
	}
	return ses.mine()
}

// ParallelDetectCandidates is DetectCandidates with the per-symbol FFT
// autocorrelations and the aggregate sweep sharded over the given number of
// workers (0 means GOMAXPROCS). The result is identical to the serial form.
func ParallelDetectCandidates(s *series.Series, psi float64, maxPeriod, workers int) ([]CandidatePeriod, error) {
	ses, err := newCandidateSession(s, psi, maxPeriod, sessionConfig{
		workers:    workers,
		fftWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	return ses.candidates(memoryDetect{lagOnly: true})
}
