package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func TestDetectCandidatesFileMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	idx := make([]uint16, 2000)
	pattern := []uint16{0, 1, 2, 3, 1, 0, 2}
	for i := range idx {
		idx[i] = pattern[i%len(pattern)]
		if rng.Float64() < 0.15 {
			idx[i] = uint16(rng.Intn(4))
		}
	}
	s := series.FromIndices(alphabet.Letters(4), idx)
	path := filepath.Join(t.TempDir(), "series.bin")
	if err := WriteSeriesFile(path, s); err != nil {
		t.Fatal(err)
	}

	got, err := DetectCandidatesFile(path, 0.7, 0, ExternalConfig{MemElements: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	want, err := DetectCandidates(s, 0.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("on-disk candidates differ from in-memory:\n got %v\nwant %v", got, want)
	}
	// Sanity: the embedded period 7 must be among the candidates.
	found := false
	for _, c := range got {
		if c.Period == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("embedded period 7 missing from on-disk candidates")
	}
}

func TestDetectCandidatesFileValidates(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "missing.bin")
	if _, err := DetectCandidatesFile(missing, 0.5, 0, ExternalConfig{}); err == nil {
		t.Fatal("missing file: want error")
	}

	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("NOPE 1 2\nxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectCandidatesFile(bad, 0.5, 0, ExternalConfig{}); err == nil {
		t.Fatal("bad header: want error")
	}

	s := series.FromString("abcabc")
	ok := filepath.Join(dir, "ok.bin")
	if err := WriteSeriesFile(ok, s); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectCandidatesFile(ok, 0, 0, ExternalConfig{}); err == nil {
		t.Fatal("ψ=0: want error")
	}
	if _, err := DetectCandidatesFile(ok, 0.5, 99, ExternalConfig{}); err == nil {
		t.Fatal("maxPeriod ≥ n: want error")
	}

	truncated := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(truncated, []byte("PSER1 2 100\n\x00\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectCandidatesFile(truncated, 0.5, 0, ExternalConfig{}); err == nil {
		t.Fatal("truncated body: want error")
	}
}
