package core

import (
	"context"
	"fmt"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// IncrementalMiner maintains the symbol periodicities of a growing series
// online, in the spirit of the incremental/online/merge mining the paper's
// authors develop in its reference [4]: every arriving symbol updates the
// per-(symbol, period, position) consecutive-match counts F2 for all periods
// up to a fixed bound in O(maxPeriod) time, so the mining result for the
// stream seen so far is available at any moment without rescanning. Two
// miners over adjacent segments of one series can be combined with Merge,
// which stitches the boundary matches — the "merge mining" operation.
type IncrementalMiner struct {
	alpha     *alphabet.Alphabet
	maxPeriod int
	data      []uint16
	// f2[k][p][l] = F2(s_k, π_{p,l}) restricted to matches seen so far;
	// the l-arrays are allocated lazily per (k,p) on first match.
	f2 [][][]int32
}

// NewIncrementalMiner returns a miner tracking periods 1..maxPeriod.
func NewIncrementalMiner(alpha *alphabet.Alphabet, maxPeriod int) (*IncrementalMiner, error) {
	if maxPeriod < 1 {
		return nil, fmt.Errorf("core: maxPeriod %d < 1", maxPeriod)
	}
	m := &IncrementalMiner{alpha: alpha, maxPeriod: maxPeriod, f2: make([][][]int32, alpha.Size())}
	for k := range m.f2 {
		m.f2[k] = make([][]int32, maxPeriod+1)
	}
	return m, nil
}

// Append ingests the next symbol index; O(maxPeriod).
func (m *IncrementalMiner) Append(k int) error {
	if k < 0 || k >= m.alpha.Size() {
		return fmt.Errorf("core: symbol index %d out of range [0,%d)", k, m.alpha.Size())
	}
	i := len(m.data)
	m.data = append(m.data, uint16(k))
	// The new position closes a lag-p match (i−p, i) whenever t_{i−p} = k.
	for p := 1; p <= m.maxPeriod && p <= i; p++ {
		if int(m.data[i-p]) == k {
			m.bump(k, p, (i-p)%p)
		}
	}
	return nil
}

// AppendSymbol ingests the next symbol by name.
func (m *IncrementalMiner) AppendSymbol(symbol string) error {
	k, ok := m.alpha.Index(symbol)
	if !ok {
		return fmt.Errorf("core: symbol %q not in alphabet %v", symbol, m.alpha)
	}
	return m.Append(k)
}

func (m *IncrementalMiner) bump(k, p, l int) {
	if m.f2[k][p] == nil {
		m.f2[k][p] = make([]int32, p)
	}
	m.f2[k][p][l]++
}

// Len returns the number of symbols ingested.
func (m *IncrementalMiner) Len() int { return len(m.data) }

// MaxPeriod returns the tracked period bound.
func (m *IncrementalMiner) MaxPeriod() int { return m.maxPeriod }

// Series returns the ingested stream as a series.
func (m *IncrementalMiner) Series() *series.Series {
	return series.FromIndices(m.alpha, m.data)
}

// F2 returns the maintained count F2(s_k, π_{p,l}) for the stream so far.
func (m *IncrementalMiner) F2(k, p, l int) int {
	if p < 1 || p > m.maxPeriod || l < 0 || l >= p {
		panic(fmt.Sprintf("core: F2(%d,%d,%d) outside tracked range", k, p, l))
	}
	if m.f2[k][p] == nil {
		return 0
	}
	return int(m.f2[k][p][l])
}

// Periodicities returns the symbol periodicities of the stream seen so far
// at threshold psi, identical to what Mine would report for periods up to
// MaxPeriod — but computed from the maintained counts in
// O(σ · maxPeriod²/2) with no pass over the data.
func (m *IncrementalMiner) Periodicities(psi float64) ([]SymbolPeriodicity, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("core: threshold ψ=%v outside (0,1]", psi)
	}
	n := len(m.data)
	var out []SymbolPeriodicity
	for p := 1; p <= m.maxPeriod && p < n; p++ {
		for l := 0; l < p; l++ {
			pairs := pairsAt(n, p, l)
			if pairs < 1 {
				continue
			}
			for k := range m.f2 {
				if m.f2[k][p] == nil {
					continue
				}
				f2 := int(m.f2[k][p][l])
				if f2 == 0 {
					continue
				}
				conf := float64(f2) / float64(pairs)
				if conf >= psi {
					out = append(out, SymbolPeriodicity{
						Symbol: k, Period: p, Position: l,
						F2: f2, Pairs: pairs, Confidence: conf,
					})
				}
			}
		}
	}
	return out, nil
}

// Mine runs the full algorithm (including pattern formation) on the stream
// seen so far through the shared session pipeline; equivalent to Mine over
// Series() with the miner's period bound.
func (m *IncrementalMiner) Mine(opt Options) (*Result, error) {
	if len(m.data) == 0 {
		return nil, fmt.Errorf("core: empty stream")
	}
	return Mine(m.Series(), m.mineOptions(opt))
}

// MineContext is Mine with cooperative cancellation, with the same polling
// points as MineContext over an in-memory series.
func (m *IncrementalMiner) MineContext(ctx context.Context, opt Options) (*Result, error) {
	if len(m.data) == 0 {
		return nil, fmt.Errorf("core: empty stream")
	}
	return MineContext(ctx, m.Series(), m.mineOptions(opt))
}

// mineOptions clamps the requested period range to the tracked bound.
func (m *IncrementalMiner) mineOptions(opt Options) Options {
	if opt.MaxPeriod == 0 || opt.MaxPeriod > m.maxPeriod {
		opt.MaxPeriod = min(m.maxPeriod, len(m.data)/2)
	}
	if opt.MaxPeriod < 1 {
		opt.MaxPeriod = 1
	}
	return opt
}

// Merge combines two miners over adjacent segments of one series (m holding
// the earlier segment, next the later) into a miner equivalent to having
// ingested the concatenation: the maintained counts add, and the matches
// that span the segment boundary are stitched in O(maxPeriod²). Both miners
// must share the alphabet and period bound. m is updated in place; next is
// left untouched.
func (m *IncrementalMiner) Merge(next *IncrementalMiner) error {
	if m.alpha != next.alpha {
		return fmt.Errorf("core: merging miners with different alphabets")
	}
	if m.maxPeriod != next.maxPeriod {
		return fmt.Errorf("core: merging miners with period bounds %d vs %d", m.maxPeriod, next.maxPeriod)
	}
	offset := len(m.data)
	// Segment-internal counts add; next's phases shift by the offset.
	for k := range next.f2 {
		for p := 1; p <= next.maxPeriod; p++ {
			counts := next.f2[k][p]
			if counts == nil {
				continue
			}
			for l, c := range counts {
				if c != 0 {
					m.addF2(k, p, (l+offset)%p, c)
				}
			}
		}
	}
	// Boundary matches: start position i in the last maxPeriod symbols of
	// the first segment, partner i+p in the second.
	for p := 1; p <= m.maxPeriod; p++ {
		for i := max(0, offset-p); i < offset; i++ {
			j := i + p - offset // position within next
			if j >= len(next.data) {
				continue
			}
			if m.data[i] == next.data[j] {
				m.bump(int(m.data[i]), p, i%p)
			}
		}
	}
	m.data = append(m.data, next.data...)
	return nil
}

func (m *IncrementalMiner) addF2(k, p, l int, c int32) {
	if m.f2[k][p] == nil {
		m.f2[k][p] = make([]int32, p)
	}
	m.f2[k][p][l] += c
}
