package core

import (
	"reflect"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// FuzzMine drives the miner with arbitrary symbol streams and thresholds,
// checking the structural invariants and cross-engine agreement.
func FuzzMine(f *testing.F) {
	f.Add([]byte("abcabbabcb"), uint8(66))
	f.Add([]byte("aaaaaaa"), uint8(100))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}, uint8(50))
	f.Add([]byte("xy"), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, thr uint8) {
		if len(data) < 2 || len(data) > 200 {
			t.Skip()
		}
		const sigma = 4
		idx := make([]uint16, len(data))
		for i, b := range data {
			idx[i] = uint16(b % sigma)
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		psi := float64(thr%100+1) / 100

		naive, err := Mine(s, Options{Threshold: psi, Engine: EngineNaive})
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		bitset, err := Mine(s, Options{Threshold: psi, Engine: EngineBitset})
		if err != nil {
			t.Fatalf("bitset: %v", err)
		}
		if !reflect.DeepEqual(naive.Periodicities, bitset.Periodicities) {
			t.Fatal("engines disagree on periodicities")
		}
		if !reflect.DeepEqual(naive.Patterns, bitset.Patterns) {
			t.Fatal("engines disagree on patterns")
		}
		for _, sp := range naive.Periodicities {
			if sp.Confidence < psi || sp.Confidence > 1 {
				t.Fatalf("confidence %v outside [ψ,1]", sp.Confidence)
			}
			if sp.F2 < 1 || sp.F2 > sp.Pairs {
				t.Fatalf("F2 %d outside [1,%d]", sp.F2, sp.Pairs)
			}
			if want := s.F2(sp.Symbol, sp.Period, sp.Position); sp.F2 != want {
				t.Fatalf("reported F2 %d != definitional %d", sp.F2, want)
			}
		}
		for _, pt := range naive.Patterns {
			if pt.FixedSymbols() < 2 {
				t.Fatal("multi-symbol pattern with < 2 fixed symbols")
			}
			if pt.Support < psi {
				t.Fatal("pattern below threshold")
			}
		}
	})
}

// FuzzIncremental checks the online miner against the batch miner on
// arbitrary streams.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte("abcabcabc"))
	f.Add([]byte{1, 1, 2, 2, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 150 {
			t.Skip()
		}
		const sigma = 3
		alpha := alphabet.Letters(sigma)
		m, err := NewIncrementalMiner(alpha, 10)
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]uint16, len(data))
		for i, b := range data {
			k := int(b % sigma)
			idx[i] = uint16(k)
			if err := m.Append(k); err != nil {
				t.Fatal(err)
			}
		}
		got, err := m.Periodicities(0.5)
		if err != nil {
			t.Fatal(err)
		}
		s := series.FromIndices(alpha, idx)
		mp := 10
		if mp >= s.Len() {
			mp = s.Len() - 1
		}
		res, err := Mine(s, Options{Threshold: 0.5, MaxPeriod: mp, Engine: EngineNaive, MaxPatternPeriod: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortPers(got), sortPers(res.Periodicities)) {
			t.Fatal("incremental disagrees with batch")
		}
	})
}
