package core

import "fmt"

// StreamCounter maintains the symbol periodicities of an unbounded stream
// with memory independent of the stream length — the data-stream setting the
// paper's introduction motivates. Only the last maxPeriod symbols are
// retained (a ring buffer) together with the per-(symbol, period, position)
// consecutive-match counts, so memory is O(σ·maxPeriod² + maxPeriod)
// regardless of how many symbols have flowed past; each arriving symbol
// costs O(maxPeriod). Unlike IncrementalMiner it cannot form multi-symbol
// patterns (that requires the data), but its periodicity answers are
// identical.
type StreamCounter struct {
	sigma     int
	maxPeriod int
	n         int
	ring      []uint16
	f2        [][][]int32
}

// NewStreamCounter returns a bounded-memory counter for a σ-symbol stream
// tracking periods 1..maxPeriod.
func NewStreamCounter(sigma, maxPeriod int) (*StreamCounter, error) {
	if sigma < 1 {
		return nil, fmt.Errorf("core: sigma %d < 1", sigma)
	}
	if maxPeriod < 1 {
		return nil, fmt.Errorf("core: maxPeriod %d < 1", maxPeriod)
	}
	c := &StreamCounter{
		sigma:     sigma,
		maxPeriod: maxPeriod,
		ring:      make([]uint16, maxPeriod),
		f2:        make([][][]int32, sigma),
	}
	for k := range c.f2 {
		c.f2[k] = make([][]int32, maxPeriod+1)
	}
	return c, nil
}

// Append ingests the next symbol index; O(maxPeriod).
func (c *StreamCounter) Append(k int) error {
	if k < 0 || k >= c.sigma {
		return fmt.Errorf("core: symbol index %d out of range [0,%d)", k, c.sigma)
	}
	i := c.n
	for p := 1; p <= c.maxPeriod && p <= i; p++ {
		if int(c.ring[(i-p)%c.maxPeriod]) == k {
			l := (i - p) % p
			if c.f2[k][p] == nil {
				c.f2[k][p] = make([]int32, p)
			}
			c.f2[k][p][l]++
		}
	}
	c.ring[i%c.maxPeriod] = uint16(k)
	c.n++
	return nil
}

// Len returns the number of symbols seen.
func (c *StreamCounter) Len() int { return c.n }

// F2 returns the maintained count F2(s_k, π_{p,l}) for the stream so far.
func (c *StreamCounter) F2(k, p, l int) int {
	if p < 1 || p > c.maxPeriod || l < 0 || l >= p {
		panic(fmt.Sprintf("core: F2(%d,%d,%d) outside tracked range", k, p, l))
	}
	if c.f2[k][p] == nil {
		return 0
	}
	return int(c.f2[k][p][l])
}

// Periodicities returns the symbol periodicities of the stream seen so far
// at threshold psi; identical to IncrementalMiner.Periodicities on the same
// stream.
func (c *StreamCounter) Periodicities(psi float64) ([]SymbolPeriodicity, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("core: threshold ψ=%v outside (0,1]", psi)
	}
	var out []SymbolPeriodicity
	for p := 1; p <= c.maxPeriod && p < c.n; p++ {
		for l := 0; l < p; l++ {
			pairs := pairsAt(c.n, p, l)
			if pairs < 1 {
				continue
			}
			for k := 0; k < c.sigma; k++ {
				if c.f2[k][p] == nil {
					continue
				}
				f2 := int(c.f2[k][p][l])
				if f2 == 0 {
					continue
				}
				conf := float64(f2) / float64(pairs)
				if conf >= psi {
					out = append(out, SymbolPeriodicity{
						Symbol: k, Period: p, Position: l,
						F2: f2, Pairs: pairs, Confidence: conf,
					})
				}
			}
		}
	}
	return out, nil
}

// MemoryBytes estimates the counter's resident size, to document its
// independence from the stream length.
func (c *StreamCounter) MemoryBytes() int {
	total := len(c.ring) * 2
	for k := range c.f2 {
		for p := range c.f2[k] {
			total += len(c.f2[k][p]) * 4
		}
	}
	return total
}
