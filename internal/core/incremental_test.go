package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// batchPeriodicities mines s with the naive engine restricted to maxPeriod.
func batchPeriodicities(t *testing.T, s *series.Series, psi float64, maxPeriod int) []SymbolPeriodicity {
	t.Helper()
	mp := maxPeriod
	if mp >= s.Len() {
		mp = s.Len() - 1
	}
	res, err := Mine(s, Options{Threshold: psi, MaxPeriod: mp, Engine: EngineNaive, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Periodicities
}

func sortPers(pers []SymbolPeriodicity) []SymbolPeriodicity {
	out := append([]SymbolPeriodicity(nil), pers...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Period < a.Period || (b.Period == a.Period && (b.Position < a.Position ||
				(b.Position == a.Position && b.Symbol < a.Symbol))) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alpha := alphabet.Letters(4)
	m, err := NewIncrementalMiner(alpha, 20)
	if err != nil {
		t.Fatal(err)
	}
	var idx []uint16
	for i := 0; i < 300; i++ {
		k := rng.Intn(4)
		if err := m.Append(k); err != nil {
			t.Fatal(err)
		}
		idx = append(idx, uint16(k))
		if i > 10 && i%50 == 0 {
			// At several stream lengths, the online answer must equal the
			// batch answer.
			got, err := m.Periodicities(0.4)
			if err != nil {
				t.Fatal(err)
			}
			want := batchPeriodicities(t, series.FromIndices(alpha, idx), 0.4, 20)
			if !reflect.DeepEqual(sortPers(got), sortPers(want)) {
				t.Fatalf("at n=%d: online %v != batch %v", i+1, got, want)
			}
		}
	}
}

func TestIncrementalF2Counts(t *testing.T) {
	m, err := NewIncrementalMiner(alphabet.Letters(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range "abcabbabcb" {
		if err := m.AppendSymbol(string(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Paper values: F2(a, π_{3,0}) = 2, F2(b, π_{3,1}) = 2, F2(b, π_{4,1}) = 2.
	if got := m.F2(0, 3, 0); got != 2 {
		t.Fatalf("F2(a,3,0) = %d, want 2", got)
	}
	if got := m.F2(1, 3, 1); got != 2 {
		t.Fatalf("F2(b,3,1) = %d, want 2", got)
	}
	if got := m.F2(1, 4, 1); got != 2 {
		t.Fatalf("F2(b,4,1) = %d, want 2", got)
	}
}

func TestIncrementalMineEqualsBatchMine(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	alpha := alphabet.Letters(3)
	m, err := NewIncrementalMiner(alpha, 30)
	if err != nil {
		t.Fatal(err)
	}
	var idx []uint16
	for i := 0; i < 200; i++ {
		k := rng.Intn(3)
		_ = m.Append(k)
		idx = append(idx, uint16(k))
	}
	got, err := m.Mine(Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(series.FromIndices(alpha, idx), Options{Threshold: 0.5, MaxPeriod: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Periodicities, want.Periodicities) {
		t.Fatal("incremental Mine differs from batch Mine")
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Fatal("incremental patterns differ from batch")
	}
}

func TestMergeEqualsContiguousIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	alpha := alphabet.Letters(4)
	for trial := 0; trial < 10; trial++ {
		lenA := rng.Intn(80) + 1
		lenB := rng.Intn(80) + 1
		maxP := rng.Intn(25) + 1

		a, _ := NewIncrementalMiner(alpha, maxP)
		b, _ := NewIncrementalMiner(alpha, maxP)
		whole, _ := NewIncrementalMiner(alpha, maxP)
		for i := 0; i < lenA; i++ {
			k := rng.Intn(4)
			_ = a.Append(k)
			_ = whole.Append(k)
		}
		for i := 0; i < lenB; i++ {
			k := rng.Intn(4)
			_ = b.Append(k)
			_ = whole.Append(k)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if a.Len() != whole.Len() {
			t.Fatalf("merged length %d, want %d", a.Len(), whole.Len())
		}
		for k := 0; k < 4; k++ {
			for p := 1; p <= maxP; p++ {
				for l := 0; l < p; l++ {
					if got, want := a.F2(k, p, l), whole.F2(k, p, l); got != want {
						t.Fatalf("trial %d (lenA=%d lenB=%d maxP=%d): merged F2(%d,%d,%d)=%d, want %d",
							trial, lenA, lenB, maxP, k, p, l, got, want)
					}
				}
			}
		}
	}
}

func TestMergeValidates(t *testing.T) {
	a, _ := NewIncrementalMiner(alphabet.Letters(2), 5)
	b, _ := NewIncrementalMiner(alphabet.Letters(2), 6)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched period bounds: want error")
	}
	c, _ := NewIncrementalMiner(alphabet.Letters(3), 5)
	if err := a.Merge(c); err == nil {
		t.Fatal("mismatched alphabets: want error")
	}
}

func TestIncrementalValidates(t *testing.T) {
	if _, err := NewIncrementalMiner(alphabet.Letters(2), 0); err == nil {
		t.Fatal("maxPeriod 0: want error")
	}
	m, _ := NewIncrementalMiner(alphabet.Letters(2), 5)
	if err := m.Append(7); err == nil {
		t.Fatal("bad symbol index: want error")
	}
	if err := m.AppendSymbol("z"); err == nil {
		t.Fatal("unknown symbol: want error")
	}
	if _, err := m.Periodicities(0); err == nil {
		t.Fatal("ψ=0: want error")
	}
	if _, err := m.Mine(Options{Threshold: 0.5}); err == nil {
		t.Fatal("empty stream Mine: want error")
	}
}

func TestIncrementalF2PanicsOutsideRange(t *testing.T) {
	m, _ := NewIncrementalMiner(alphabet.Letters(2), 5)
	defer func() {
		if recover() == nil {
			t.Fatal("F2 beyond maxPeriod: want panic")
		}
	}()
	m.F2(0, 6, 0)
}

func TestMergeProperty(t *testing.T) {
	alpha := alphabet.Letters(3)
	f := func(seed int64, la, lb, mp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lenA, lenB := int(la)%40+1, int(lb)%40+1
		maxP := int(mp)%15 + 1
		a, _ := NewIncrementalMiner(alpha, maxP)
		whole, _ := NewIncrementalMiner(alpha, maxP)
		b, _ := NewIncrementalMiner(alpha, maxP)
		for i := 0; i < lenA; i++ {
			k := rng.Intn(3)
			_ = a.Append(k)
			_ = whole.Append(k)
		}
		for i := 0; i < lenB; i++ {
			k := rng.Intn(3)
			_ = b.Append(k)
			_ = whole.Append(k)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		for k := 0; k < 3; k++ {
			for p := 1; p <= maxP; p++ {
				for l := 0; l < p; l++ {
					if a.F2(k, p, l) != whole.F2(k, p, l) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
