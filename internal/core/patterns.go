package core

import (
	"sort"
	"strings"

	"periodica/internal/alphabet"
	"periodica/internal/bitvec"
	"periodica/internal/exec"
)

// DontCare marks a don't-care position in a pattern.
const DontCare = -1

// FixedSymbol pins Symbol at offset Position of a pattern.
type FixedSymbol struct {
	Position int
	Symbol   int
}

// Pattern is a periodic pattern of length Period, stored sparsely: Fixed
// holds the pinned symbols in ascending position order and every other
// position is the don't-care symbol. Support is the estimated fraction of
// period occurrences at which the pattern holds; for single-symbol patterns
// it is the Definition-2 support F2/(⌈(n−l)/p⌉−1), and for multi-symbol
// patterns the Definition-3 estimate |W′_p|/⌊n/p⌋.
type Pattern struct {
	Period  int
	Fixed   []FixedSymbol
	Count   int
	Support float64
}

// FixedSymbols returns the number of non-don't-care positions.
func (pt Pattern) FixedSymbols() int { return len(pt.Fixed) }

// SymbolAt returns the symbol pinned at position l, or DontCare.
func (pt Pattern) SymbolAt(l int) int {
	for _, f := range pt.Fixed {
		if f.Position == l {
			return f.Symbol
		}
	}
	return DontCare
}

// Render writes the pattern with '*' for don't-care positions, e.g. "a*b".
func (pt Pattern) Render(alpha *alphabet.Alphabet) string {
	var b strings.Builder
	next := 0
	for l := 0; l < pt.Period; l++ {
		if next < len(pt.Fixed) && pt.Fixed[next].Position == l {
			b.WriteString(alpha.Symbol(pt.Fixed[next].Symbol))
			next++
		} else {
			b.WriteByte('*')
		}
	}
	return b.String()
}

// singlePattern forms the Definition-2 pattern of a symbol periodicity.
func singlePattern(sp SymbolPeriodicity) Pattern {
	return Pattern{
		Period:  sp.Period,
		Fixed:   []FixedSymbol{{Position: sp.Position, Symbol: sp.Symbol}},
		Count:   sp.F2,
		Support: sp.Confidence,
	}
}

// slot is a qualifying symbol at one pattern position, with the occurrence
// set at which its single-symbol pattern holds.
type slot struct {
	symbol int
	occ    *bitvec.Vector
}

// minePatterns enumerates Definition 3's candidate patterns for every
// detected period within the configured bounds, estimating support by
// counting the occurrences shared by all fixed positions (the paper's W′_p
// tuples with a common occurrence index), and keeps those with ≥ 2 fixed
// symbols and support ≥ ψ. Enumeration is depth-first with the Apriori bound:
// the support of an extension never exceeds that of its prefix, so a prefix
// below threshold prunes its whole subtree.
//
// sched, when non-nil, supplies cancellation and step accounting: it is
// polled between occurrence-set builds and ticked every DFS chunk, so a
// cancelled context (or an exhausted step budget) aborts the stage with that
// error and no patterns.
func minePatterns(det *detector, pers []SymbolPeriodicity, opt Options, sched *exec.Scheduler) (out []Pattern, truncated bool, err error) {
	byPeriod := map[int][]SymbolPeriodicity{}
	for _, sp := range pers {
		if sp.Period <= opt.MaxPatternPeriod {
			byPeriod[sp.Period] = append(byPeriod[sp.Period], sp)
		}
	}
	var periods []int
	for p := range byPeriod {
		periods = append(periods, p)
	}
	sort.Ints(periods)

	for _, p := range periods {
		group := byPeriod[p]
		distinct := map[int]bool{}
		for _, sp := range group {
			distinct[sp.Position] = true
		}
		if len(distinct) < 2 {
			continue // no way to place two fixed symbols
		}
		slots := make([][]slot, p)
		for _, sp := range group {
			if sched != nil {
				if err := sched.Poll(); err != nil {
					return nil, false, err
				}
			}
			slots[sp.Position] = append(slots[sp.Position],
				slot{symbol: sp.Symbol, occ: det.occurrenceSet(sp.Symbol, p, sp.Position)})
		}
		e := &enumerator{
			slots:  slots,
			period: p,
			total:  det.n() / p,
			psi:    opt.Threshold,
			max:    opt.MaxPatterns - len(out),
			sched:  sched,
		}
		e.walk(0, nil)
		if e.err != nil {
			return nil, false, e.err
		}
		out = append(out, e.found...)
		if e.truncated {
			truncated = true
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Period != out[j].Period {
			return out[i].Period < out[j].Period
		}
		if out[i].Support != out[j].Support { //opvet:ignore floatcmp exact tie-break in sort comparator
			return out[i].Support > out[j].Support
		}
		return lessFixed(out[i].Fixed, out[j].Fixed)
	})
	return out, truncated, nil
}

// lessFixed orders sparse patterns by their dense rendering: position by
// position, a pinned symbol at an earlier position sorts after don't-care
// ('*' precedes letters in the dense comparison used before sparsification —
// here we simply order by first differing pinned position, then symbol).
func lessFixed(a, b []FixedSymbol) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Position != b[i].Position {
			return a[i].Position > b[i].Position // earlier pin = denser head = later
		}
		if a[i].Symbol != b[i].Symbol {
			return a[i].Symbol < b[i].Symbol
		}
	}
	return len(a) < len(b)
}

// FilterMaximal keeps only the maximal patterns: a pattern is dropped when
// another pattern of the same period pins a strict superset of its
// (position, symbol) pairs — the subsumed pattern adds no information once
// the larger one is reported (cf. Han et al.'s max-pattern notion). Input
// order is preserved among survivors.
func FilterMaximal(patterns []Pattern) []Pattern {
	byPeriod := map[int][]int{}
	for i, pt := range patterns {
		byPeriod[pt.Period] = append(byPeriod[pt.Period], i)
	}
	drop := make([]bool, len(patterns))
	for _, group := range byPeriod {
		for _, i := range group {
			for _, j := range group {
				if i == j || drop[j] {
					continue
				}
				if len(patterns[j].Fixed) > len(patterns[i].Fixed) && subsumes(patterns[j], patterns[i]) {
					drop[i] = true
					break
				}
			}
		}
	}
	var out []Pattern
	for i, pt := range patterns {
		if !drop[i] {
			out = append(out, pt)
		}
	}
	return out
}

// subsumes reports whether big pins every (position, symbol) pair small
// does. Both Fixed slices are in ascending position order.
func subsumes(big, small Pattern) bool {
	j := 0
	for _, f := range small.Fixed {
		for j < len(big.Fixed) && big.Fixed[j].Position < f.Position {
			j++
		}
		if j >= len(big.Fixed) || big.Fixed[j] != f {
			return false
		}
	}
	return true
}

type enumerator struct {
	slots     [][]slot
	period    int
	total     int // ⌊n/p⌋, the support denominator
	psi       float64
	max       int
	chosen    []FixedSymbol
	found     []Pattern
	truncated bool
	sched     *exec.Scheduler // optional cancellation/step accounting
	steps     int
	err       error
}

// enumTickEvery is the DFS chunk size between scheduler ticks: large enough
// to keep the atomic step counter off the recursion hot path, small enough
// that cancellation lands within microseconds.
const enumTickEvery = 1024

// walk extends the pattern at position l with cur = AND of the chosen
// occurrence sets (nil while no symbol chosen yet).
func (e *enumerator) walk(l int, cur *bitvec.Vector) {
	if e.truncated || e.err != nil {
		return
	}
	// The subtree under a node can be exponentially large, so the Apriori
	// prune alone does not bound the time between cancellation polls; an
	// explicit step counter does.
	e.steps++
	if e.sched != nil && e.steps&(enumTickEvery-1) == 0 {
		if err := e.sched.Tick(enumTickEvery); err != nil {
			e.err = err
			return
		}
	}
	if cur != nil && float64(cur.Count()) < e.psi*float64(e.total) {
		return
	}
	if l == e.period {
		if len(e.chosen) >= 2 {
			count := cur.Count()
			support := float64(count) / float64(e.total)
			if support >= e.psi {
				if len(e.found) >= e.max {
					e.truncated = true
					return
				}
				fixed := make([]FixedSymbol, len(e.chosen))
				copy(fixed, e.chosen)
				e.found = append(e.found, Pattern{Period: e.period, Fixed: fixed, Count: count, Support: support})
			}
		}
		return
	}
	// Don't-care at position l.
	e.walk(l+1, cur)
	for _, sl := range e.slots[l] {
		next := sl.occ
		if cur != nil {
			next = cur.And(sl.occ, nil)
		}
		e.chosen = append(e.chosen, FixedSymbol{Position: l, Symbol: sl.symbol})
		e.walk(l+1, next)
		e.chosen = e.chosen[:len(e.chosen)-1]
	}
}
