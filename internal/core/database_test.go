package core

import (
	"math/rand"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func noisyPeriodic(rng *rand.Rand, alpha *alphabet.Alphabet, pattern []uint16, n int, noise float64) *series.Series {
	idx := make([]uint16, n)
	for i := range idx {
		idx[i] = pattern[i%len(pattern)]
		if rng.Float64() < noise {
			idx[i] = uint16(rng.Intn(alpha.Size()))
		}
	}
	return series.FromIndices(alpha, idx)
}

func TestMineDatabaseFindsSharedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	alpha := alphabet.Letters(4)
	shared := []uint16{0, 1, 2, 3}
	var db []*series.Series
	// Eight customers share the period-4 pattern; two are pure noise.
	for i := 0; i < 8; i++ {
		db = append(db, noisyPeriodic(rng, alpha, shared, 400, 0.03))
	}
	for i := 0; i < 2; i++ {
		idx := make([]uint16, 400)
		for j := range idx {
			idx[j] = uint16(rng.Intn(4))
		}
		db = append(db, series.FromIndices(alpha, idx))
	}
	res, err := MineDatabase(db, Options{Threshold: 0.6, MaxPeriod: 20, MaxPatternPeriod: 20}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 {
		t.Fatalf("Total = %d", res.Total)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no shared patterns found")
	}
	// The full abcd pattern (period 4, all positions fixed) must be among
	// the aggregated patterns, in ≥ 7 of the 10 sequences.
	alphaFull := false
	for _, dp := range res.Patterns {
		if dp.Pattern.Period == 4 && len(dp.Pattern.Fixed) == 4 {
			alphaFull = true
			if dp.Sequences < 7 {
				t.Fatalf("full pattern in only %d sequences", dp.Sequences)
			}
			if dp.MeanSupport < 0.6 {
				t.Fatalf("mean support %v below per-series threshold", dp.MeanSupport)
			}
		}
	}
	if !alphaFull {
		t.Fatal("full period-4 pattern not aggregated")
	}
}

func TestMineDatabaseOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	alpha := alphabet.Letters(3)
	var db []*series.Series
	for i := 0; i < 4; i++ {
		db = append(db, noisyPeriodic(rng, alpha, []uint16{0, 1, 2}, 120, 0.1))
	}
	res, err := MineDatabase(db, Options{Threshold: 0.5, MaxPeriod: 10, MaxPatternPeriod: 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i].Sequences > res.Patterns[i-1].Sequences {
			t.Fatal("patterns not sorted by sequence count")
		}
	}
}

func TestMineDatabaseValidates(t *testing.T) {
	if _, err := MineDatabase(nil, Options{Threshold: 0.5}, 0.5); err == nil {
		t.Fatal("empty database: want error")
	}
	a := series.FromString("ababab")
	b := series.FromString("xyxyxy")
	if _, err := MineDatabase([]*series.Series{a, b}, Options{Threshold: 0.5}, 0.5); err == nil {
		t.Fatal("mixed alphabets: want error")
	}
	if _, err := MineDatabase([]*series.Series{a}, Options{Threshold: 0.5}, 0); err == nil {
		t.Fatal("minFraction 0: want error")
	}
	if _, err := MineDatabase([]*series.Series{a}, Options{Threshold: 0}, 0.5); err == nil {
		t.Fatal("bad mine options: want error")
	}
}

func TestPatternKeyDistinguishes(t *testing.T) {
	a := Pattern{Period: 4, Fixed: fixed(0, 1)}
	b := Pattern{Period: 4, Fixed: fixed(1, 0)}
	c := Pattern{Period: 5, Fixed: fixed(0, 1)}
	if patternKey(a) == patternKey(b) || patternKey(a) == patternKey(c) {
		t.Fatal("pattern keys collide")
	}
	if patternKey(a) != patternKey(Pattern{Period: 4, Fixed: fixed(0, 1)}) {
		t.Fatal("equal patterns have different keys")
	}
}
