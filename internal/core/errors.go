package core

import (
	"errors"
	"fmt"
)

// ErrInvalidInput marks errors caused by invalid caller input (a threshold
// outside (0,1], an impossible period range, …) as opposed to internal or
// cancellation failures. Callers serving untrusted requests match it with
// errors.Is to map bad input to a client error rather than a server error.
var ErrInvalidInput = errors.New("core: invalid input")

// invalidInputError is a validation failure; its message is the full
// diagnostic and it matches ErrInvalidInput under errors.Is.
type invalidInputError struct{ msg string }

func (e *invalidInputError) Error() string { return e.msg }

func (e *invalidInputError) Is(target error) bool { return target == ErrInvalidInput }

// invalidf builds an input-validation error that matches ErrInvalidInput.
func invalidf(format string, args ...any) error {
	return &invalidInputError{msg: fmt.Sprintf(format, args...)}
}
