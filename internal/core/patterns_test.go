package core

import (
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func fixed(pairs ...int) []FixedSymbol {
	var out []FixedSymbol
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, FixedSymbol{Position: pairs[i], Symbol: pairs[i+1]})
	}
	return out
}

func TestFilterMaximalDropsSubsumed(t *testing.T) {
	patterns := []Pattern{
		{Period: 3, Fixed: fixed(0, 0)},       // a**   — subsumed by ab*
		{Period: 3, Fixed: fixed(0, 0, 1, 1)}, // ab*   — maximal
		{Period: 3, Fixed: fixed(1, 1)},       // *b*   — subsumed by ab*
		{Period: 3, Fixed: fixed(2, 2)},       // **c   — maximal (c not in ab*)
		{Period: 4, Fixed: fixed(0, 0)},       // different period: kept
		{Period: 4, Fixed: fixed(0, 1, 1, 1)}, // different symbol at 0: kept
	}
	out := FilterMaximal(patterns)
	if len(out) != 4 {
		t.Fatalf("kept %d patterns, want 4: %+v", len(out), out)
	}
	alpha := alphabet.Letters(3)
	want := map[string]bool{"ab*": true, "**c": true, "a***": true, "bb**": true}
	for _, pt := range out {
		if !want[pt.Render(alpha)] {
			t.Fatalf("unexpected survivor %s", pt.Render(alpha))
		}
	}
}

func TestFilterMaximalSameFixedSetKept(t *testing.T) {
	// Equal patterns don't subsume each other (strict superset required).
	patterns := []Pattern{
		{Period: 2, Fixed: fixed(0, 0)},
		{Period: 2, Fixed: fixed(0, 0)},
	}
	if got := FilterMaximal(patterns); len(got) != 2 {
		t.Fatalf("kept %d, want 2", len(got))
	}
}

func TestFilterMaximalOnMinedOutput(t *testing.T) {
	s := series.FromString("abcabcabcabcabcabcabcabc")
	// Definition 3's support tops out at (⌊n/p⌋−1)/⌊n/p⌋ = 7/8 on perfect
	// data (the final occurrence has no successor to match), so mine at 0.8.
	res, err := Mine(s, Options{Threshold: 0.8, MinPeriod: 3, MaxPeriod: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Patterns ab*, a*c, *bc and abc all qualify; only abc is maximal.
	out := FilterMaximal(res.Patterns)
	if len(out) != 1 || out[0].Render(s.Alphabet()) != "abc" {
		t.Fatalf("maximal patterns = %v, want [abc]", renderAll(out, s))
	}
}

func TestSymbolAt(t *testing.T) {
	pt := Pattern{Period: 4, Fixed: fixed(1, 2, 3, 0)}
	if pt.SymbolAt(0) != DontCare || pt.SymbolAt(2) != DontCare {
		t.Fatal("don't-care positions wrong")
	}
	if pt.SymbolAt(1) != 2 || pt.SymbolAt(3) != 0 {
		t.Fatal("fixed positions wrong")
	}
}

func TestSubsumesOrdering(t *testing.T) {
	big := Pattern{Period: 5, Fixed: fixed(0, 1, 2, 2, 4, 0)}
	small := Pattern{Period: 5, Fixed: fixed(2, 2, 4, 0)}
	if !subsumes(big, small) {
		t.Fatal("superset not recognized")
	}
	other := Pattern{Period: 5, Fixed: fixed(2, 1)}
	if subsumes(big, other) {
		t.Fatal("different symbol treated as subsumed")
	}
}
