package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"periodica/internal/fft"
	"periodica/internal/series"
)

// ExternalConfig tunes the on-disk detection path.
type ExternalConfig struct {
	// TmpDir holds the per-symbol indicator and FFT scratch files; defaults
	// to the input file's directory.
	TmpDir string
	// MemElements caps the complex values held in memory by the external
	// FFT (default from fft.ExternalOptions).
	MemElements int
}

// DetectCandidatesFile runs the one-pass detection phase over a series
// stored on disk in the binary format of series.WriteBinary, without ever
// loading the series or the FFT working arrays into memory: one streaming
// pass splits the file into per-symbol indicator files, and each indicator
// is autocorrelated with the external (four-step, out-of-core) FFT. This is
// the paper's §3.1 remark — "an external FFT algorithm can be used for large
// sizes of databases mined while on disk" — realized end to end.
func DetectCandidatesFile(path string, psi float64, maxPeriod int, cfg ExternalConfig) ([]CandidatePeriod, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("core: threshold ψ=%v outside (0,1]", psi)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	var sigma, n int
	if _, err := fmt.Sscanf(header, "PSER1 %d %d", &sigma, &n); err != nil {
		return nil, fmt.Errorf("core: bad series header %q", header)
	}
	if sigma < 1 || n < 2 {
		return nil, fmt.Errorf("core: bad series header σ=%d n=%d", sigma, n)
	}
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, fmt.Errorf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}

	dir := cfg.TmpDir
	if dir == "" {
		dir = filepath.Dir(path)
	}
	work, err := os.MkdirTemp(dir, "periodica-ext-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(work) }() // best-effort temp cleanup

	// One pass: split the symbol stream into σ indicator files.
	indicators := make([]*bufio.Writer, sigma)
	files := make([]*os.File, sigma)
	for k := range indicators {
		files[k], err = os.Create(filepath.Join(work, fmt.Sprintf("ind-%d.bin", k)))
		if err != nil {
			return nil, err
		}
		indicators[k] = bufio.NewWriter(files[k])
	}
	buf := make([]byte, 64*1024)
	read := 0
	for read < n {
		want := min(len(buf), n-read)
		got, err := io.ReadFull(br, buf[:want])
		if err != nil {
			return nil, fmt.Errorf("core: truncated series body: %v", err)
		}
		for i := 0; i < got; i++ {
			k := int(buf[i])
			if k >= sigma {
				return nil, fmt.Errorf("core: symbol byte %d at position %d exceeds σ=%d", buf[i], read+i, sigma)
			}
			for j := range indicators {
				bit := byte(0)
				if j == k {
					bit = 1
				}
				if err := indicators[j].WriteByte(bit); err != nil {
					return nil, err
				}
			}
		}
		read += got
	}
	for k := range indicators {
		if err := indicators[k].Flush(); err != nil {
			return nil, err
		}
		if err := files[k].Close(); err != nil {
			return nil, err
		}
	}

	// Autocorrelate each indicator out of core and aggregate candidates.
	opts := fft.ExternalOptions{TmpDir: work, MemElements: cfg.MemElements}
	lag := make([][]int64, sigma)
	for k := 0; k < sigma; k++ {
		lag[k], err = fft.AutocorrelateFile(filepath.Join(work, fmt.Sprintf("ind-%d.bin", k)), n, opts)
		if err != nil {
			return nil, err
		}
	}
	var out []CandidatePeriod
	for p := 1; p <= maxPeriod; p++ {
		minPairs := pairsAt(n, p, p-1)
		if pairsAt(n, p, 0) < 1 {
			continue
		}
		if minPairs < 1 {
			minPairs = 1
		}
		best, bestCount := -1, int64(0)
		for k := 0; k < sigma; k++ {
			r := lag[k][p]
			if float64(r) >= psi*float64(minPairs) && r > bestCount {
				best, bestCount = k, r
			}
		}
		if best >= 0 {
			out = append(out, CandidatePeriod{Period: p, BestSymbol: best, MatchCount: bestCount})
		}
	}
	return out, nil
}

// WriteSeriesFile stores s in the on-disk format DetectCandidatesFile
// accepts.
func WriteSeriesFile(path string, s *series.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := series.WriteBinary(f, s); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
