package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"periodica/internal/fft"
	"periodica/internal/series"
)

// ExternalConfig tunes the on-disk detection path.
type ExternalConfig struct {
	// TmpDir holds the per-symbol indicator and FFT scratch files; defaults
	// to the input file's directory.
	TmpDir string
	// MemElements caps the complex values held in memory by the external
	// FFT (default from fft.ExternalOptions).
	MemElements int
}

// DetectCandidatesFile runs the one-pass detection phase over a series
// stored on disk in the binary format of series.WriteBinary, without ever
// loading the series or the FFT working arrays into memory: one streaming
// pass splits the file into per-symbol indicator files, and each indicator
// is autocorrelated with the external (four-step, out-of-core) FFT. This is
// the paper's §3.1 remark — "an external FFT algorithm can be used for large
// sizes of databases mined while on disk" — realized end to end.
func DetectCandidatesFile(path string, psi float64, maxPeriod int, cfg ExternalConfig) ([]CandidatePeriod, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("core: threshold ψ=%v outside (0,1]", psi)
	}
	ses := newFileSession(psi, maxPeriod, sessionConfig{workers: 1})
	return ses.candidates(fileDetect{path: path, cfg: cfg})
}

// fileDetect is the detect stage over an on-disk series: it parses the
// header (learning the session's series bounds), splits the stream into
// per-symbol indicator files in one pass, and fills the session's lag counts
// with the external FFT — after which the shared candidate sweep runs
// unchanged.
type fileDetect struct {
	path string
	cfg  ExternalConfig
}

func (fileDetect) name() string { return "detect" }

func (st fileDetect) run(ses *session) error {
	f, err := os.Open(st.path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return err
	}
	var sigma, n int
	if _, err := fmt.Sscanf(header, "PSER1 %d %d", &sigma, &n); err != nil {
		return fmt.Errorf("core: bad series header %q", header)
	}
	if sigma < 1 || n < 2 {
		return fmt.Errorf("core: bad series header σ=%d n=%d", sigma, n)
	}
	if ses.opt.MaxPeriod == 0 {
		ses.opt.MaxPeriod = n / 2
	}
	if ses.opt.MaxPeriod < 1 || ses.opt.MaxPeriod >= n {
		return fmt.Errorf("core: maxPeriod %d outside [1,%d)", ses.opt.MaxPeriod, n)
	}
	ses.n, ses.sigma = n, sigma

	dir := st.cfg.TmpDir
	if dir == "" {
		dir = filepath.Dir(st.path)
	}
	work, err := os.MkdirTemp(dir, "periodica-ext-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(work) }() // best-effort temp cleanup

	// One pass: split the symbol stream into σ indicator files.
	indicators := make([]*bufio.Writer, sigma)
	files := make([]*os.File, sigma)
	for k := range indicators {
		if err := ses.sched.Poll(); err != nil {
			return err
		}
		files[k], err = os.Create(filepath.Join(work, fmt.Sprintf("ind-%d.bin", k)))
		if err != nil {
			return err
		}
		indicators[k] = bufio.NewWriter(files[k])
	}
	buf := make([]byte, 64*1024)
	read := 0
	for read < n {
		if err := ses.sched.Poll(); err != nil {
			return err
		}
		want := min(len(buf), n-read)
		got, err := io.ReadFull(br, buf[:want])
		if err != nil {
			return fmt.Errorf("core: truncated series body: %v", err)
		}
		//opvet:ignore ctxpoll bounded by the 64K read chunk; the enclosing loop polls per chunk
		for i := 0; i < got; i++ {
			k := int(buf[i])
			if k >= sigma {
				return fmt.Errorf("core: symbol byte %d at position %d exceeds σ=%d", buf[i], read+i, sigma)
			}
			//opvet:ignore ctxpoll bounded by σ buffered writes; polling per symbol would dominate the pass
			for j := range indicators {
				bit := byte(0)
				if j == k {
					bit = 1
				}
				if err := indicators[j].WriteByte(bit); err != nil {
					return err
				}
			}
		}
		read += got
	}
	for k := range indicators {
		if err := ses.sched.Poll(); err != nil {
			return err
		}
		if err := indicators[k].Flush(); err != nil {
			return err
		}
		if err := files[k].Close(); err != nil {
			return err
		}
	}

	// Autocorrelate each indicator out of core, polling cancellation
	// between symbols (one external FFT is the uninterruptible unit here).
	opts := fft.ExternalOptions{TmpDir: work, MemElements: st.cfg.MemElements}
	ses.lag = make([][]int64, sigma)
	for k := 0; k < sigma; k++ {
		if err := ses.sched.Poll(); err != nil {
			return err
		}
		ses.lag[k], err = fft.AutocorrelateFile(filepath.Join(work, fmt.Sprintf("ind-%d.bin", k)), n, opts)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesFile stores s in the on-disk format DetectCandidatesFile
// accepts.
func WriteSeriesFile(path string, s *series.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := series.WriteBinary(f, s); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
