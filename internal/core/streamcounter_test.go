package core

import (
	"math/rand"
	"reflect"
	"testing"

	"periodica/internal/alphabet"
)

func TestStreamCounterMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	alpha := alphabet.Letters(4)
	inc, err := NewIncrementalMiner(alpha, 15)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewStreamCounter(4, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := rng.Intn(4)
		if err := inc.Append(k); err != nil {
			t.Fatal(err)
		}
		if err := sc.Append(k); err != nil {
			t.Fatal(err)
		}
		if i%100 == 50 {
			a, err := inc.Periodicities(0.3)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Periodicities(0.3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sortPers(a), sortPers(b)) {
				t.Fatalf("at n=%d: bounded counter differs from incremental miner", i+1)
			}
		}
	}
}

func TestStreamCounterBoundedMemory(t *testing.T) {
	sc, err := NewStreamCounter(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		_ = sc.Append(i % 10)
	}
	at2000 := sc.MemoryBytes()
	for i := 0; i < 50000; i++ {
		_ = sc.Append(i % 10)
	}
	if sc.MemoryBytes() != at2000 {
		t.Fatalf("memory grew with stream length: %d → %d bytes", at2000, sc.MemoryBytes())
	}
	if sc.Len() != 52000 {
		t.Fatalf("Len = %d", sc.Len())
	}
}

func TestStreamCounterF2Exact(t *testing.T) {
	sc, _ := NewStreamCounter(3, 5)
	for _, r := range "abcabbabcb" {
		if err := sc.Append(int(r - 'a')); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.F2(0, 3, 0); got != 2 {
		t.Fatalf("F2(a,3,0) = %d, want 2", got)
	}
	if got := sc.F2(1, 4, 1); got != 2 {
		t.Fatalf("F2(b,4,1) = %d, want 2", got)
	}
}

func TestStreamCounterValidates(t *testing.T) {
	if _, err := NewStreamCounter(0, 5); err == nil {
		t.Fatal("sigma 0: want error")
	}
	if _, err := NewStreamCounter(2, 0); err == nil {
		t.Fatal("maxPeriod 0: want error")
	}
	sc, _ := NewStreamCounter(2, 5)
	if err := sc.Append(9); err == nil {
		t.Fatal("bad symbol: want error")
	}
	if _, err := sc.Periodicities(0); err == nil {
		t.Fatal("ψ=0: want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("F2 out of range: want panic")
		}
	}()
	sc.F2(0, 9, 0)
}
