package core

import (
	"fmt"

	"periodica/internal/alphabet"
)

// Interpretation settings for rendering periodicities the way the paper
// narrates its Table 2 ("less than 200 transactions per hour occur in the
// 7th hour of the day for 80% of the days").
type Interpretation struct {
	// LevelNames maps symbol indices to human meanings ("very low", "under
	// 200 transactions", …). Optional; the symbol itself is used when
	// absent.
	LevelNames []string
	// Unit is the timestamp unit ("hour", "day"); Cycle is the period's
	// name when known ("day" for period 24 over hours). Optional.
	Unit  string
	Cycle string
}

// Describe renders one symbol periodicity as a sentence.
func (it Interpretation) Describe(alpha *alphabet.Alphabet, sp SymbolPeriodicity) string {
	level := alpha.Symbol(sp.Symbol)
	if sp.Symbol < len(it.LevelNames) && it.LevelNames[sp.Symbol] != "" {
		level = it.LevelNames[sp.Symbol]
	}
	unit := it.Unit
	if unit == "" {
		unit = "position"
	}
	cycle := it.Cycle
	if cycle == "" {
		cycle = fmt.Sprintf("%d-%s cycle", sp.Period, unit)
	}
	return fmt.Sprintf("%s occurs in %s %d of the %s for %.0f%% of the cycles",
		level, unit, sp.Position, cycle, sp.Confidence*100)
}

func (sp SymbolPeriodicity) String() string {
	return fmt.Sprintf("(s%d, p=%d, l=%d, %d/%d=%.2f)",
		sp.Symbol, sp.Period, sp.Position, sp.F2, sp.Pairs, sp.Confidence)
}
