package core

import (
	"math/rand"
	"reflect"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func TestMineLiteralMatchesMine(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 12; trial++ {
		n := rng.Intn(70) + 10
		sigma := rng.Intn(4) + 2
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		// ψ above 0.5 keeps the Cartesian product finite on random data: a
		// two-occurrence period then needs both occurrences to match, which
		// chance rarely provides.
		for _, psi := range []float64{0.55, 0.75, 1} {
			lit, err := MineLiteral(s, psi, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			// Mine with the paper-equivalent settings: default period range,
			// patterns for every period.
			ref, err := Mine(s, Options{Threshold: psi, Engine: EngineNaive,
				MaxPatternPeriod: n, MaxPatterns: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if lit.PatternsTruncated || ref.PatternsTruncated {
				t.Fatalf("T=%s ψ=%v: enumeration truncated, test premise broken", s, psi)
			}
			if !reflect.DeepEqual(lit.Periodicities, ref.Periodicities) {
				t.Fatalf("T=%s ψ=%v: literal periodicities differ\nlit: %v\nref: %v",
					s, psi, lit.Periodicities, ref.Periodicities)
			}
			if !reflect.DeepEqual(lit.Periods, ref.Periods) {
				t.Fatalf("T=%s ψ=%v: periods differ: %v vs %v", s, psi, lit.Periods, ref.Periods)
			}
			if !reflect.DeepEqual(lit.Patterns, ref.Patterns) {
				t.Fatalf("T=%s ψ=%v: patterns differ\nlit: %v\nref: %v", s, psi, lit.Patterns, ref.Patterns)
			}
			if !reflect.DeepEqual(lit.SingleSymbol, ref.SingleSymbol) {
				t.Fatalf("T=%s ψ=%v: single patterns differ", s, psi)
			}
		}
	}
}

func TestMineLiteralRunningExample(t *testing.T) {
	s := series.FromString("abcabbabcb")
	res, err := MineLiteral(s, 2.0/3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	foundAB := false
	for _, pt := range res.Patterns {
		if pt.Period == 3 && pt.Render(s.Alphabet()) == "ab*" {
			foundAB = true
			if pt.Count != 2 {
				t.Fatalf("|W′_3| = %d, want 2", pt.Count)
			}
		}
	}
	if !foundAB {
		t.Fatal("literal algorithm missed the paper's ab* pattern")
	}
}

func TestMineLiteralValidates(t *testing.T) {
	s := series.FromString("abcabc")
	if _, err := MineLiteral(s, 0, 0); err == nil {
		t.Fatal("ψ=0: want error")
	}
	one := series.FromString("a")
	if _, err := MineLiteral(one, 0.5, 0); err == nil {
		t.Fatal("n=1: want error")
	}
}
