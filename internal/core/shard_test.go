package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"periodica/internal/exec"
	"periodica/internal/series"
)

// shardFixture builds a noisy period-7 series over {a,b,c}, the same shape
// the root parity suite uses.
func shardFixture(n int) *series.Series {
	motif := "abacbbc"
	alpha := "abc"
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	for i := 0; i < n; i++ {
		c := motif[i%len(motif)]
		if rng.Intn(5) == 0 {
			c = alpha[rng.Intn(len(alpha))]
		}
		b.WriteByte(c)
	}
	return series.FromString(b.String())
}

// mineViaShards cuts the normalized option range into a plan, computes every
// shard's slots, and reassembles — the distributed pipeline without the
// network.
func mineViaShards(t *testing.T, s *series.Series, opt Options, target int) *Result {
	t.Helper()
	norm, err := NormalizeOptions(opt, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	plan := exec.PlanShards(s.Alphabet().Size(), norm.MinPeriod, norm.MaxPeriod, target)
	if len(plan) == 0 {
		t.Fatal("empty shard plan")
	}
	var slots []SymbolPeriodicity
	for _, sh := range plan {
		shardOpt := norm
		shardOpt.MinPeriod, shardOpt.MaxPeriod = sh.MinPeriod, sh.MaxPeriod
		part, err := MineShardSlots(context.Background(), s, shardOpt, sh.SymbolLo, sh.SymbolHi)
		if err != nil {
			t.Fatalf("shard %d: %v", sh.ID, err)
		}
		slots = append(slots, part...)
	}
	res, err := AssembleFromSlots(context.Background(), s, norm, slots)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardUnionMatchesMine: any shard plan must reassemble to the exact
// single-process Result, for every engine.
func TestShardUnionMatchesMine(t *testing.T) {
	for _, n := range []int{605, 5000} {
		s := shardFixture(n)
		for _, eng := range []Engine{EngineAuto, EngineNaive, EngineBitset, EngineFFT} {
			if eng == EngineNaive && n > 1000 {
				continue // quadratic reference stays on the small input
			}
			opt := Options{Threshold: 0.6, Engine: eng, MinPairs: 3, MaxPatternPeriod: 21}
			want, err := Mine(s, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Periodicities) == 0 {
				t.Fatal("fixture detected nothing; the test is vacuous")
			}
			for _, target := range []int{1, 3, 7, 16} {
				got := mineViaShards(t, s, opt, target)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("n=%d engine=%v target=%d: sharded result differs from Mine", n, eng, target)
				}
			}
		}
	}
}

// TestShardSymbolSplit: plans that split the symbol dimension (more shards
// than candidate periods) must still reassemble exactly.
func TestShardSymbolSplit(t *testing.T) {
	s := shardFixture(605)
	opt := Options{Threshold: 0.6, MinPeriod: 6, MaxPeriod: 8, MinPairs: 3, MaxPatternPeriod: 21}
	want, err := Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Periodicities) == 0 {
		t.Fatal("fixture detected nothing in [6,8]; the test is vacuous")
	}
	got := mineViaShards(t, s, opt, 9) // 3 periods × 3 symbols
	if !reflect.DeepEqual(want, got) {
		t.Error("symbol-split sharded result differs from Mine")
	}
}

func TestMineShardSlotsValidates(t *testing.T) {
	s := shardFixture(100)
	opt := Options{Threshold: 0.6}
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 2}, {2, 1}} {
		if _, err := MineShardSlots(context.Background(), s, opt, r[0], r[1]); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("symbol range %v: err = %v, want ErrInvalidInput", r, err)
		}
	}
}

func TestMineShardSlotsCancellation(t *testing.T) {
	s := shardFixture(5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineShardSlots(ctx, s, Options{Threshold: 0.6}, 0, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestAssembleFromSlotsRejectsBadSlots(t *testing.T) {
	s := shardFixture(100)
	opt := Options{Threshold: 0.6}
	good := SymbolPeriodicity{Symbol: 0, Period: 7, Position: 2, F2: 9, Pairs: 13}
	cases := map[string][]SymbolPeriodicity{
		"symbol out of range":   {{Symbol: 9, Period: 7, Position: 0, F2: 1, Pairs: 2}},
		"period out of range":   {{Symbol: 0, Period: 99, Position: 0, F2: 1, Pairs: 2}},
		"position out of range": {{Symbol: 0, Period: 7, Position: 7, F2: 1, Pairs: 2}},
		"zero F2":               {{Symbol: 0, Period: 7, Position: 0, F2: 0, Pairs: 2}},
		"F2 above pairs":        {{Symbol: 0, Period: 7, Position: 0, F2: 3, Pairs: 2}},
		"duplicate":             {good, good},
	}
	for name, slots := range cases {
		if _, err := AssembleFromSlots(context.Background(), s, opt, slots); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("%s: err = %v, want ErrInvalidInput", name, err)
		}
	}
}

// TestShardSurvivorsShippedPathMatches: for every shard of a plan, mining
// from the coordinator's shipped survivor slice must produce the exact slots
// the self-detecting path produces, so candidate shipping can never change a
// mine's bytes.
func TestShardSurvivorsShippedPathMatches(t *testing.T) {
	s := shardFixture(605)
	opt := Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}
	norm, err := NormalizeOptions(opt, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	surv, err := ShardSurvivors(context.Background(), s, norm)
	if err != nil {
		t.Fatal(err)
	}
	if len(surv) != norm.MaxPeriod-norm.MinPeriod+1 {
		t.Fatalf("survivor set spans %d periods, want %d", len(surv), norm.MaxPeriod-norm.MinPeriod+1)
	}
	nonEmpty := false
	for _, list := range surv {
		nonEmpty = nonEmpty || len(list) > 0
	}
	if !nonEmpty {
		t.Fatal("no survivors anywhere; the test is vacuous")
	}
	plan := exec.PlanShards(s.Alphabet().Size(), norm.MinPeriod, norm.MaxPeriod, 9)
	for _, sh := range plan {
		shardOpt := norm
		shardOpt.MinPeriod, shardOpt.MaxPeriod = sh.MinPeriod, sh.MaxPeriod
		// Slice the coordinator's band and clip each list to the shard's
		// symbol range, exactly as the dist coordinator ships it.
		band := make([][]int32, 0, sh.MaxPeriod-sh.MinPeriod+1)
		for p := sh.MinPeriod; p <= sh.MaxPeriod; p++ {
			var clipped []int32
			for _, k := range surv[p-norm.MinPeriod] {
				if int(k) >= sh.SymbolLo && int(k) < sh.SymbolHi {
					clipped = append(clipped, k)
				}
			}
			band = append(band, clipped)
		}
		want, err := MineShardSlots(context.Background(), s, shardOpt, sh.SymbolLo, sh.SymbolHi)
		if err != nil {
			t.Fatalf("shard %d self-detect: %v", sh.ID, err)
		}
		got, err := MineShardSlotsFromSurvivors(context.Background(), s, shardOpt, sh.SymbolLo, sh.SymbolHi, band)
		if err != nil {
			t.Fatalf("shard %d shipped: %v", sh.ID, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shard %d: shipped-survivor slots differ from self-detected slots", sh.ID)
		}
	}
}

func TestMineShardSlotsFromSurvivorsValidates(t *testing.T) {
	s := shardFixture(100)
	norm, err := NormalizeOptions(Options{Threshold: 0.6, MinPeriod: 5, MaxPeriod: 7}, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	ok := [][]int32{{0, 1}, {1}, {}}
	cases := map[string][][]int32{
		"wrong span":          {{0}, {1}},
		"symbol out of range": {{0, 3}, {}, {}},
		"below shard lo":      {{0}, {}, {}}, // with symLo=1 below
		"out of order":        {{1, 0}, {}, {}},
		"duplicate symbol":    {{0, 0}, {}, {}},
	}
	if _, err := MineShardSlotsFromSurvivors(context.Background(), s, norm, 0, 3, ok); err != nil {
		t.Fatalf("valid survivor set rejected: %v", err)
	}
	for name, surv := range cases {
		lo := 0
		if name == "below shard lo" {
			lo = 1
		}
		if _, err := MineShardSlotsFromSurvivors(context.Background(), s, norm, lo, 3, surv); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("%s: err = %v, want ErrInvalidInput", name, err)
		}
	}
}

// TestAssembleConfidenceRederived: the wire carries integers only; assembly
// must recompute each confidence from F2/Pairs, ignoring whatever the slot
// claims.
func TestAssembleConfidenceRederived(t *testing.T) {
	s := shardFixture(605)
	opt := Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}
	norm, err := NormalizeOptions(opt, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	slots, err := MineShardSlots(context.Background(), s, norm, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range slots {
		slots[i].Confidence = -1 // poison: assembly must overwrite
	}
	res, err := AssembleFromSlots(context.Background(), s, norm, slots)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Error("assembled result differs after confidence poisoning")
	}
}
