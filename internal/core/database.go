package core

import (
	"fmt"
	"sort"

	"periodica/internal/series"
)

// DatabasePattern is a periodic pattern aggregated over a collection of
// series: it reached the per-series threshold in Sequences of the mined
// series, with MeanSupport averaged over those.
type DatabasePattern struct {
	Pattern     Pattern
	Sequences   int
	MeanSupport float64
}

// DatabaseResult is the output of MineDatabase.
type DatabaseResult struct {
	Total    int // series mined
	Patterns []DatabasePattern
}

// MineDatabase mines every series of a time-series database (all over the
// same alphabet — e.g. one power-consumption series per customer) and
// aggregates the multi-symbol patterns across series: a pattern is reported
// when it reaches the per-series threshold in at least minFraction of the
// series. This lifts the paper's single-sequence miner to the
// database-of-sequences setting its introduction motivates.
func MineDatabase(db []*series.Series, opt Options, minFraction float64) (*DatabaseResult, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if minFraction <= 0 || minFraction > 1 {
		return nil, fmt.Errorf("core: minFraction %v outside (0,1]", minFraction)
	}
	alpha := db[0].Alphabet()
	for i, s := range db {
		if s.Alphabet() != alpha {
			return nil, fmt.Errorf("core: series %d has a different alphabet", i)
		}
	}
	type agg struct {
		pattern    Pattern
		sequences  int
		supportSum float64
	}
	byKey := map[string]*agg{}
	for _, s := range db {
		res, err := Mine(s, opt)
		if err != nil {
			return nil, err
		}
		for _, pt := range res.Patterns {
			key := patternKey(pt)
			a := byKey[key]
			if a == nil {
				a = &agg{pattern: Pattern{Period: pt.Period, Fixed: pt.Fixed}}
				byKey[key] = a
			}
			a.sequences++
			a.supportSum += pt.Support
		}
	}
	need := int(minFraction * float64(len(db)))
	if float64(need) < minFraction*float64(len(db)) {
		need++
	}
	if need < 1 {
		need = 1
	}
	out := &DatabaseResult{Total: len(db)}
	for _, a := range byKey {
		if a.sequences >= need {
			out.Patterns = append(out.Patterns, DatabasePattern{
				Pattern:     a.pattern,
				Sequences:   a.sequences,
				MeanSupport: a.supportSum / float64(a.sequences),
			})
		}
	}
	sort.Slice(out.Patterns, func(i, j int) bool {
		a, b := out.Patterns[i], out.Patterns[j]
		if a.Sequences != b.Sequences {
			return a.Sequences > b.Sequences
		}
		if a.MeanSupport != b.MeanSupport { //opvet:ignore floatcmp exact tie-break in sort comparator
			return a.MeanSupport > b.MeanSupport
		}
		if a.Pattern.Period != b.Pattern.Period {
			return a.Pattern.Period < b.Pattern.Period
		}
		return lessFixed(a.Pattern.Fixed, b.Pattern.Fixed)
	})
	return out, nil
}

func patternKey(pt Pattern) string {
	key := make([]byte, 0, 4+len(pt.Fixed)*8)
	key = appendInt(key, pt.Period)
	for _, f := range pt.Fixed {
		key = appendInt(key, f.Position)
		key = appendInt(key, f.Symbol)
	}
	return string(key)
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
