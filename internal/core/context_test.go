package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestMineContextMatchesMine(t *testing.T) {
	s := randomSeries(131, 900, 4)
	want, err := Mine(s, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineContext(context.Background(), s, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("MineContext differs from Mine")
	}
}

func TestMineContextCancelled(t *testing.T) {
	s := randomSeries(132, 20000, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, s, Options{Threshold: 0.3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMineContextDeadline(t *testing.T) {
	s := randomSeries(133, 60000, 8)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := MineContext(ctx, s, Options{Threshold: 0.2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation not prompt")
	}
}

func TestMineContextValidates(t *testing.T) {
	s := randomSeries(134, 50, 3)
	if _, err := MineContext(context.Background(), s, Options{Threshold: 0}); err == nil {
		t.Fatal("ψ=0: want error")
	}
}
