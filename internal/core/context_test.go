package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestMineContextMatchesMine(t *testing.T) {
	s := randomSeries(131, 900, 4)
	want, err := Mine(s, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineContext(context.Background(), s, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("MineContext differs from Mine")
	}
}

func TestMineContextCancelled(t *testing.T) {
	s := randomSeries(132, 20000, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, s, Options{Threshold: 0.3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMineContextDeadline(t *testing.T) {
	s := randomSeries(133, 60000, 8)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := MineContext(ctx, s, Options{Threshold: 0.2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation not prompt")
	}
}

// TestMineContextCancelMidMine proves the acceptance property: a mine whose
// context is cancelled mid-flight stops consuming CPU long before the period
// loop completes. The series is large enough that a full mine takes many
// seconds; the cancelled mine must return within a small bound.
func TestMineContextCancelMidMine(t *testing.T) {
	s := randomSeries(135, 400000, 8)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := MineContext(ctx, s, Options{Threshold: 0.05})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
}

// TestMineContextCancelMidPatterns cancels during the pattern-enumeration
// stage: detection covers a narrow period band so it finishes fast, while a
// tiny threshold with an uncapped pattern budget makes the depth-first
// enumeration enormous. The step-counter poll must abort it promptly.
func TestMineContextCancelMidPatterns(t *testing.T) {
	s := randomSeries(136, 20000, 4)
	opt := Options{
		Threshold: 0.004, MinPeriod: 120, MaxPeriod: 128,
		MaxPatternPeriod: 128, MaxPatterns: 1 << 30, MinPairs: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := MineContext(ctx, s, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pattern-stage cancellation not prompt: took %v", elapsed)
	}
}

func TestDetectCandidatesContextMatches(t *testing.T) {
	s := randomSeries(137, 3000, 5)
	want, err := DetectCandidates(s, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectCandidatesContext(context.Background(), s, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DetectCandidatesContext differs from DetectCandidates")
	}
}

func TestDetectCandidatesContextCancelled(t *testing.T) {
	s := randomSeries(138, 3000, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DetectCandidatesContext(ctx, s, 0.4, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValidationErrorsMatchErrInvalidInput(t *testing.T) {
	s := randomSeries(139, 50, 3)
	if _, err := Mine(s, Options{Threshold: 0}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("Mine ψ=0: err = %v, want ErrInvalidInput", err)
	}
	if _, err := Mine(s, Options{Threshold: 0.5, MaxPeriod: 500}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("Mine bad range: err = %v, want ErrInvalidInput", err)
	}
	if _, err := DetectCandidates(s, 0.5, 500); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("DetectCandidates bad maxPeriod: err = %v, want ErrInvalidInput", err)
	}
	// Cancellation errors must NOT look like bad input.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, s, Options{Threshold: 0.5}); errors.Is(err, ErrInvalidInput) {
		t.Fatalf("cancelled mine: err = %v must not match ErrInvalidInput", err)
	}
}

func TestMineContextValidates(t *testing.T) {
	s := randomSeries(134, 50, 3)
	if _, err := MineContext(context.Background(), s, Options{Threshold: 0}); err == nil {
		t.Fatal("ψ=0: want error")
	}
}
