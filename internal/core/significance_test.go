package core

import (
	"math"
	"math/rand"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// binomialUpperTailBrute sums the binomial pmf directly for small cases.
func binomialUpperTailBrute(trials, hits int, rate float64) float64 {
	sum := 0.0
	for j := hits; j <= trials; j++ {
		c := 1.0
		for i := 0; i < j; i++ {
			c = c * float64(trials-i) / float64(i+1)
		}
		sum += c * math.Pow(rate, float64(j)) * math.Pow(1-rate, float64(trials-j))
	}
	return sum
}

func TestBinomialUpperTailMatchesBrute(t *testing.T) {
	cases := []struct {
		trials, hits int
		rate         float64
	}{
		{10, 3, 0.2}, {10, 0, 0.2}, {10, 10, 0.5}, {20, 15, 0.3},
		{5, 1, 0.01}, {30, 5, 0.1}, {15, 15, 0.9},
	}
	for _, c := range cases {
		got := binomialUpperTail(c.trials, c.hits, c.rate)
		want := binomialUpperTailBrute(c.trials, c.hits, c.rate)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("tail(%d,%d,%v) = %v, want %v", c.trials, c.hits, c.rate, got, want)
		}
	}
}

func TestBinomialUpperTailEdges(t *testing.T) {
	if got := binomialUpperTail(10, 0, 0.5); got != 1 {
		t.Fatalf("hits=0: %v, want 1", got)
	}
	if got := binomialUpperTail(10, 11, 0.5); got != 1 {
		t.Fatalf("hits>trials: %v, want 1", got)
	}
	if got := binomialUpperTail(10, 3, 0); got != 0 {
		t.Fatalf("rate=0: %v, want 0", got)
	}
	if got := binomialUpperTail(10, 3, 1); got != 1 {
		t.Fatalf("rate=1: %v, want 1", got)
	}
}

func TestBinomialUpperTailLargeTrials(t *testing.T) {
	// 600 hits in 1000 trials at rate 0.5: z ≈ 6.3, p ≈ 1.4e-10.
	p := binomialUpperTail(1000, 600, 0.5)
	if p > 1e-8 || p < 1e-12 {
		t.Fatalf("large-trials tail = %v, want ≈1e-10", p)
	}
}

func TestSignificanceSeparatesStructureFromFlukes(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	// Periodic symbol 0 at period 10 over an otherwise random series.
	idx := make([]uint16, 2000)
	for i := range idx {
		idx[i] = uint16(1 + rng.Intn(3))
		if i%10 == 0 {
			idx[i] = 0
		}
	}
	s := series.FromIndices(alphabet.Letters(4), idx)
	res, err := Mine(s, Options{Threshold: 0.9, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	sig := NewSignificance(s)

	// The embedded periodicity must be overwhelmingly significant.
	var embedded *SymbolPeriodicity
	flukes := 0
	for i, sp := range res.Periodicities {
		if sp.Symbol == 0 && sp.Period == 10 && sp.Position == 0 {
			embedded = &res.Periodicities[i]
		} else if sp.Pairs <= 2 {
			flukes++
		}
	}
	if embedded == nil {
		t.Fatal("embedded periodicity not detected")
	}
	if p := sig.PValue(*embedded); p > 1e-20 {
		t.Fatalf("embedded p-value %v, want ≪ 1e-20", p)
	}
	if flukes == 0 {
		t.Fatal("test premise broken: no low-mass periodicities at ψ=0.9")
	}

	// After Bonferroni-corrected filtering, the embedded periodicity
	// survives and the low-mass flukes die.
	tests := TestsForRange(4, 1, s.Len()/2)
	kept, err := sig.FilterSignificant(res.Periodicities, 0.01, tests)
	if err != nil {
		t.Fatal(err)
	}
	foundEmbedded := false
	for _, sp := range kept {
		if sp.Symbol == 0 && sp.Period == 10 && sp.Position == 0 {
			foundEmbedded = true
		}
		if sp.Pairs <= 2 {
			t.Fatalf("two-pair fluke survived Bonferroni filtering: %+v", sp)
		}
	}
	if !foundEmbedded {
		t.Fatal("embedded periodicity filtered out")
	}
	if len(kept) >= len(res.Periodicities) {
		t.Fatal("filter removed nothing")
	}
}

func TestFilterSignificantValidates(t *testing.T) {
	sig := NewSignificance(series.FromString("abab"))
	if _, err := sig.FilterSignificant(nil, 0, 0); err == nil {
		t.Fatal("alpha 0: want error")
	}
	if _, err := sig.FilterSignificant(nil, 2, 0); err == nil {
		t.Fatal("alpha 2: want error")
	}
}

func TestTestsForRange(t *testing.T) {
	// σ=2, periods 1..3: 2·(1+2+3) = 12.
	if got := TestsForRange(2, 1, 3); got != 12 {
		t.Fatalf("TestsForRange = %d, want 12", got)
	}
}

func TestPValueOutOfRangeSymbol(t *testing.T) {
	sig := NewSignificance(series.FromString("ab"))
	if got := sig.PValue(SymbolPeriodicity{Symbol: 9, Pairs: 5, F2: 5}); got != 1 {
		t.Fatalf("out-of-range symbol p-value %v, want 1", got)
	}
}
