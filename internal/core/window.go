package core

import "fmt"

// WindowMiner maintains symbol periodicities over a sliding window of the
// most recent symbols — the monitoring flavor of the paper's data-stream
// motivation: old behaviour ages out instead of accumulating. Arriving
// symbols add their lag-p matches and symbols leaving the window retract
// theirs, so the maintained counts always equal the batch counts over the
// current window. Positions are reported in absolute stream phase (stream
// index mod p), which keeps a stable pattern at a stable label while the
// window slides.
type WindowMiner struct {
	sigma     int
	maxPeriod int
	window    int
	start     int // absolute index of the oldest retained symbol
	count     int // symbols currently in the window
	buf       []uint16
	f2        [][][]int32
}

// NewWindowMiner returns a miner over a window of the given size, tracking
// periods 1..maxPeriod. The window must be larger than maxPeriod.
func NewWindowMiner(sigma, maxPeriod, window int) (*WindowMiner, error) {
	if sigma < 1 {
		return nil, fmt.Errorf("core: sigma %d < 1", sigma)
	}
	if maxPeriod < 1 {
		return nil, fmt.Errorf("core: maxPeriod %d < 1", maxPeriod)
	}
	if window <= maxPeriod {
		return nil, fmt.Errorf("core: window %d must exceed maxPeriod %d", window, maxPeriod)
	}
	m := &WindowMiner{
		sigma:     sigma,
		maxPeriod: maxPeriod,
		window:    window,
		buf:       make([]uint16, window),
		f2:        make([][][]int32, sigma),
	}
	for k := range m.f2 {
		m.f2[k] = make([][]int32, maxPeriod+1)
	}
	return m, nil
}

func (m *WindowMiner) at(abs int) int { return int(m.buf[abs%m.window]) }

// Append ingests the next symbol, evicting the oldest when the window is
// full; O(maxPeriod).
func (m *WindowMiner) Append(k int) error {
	if k < 0 || k >= m.sigma {
		return fmt.Errorf("core: symbol index %d out of range [0,%d)", k, m.sigma)
	}
	if m.count == m.window {
		// Retract the matches whose start position is the evicted symbol.
		old := m.start
		ok := m.at(old)
		for p := 1; p <= m.maxPeriod && old+p < m.start+m.count; p++ {
			if m.at(old+p) == ok {
				m.adjust(ok, p, old%p, -1)
			}
		}
		m.start++
		m.count--
	}
	abs := m.start + m.count
	m.buf[abs%m.window] = uint16(k)
	m.count++
	// Add the matches the new symbol completes.
	for p := 1; p <= m.maxPeriod && abs-p >= m.start; p++ {
		if m.at(abs-p) == k {
			m.adjust(k, p, (abs-p)%p, +1)
		}
	}
	return nil
}

func (m *WindowMiner) adjust(k, p, l int, delta int32) {
	if m.f2[k][p] == nil {
		m.f2[k][p] = make([]int32, p)
	}
	m.f2[k][p][l] += delta
}

// Len returns the number of symbols currently in the window.
func (m *WindowMiner) Len() int { return m.count }

// Start returns the absolute stream index of the oldest retained symbol.
func (m *WindowMiner) Start() int { return m.start }

// windowPairs counts the consecutive-pair slots at absolute phase l within
// the current window: positions i ≡ l (mod p) with start ≤ i and
// i+p ≤ start+count−1.
func (m *WindowMiner) windowPairs(p, l int) int {
	lo := m.start
	hi := m.start + m.count - 1 - p // last valid start position
	if hi < lo {
		return 0
	}
	// Smallest i ≥ lo with i ≡ l (mod p).
	first := lo + ((l-lo)%p+p)%p
	if first > hi {
		return 0
	}
	return (hi-first)/p + 1
}

// Periodicities returns the symbol periodicities of the current window at
// threshold psi. Position is the absolute stream phase.
func (m *WindowMiner) Periodicities(psi float64) ([]SymbolPeriodicity, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("core: threshold ψ=%v outside (0,1]", psi)
	}
	var out []SymbolPeriodicity
	for p := 1; p <= m.maxPeriod && p < m.count; p++ {
		for l := 0; l < p; l++ {
			pairs := m.windowPairs(p, l)
			if pairs < 1 {
				continue
			}
			for k := 0; k < m.sigma; k++ {
				if m.f2[k][p] == nil {
					continue
				}
				f2 := int(m.f2[k][p][l])
				if f2 == 0 {
					continue
				}
				conf := float64(f2) / float64(pairs)
				if conf >= psi {
					out = append(out, SymbolPeriodicity{
						Symbol: k, Period: p, Position: l,
						F2: f2, Pairs: pairs, Confidence: conf,
					})
				}
			}
		}
	}
	return out, nil
}
