package core

import (
	"math/rand"
	"reflect"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/fft"
	"periodica/internal/series"
)

// TestResolveEngineCrossover pins the EngineAuto length heuristic to its one
// home: resolveEngine. The 4096 crossover is load-bearing — callers and docs
// reference it — so a change here must be deliberate.
func TestResolveEngineCrossover(t *testing.T) {
	if autoEngineThreshold != 4096 {
		t.Fatalf("autoEngineThreshold = %d, want 4096 (update docs and this pin together)", autoEngineThreshold)
	}
	cases := []struct {
		name     string
		in       Engine
		n        int
		parallel bool
		want     Engine
	}{
		{"auto short serial", EngineAuto, autoEngineThreshold - 1, false, EngineNaive},
		{"auto at threshold serial", EngineAuto, autoEngineThreshold, false, EngineFFT},
		{"auto long serial", EngineAuto, 1 << 20, false, EngineFFT},
		{"auto short parallel", EngineAuto, autoEngineThreshold - 1, true, EngineBitset},
		{"auto at threshold parallel", EngineAuto, autoEngineThreshold, true, EngineFFT},
		{"naive serial passes through", EngineNaive, 10_000, false, EngineNaive},
		{"naive parallel substitutes bitset", EngineNaive, 100, true, EngineBitset},
		{"bitset serial passes through", EngineBitset, 100, false, EngineBitset},
		{"bitset parallel passes through", EngineBitset, 100, true, EngineBitset},
		{"fft serial passes through", EngineFFT, 100, false, EngineFFT},
		{"fft parallel passes through", EngineFFT, 100, true, EngineFFT},
	}
	for _, tc := range cases {
		if got := resolveEngine(tc.in, tc.n, tc.parallel); got != tc.want {
			t.Errorf("%s: resolveEngine(%v, %d, %v) = %v, want %v",
				tc.name, tc.in, tc.n, tc.parallel, got, tc.want)
		}
	}
}

// TestResolveEngineTunedCrossover: an applied tuned profile replaces the
// pinned 4096 with the host's measured crossover; explicit engine requests
// and a cleared profile are unaffected.
func TestResolveEngineTunedCrossover(t *testing.T) {
	defer fft.ResetTuned()
	fft.ApplyTuned(&fft.TunedProfile{EngineCrossover: 1000})
	cases := []struct {
		name     string
		in       Engine
		n        int
		parallel bool
		want     Engine
	}{
		{"tuned below", EngineAuto, 999, false, EngineNaive},
		{"tuned at crossover", EngineAuto, 1000, false, EngineFFT},
		{"tuned between old and new", EngineAuto, 4095, false, EngineFFT},
		{"tuned parallel below", EngineAuto, 999, true, EngineBitset},
		{"explicit naive unaffected", EngineNaive, 10_000, false, EngineNaive},
		{"explicit fft unaffected", EngineFFT, 100, false, EngineFFT},
	}
	for _, tc := range cases {
		if got := resolveEngine(tc.in, tc.n, tc.parallel); got != tc.want {
			t.Errorf("%s: resolveEngine(%v, %d, %v) = %v, want %v",
				tc.name, tc.in, tc.n, tc.parallel, got, tc.want)
		}
	}
	fft.ResetTuned()
	if got := resolveEngine(EngineAuto, 1000, false); got != EngineNaive {
		t.Errorf("after ResetTuned: resolveEngine(auto, 1000) = %v, want the pinned default (naive)", got)
	}
}

// TestSessionScopedPlanCache mines through a session holding its own FFT-plan
// cache and checks the result is identical to the process-shared default: the
// cache is a pure performance artifact, never a semantic one.
func TestSessionScopedPlanCache(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := make([]uint16, 5000)
	for i := range idx {
		idx[i] = uint16(i % 5 % 3)
		if rng.Intn(6) == 0 {
			idx[i] = uint16(rng.Intn(3))
		}
	}
	s := series.FromIndices(alphabet.Letters(3), idx)
	opt := Options{Threshold: 0.6, Engine: EngineFFT, MinPairs: 3, MaxPatternPeriod: 20}

	want, err := Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Periodicities) == 0 {
		t.Fatal("fixture detected nothing; the test is vacuous")
	}

	ses, err := newSession(s, opt, sessionConfig{workers: 1, plans: fft.NewPlanCache()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ses.mine()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("session-scoped plan cache changed the mining result")
	}
}
