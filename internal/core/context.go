package core

import (
	"context"

	"periodica/internal/conv"
	"periodica/internal/series"
)

// MineContext is Mine with cooperative cancellation: the context is polled
// between the FFT precompute's pair transforms, at every candidate period,
// inside the per-symbol detection loop, between occurrence-set builds, and
// every few thousand pattern-enumeration steps, so a cancelled or timed-out
// mine over a large series returns promptly with the context's error — well
// before the period loop (let alone the pattern stage) completes. The one
// uninterruptible stretch is a single in-flight pair FFT, O(n log n).
func MineContext(ctx context.Context, s *series.Series, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(s.Len())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng := opt.Engine
	if eng == EngineAuto {
		if s.Len() >= 4096 {
			eng = EngineFFT
		} else {
			eng = EngineNaive
		}
	}
	var det *detector
	if eng == EngineFFT {
		// Build the detector by hand so the batched autocorrelation honours
		// the context between pair transforms.
		lag, err := conv.LagMatchCountsBatchedCancel(s, 0, ctx.Err)
		if err != nil {
			return nil, err
		}
		det = newDetectorFromIndicators(conv.NewIndicators(s), lag)
	} else {
		det = newDetector(s, eng)
	}
	det.s = s
	det.minPairs = opt.MinPairs
	det.cancel = ctx.Err
	res := &Result{N: s.Len(), Sigma: s.Alphabet().Size(), Threshold: opt.Threshold}
	periodSet := map[int]bool{}
	for p := opt.MinPeriod; p <= opt.MaxPeriod; p++ {
		det.detect(p, opt.Threshold, func(sp SymbolPeriodicity) {
			res.Periodicities = append(res.Periodicities, sp)
			periodSet[p] = true
		})
		if det.err != nil {
			return nil, det.err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	finishResult(res, periodSet)
	if opt.MaxPatternPeriod >= 0 {
		res.Patterns, res.PatternsTruncated, err = minePatterns(det, res.Periodicities, opt, ctx.Err)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// DetectCandidatesContext is DetectCandidates with cooperative cancellation:
// the context is checked before the FFT pass and every 256 candidate periods
// of the aggregate sweep, so a cancelled or timed-out detection returns
// promptly with the context's error.
func DetectCandidatesContext(ctx context.Context, s *series.Series, psi float64, maxPeriod int) ([]CandidatePeriod, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return detectCandidates(ctx, s, psi, maxPeriod)
}
