package core

import (
	"context"

	"periodica/internal/series"
)

// MineContext is Mine with cooperative cancellation: the context is checked
// periodically during detection (every 64 candidate periods) and once more
// before pattern enumeration, so a cancelled or timed-out mine over a large
// series returns promptly with the context's error. The pattern stage itself
// runs to completion once started; bound it with MaxPatternPeriod and
// MaxPatterns.
func MineContext(ctx context.Context, s *series.Series, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(s.Len())
	if err != nil {
		return nil, err
	}
	eng := opt.Engine
	if eng == EngineAuto {
		if s.Len() >= 4096 {
			eng = EngineFFT
		} else {
			eng = EngineNaive
		}
	}
	det := newDetector(s, eng)
	det.minPairs = opt.MinPairs
	res := &Result{N: s.Len(), Sigma: s.Alphabet().Size(), Threshold: opt.Threshold}
	periodSet := map[int]bool{}
	for p := opt.MinPeriod; p <= opt.MaxPeriod; p++ {
		if p%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		det.detect(p, opt.Threshold, func(sp SymbolPeriodicity) {
			res.Periodicities = append(res.Periodicities, sp)
			periodSet[p] = true
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	finishResult(res, periodSet)
	if opt.MaxPatternPeriod >= 0 {
		res.Patterns, res.PatternsTruncated = minePatterns(det, res.Periodicities, opt)
	}
	return res, ctx.Err()
}
