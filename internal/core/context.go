package core

import (
	"context"

	"periodica/internal/series"
)

// MineContext is Mine with cooperative cancellation: the session's scheduler
// polls the context between the FFT precompute's pair transforms, at every
// candidate period of the sweep and resolve stages, between occurrence-set
// builds, and every few thousand pattern-enumeration steps, so a cancelled
// or timed-out mine over a large series returns promptly with the context's
// error — well before the period sweep (let alone the pattern stage)
// completes. The one uninterruptible stretch is a single in-flight pair FFT,
// O(n log n).
func MineContext(ctx context.Context, s *series.Series, opt Options) (*Result, error) {
	ses, err := newSession(s, opt, sessionConfig{workers: 1, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ses.mine()
}

// DetectCandidatesContext is DetectCandidates with cooperative cancellation:
// the scheduler polls the context before the FFT pass, between its pair
// transforms, and at every period of the aggregate sweep, so a cancelled or
// timed-out detection returns promptly with the context's error.
func DetectCandidatesContext(ctx context.Context, s *series.Series, psi float64, maxPeriod int) ([]CandidatePeriod, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return detectCandidates(ctx, s, psi, maxPeriod)
}
