package core

import (
	"math/rand"
	"testing"
)

// windowBrute recomputes the window counts definitionally from the retained
// symbols.
func windowBrute(m *WindowMiner, stream []int, k, p, l int) (f2, pairs int) {
	start := m.Start()
	end := start + m.Len() - 1
	for i := start; i+p <= end; i++ {
		if i%p != l {
			continue
		}
		pairs++
		if stream[i] == k && stream[i+p] == k {
			f2++
		}
	}
	return f2, pairs
}

func TestWindowMinerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const sigma, maxP, window = 3, 12, 40
	m, err := NewWindowMiner(sigma, maxP, window)
	if err != nil {
		t.Fatal(err)
	}
	var stream []int
	for i := 0; i < 300; i++ {
		k := rng.Intn(sigma)
		stream = append(stream, k)
		if err := m.Append(k); err != nil {
			t.Fatal(err)
		}
		if i%37 != 0 || i < 5 {
			continue
		}
		for k := 0; k < sigma; k++ {
			for p := 1; p <= maxP; p++ {
				for l := 0; l < p; l++ {
					wantF2, wantPairs := windowBrute(m, stream, k, p, l)
					if got := m.windowPairs(p, l); got != wantPairs {
						t.Fatalf("i=%d: windowPairs(%d,%d) = %d, want %d", i, p, l, got, wantPairs)
					}
					var gotF2 int
					if m.f2[k][p] != nil {
						gotF2 = int(m.f2[k][p][l])
					}
					if gotF2 != wantF2 {
						t.Fatalf("i=%d: window F2(%d,%d,%d) = %d, want %d", i, k, p, l, gotF2, wantF2)
					}
				}
			}
		}
	}
}

func TestWindowMinerAgesOutOldRegime(t *testing.T) {
	const sigma, maxP, window = 4, 10, 60
	m, err := NewWindowMiner(sigma, maxP, window)
	if err != nil {
		t.Fatal(err)
	}
	// Regime 1: period 3 (abc). Fill well past the window.
	for i := 0; i < 200; i++ {
		_ = m.Append(i % 3)
	}
	pers, err := m.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPeriod(pers, 3) {
		t.Fatal("period 3 not detected in regime 1")
	}
	// Regime 2: period 4 (abcd). After a full window, regime 1 is gone.
	for i := 0; i < 200; i++ {
		_ = m.Append(i % 4)
	}
	pers, err = m.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if hasPeriod(pers, 3) {
		t.Fatal("stale period 3 still reported after the window slid past it")
	}
	if !hasPeriod(pers, 4) {
		t.Fatal("period 4 not detected in regime 2")
	}
}

func hasPeriod(pers []SymbolPeriodicity, p int) bool {
	for _, sp := range pers {
		if sp.Period == p {
			return true
		}
	}
	return false
}

func TestWindowMinerValidates(t *testing.T) {
	if _, err := NewWindowMiner(0, 5, 20); err == nil {
		t.Fatal("sigma 0: want error")
	}
	if _, err := NewWindowMiner(2, 0, 20); err == nil {
		t.Fatal("maxPeriod 0: want error")
	}
	if _, err := NewWindowMiner(2, 5, 5); err == nil {
		t.Fatal("window ≤ maxPeriod: want error")
	}
	m, _ := NewWindowMiner(2, 5, 20)
	if err := m.Append(5); err == nil {
		t.Fatal("bad symbol: want error")
	}
	if _, err := m.Periodicities(2); err == nil {
		t.Fatal("ψ>1: want error")
	}
}

func TestWindowMinerCountsNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	m, _ := NewWindowMiner(5, 8, 30)
	for i := 0; i < 5000; i++ {
		_ = m.Append(rng.Intn(5))
	}
	for k := 0; k < 5; k++ {
		for p := 1; p <= 8; p++ {
			if m.f2[k][p] == nil {
				continue
			}
			for l, c := range m.f2[k][p] {
				if c < 0 {
					t.Fatalf("negative count at (%d,%d,%d): %d", k, p, l, c)
				}
			}
		}
	}
}
