package core

import (
	"context"

	"periodica/internal/series"
)

// CandidatePeriod is a period that survived the one-pass aggregate stage: at
// least one symbol's total lag-p match count could reach the threshold at
// some position.
type CandidatePeriod struct {
	Period     int
	BestSymbol int   // symbol with the largest lag-p match count
	MatchCount int64 // that symbol's lag-p match count
}

// DetectCandidates runs only the periodicity-detection phase of the
// algorithm: one pass over the series builds the per-symbol indicators, one
// FFT autocorrelation per symbol yields every lag's match counts, and each
// period is kept iff some symbol passes the sound aggregate test
// r_k(p) ≥ ψ·minPairs(p) (a necessary condition for Definition 1, since
// F2(s_k, π_{p,l}) ≤ r_k(p) for every position l). Total cost O(σ n log n) —
// the phase the paper's Fig. 5 times against the periodic-trends baseline,
// whose output is likewise a set of candidate periods. The FFT stage runs
// through the batched planned engine on all cores; the counts (and hence the
// candidates) are identical to the serial sweep. Exact positions and
// confidences for a candidate are resolved on demand with Mine over a
// restricted period range, or Confidencer.
func DetectCandidates(s *series.Series, psi float64, maxPeriod int) ([]CandidatePeriod, error) {
	return detectCandidates(context.Background(), s, psi, maxPeriod)
}

// detectCandidates is the shared implementation behind DetectCandidates and
// DetectCandidatesContext: a session whose pipeline is just the detect stage
// (lag counts only) and the candidate sweep, with the context polled by the
// scheduler throughout.
func detectCandidates(ctx context.Context, s *series.Series, psi float64, maxPeriod int) ([]CandidatePeriod, error) {
	ses, err := newCandidateSession(s, psi, maxPeriod, sessionConfig{workers: 1, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	return ses.candidates(memoryDetect{lagOnly: true})
}

// BestConfidences returns, for every period p in [1, maxPeriod], the maximum
// Definition-1 confidence over all symbols and positions (index 0 unused;
// maxPeriod 0 means n/2). Unlike Mine it materializes nothing per
// periodicity, so it is the right tool for threshold sweeps like the paper's
// Table 1, where loose thresholds admit millions of individual
// periodicities.
func BestConfidences(s *series.Series, maxPeriod int) ([]float64, error) {
	n := s.Len()
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, invalidf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}
	det := newDetector(s, EngineBitset)
	out := make([]float64, maxPeriod+1)
	for p := 1; p <= maxPeriod; p++ {
		best := 0.0
		det.detect(p, 1e-9, func(sp SymbolPeriodicity) {
			if sp.Confidence > best {
				best = sp.Confidence
			}
		})
		if best > 1 {
			best = 1
		}
		out[p] = best
	}
	return out, nil
}
