package core

// Adapters between Options and the pattern-query language's query.Spec.
// Options is now a thin view over a Spec: withDefaults round-trips through
// query.Spec.Normalize, so the query compiler's validator is the single
// place defaults and bounds checks live. Every other layer — the public
// package, httpapi, the distributed coordinator, the CLIs — converts
// through these two functions rather than hand-building Options.

import "periodica/internal/query"

// ParseEngine maps an engine name (Engine.String values) to its constant;
// the empty string means auto. This is the one engine-name parser — the
// shard wire, the CLIs, and the coordinator all call it.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", query.EngineAuto:
		return EngineAuto, nil
	case query.EngineNaive:
		return EngineNaive, nil
	case query.EngineBitset:
		return EngineBitset, nil
	case query.EngineFFT:
		return EngineFFT, nil
	}
	return 0, invalidf("core: unknown engine %q", name)
}

// OptionsFromSpec lowers a compiled query Spec to mining Options. The
// Spec's shaping fields (symbol filter, limit, discretization, workers) do
// not reach the core engine — they act on input and output at the boundary
// layers — so only the mining subset transfers.
func OptionsFromSpec(sp query.Spec) (Options, error) {
	eng, err := ParseEngine(sp.Engine)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Threshold:        sp.Threshold,
		MinPeriod:        sp.MinPeriod,
		MaxPeriod:        sp.MaxPeriod,
		Engine:           eng,
		MaxPatternPeriod: sp.MaxPatternPeriod,
		MaxPatterns:      sp.MaxPatterns,
		MinPairs:         sp.MinPairs,
	}, nil
}

// SpecFromOptions lifts Options to the equivalent query Spec — the inverse
// of OptionsFromSpec over the mining fields. Rendering the result gives the
// canonical query string for these options, which is what the distributed
// coordinator puts on the /v1/shard wire.
func SpecFromOptions(o Options) query.Spec {
	return query.Spec{
		Threshold:        o.Threshold,
		MinPeriod:        o.MinPeriod,
		MaxPeriod:        o.MaxPeriod,
		Engine:           engineName(o.Engine),
		MaxPatternPeriod: o.MaxPatternPeriod,
		MaxPatterns:      o.MaxPatterns,
		MinPairs:         o.MinPairs,
	}
}

// engineName is Engine.String, except the zero value lifts to the Spec's
// "unset" spelling so an all-defaults Options round-trips to an
// all-defaults Spec.
func engineName(e Engine) string {
	if e == EngineAuto {
		return ""
	}
	return e.String()
}
