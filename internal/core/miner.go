// Package core implements the paper's obscure-periodic-pattern mining
// algorithm: symbol-periodicity detection for every candidate period in one
// pass (Definition 1), periodic single-symbol patterns (Definition 2), and
// multi-symbol candidate patterns with estimated support (Definition 3),
// driven by the modified convolution of package conv.
package core

import (
	"fmt"
	"sort"

	"periodica/internal/series"
)

// Engine selects how the convolution components are evaluated.
type Engine int

const (
	// EngineAuto picks EngineFFT for long series and EngineNaive for short
	// ones.
	EngineAuto Engine = iota
	// EngineNaive scans the series once per candidate period. O(n²) overall;
	// the ground-truth reference.
	EngineNaive
	// EngineBitset evaluates c′_p with word-parallel AND/shift over the
	// mapped binary vector and prunes periods by match popcount.
	EngineBitset
	// EngineFFT computes all lag-match counts with one FFT autocorrelation
	// per symbol (O(σ n log n)), prunes, and resolves phases only for
	// surviving (period, symbol) pairs. This is the paper's algorithm.
	EngineFFT
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineNaive:
		return "naive"
	case EngineBitset:
		return "bitset"
	case EngineFFT:
		return "fft"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Options configure Mine.
type Options struct {
	// Threshold is the periodicity threshold ψ ∈ (0,1] of Definition 1.
	Threshold float64
	// MinPeriod and MaxPeriod bound the candidate periods (inclusive).
	// Defaults: 1 and n/2, the paper's loop bounds.
	MinPeriod int
	MaxPeriod int
	// Engine selects the evaluation strategy; default EngineAuto.
	Engine Engine
	// MaxPatternPeriod caps the periods for which multi-symbol candidate
	// patterns (Definition 3) are enumerated; single-symbol patterns are
	// always produced. Default 128. Set negative to disable multi-symbol
	// mining entirely.
	MaxPatternPeriod int
	// MaxPatterns caps the number of emitted multi-symbol patterns
	// (enumeration stops once reached). Default 10000.
	MaxPatterns int
	// MinPairs requires a symbol periodicity's projection to contain at
	// least this many consecutive slot pairs (the Definition-1
	// denominator). The paper's semantics is 1, the default — but then a
	// single match at a two-slot projection yields confidence 1, so large
	// periods are never prunable; raising MinPairs demands statistical
	// mass and lets the aggregate prune discard most (period, symbol)
	// pairs.
	MinPairs int
}

// withDefaults delegates validation and defaulting to the pattern-query
// Spec — the single validator every layer shares — by round-tripping
// through query.Spec.Normalize. Errors come back with the query package's
// wording, prefixed here, so a bad threshold reads identically whether it
// arrived as a struct field or a query clause.
func (o Options) withDefaults(n int) (Options, error) {
	sp, err := SpecFromOptions(o).Normalize(n)
	if err != nil {
		return o, invalidf("core: %v", err)
	}
	out, err := OptionsFromSpec(sp)
	if err != nil {
		return o, err
	}
	return out, nil
}

// SymbolPeriodicity records that symbol Symbol is periodic with period Period
// at position Position (Definition 1): F2 of Pairs consecutive projection
// slots matched, for a confidence F2/Pairs ≥ ψ.
type SymbolPeriodicity struct {
	Symbol     int
	Period     int
	Position   int
	F2         int
	Pairs      int
	Confidence float64
}

// Result is the output of Mine.
type Result struct {
	N             int
	Sigma         int
	Threshold     float64
	Periodicities []SymbolPeriodicity
	// Periods lists the distinct candidate period values, ascending
	// (Table 1's "period values").
	Periods []int
	// SingleSymbol holds the periodic single-symbol patterns of
	// Definition 2, one per periodicity.
	SingleSymbol []Pattern
	// Patterns holds multi-symbol candidate patterns (≥ 2 fixed symbols)
	// whose estimated support reaches the threshold.
	Patterns []Pattern
	// PatternsTruncated reports that MaxPatterns stopped the enumeration.
	PatternsTruncated bool
}

// pairsAt returns the Definition-1 denominator ⌈(n−l)/p⌉ − 1: the number of
// consecutive slot pairs in π_{p,l}(T).
func pairsAt(n, p, l int) int {
	return (n-l+p-1)/p - 1
}

// Mine runs the full algorithm of Fig. 2 over s. It is a thin adapter: a
// session over s drives the shared detect → sweep → resolve → enumerate
// pipeline with a serial scheduler (the FFT precompute still batches across
// all cores, exactly as before).
func Mine(s *series.Series, opt Options) (*Result, error) {
	ses, err := newSession(s, opt, sessionConfig{workers: 1})
	if err != nil {
		return nil, err
	}
	return ses.mine()
}

// finishResult sorts the collected periodicities, derives the period list,
// and forms the Definition-2 single-symbol patterns.
func finishResult(res *Result, periodSet map[int]bool) {
	for p := range periodSet {
		res.Periods = append(res.Periods, p)
	}
	sort.Ints(res.Periods)
	sort.Slice(res.Periodicities, func(i, j int) bool {
		a, b := res.Periodicities[i], res.Periodicities[j]
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		if a.Position != b.Position {
			return a.Position < b.Position
		}
		return a.Symbol < b.Symbol
	})
	for _, sp := range res.Periodicities {
		res.SingleSymbol = append(res.SingleSymbol, singlePattern(sp))
	}
}

// PeriodConfidence returns the minimum threshold ψ at which period p would be
// detected: the maximum Definition-1 confidence over all symbols and
// positions at period p. This is the "confidence" plotted in Figs. 3 and 6.
func PeriodConfidence(s *series.Series, p int) float64 {
	return NewConfidencer(s).At(p)
}

// Confidencer answers repeated period-confidence queries over one series,
// reusing the mapped indicators across queries.
type Confidencer struct {
	det *detector
}

// NewConfidencer builds a Confidencer for s.
func NewConfidencer(s *series.Series) *Confidencer {
	return &Confidencer{det: newDetector(s, EngineBitset)}
}

// At returns the maximum Definition-1 confidence at period p.
func (c *Confidencer) At(p int) float64 {
	best := 0.0
	c.det.detect(p, 1e-9, func(sp SymbolPeriodicity) {
		if sp.Confidence > best {
			best = sp.Confidence
		}
	})
	if best > 1 {
		best = 1
	}
	return best
}
