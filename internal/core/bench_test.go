package core

import (
	"fmt"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/gen"
	"periodica/internal/series"
)

func benchPeriodic(b *testing.B, n int) *series.Series {
	b.Helper()
	s, _, err := gen.Generate(gen.Config{Length: n, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkMineEngines is the engine ablation: the same full mining job
// under the naive, bitset and FFT evaluators.
func BenchmarkMineEngines(b *testing.B) {
	s := benchPeriodic(b, 4000)
	for _, eng := range []Engine{EngineNaive, EngineBitset, EngineFFT} {
		b.Run(eng.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Mine(s, Options{Threshold: 0.7, Engine: eng, MaxPatternPeriod: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectCandidates measures the one-pass detection phase, serial
// and parallel.
func BenchmarkDetectCandidates(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		s := benchPeriodic(b, n)
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DetectCandidates(s, 0.8, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelDetectCandidates(s, 0.8, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBestConfidences measures the Table-1 sweep, serial and parallel.
func BenchmarkBestConfidences(b *testing.B) {
	s := benchPeriodic(b, 8000)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BestConfidences(s, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ParallelBestConfidences(s, 1000, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalAppend measures the per-symbol online update cost at
// several period bounds.
func BenchmarkIncrementalAppend(b *testing.B) {
	for _, maxP := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("maxPeriod=%d", maxP), func(b *testing.B) {
			m, err := NewIncrementalMiner(alphabet.Letters(10), maxP)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if err := m.Append(i % 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPatternEnumeration isolates the Definition-3 combination stage.
func BenchmarkPatternEnumeration(b *testing.B) {
	s := benchPeriodic(b, 10000)
	for i := 0; i < b.N; i++ {
		if _, err := Mine(s, Options{Threshold: 0.35, MinPeriod: 25, MaxPeriod: 25, MaxPatternPeriod: 25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeMiners measures the segment-merge cost.
func BenchmarkMergeMiners(b *testing.B) {
	alpha := alphabet.Letters(10)
	build := func() *IncrementalMiner {
		m, _ := NewIncrementalMiner(alpha, 128)
		for i := 0; i < 5000; i++ {
			_ = m.Append(i % 10)
		}
		return m
	}
	seg := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := build()
		b.StartTimer()
		if err := a.Merge(seg); err != nil {
			b.Fatal(err)
		}
	}
}
