package core

// The distributed shard seam. A mine's sweep and resolve stages partition
// cleanly over (symbol × candidate-period) blocks: each block's per-period
// slots are computed independently (MineShardSlots, run on worker nodes),
// and the union of the blocks' slots is exactly the single-process resolve
// output, so reassembly (AssembleFromSlots, run on the coordinator) is a
// concatenation, the canonical result sort, and the pattern-enumeration
// stage over the merged periodicities. Byte-identical by construction: every
// slot value is an integer pair (F2, Pairs) computed from the same read-only
// inputs a single-process mine uses, confidences are re-derived from those
// integers by the same division, and the result sort has a total order —
// merge order can never show through.

import (
	"context"

	"periodica/internal/series"
)

// NormalizeOptions validates opt against a series of length n and fills in
// the same defaults Mine applies (period bounds, pattern caps, MinPairs).
// The distributed coordinator normalizes once, so every shard it cuts and
// every worker it dispatches to sees identical explicit bounds.
func NormalizeOptions(opt Options, n int) (Options, error) {
	return opt.withDefaults(n)
}

// MineShardSlots computes one shard of a mine: the symbol periodicities of
// symbols [symLo, symHi) over candidate periods [opt.MinPeriod,
// opt.MaxPeriod], exactly as the resolve stage of a single-process mine
// would emit them for those (symbol, period) cells. The slots are raw —
// unsorted across periods, no derived patterns — because assembly is the
// coordinator's job. Engine selection treats the run as parallel (the naive
// engine is substituted by the bitset engine, which shards cleanly and
// shares its semantics exactly), so any engine request yields identical
// slot values.
func MineShardSlots(ctx context.Context, s *series.Series, opt Options, symLo, symHi int) ([]SymbolPeriodicity, error) {
	ses, err := newSession(s, opt, sessionConfig{parallel: true, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	if symLo < 0 || symHi > ses.sigma || symLo >= symHi {
		return nil, invalidf("core: shard symbol range [%d,%d) outside [0,%d)", symLo, symHi, ses.sigma)
	}
	ses.symLo, ses.symHi = symLo, symHi
	if err := ses.runPipeline(memoryDetect{}, sweepPeriods{}, resolveSlots{}); err != nil {
		return nil, err
	}
	return ses.slots, nil
}

// resolveSlots is the resolve stage of a shard: the same per-period slot
// collection resolvePhases performs, flattened in period order and handed
// back raw instead of being assembled into a Result.
type resolveSlots struct{}

func (resolveSlots) name() string { return "resolve" }

func (resolveSlots) run(ses *session) error {
	perPeriod, err := collectPerPeriod(ses)
	if err != nil {
		return err
	}
	for _, list := range perPeriod {
		ses.slots = append(ses.slots, list...)
	}
	ses.surv = nil // consumed
	return nil
}

// AssembleFromSlots merges shard slots back into a full Result over s: it
// validates and deduplicates the slots (a malformed or duplicated slot is an
// invalid-input error — the coordinator's per-shard-ID merge should have
// made duplicates impossible), re-derives each confidence from its integer
// F2/Pairs pair, applies the canonical result sort, and runs the
// pattern-enumeration stage over the merged periodicities. opt is the
// original full-range option set; with slots from a shard plan covering that
// range, the Result is byte-identical to the single-process Mine.
func AssembleFromSlots(ctx context.Context, s *series.Series, opt Options, slots []SymbolPeriodicity) (*Result, error) {
	ses, err := newSession(s, opt, sessionConfig{parallel: true, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	res := &Result{N: ses.n, Sigma: ses.sigma, Threshold: ses.opt.Threshold}
	periodSet := map[int]bool{}
	seen := map[[3]int]bool{}
	for _, sp := range slots {
		if sp.Symbol < 0 || sp.Symbol >= ses.sigma ||
			sp.Period < ses.opt.MinPeriod || sp.Period > ses.opt.MaxPeriod ||
			sp.Position < 0 || sp.Position >= sp.Period ||
			sp.F2 < 1 || sp.Pairs < 1 || sp.F2 > sp.Pairs {
			return nil, invalidf("core: shard slot out of range: symbol=%d period=%d position=%d F2=%d pairs=%d",
				sp.Symbol, sp.Period, sp.Position, sp.F2, sp.Pairs)
		}
		sp.Confidence = float64(sp.F2) / float64(sp.Pairs)
		key := [3]int{sp.Symbol, sp.Period, sp.Position}
		if seen[key] {
			return nil, invalidf("core: duplicate shard slot: symbol=%d period=%d position=%d",
				sp.Symbol, sp.Period, sp.Position)
		}
		seen[key] = true
		res.Periodicities = append(res.Periodicities, sp)
		periodSet[sp.Period] = true
	}
	finishResult(res, periodSet)
	ses.res = res
	if err := ses.runPipeline(enumeratePatterns{}); err != nil {
		return nil, err
	}
	return ses.res, nil
}
