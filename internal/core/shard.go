package core

// The distributed shard seam. A mine's sweep and resolve stages partition
// cleanly over (symbol × candidate-period) blocks: each block's per-period
// slots are computed independently (MineShardSlots, run on worker nodes),
// and the union of the blocks' slots is exactly the single-process resolve
// output, so reassembly (AssembleFromSlots, run on the coordinator) is a
// concatenation, the canonical result sort, and the pattern-enumeration
// stage over the merged periodicities. Byte-identical by construction: every
// slot value is an integer pair (F2, Pairs) computed from the same read-only
// inputs a single-process mine uses, confidences are re-derived from those
// integers by the same division, and the result sort has a total order —
// merge order can never show through.

import (
	"context"

	"periodica/internal/conv"
	"periodica/internal/series"
)

// NormalizeOptions validates opt against a series of length n and fills in
// the same defaults Mine applies (period bounds, pattern caps, MinPairs).
// The distributed coordinator normalizes once, so every shard it cuts and
// every worker it dispatches to sees identical explicit bounds.
func NormalizeOptions(opt Options, n int) (Options, error) {
	return opt.withDefaults(n)
}

// MineShardSlots computes one shard of a mine: the symbol periodicities of
// symbols [symLo, symHi) over candidate periods [opt.MinPeriod,
// opt.MaxPeriod], exactly as the resolve stage of a single-process mine
// would emit them for those (symbol, period) cells. The slots are raw —
// unsorted across periods, no derived patterns — because assembly is the
// coordinator's job. Engine selection treats the run as parallel (the naive
// engine is substituted by the bitset engine, which shards cleanly and
// shares its semantics exactly), so any engine request yields identical
// slot values.
func MineShardSlots(ctx context.Context, s *series.Series, opt Options, symLo, symHi int) ([]SymbolPeriodicity, error) {
	ses, err := newSession(s, opt, sessionConfig{parallel: true, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	if symLo < 0 || symHi > ses.sigma || symLo >= symHi {
		return nil, invalidf("core: shard symbol range [%d,%d) outside [0,%d)", symLo, symHi, ses.sigma)
	}
	ses.symLo, ses.symHi = symLo, symHi
	if err := ses.runPipeline(memoryDetect{}, sweepPeriods{}, resolveSlots{}); err != nil {
		return nil, err
	}
	return ses.slots, nil
}

// ShardSurvivors runs the detect and sweep stages once over the full series
// and returns the per-period survivor lists: entry i holds, ascending, the
// symbols that could still reach the threshold at period opt.MinPeriod+i.
// A coordinator computes this once and ships each shard its slice, so the
// workers skip the whole-series detection their bands would otherwise
// recompute. The lists are exactly the sweep a worker would run itself —
// same integers, same float comparison — so resolve output is unchanged.
func ShardSurvivors(ctx context.Context, s *series.Series, opt Options) ([][]int32, error) {
	ses, err := newSession(s, opt, sessionConfig{parallel: true, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	if err := ses.runPipeline(memoryDetect{}, sweepPeriods{}); err != nil {
		return nil, err
	}
	return ses.surv, nil
}

// MineShardSlotsFromSurvivors computes one shard of a mine from a
// coordinator-shipped survivor set: identical output to MineShardSlots on
// the same shard, but the detect stage builds only the indicator vectors —
// the O(σ n log n) whole-series autocorrelation and the sweep are skipped
// because the coordinator already ran them. surv must span the shard's
// period band (entry i is period opt.MinPeriod+i) with each list strictly
// ascending inside [symLo, symHi); a malformed set is an invalid-input
// error, because a worker must never resolve cells outside its shard.
func MineShardSlotsFromSurvivors(ctx context.Context, s *series.Series, opt Options, symLo, symHi int, surv [][]int32) ([]SymbolPeriodicity, error) {
	ses, err := newSession(s, opt, sessionConfig{parallel: true, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	if symLo < 0 || symHi > ses.sigma || symLo >= symHi {
		return nil, invalidf("core: shard symbol range [%d,%d) outside [0,%d)", symLo, symHi, ses.sigma)
	}
	span := ses.opt.MaxPeriod - ses.opt.MinPeriod + 1
	if len(surv) != span {
		return nil, invalidf("core: survivor set spans %d periods, shard band holds %d", len(surv), span)
	}
	for i, list := range surv {
		prev := int32(symLo) - 1
		for _, k := range list {
			if int(k) < symLo || int(k) >= symHi || k <= prev {
				return nil, invalidf("core: survivor symbol %d at period %d outside shard range [%d,%d) or out of order",
					k, ses.opt.MinPeriod+i, symLo, symHi)
			}
			prev = k
		}
	}
	ses.symLo, ses.symHi = symLo, symHi
	ses.surv = surv
	if err := ses.runPipeline(detectIndicators{}, resolveSlots{}); err != nil {
		return nil, err
	}
	return ses.slots, nil
}

// detectIndicators is the detect stage of the survivor-shipped shard path:
// resolve needs only the per-symbol indicator bit-vectors, so the expensive
// batched autocorrelation never runs on the worker.
type detectIndicators struct{}

func (detectIndicators) name() string { return "detect" }

func (detectIndicators) run(ses *session) error {
	ses.ind = conv.NewIndicators(ses.s)
	return nil
}

// resolveSlots is the resolve stage of a shard: the same per-period slot
// collection resolvePhases performs, flattened in period order and handed
// back raw instead of being assembled into a Result.
type resolveSlots struct{}

func (resolveSlots) name() string { return "resolve" }

func (resolveSlots) run(ses *session) error {
	perPeriod, err := collectPerPeriod(ses)
	if err != nil {
		return err
	}
	for _, list := range perPeriod {
		ses.slots = append(ses.slots, list...)
	}
	ses.surv = nil // consumed
	return nil
}

// AssembleFromSlots merges shard slots back into a full Result over s: it
// validates and deduplicates the slots (a malformed or duplicated slot is an
// invalid-input error — the coordinator's per-shard-ID merge should have
// made duplicates impossible), re-derives each confidence from its integer
// F2/Pairs pair, applies the canonical result sort, and runs the
// pattern-enumeration stage over the merged periodicities. opt is the
// original full-range option set; with slots from a shard plan covering that
// range, the Result is byte-identical to the single-process Mine.
func AssembleFromSlots(ctx context.Context, s *series.Series, opt Options, slots []SymbolPeriodicity) (*Result, error) {
	ses, err := newSession(s, opt, sessionConfig{parallel: true, cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	res := &Result{N: ses.n, Sigma: ses.sigma, Threshold: ses.opt.Threshold}
	periodSet := map[int]bool{}
	seen := map[[3]int]bool{}
	for _, sp := range slots {
		if sp.Symbol < 0 || sp.Symbol >= ses.sigma ||
			sp.Period < ses.opt.MinPeriod || sp.Period > ses.opt.MaxPeriod ||
			sp.Position < 0 || sp.Position >= sp.Period ||
			sp.F2 < 1 || sp.Pairs < 1 || sp.F2 > sp.Pairs {
			return nil, invalidf("core: shard slot out of range: symbol=%d period=%d position=%d F2=%d pairs=%d",
				sp.Symbol, sp.Period, sp.Position, sp.F2, sp.Pairs)
		}
		sp.Confidence = float64(sp.F2) / float64(sp.Pairs)
		key := [3]int{sp.Symbol, sp.Period, sp.Position}
		if seen[key] {
			return nil, invalidf("core: duplicate shard slot: symbol=%d period=%d position=%d",
				sp.Symbol, sp.Period, sp.Position)
		}
		seen[key] = true
		res.Periodicities = append(res.Periodicities, sp)
		periodSet[sp.Period] = true
	}
	finishResult(res, periodSet)
	ses.res = res
	if err := ses.runPipeline(enumeratePatterns{}); err != nil {
		return nil, err
	}
	return ses.res, nil
}
