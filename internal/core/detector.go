package core

import (
	"sort"

	"periodica/internal/bitvec"
	"periodica/internal/conv"
	"periodica/internal/series"
)

// detector evaluates, for one period p at a time, the per-symbol per-position
// counts F2(s_k, π_{p,l}(T)) and emits the symbol periodicities that reach
// the threshold. A detector is pure computation over shared read-only inputs
// (series, indicators, lag counts) plus private scratch; cancellation and
// sharding belong to the exec scheduler that drives it, so pipeline stages
// build one detector per worker.
type detector struct {
	s        *series.Series
	eng      Engine
	minPairs int // minimum Definition-1 denominator to qualify (≥ 1)
	// symLo and symHi restrict the sweep to symbols [symLo, symHi) — the
	// distributed shard seam; symHi 0 means the whole alphabet.
	symLo, symHi int
	ind          *conv.Indicators
	lag          [][]int64 // FFT lag-match counts, lag[k][p]
	match        *bitvec.Vector
	counts       []int   // phase-count scratch; only touched entries are non-zero
	touched      []int   // phases with non-zero counts, for output-sensitive reset
	surv         []int32 // surviving-symbol scratch for the fused detect path
}

func newDetector(s *series.Series, eng Engine) *detector {
	d := &detector{s: s, eng: eng, minPairs: 1}
	switch eng {
	case EngineBitset:
		d.ind = conv.NewIndicators(s)
	case EngineFFT:
		d.ind = conv.NewIndicators(s)
		// The batched planned engine returns the same exact counts as the
		// serial sweep, so the detector's results are unchanged.
		d.lag = conv.LagMatchCountsBatched(s, 0)
	}
	return d
}

// newDetectorFromIndicators builds a detector directly from streaming-built
// indicators (no symbol-index copy of the series required).
func newDetectorFromIndicators(ind *conv.Indicators, lag [][]int64) *detector {
	eng := EngineBitset
	if lag != nil {
		eng = EngineFFT
	}
	return &detector{eng: eng, minPairs: 1, ind: ind, lag: lag}
}

func (d *detector) n() int {
	if d.s != nil {
		return d.s.Len()
	}
	return d.ind.N
}

func (d *detector) sigma() int {
	if d.s != nil {
		return d.s.Alphabet().Size()
	}
	return d.ind.Sigma
}

// detect finds all symbol periodicities at period p with confidence ≥ psi.
// It fuses the sweep and resolve stages of the pipeline for callers that
// query one period at a time (Confidencer, BestConfidences, significance).
func (d *detector) detect(p int, psi float64, emit func(SymbolPeriodicity)) {
	n := d.n()
	if p < 1 || p >= n {
		return
	}
	if pairsAt(n, p, 0) < d.minPairs {
		return // no position can reach the required projection mass
	}
	if d.eng == EngineNaive {
		d.detectNaive(p, psi, emit)
		return
	}
	d.surv = d.survivors(p, psi, d.surv[:0])
	for _, k := range d.surv {
		d.resolveSymbol(int(k), p, psi, emit)
	}
}

// detectNaive scans the series once, tallying matches per (symbol, phase).
func (d *detector) detectNaive(p int, psi float64, emit func(SymbolPeriodicity)) {
	n, sigma := d.n(), d.sigma()
	need := sigma * p
	if cap(d.counts) < need {
		d.counts = make([]int, need)
	}
	counts := d.counts[:need]
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i+p < n; i++ {
		if d.s.At(i) == d.s.At(i+p) {
			counts[d.s.At(i)*p+i%p]++
		}
	}
	for k := 0; k < sigma; k++ {
		for l := 0; l < p; l++ {
			d.emitIf(k, p, l, counts[k*p+l], psi, emit)
		}
	}
}

// survivors appends to dst the symbols whose aggregate lag-p match count
// could still reach the threshold at some position. The prune is sound:
// F2(s_k, π_{p,l}) ≤ r_k(p) for every l, and the denominator is smallest at
// the largest phase, so max_l conf(k,p,l) ≤ r_k(p)/minPairs. r_k(p) comes
// from the FFT autocorrelation when available and a bitset popcount
// otherwise.
func (d *detector) survivors(p int, psi float64, dst []int32) []int32 {
	n, sigma := d.n(), d.sigma()
	lo, hi := d.symLo, d.symHi
	if hi <= 0 || hi > sigma {
		hi = sigma
	}
	minPairs := pairsAt(n, p, p-1)
	if minPairs < d.minPairs {
		minPairs = d.minPairs
	}
	for k := lo; k < hi; k++ {
		var r int64
		switch d.eng {
		case EngineFFT:
			r = d.lag[k][p]
		default:
			d.match = d.ind.MatchSet(k, p, d.match)
			r = int64(d.match.Count())
		}
		if float64(r) >= psi*float64(minPairs) {
			dst = append(dst, int32(k))
		}
	}
	return dst
}

// resolveSymbol computes the exact per-phase counts F2(s_k, π_{p,l}) for one
// surviving symbol and emits the qualifying periodicities in phase order.
func (d *detector) resolveSymbol(k, p int, psi float64, emit func(SymbolPeriodicity)) {
	d.match = d.ind.MatchSet(k, p, d.match)
	if cap(d.counts) < p {
		d.counts = make([]int, p)
	}
	counts := d.counts[:p]
	d.touched = d.touched[:0]
	d.match.ForEach(func(i int) {
		l := i % p
		if counts[l] == 0 {
			d.touched = append(d.touched, l)
		}
		counts[l]++
	})
	// Only touched phases can qualify (F2 > 0); emit in phase order.
	sort.Ints(d.touched)
	for _, l := range d.touched {
		d.emitIf(k, p, l, counts[l], psi, emit)
		counts[l] = 0
	}
}

func (d *detector) emitIf(k, p, l, f2 int, psi float64, emit func(SymbolPeriodicity)) {
	pairs := pairsAt(d.n(), p, l)
	if pairs < d.minPairs || f2 == 0 {
		return
	}
	conf := float64(f2) / float64(pairs)
	if conf >= psi {
		emit(SymbolPeriodicity{Symbol: k, Period: p, Position: l, F2: f2, Pairs: pairs, Confidence: conf})
	}
}

// occurrenceSet returns the bit set over occurrence indices m ∈ [0, ⌊n/p⌋)
// with bit m set iff t_{mp+l} = t_{(m+1)p+l} = s_k, i.e. the occurrences at
// which the single-symbol pattern (s_k at position l, period p) holds.
func (d *detector) occurrenceSet(k, p, l int) *bitvec.Vector {
	if d.ind == nil {
		d.ind = conv.NewIndicators(d.s)
	}
	n := d.n()
	occ := bitvec.New(n / p)
	d.match = d.ind.MatchSet(k, p, d.match)
	d.match.ForEach(func(i int) {
		if i%p == l {
			occ.Set(i / p)
		}
	})
	return occ
}
