package core

import (
	"fmt"
	"sort"

	"periodica/internal/bitvec"
	"periodica/internal/conv"
	"periodica/internal/series"
)

// MineLiteral executes the paper's Fig. 2 algorithm step by step, exactly as
// written: (1–2) map the symbols and form the binary vector T′; (3) compute
// the convolution components C^T; (4) for each period p = 1..n/2, (a) take
// the set W_p of powers of two in c^T_p, (b) decode each power into its
// symbol and position to obtain the W_{p,k,l} sets and thus every
// F2(s_k, π_{p,l}(T)), (c) apply the threshold, (d) form the single-symbol
// patterns, and (e) form the candidate patterns and estimate their supports
// from the same-occurrence tuples W′_p. It shares no evaluation shortcuts
// with Mine — the component bit-vectors are materialized and decoded power
// by power — so agreement between the two is a machine-checked reading of
// the paper. Intended for verification; use Mine for real workloads.
//
// maxPatterns caps step (e)'s enumeration (0 = 10000): at loose thresholds
// the paper's Cartesian product is exponential in the qualifying positions,
// so an uncapped run can explode on degenerate inputs.
func MineLiteral(s *series.Series, psi float64, maxPatterns int) (*Result, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("core: threshold ψ=%v outside (0,1]", psi)
	}
	if maxPatterns == 0 {
		maxPatterns = 10000
	}
	n := s.Len()
	if n < 2 {
		return nil, fmt.Errorf("core: series too short (n=%d)", n)
	}
	sigma := s.Alphabet().Size()
	m := conv.Map(s) // steps 1–2: ordering and binary vector

	res := &Result{N: n, Sigma: sigma, Threshold: psi}
	periodSet := map[int]bool{}
	var component *bitvec.Vector
	for p := 1; p <= n/2; p++ { // step 4
		component = m.Component(p, component) // c^T_p
		// (a)+(b): decode the powers of two into per-(k,l) match sets; the
		// paper's W_{p,k,l} cardinalities are the F2 values, and the decoded
		// positions also give the occurrence indices the support estimation
		// of step (e) matches on.
		type cell struct {
			f2  int
			occ *bitvec.Vector
		}
		cells := map[[2]int]*cell{}
		total := n / p
		component.ForEach(func(w int) {
			k, i, l := conv.DecodePower(w, sigma, n, p)
			c := cells[[2]int{k, l}]
			if c == nil {
				c = &cell{occ: bitvec.New(total)}
				cells[[2]int{k, l}] = c
			}
			c.f2++
			c.occ.Set(i / p)
		})

		// (c): threshold test per (k, l).
		var group []SymbolPeriodicity
		slots := make([][]slot, p)
		for key, c := range cells {
			k, l := key[0], key[1]
			pairs := pairsAt(n, p, l)
			if pairs < 1 {
				continue
			}
			conf := float64(c.f2) / float64(pairs)
			if conf >= psi {
				group = append(group, SymbolPeriodicity{
					Symbol: k, Period: p, Position: l,
					F2: c.f2, Pairs: pairs, Confidence: conf,
				})
				slots[l] = append(slots[l], slot{symbol: k, occ: c.occ})
			}
		}
		if len(group) == 0 {
			continue
		}
		periodSet[p] = true
		sort.Slice(group, func(i, j int) bool {
			a, b := group[i], group[j]
			if a.Position != b.Position {
				return a.Position < b.Position
			}
			return a.Symbol < b.Symbol
		})
		res.Periodicities = append(res.Periodicities, group...)
		// (d): periodic single-symbol patterns.
		for _, sp := range group {
			res.SingleSymbol = append(res.SingleSymbol, singlePattern(sp))
		}
		// (e): candidate patterns from the Cartesian product, with support
		// counted over shared occurrence indices (the W′_p tuples).
		distinct := map[int]bool{}
		for _, sp := range group {
			distinct[sp.Position] = true
		}
		if len(distinct) < 2 {
			continue
		}
		for l := range slots {
			sort.Slice(slots[l], func(i, j int) bool { return slots[l][i].symbol < slots[l][j].symbol })
		}
		e := &enumerator{slots: slots, period: p, total: total, psi: psi,
			max: maxPatterns - len(res.Patterns)}
		e.walk(0, nil)
		res.Patterns = append(res.Patterns, e.found...)
		if e.truncated {
			res.PatternsTruncated = true
			break
		}
	}
	for p := range periodSet {
		res.Periods = append(res.Periods, p)
	}
	sort.Ints(res.Periods)
	sort.Slice(res.Patterns, func(i, j int) bool {
		if res.Patterns[i].Period != res.Patterns[j].Period {
			return res.Patterns[i].Period < res.Patterns[j].Period
		}
		if res.Patterns[i].Support != res.Patterns[j].Support { //opvet:ignore floatcmp exact tie-break in sort comparator
			return res.Patterns[i].Support > res.Patterns[j].Support
		}
		return lessFixed(res.Patterns[i].Fixed, res.Patterns[j].Fixed)
	})
	return res, nil
}
