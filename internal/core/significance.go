package core

import (
	"fmt"
	"math"

	"periodica/internal/series"
)

// Significance scores symbol periodicities against the null model of
// independently drawn symbols: under the null, a consecutive projection pair
// matches symbol k with probability ρ_k², where ρ_k is the symbol's overall
// frequency, so the match count F2 is Binomial(pairs, ρ_k²). The p-value is
// that binomial's upper tail at the observed count. Definition 1 alone
// admits confident-looking flukes at large periods (few pairs); significance
// testing separates them from structure.
type Significance struct {
	rates []float64 // per-symbol pair-match probability ρ_k²
}

// NewSignificance derives the null model from the symbol frequencies of s.
func NewSignificance(s *series.Series) *Significance {
	counts := s.Counts()
	n := float64(s.Len())
	rates := make([]float64, len(counts))
	for k, c := range counts {
		rho := float64(c) / n
		rates[k] = rho * rho
	}
	return &Significance{rates: rates}
}

// PValue returns P[Binomial(sp.Pairs, ρ²) ≥ sp.F2] — the chance of the
// observed (or stronger) periodicity arising from independent symbols.
func (sig *Significance) PValue(sp SymbolPeriodicity) float64 {
	if sp.Symbol < 0 || sp.Symbol >= len(sig.rates) {
		return 1
	}
	return binomialUpperTail(sp.Pairs, sp.F2, sig.rates[sp.Symbol])
}

// FilterSignificant keeps the periodicities whose p-value is at most alpha.
// When bonferroniTests > 0, alpha is divided by that count — pass the number
// of (symbol, period, position) combinations examined (TestsForRange) to
// correct for multiple testing.
func (sig *Significance) FilterSignificant(pers []SymbolPeriodicity, alpha float64, bonferroniTests int) ([]SymbolPeriodicity, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha %v outside (0,1]", alpha)
	}
	if bonferroniTests > 0 {
		alpha /= float64(bonferroniTests)
	}
	var out []SymbolPeriodicity
	for _, sp := range pers {
		if sig.PValue(sp) <= alpha {
			out = append(out, sp)
		}
	}
	return out, nil
}

// TestsForRange returns the number of (symbol, period, position) hypotheses
// examined when mining σ symbols over periods [minPeriod, maxPeriod]:
// σ · Σ p.
func TestsForRange(sigma, minPeriod, maxPeriod int) int {
	total := 0
	for p := minPeriod; p <= maxPeriod; p++ {
		total += p
	}
	return sigma * total
}

// PeriodPValues returns, for every period p in [1, maxPeriod], the minimum
// p-value over that period's symbol periodicities (1 when none exists;
// index 0 unused; maxPeriod 0 means n/2). Sorting periods by this value
// ranks them by the strength of evidence, immune to the
// confident-looking-fluke problem of raw Definition-1 confidence at large
// periods.
func PeriodPValues(s *series.Series, maxPeriod int) ([]float64, error) {
	n := s.Len()
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, fmt.Errorf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}
	sig := NewSignificance(s)
	det := newDetector(s, EngineBitset)
	out := make([]float64, maxPeriod+1)
	for p := range out {
		out[p] = 1
	}
	for p := 1; p <= maxPeriod; p++ {
		det.detect(p, 1e-9, func(sp SymbolPeriodicity) {
			if pv := sig.PValue(sp); pv < out[p] {
				out[p] = pv
			}
		})
	}
	return out, nil
}

// binomialUpperTail returns P[X ≥ hits] for X ~ Binomial(trials, rate),
// summing the exact terms in log space from the observed count upward. The
// sum starts at or past the distribution mode for any count worth testing,
// so terms decay geometrically and the loop exits early.
func binomialUpperTail(trials, hits int, rate float64) float64 {
	if hits <= 0 {
		return 1
	}
	if trials <= 0 || hits > trials {
		return 1
	}
	if rate <= 0 {
		return 0 // any hit is impossible under the null
	}
	if rate >= 1 {
		return 1
	}
	logRate, logComp := math.Log(rate), math.Log1p(-rate)
	logTerm := func(j int) float64 {
		lchoose, _ := math.Lgamma(float64(trials + 1))
		lj, _ := math.Lgamma(float64(j + 1))
		lnj, _ := math.Lgamma(float64(trials - j + 1))
		return lchoose - lj - lnj + float64(j)*logRate + float64(trials-j)*logComp
	}
	sum := 0.0
	for j := hits; j <= trials; j++ {
		term := math.Exp(logTerm(j))
		sum += term
		if term < sum*1e-15 && float64(j) > rate*float64(trials+1) {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}
