package core

import (
	"math/rand"
	"reflect"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

func randomSeries(seed int64, n, sigma int) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]uint16, n)
	for i := range idx {
		idx[i] = uint16(rng.Intn(sigma))
	}
	return series.FromIndices(alphabet.Letters(sigma), idx)
}

func TestParallelBestConfidencesMatchesSerial(t *testing.T) {
	s := randomSeries(51, 800, 5)
	want, err := BestConfidences(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 7} {
		got, err := ParallelBestConfidences(s, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel sweep differs from serial", workers)
		}
	}
}

func TestParallelDetectCandidatesMatchesSerial(t *testing.T) {
	s := randomSeries(52, 1500, 8)
	for _, psi := range []float64{0.3, 0.8} {
		want, err := DetectCandidates(s, psi, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParallelDetectCandidates(s, psi, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ψ=%v: parallel candidates differ from serial", psi)
		}
	}
}

func TestParallelValidates(t *testing.T) {
	s := randomSeries(53, 20, 3)
	if _, err := ParallelBestConfidences(s, 100, 2); err == nil {
		t.Fatal("maxPeriod ≥ n: want error")
	}
	if _, err := ParallelDetectCandidates(s, 0, 0, 2); err == nil {
		t.Fatal("ψ=0: want error")
	}
	if _, err := ParallelDetectCandidates(s, 0.5, 100, 2); err == nil {
		t.Fatal("maxPeriod ≥ n: want error")
	}
}

func TestMineParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{55, 56} {
		s := randomSeries(seed, 1200, 5)
		for _, psi := range []float64{0.3, 0.7} {
			want, err := Mine(s, Options{Threshold: psi})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 4} {
				got, err := MineParallel(s, Options{Threshold: psi}, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Periodicities, want.Periodicities) {
					t.Fatalf("seed=%d ψ=%v workers=%d: periodicities differ", seed, psi, workers)
				}
				if !reflect.DeepEqual(got.Patterns, want.Patterns) {
					t.Fatalf("seed=%d ψ=%v workers=%d: patterns differ", seed, psi, workers)
				}
				if !reflect.DeepEqual(got.Periods, want.Periods) {
					t.Fatalf("seed=%d ψ=%v workers=%d: periods differ", seed, psi, workers)
				}
				if !reflect.DeepEqual(got.SingleSymbol, want.SingleSymbol) {
					t.Fatalf("seed=%d ψ=%v workers=%d: single patterns differ", seed, psi, workers)
				}
			}
		}
	}
}

func TestMineParallelValidates(t *testing.T) {
	s := randomSeries(57, 50, 3)
	if _, err := MineParallel(s, Options{Threshold: 0}, 2); err == nil {
		t.Fatal("ψ=0: want error")
	}
}

func TestParallelMoreWorkersThanPeriods(t *testing.T) {
	s := randomSeries(54, 30, 3)
	got, err := ParallelBestConfidences(s, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BestConfidences(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("worker clamp broke equivalence")
	}
}
