package core

import (
	"time"

	"periodica/internal/conv"
	"periodica/internal/exec"
	"periodica/internal/fft"
	"periodica/internal/obs"
	"periodica/internal/series"
)

// autoEngineThreshold is the series length at which EngineAuto switches from
// the quadratic reference scan to the FFT engine: below it the naive scan's
// constant factors win, above it the O(σ n log n) batched autocorrelation
// does.
const autoEngineThreshold = 4096

// resolveEngine is the single place an engine request becomes a concrete
// engine. parallel marks runs whose per-period work is sharded over multiple
// workers; there the naive engine (whose semantics the bitset engine shares
// exactly) is substituted by the bitset engine, which shards cleanly. An
// applied tuned profile (fft.Autotune / PERIODICA_TUNE_FILE) replaces the
// pinned crossover with the host's measured one; since every engine computes
// identical results, tuning moves only the cost, never the output.
func resolveEngine(e Engine, n int, parallel bool) Engine {
	switch e {
	case EngineAuto:
		threshold := autoEngineThreshold
		if t := fft.TunedEngineCrossover(); t > 0 {
			threshold = t
		}
		if n >= threshold {
			return EngineFFT
		}
		if parallel {
			return EngineBitset
		}
		return EngineNaive
	case EngineNaive:
		if parallel {
			return EngineBitset
		}
		return EngineNaive
	default:
		return e
	}
}

// session owns the state of one mining run: the series and alphabet bounds,
// the resolved engine and validated options, the FFT-plan cache, the
// scheduler that shards stage work and polls cancellation, and the products
// each stage hands to the next (indicators and lag counts from detect,
// per-period survivor lists from sweep, the Result from resolve and
// enumerate). Every public entry point — batch, context-aware, parallel,
// streaming, incremental, out-of-core — builds a session and runs the same
// pipeline, differing only in the source stage and the scheduler's
// configuration.
type session struct {
	s     *series.Series // nil for the out-of-core source stage
	n     int
	sigma int
	opt   Options
	eng   Engine

	// symLo and symHi restrict the sweep and resolve stages to symbols
	// [symLo, symHi) — the distributed shard seam; symHi 0 means the whole
	// alphabet. Detect still precomputes every symbol's inputs (the batched
	// FFT pairs symbols), but only the shard's symbols are resolved.
	symLo, symHi int

	sched      *exec.Scheduler
	plans      *fft.PlanCache
	met        *obs.ExecMetrics
	fftWorkers int // cores for the batched FFT precompute (0 = all)

	// Stage products.
	ind   *conv.Indicators
	lag   [][]int64
	surv  [][]int32 // surviving symbols per period index (sweep → resolve)
	res   *Result
	slots []SymbolPeriodicity // resolveSlots output (distributed shard path)
	cands []CandidatePeriod
}

// sessionConfig carries the per-entry-point knobs of a session.
type sessionConfig struct {
	workers    int  // stage shard width (1 = serial; ≤ 0 = all cores)
	fftWorkers int  // cores for the FFT precompute (0 = all)
	parallel   bool // resolve the engine for a sharded run
	cancel     func() error
	maxSteps   int64
	plans      *fft.PlanCache // nil = the process-shared cache
}

// newSession validates opt against s and assembles the session.
func newSession(s *series.Series, opt Options, cfg sessionConfig) (*session, error) {
	opt, err := opt.withDefaults(s.Len())
	if err != nil {
		return nil, err
	}
	ses := &session{
		s:          s,
		n:          s.Len(),
		sigma:      s.Alphabet().Size(),
		opt:        opt,
		eng:        resolveEngine(opt.Engine, s.Len(), cfg.parallel),
		plans:      cfg.plans,
		met:        obs.Exec(),
		fftWorkers: cfg.fftWorkers,
	}
	ses.finishSession(cfg)
	return ses, nil
}

// newCandidateSession assembles a session for the detection-only path over
// an in-memory series, validating the arguments the way the detection entry
// points always have.
func newCandidateSession(s *series.Series, psi float64, maxPeriod int, cfg sessionConfig) (*session, error) {
	n := s.Len()
	if psi <= 0 || psi > 1 {
		return nil, invalidf("core: threshold ψ=%v outside (0,1]", psi)
	}
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if maxPeriod < 1 || maxPeriod >= n {
		return nil, invalidf("core: maxPeriod %d outside [1,%d)", maxPeriod, n)
	}
	ses := &session{
		s:          s,
		n:          n,
		sigma:      s.Alphabet().Size(),
		opt:        Options{Threshold: psi, MinPeriod: 1, MaxPeriod: maxPeriod},
		eng:        EngineFFT,
		plans:      cfg.plans,
		met:        obs.Exec(),
		fftWorkers: cfg.fftWorkers,
	}
	ses.finishSession(cfg)
	return ses, nil
}

// newFileSession assembles a session whose series lives on disk: the series
// bounds are unknown until the source stage parses the file header, so only
// the threshold is validated here and the stage validates maxPeriod (0 is
// resolved to n/2 once n is known).
func newFileSession(psi float64, maxPeriod int, cfg sessionConfig) *session {
	ses := &session{
		opt:   Options{Threshold: psi, MinPeriod: 1, MaxPeriod: maxPeriod},
		eng:   EngineFFT,
		plans: cfg.plans,
		met:   obs.Exec(),
	}
	ses.finishSession(cfg)
	return ses
}

func (ses *session) finishSession(cfg sessionConfig) {
	if ses.plans == nil {
		ses.plans = fft.SharedPlans()
	}
	ses.sched = exec.New(exec.Config{
		Workers:  cfg.workers,
		Cancel:   cfg.cancel,
		MaxSteps: cfg.maxSteps,
		Metrics:  ses.met,
	})
}

// stage is one step of the mining pipeline. The four roles — detect (build
// the engine's precomputed inputs), sweep (the sound aggregate prune over
// candidate periods), resolve (exact per-phase confidences for survivors),
// and enumerate (Definition-3 pattern DFS) — each run under the session's
// scheduler; a stage must keep all of its state on the session or its own
// value, never in package-level variables (opvet's stagestate rule enforces
// this).
type stage interface {
	name() string
	run(*session) error
}

// runPipeline drives the stages in order, observing per-stage durations and
// polling cancellation at every stage boundary.
func (ses *session) runPipeline(stages ...stage) error {
	for _, st := range stages {
		if err := ses.sched.Poll(); err != nil {
			return err
		}
		start := time.Now()
		err := st.run(ses)
		if ses.met != nil {
			ses.met.ObserveStage(st.name(), time.Since(start))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// mine runs the full four-stage pipeline and returns the result.
func (ses *session) mine() (*Result, error) {
	err := ses.runPipeline(memoryDetect{}, sweepPeriods{}, resolvePhases{}, enumeratePatterns{})
	if err != nil {
		return nil, err
	}
	return ses.res, nil
}

// candidates runs the detection-only pipeline (the paper's Fig. 5 phase):
// the given source stage fills the lag counts, and the candidate sweep
// aggregates them into the surviving periods.
func (ses *session) candidates(src stage) ([]CandidatePeriod, error) {
	if err := ses.runPipeline(src, sweepCandidates{}); err != nil {
		return nil, err
	}
	return ses.cands, nil
}

// newWorkerDetector builds a per-worker detector over the session's shared,
// read-only inputs; each shard carries its own match/count scratch.
func (ses *session) newWorkerDetector() *detector {
	return &detector{
		s:        ses.s,
		eng:      ses.eng,
		minPairs: ses.opt.MinPairs,
		symLo:    ses.symLo,
		symHi:    ses.symHi,
		ind:      ses.ind,
		lag:      ses.lag,
	}
}

// memoryDetect is the detect stage over an in-memory series: one pass builds
// the mapped indicator vectors (the pruned engines' input), and for the FFT
// engine the batched per-symbol autocorrelation — pair-packed planned FFTs
// sharded over the scheduler — yields every lag's match counts.
type memoryDetect struct {
	lagOnly bool // detection-only path: just the aggregate counts
}

func (memoryDetect) name() string { return "detect" }

func (st memoryDetect) run(ses *session) error {
	if !st.lagOnly && (ses.eng == EngineBitset || ses.eng == EngineFFT) {
		ses.ind = conv.NewIndicators(ses.s)
	}
	if ses.eng == EngineFFT {
		lag, err := conv.LagMatchCountsExec(ses.s, ses.sched, ses.fftWorkers, ses.plans)
		if err != nil {
			return err
		}
		ses.lag = lag
	}
	return nil
}

// sweepPeriods is the sweep stage of a full mine: for every candidate period
// it applies the sound aggregate prune — max_l conf(k,p,l) ≤ r_k(p)/minPairs,
// with r_k(p) from the FFT lag counts or a bitset popcount — and records the
// symbols that could still reach the threshold. The naive engine has no
// aggregate counts to prune with, so its sweep is empty and resolve scans
// every period directly.
type sweepPeriods struct{}

func (sweepPeriods) name() string { return "sweep" }

func (sweepPeriods) run(ses *session) error {
	if ses.eng == EngineNaive {
		return nil
	}
	lo := ses.opt.MinPeriod
	span := ses.opt.MaxPeriod - lo + 1
	ses.surv = make([][]int32, span)
	return ses.sched.Run(span, 0, func(w int) func(i int) error {
		det := ses.newWorkerDetector()
		return func(i int) error {
			p := lo + i
			if p < 1 || p >= ses.n || pairsAt(ses.n, p, 0) < ses.opt.MinPairs {
				return nil
			}
			if err := ses.sched.Tick(int64(ses.sigma)); err != nil {
				return err
			}
			ses.surv[i] = det.survivors(p, ses.opt.Threshold, nil)
			return nil
		}
	})
}

// resolvePhases is the resolve stage: for each period's surviving symbols it
// computes the exact per-phase counts F2(s_k, π_{p,l}) and emits the
// Definition-1 periodicities, sharded per period with per-worker scratch.
// Results land in per-period slots, so the assembled Result is identical at
// any worker count.
type resolvePhases struct{}

func (resolvePhases) name() string { return "resolve" }

// collectPerPeriod is the shared heart of the resolve stage: for each
// candidate period's surviving symbols it computes the exact per-phase counts
// F2(s_k, π_{p,l}), sharded per period over the scheduler with per-worker
// scratch. Slot i holds period MinPeriod+i's periodicities — the per-period
// slot seam that makes results byte-identical at any worker count, and that
// the distributed tier ships across processes.
func collectPerPeriod(ses *session) ([][]SymbolPeriodicity, error) {
	lo := ses.opt.MinPeriod
	span := ses.opt.MaxPeriod - lo + 1
	perPeriod := make([][]SymbolPeriodicity, span)
	err := ses.sched.Run(span, 0, func(w int) func(i int) error {
		det := ses.newWorkerDetector()
		return func(i int) error {
			p := lo + i
			emit := func(sp SymbolPeriodicity) { perPeriod[i] = append(perPeriod[i], sp) }
			if ses.eng == EngineNaive {
				if p < 1 || p >= ses.n || pairsAt(ses.n, p, 0) < ses.opt.MinPairs {
					return nil
				}
				if err := ses.sched.Tick(int64(ses.n)); err != nil {
					return err
				}
				det.detectNaive(p, ses.opt.Threshold, emit)
				return nil
			}
			for _, k := range ses.surv[i] {
				if err := ses.sched.Tick(1); err != nil {
					return err
				}
				det.resolveSymbol(int(k), p, ses.opt.Threshold, emit)
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return perPeriod, nil
}

func (resolvePhases) run(ses *session) error {
	perPeriod, err := collectPerPeriod(ses)
	if err != nil {
		return err
	}
	lo := ses.opt.MinPeriod
	res := &Result{N: ses.n, Sigma: ses.sigma, Threshold: ses.opt.Threshold}
	periodSet := map[int]bool{}
	for i, list := range perPeriod {
		if len(list) == 0 {
			continue
		}
		res.Periodicities = append(res.Periodicities, list...)
		periodSet[lo+i] = true
	}
	finishResult(res, periodSet)
	ses.res = res
	ses.surv = nil // consumed
	return nil
}

// enumeratePatterns is the enumerate stage: the Apriori DFS over
// Definition-3 candidate patterns, with cancellation and step accounting
// delegated to the scheduler.
type enumeratePatterns struct{}

func (enumeratePatterns) name() string { return "enumerate" }

func (enumeratePatterns) run(ses *session) error {
	if ses.opt.MaxPatternPeriod < 0 {
		return nil
	}
	det := ses.newWorkerDetector()
	pats, trunc, err := minePatterns(det, ses.res.Periodicities, ses.opt, ses.sched)
	if err != nil {
		return err
	}
	ses.res.Patterns, ses.res.PatternsTruncated = pats, trunc
	return nil
}

// sweepCandidates is the sweep stage of the detection-only path: each period
// keeps its best symbol under the aggregate test r_k(p) ≥ ψ·minPairs(p),
// written into per-period slots and compacted in period order.
type sweepCandidates struct{}

func (sweepCandidates) name() string { return "sweep" }

func (sweepCandidates) run(ses *session) error {
	maxPeriod := ses.opt.MaxPeriod
	psi := ses.opt.Threshold
	slots := make([]CandidatePeriod, maxPeriod+1)
	err := ses.sched.Run(maxPeriod, 0, func(w int) func(i int) error {
		return func(i int) error {
			p := i + 1
			if err := ses.sched.Tick(int64(ses.sigma)); err != nil {
				return err
			}
			if pairsAt(ses.n, p, 0) < 1 {
				return nil
			}
			minPairs := pairsAt(ses.n, p, p-1)
			if minPairs < 1 {
				minPairs = 1
			}
			best, bestCount := -1, int64(0)
			for k := range ses.lag {
				r := ses.lag[k][p]
				if float64(r) >= psi*float64(minPairs) && r > bestCount {
					best, bestCount = k, r
				}
			}
			if best >= 0 {
				slots[p] = CandidatePeriod{Period: p, BestSymbol: best, MatchCount: bestCount}
			}
			return nil
		}
	})
	if err != nil {
		return err
	}
	var out []CandidatePeriod
	for p := 1; p <= maxPeriod; p++ {
		if slots[p].Period != 0 {
			out = append(out, slots[p])
		}
	}
	ses.cands = out
	return nil
}
