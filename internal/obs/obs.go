// Package obs provides the stdlib-only observability layer of the serving
// path: atomic counters and gauges, fixed-bucket latency histograms, and a
// registry that renders everything in the Prometheus plaintext exposition
// format. No third-party client library is required — the types here are a
// few atomics wide and safe for concurrent use on the hot path.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defaultBuckets are the histogram upper bounds in seconds, spanning the
// sub-millisecond decode path through multi-second mines.
var defaultBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket duration histogram, safe for concurrent use.
// Observations land in the first bucket whose upper bound (in seconds) is
// not exceeded; an implicit +Inf bucket catches the rest. The bounds are
// immutable after construction, so observation is a bucket search plus three
// atomic adds — no locks on the hot path.
type Histogram struct {
	bounds   []float64 // ascending upper bounds, seconds
	counts   []atomic.Int64
	sumNanos atomic.Int64
	count    atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds in
// seconds; with no bounds the default request-latency buckets are used.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = defaultBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration. The sum is written before the bucket count:
// renderBuckets reads the buckets first and the sum last, so every
// observation visible in a rendered bucket has its duration visible in the
// rendered sum (the scrape never shows a bucketed observation with a missing
// sum contribution).
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs)
	h.sumNanos.Add(int64(d))
	h.counts[i].Add(1)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// renderBuckets writes the cumulative bucket counts, sum, and count under
// the given metric name and label set (labels may be empty).
//
// Observations may land concurrently with a scrape, so the render works from
// one coherent snapshot: every bucket is loaded exactly once and _count is
// the sum of those loads, which guarantees the Prometheus invariants — the
// cumulative series is non-decreasing and the +Inf bucket equals _count —
// no matter how many observations race the scrape. The sum is loaded after
// the buckets (and Observe writes it before them), so the rendered _sum
// covers at least every observation the rendered _count includes.
func (h *Histogram) renderBuckets(b *strings.Builder, name, labels string) {
	sep := ","
	if labels == "" {
		sep = ""
	}
	snap := make([]int64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	sum := time.Duration(h.sumNanos.Load())
	var cum int64
	for i, ub := range h.bounds {
		cum += snap[i]
		b.WriteString(fmt.Sprintf("%s_bucket{%s%sle=%q} %d\n", name, labels, sep,
			strconv.FormatFloat(ub, 'g', -1, 64), cum))
	}
	cum += snap[len(h.bounds)]
	b.WriteString(fmt.Sprintf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum))
	if labels == "" {
		b.WriteString(fmt.Sprintf("%s_sum %s\n", name, formatSeconds(sum)))
		b.WriteString(fmt.Sprintf("%s_count %d\n", name, cum))
		return
	}
	b.WriteString(fmt.Sprintf("%s_sum{%s} %s\n", name, labels, formatSeconds(sum)))
	b.WriteString(fmt.Sprintf("%s_count{%s} %d\n", name, labels, cum))
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// RecoveryMetrics counts the durability and recovery events of the embedded
// store and the external FFT — summaries rebuilt from raw segments, files
// quarantined by the torn-tail recovery pass, checksum failures observed,
// stray commit temp files swept, and repair actions applied. The counters
// are process-wide (recovery happens at Open time, often before any registry
// exists) and are rendered by every Registry.
type RecoveryMetrics struct {
	SummariesRebuilt  Counter
	FilesQuarantined  Counter
	ChecksumFailures  Counter
	StrayTempsRemoved Counter
	RepairActions     Counter
}

var recoveryMetrics RecoveryMetrics

// Recovery returns the process-wide durability/recovery counters.
func Recovery() *RecoveryMetrics { return &recoveryMetrics }

// renderRecovery writes the recovery counters in exposition format.
func (m *RecoveryMetrics) renderRecovery(b *strings.Builder) {
	b.WriteString("# TYPE periodica_store_recovery_events_total counter\n")
	for _, ev := range []struct {
		label string
		c     *Counter
	}{
		{"summary_rebuilt", &m.SummariesRebuilt},
		{"file_quarantined", &m.FilesQuarantined},
		{"checksum_failure", &m.ChecksumFailures},
		{"stray_temp_removed", &m.StrayTempsRemoved},
		{"repair_action", &m.RepairActions},
	} {
		b.WriteString(fmt.Sprintf("periodica_store_recovery_events_total{event=%q} %d\n",
			ev.label, ev.c.Value()))
	}
}

// ExecMetrics instruments the staged execution pipeline (internal/exec and
// the mining session built on it): one duration histogram per pipeline stage
// and a gauge of work items queued but not yet claimed by a scheduler
// worker. The metrics are process-wide (sessions are built below the serving
// layer, often with no registry in sight) and are rendered by every
// Registry.
type ExecMetrics struct {
	mu     sync.Mutex
	stages map[string]*Histogram
	queue  Gauge
}

var execMetrics ExecMetrics //opvet:racesafe counters and gauges are atomics; the histogram map is mutex-guarded

// Exec returns the process-wide pipeline metrics.
func Exec() *ExecMetrics { return &execMetrics }

// ObserveStage records one run of the named pipeline stage.
func (m *ExecMetrics) ObserveStage(stage string, d time.Duration) {
	m.mu.Lock()
	if m.stages == nil {
		m.stages = map[string]*Histogram{}
	}
	h := m.stages[stage]
	if h == nil {
		h = NewHistogram()
		m.stages[stage] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// StageCount returns the number of recorded runs of the named stage.
func (m *ExecMetrics) StageCount(stage string) int64 {
	m.mu.Lock()
	h := m.stages[stage]
	m.mu.Unlock()
	if h == nil {
		return 0
	}
	return h.Count()
}

// QueueDepth returns the gauge of scheduler work items that are queued but
// not yet claimed by a worker.
func (m *ExecMetrics) QueueDepth() *Gauge { return &m.queue }

// renderExec writes the pipeline metrics in exposition format. Both metric
// families render even before any stage has run, so scrapes always see a
// stable schema.
func (m *ExecMetrics) renderExec(b *strings.Builder) {
	b.WriteString("# TYPE periodica_exec_queue_depth gauge\n")
	b.WriteString(fmt.Sprintf("periodica_exec_queue_depth %d\n", m.queue.Value()))
	b.WriteString("# TYPE periodica_stage_duration_seconds histogram\n")
	m.mu.Lock()
	names := make([]string, 0, len(m.stages))
	for name := range m.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	hs := make([]*Histogram, 0, len(names))
	for _, name := range names {
		hs = append(hs, m.stages[name])
	}
	m.mu.Unlock()
	for i, name := range names {
		hs[i].renderBuckets(b, "periodica_stage_duration_seconds", fmt.Sprintf("stage=%q", name))
	}
}

// FFTMetrics counts kernel executions on the convolution hot path — radix-2/4
// transforms, four-step transforms, real-input kernel entries, batched
// (shared-setup) passes — and records autotune calibration runs and the
// duration of the most recent one. The counters are process-wide (the FFT
// layer sits far below any registry) and are rendered by every Registry, so
// the /metrics schema is stable whether or not a kernel has run.
type FFTMetrics struct {
	KernelRadix2   Counter
	KernelFourStep Counter
	KernelReal     Counter
	KernelBatch    Counter
	AutotuneRuns   Counter
	autotuneNanos  atomic.Int64 // duration of the most recent calibration
}

var fftMetrics FFTMetrics

// FFT returns the process-wide FFT kernel metrics.
func FFT() *FFTMetrics { return &fftMetrics }

// ObserveAutotune records one completed calibration sweep.
func (m *FFTMetrics) ObserveAutotune(d time.Duration) {
	m.AutotuneRuns.Inc()
	m.autotuneNanos.Store(int64(d))
}

// AutotuneDuration returns the duration of the most recent calibration sweep
// (zero if none has run).
func (m *FFTMetrics) AutotuneDuration() time.Duration {
	return time.Duration(m.autotuneNanos.Load())
}

// renderFFT writes the FFT kernel metrics in exposition format. Every label
// renders even at zero so scrapes always see the full kernel set.
func (m *FFTMetrics) renderFFT(b *strings.Builder) {
	b.WriteString("# TYPE periodica_fft_kernel_total counter\n")
	for _, k := range []struct {
		label string
		c     *Counter
	}{
		{"radix2", &m.KernelRadix2},
		{"fourstep", &m.KernelFourStep},
		{"real", &m.KernelReal},
		{"batch", &m.KernelBatch},
	} {
		b.WriteString(fmt.Sprintf("periodica_fft_kernel_total{kernel=%q} %d\n",
			k.label, k.c.Value()))
	}
	b.WriteString("# TYPE periodica_fft_autotune_runs_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_fft_autotune_runs_total %d\n", m.AutotuneRuns.Value()))
	b.WriteString("# TYPE periodica_fft_autotune_duration_seconds gauge\n")
	b.WriteString(fmt.Sprintf("periodica_fft_autotune_duration_seconds %s\n",
		formatSeconds(m.AutotuneDuration())))
}

// DistMetrics instruments the distributed sharded mining tier: how many
// shards each worker completed, how often shards were retried after a worker
// failure, how often a straggling shard was hedged to a second worker, how
// often the coordinator fell back to computing a shard locally, and the
// round-trip latency of completed remote shards. The metrics are
// process-wide (the coordinator runs below the serving layer) and are
// rendered by every Registry, so the /metrics schema is stable whether or
// not a distributed mine has run.
type DistMetrics struct {
	mu      sync.Mutex
	workers map[string]*Counter
	latency *Histogram

	Retries        Counter
	Hedges         Counter
	LocalFallbacks Counter
	// IntegrityFailures counts shard responses that arrived but could not be
	// trusted: undecodable bodies, checksum mismatches, wrong echoes. Each is
	// retried, so a nonzero rate with zero failed mines means the integrity
	// layer is absorbing corruption, not that data was lost.
	IntegrityFailures Counter
	// VerifyMismatches counts sampled double-dispatch verifications whose two
	// workers returned different bytes for the same shard. Any nonzero value
	// is an alarm: either a worker is computing wrongly or corruption got
	// past the checksum.
	VerifyMismatches Counter
	// BreakerOpens counts circuit-breaker transitions into the open state.
	BreakerOpens Counter
	// ResumedMines counts mines that skipped at least one journaled shard on
	// startup; ResumedShards counts the shards so skipped.
	ResumedMines  Counter
	ResumedShards Counter
}

var distMetrics DistMetrics //opvet:racesafe counters are atomics; the worker map and histogram are guarded by mu

// Dist returns the process-wide distributed-tier metrics.
func Dist() *DistMetrics { return &distMetrics }

// WorkerShards returns (creating on first use) the completed-shard counter of
// the named worker.
func (m *DistMetrics) WorkerShards(worker string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.workers == nil {
		m.workers = map[string]*Counter{}
	}
	c := m.workers[worker]
	if c == nil {
		c = &Counter{}
		m.workers[worker] = c
	}
	return c
}

// ShardLatency returns the round-trip histogram of completed remote shards.
func (m *DistMetrics) ShardLatency() *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latency == nil {
		m.latency = NewHistogram()
	}
	return m.latency
}

// ObserveShard records one shard completed by the named worker.
func (m *DistMetrics) ObserveShard(worker string, d time.Duration) {
	m.WorkerShards(worker).Inc()
	m.ShardLatency().Observe(d)
}

// renderDist writes the distributed-tier metrics in exposition format. Every
// family renders even before a coordinator has run, so scrapes always see a
// stable schema.
func (m *DistMetrics) renderDist(b *strings.Builder) {
	m.mu.Lock()
	names := make([]string, 0, len(m.workers))
	for name := range m.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	cs := make([]*Counter, 0, len(names))
	for _, name := range names {
		cs = append(cs, m.workers[name])
	}
	m.mu.Unlock()
	b.WriteString("# TYPE periodica_dist_shards_total counter\n")
	for i, name := range names {
		b.WriteString(fmt.Sprintf("periodica_dist_shards_total{worker=%q} %d\n",
			name, cs[i].Value()))
	}
	b.WriteString("# TYPE periodica_dist_retries_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_retries_total %d\n", m.Retries.Value()))
	b.WriteString("# TYPE periodica_dist_hedges_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_hedges_total %d\n", m.Hedges.Value()))
	b.WriteString("# TYPE periodica_dist_local_fallbacks_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_local_fallbacks_total %d\n", m.LocalFallbacks.Value()))
	b.WriteString("# TYPE periodica_dist_integrity_failures_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_integrity_failures_total %d\n", m.IntegrityFailures.Value()))
	b.WriteString("# TYPE periodica_dist_verify_mismatches_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_verify_mismatches_total %d\n", m.VerifyMismatches.Value()))
	b.WriteString("# TYPE periodica_dist_breaker_opens_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_breaker_opens_total %d\n", m.BreakerOpens.Value()))
	b.WriteString("# TYPE periodica_dist_resumed_mines_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_resumed_mines_total %d\n", m.ResumedMines.Value()))
	b.WriteString("# TYPE periodica_dist_resumed_shards_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_dist_resumed_shards_total %d\n", m.ResumedShards.Value()))
	b.WriteString("# TYPE periodica_dist_shard_duration_seconds histogram\n")
	m.ShardLatency().renderBuckets(b, "periodica_dist_shard_duration_seconds", "")
}

// QueryMetrics count pattern-query compilations process-wide: every layer
// that turns a query string into a query.Spec — httpapi, the CLIs, the
// distributed workers — funnels through one cached compiler, so these three
// counters describe the whole process's query traffic.
type QueryMetrics struct {
	// Compiles counts cache-missing compilations (lex → parse → check →
	// spec), successful or not.
	Compiles Counter
	// CompileErrors counts compilations rejected by the parser or
	// typechecker.
	CompileErrors Counter
	// CacheHits counts compilations answered from the bounded spec cache —
	// repeated query strings (standing queries, retried requests, shard
	// fan-out) skip the front end entirely.
	CacheHits Counter
}

var queryMetrics QueryMetrics //opvet:racesafe counters are atomics

// Query returns the process-wide query-compiler metrics.
func Query() *QueryMetrics { return &queryMetrics }

// renderQuery writes the query-compiler metrics in exposition format.
func (m *QueryMetrics) renderQuery(b *strings.Builder) {
	b.WriteString("# TYPE periodica_query_compiles_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_query_compiles_total %d\n", m.Compiles.Value()))
	b.WriteString("# TYPE periodica_query_compile_errors_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_query_compile_errors_total %d\n", m.CompileErrors.Value()))
	b.WriteString("# TYPE periodica_query_cache_hits_total counter\n")
	b.WriteString(fmt.Sprintf("periodica_query_cache_hits_total %d\n", m.CacheHits.Value()))
}

// statusClasses label the response-status families tracked per endpoint.
var statusClasses = [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// Endpoint aggregates the serving metrics of one route: request counts by
// status class, a request-latency histogram, and a mine-duration histogram
// (observed only around the actual mining call, so it excludes decode and
// encode time).
type Endpoint struct {
	name     string
	classes  [len(statusClasses)]Counter
	requests *Histogram
	mine     *Histogram
}

// ObserveRequest records one completed request with its response status.
func (e *Endpoint) ObserveRequest(status int, d time.Duration) {
	class := status/100 - 1
	if class < 0 || class >= len(statusClasses) {
		class = 4 // treat out-of-range codes as server errors
	}
	e.classes[class].Inc()
	e.requests.Observe(d)
}

// ObserveMine records the duration of one mining call.
func (e *Endpoint) ObserveMine(d time.Duration) { e.mine.Observe(d) }

// Requests returns the request count in the given status class ("2xx", …).
func (e *Endpoint) Requests(class string) int64 {
	for i, c := range statusClasses {
		if c == class {
			return e.classes[i].Value()
		}
	}
	return 0
}

// MineCount returns the number of observed mining calls.
func (e *Endpoint) MineCount() int64 { return e.mine.Count() }

// Registry holds the metrics of one server instance. The zero value is not
// usable; call NewRegistry. Endpoint lookup takes a mutex, so handlers
// serving hot routes may capture their *Endpoint once up front — though the
// lock is uncontended enough that per-request lookup is also fine.
type Registry struct {
	mu        sync.Mutex
	endpoints map[string]*Endpoint
	inFlight  Gauge
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{endpoints: make(map[string]*Endpoint)}
}

// Endpoint returns (creating on first use) the metrics of the named route.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.endpoints[name]
	if !ok {
		e = &Endpoint{name: name, requests: NewHistogram(), mine: NewHistogram()}
		r.endpoints[name] = e
	}
	return e
}

// InFlight returns the gauge of requests currently being served.
func (r *Registry) InFlight() *Gauge { return &r.inFlight }

// MineDurations aggregates the mine-duration histograms of every endpoint:
// the number of observed mining calls and their total duration. The serving
// layer derives its Retry-After estimate — roughly how long until an
// admission slot frees — from this recent-load signal.
func (r *Registry) MineDurations() (count int64, sum time.Duration) {
	r.mu.Lock()
	eps := make([]*Endpoint, 0, len(r.endpoints))
	for _, e := range r.endpoints {
		eps = append(eps, e)
	}
	r.mu.Unlock()
	for _, e := range eps {
		count += e.mine.Count()
		sum += e.mine.Sum()
	}
	return count, sum
}

// RenderText renders every metric in the Prometheus plaintext exposition
// format, endpoints in sorted order.
func (r *Registry) RenderText() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	eps := make([]*Endpoint, 0, len(names))
	for _, name := range names {
		eps = append(eps, r.endpoints[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	b.WriteString("# TYPE periodica_http_in_flight gauge\n")
	b.WriteString(fmt.Sprintf("periodica_http_in_flight %d\n", r.inFlight.Value()))
	b.WriteString("# TYPE periodica_http_requests_total counter\n")
	for _, e := range eps {
		for i, class := range statusClasses {
			if n := e.classes[i].Value(); n > 0 {
				b.WriteString(fmt.Sprintf("periodica_http_requests_total{endpoint=%q,class=%q} %d\n",
					e.name, class, n))
			}
		}
	}
	b.WriteString("# TYPE periodica_http_request_duration_seconds histogram\n")
	for _, e := range eps {
		e.requests.renderBuckets(&b, "periodica_http_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", e.name))
	}
	b.WriteString("# TYPE periodica_mine_duration_seconds histogram\n")
	for _, e := range eps {
		if e.mine.Count() > 0 {
			e.mine.renderBuckets(&b, "periodica_mine_duration_seconds",
				fmt.Sprintf("endpoint=%q", e.name))
		}
	}
	recoveryMetrics.renderRecovery(&b)
	execMetrics.renderExec(&b)
	fftMetrics.renderFFT(&b)
	distMetrics.renderDist(&b)
	queryMetrics.renderQuery(&b)
	return b.String()
}

// Handler serves the registry as plaintext; method gating is the caller's
// concern (the httpapi server restricts it to GET/HEAD).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		text := r.RenderText()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, text)
	})
}
