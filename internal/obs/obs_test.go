package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge = %d, want 42", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	h.Observe(5 * time.Millisecond)   // ≤ 0.01
	h.Observe(50 * time.Millisecond)  // ≤ 0.1
	h.Observe(500 * time.Millisecond) // ≤ 1
	h.Observe(5 * time.Second)        // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	wantCounts := []int64{1, 1, 1, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	var b strings.Builder
	h.renderBuckets(&b, "m", `endpoint="/x"`)
	text := b.String()
	for _, line := range []string{
		`m_bucket{endpoint="/x",le="0.01"} 1`,
		`m_bucket{endpoint="/x",le="0.1"} 2`,
		`m_bucket{endpoint="/x",le="1"} 3`,
		`m_bucket{endpoint="/x",le="+Inf"} 4`,
		`m_count{endpoint="/x"} 4`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("rendering missing %q:\n%s", line, text)
		}
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := NewHistogram(0.01, 0.1)
	h.Observe(10 * time.Millisecond) // exactly the first upper bound
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation in bucket 0 = %d, want 1", got)
	}
}

func TestEndpointStatusClasses(t *testing.T) {
	r := NewRegistry()
	e := r.Endpoint("/v1/mine")
	e.ObserveRequest(200, time.Millisecond)
	e.ObserveRequest(204, time.Millisecond)
	e.ObserveRequest(400, time.Millisecond)
	e.ObserveRequest(499, time.Millisecond)
	e.ObserveRequest(504, time.Millisecond)
	e.ObserveRequest(777, time.Millisecond) // out of range → 5xx
	if got := e.Requests("2xx"); got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := e.Requests("4xx"); got != 2 {
		t.Errorf("4xx = %d, want 2", got)
	}
	if got := e.Requests("5xx"); got != 2 {
		t.Errorf("5xx = %d, want 2", got)
	}
}

func TestRegistryRenderText(t *testing.T) {
	r := NewRegistry()
	r.InFlight().Inc()
	e := r.Endpoint("/v1/mine")
	e.ObserveRequest(200, 3*time.Millisecond)
	e.ObserveMine(2 * time.Millisecond)
	r.Endpoint("/healthz").ObserveRequest(200, time.Microsecond)

	text := r.RenderText()
	for _, line := range []string{
		"periodica_http_in_flight 1",
		`periodica_http_requests_total{endpoint="/healthz",class="2xx"} 1`,
		`periodica_http_requests_total{endpoint="/v1/mine",class="2xx"} 1`,
		`periodica_http_request_duration_seconds_count{endpoint="/v1/mine"} 1`,
		`periodica_mine_duration_seconds_count{endpoint="/v1/mine"} 1`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("render missing %q:\n%s", line, text)
		}
	}
	// /healthz never mined, so it must not emit a mine histogram.
	if strings.Contains(text, `periodica_mine_duration_seconds_count{endpoint="/healthz"}`) {
		t.Error("healthz should have no mine histogram")
	}
	// Endpoints render in sorted order.
	if strings.Index(text, `endpoint="/healthz"`) > strings.Index(text, `endpoint="/v1/mine"`) {
		t.Error("endpoints not sorted")
	}
}

// TestRenderFFTKernelMetrics: the FFT kernel counters and the autotune
// calibration gauge render from every registry with the full label set even
// at zero, so scrape schemas never depend on which kernels have run.
func TestRenderFFTKernelMetrics(t *testing.T) {
	text := NewRegistry().RenderText()
	for _, line := range []string{
		"# TYPE periodica_fft_kernel_total counter",
		`periodica_fft_kernel_total{kernel="radix2"}`,
		`periodica_fft_kernel_total{kernel="fourstep"}`,
		`periodica_fft_kernel_total{kernel="real"}`,
		`periodica_fft_kernel_total{kernel="batch"}`,
		"# TYPE periodica_fft_autotune_runs_total counter",
		"# TYPE periodica_fft_autotune_duration_seconds gauge",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("render missing %q:\n%s", line, text)
		}
	}

	before := FFT().KernelReal.Value()
	FFT().KernelReal.Inc()
	want := fmt.Sprintf("periodica_fft_kernel_total{kernel=\"real\"} %d", before+1)
	if text := NewRegistry().RenderText(); !strings.Contains(text, want) {
		t.Errorf("render missing %q after increment", want)
	}

	FFT().ObserveAutotune(250 * time.Millisecond)
	if FFT().AutotuneDuration() != 250*time.Millisecond {
		t.Errorf("AutotuneDuration = %v, want 250ms", FFT().AutotuneDuration())
	}
	if text := NewRegistry().RenderText(); !strings.Contains(text, "periodica_fft_autotune_duration_seconds 0.25") {
		t.Errorf("render missing autotune duration:\n%s", text)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Endpoint("/v1/mine").ObserveRequest(200, time.Millisecond)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "periodica_http_requests_total") {
		t.Fatalf("body missing requests_total:\n%s", rec.Body.String())
	}
}

// TestConcurrentObservation exercises the atomics under the race detector.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.InFlight().Inc()
				e := r.Endpoint("/v1/mine")
				e.ObserveRequest(200, time.Duration(i)*time.Microsecond)
				e.ObserveMine(time.Duration(i) * time.Microsecond)
				r.InFlight().Dec()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.RenderText()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Endpoint("/v1/mine").Requests("2xx"); got != 8000 {
		t.Fatalf("2xx = %d, want 8000", got)
	}
	if got := r.InFlight().Value(); got != 0 {
		t.Fatalf("in-flight = %d, want 0", got)
	}
}

func TestRecoveryMetricsRender(t *testing.T) {
	before := Recovery().SummariesRebuilt.Value()
	Recovery().SummariesRebuilt.Inc()
	Recovery().FilesQuarantined.Inc()

	text := NewRegistry().RenderText()
	want := fmt.Sprintf(`periodica_store_recovery_events_total{event="summary_rebuilt"} %d`, before+1)
	if !strings.Contains(text, want) {
		t.Errorf("render missing %q:\n%s", want, text)
	}
	// Every event label renders even at zero, so dashboards can rate() them
	// from process start.
	for _, label := range []string{"file_quarantined", "checksum_failure", "stray_temp_removed", "repair_action"} {
		if !strings.Contains(text, `event="`+label+`"`) {
			t.Errorf("render missing recovery event %q:\n%s", label, text)
		}
	}
}

// TestHistogramScrapeCoherence hammers Observe from several goroutines while
// scraping, and checks every scrape against the Prometheus invariants: the
// cumulative bucket series is non-decreasing, the +Inf bucket equals _count,
// and the rendered _sum covers at least the observations _count includes
// (every observation here is exactly 1ms, so sum ≥ count × 1ms).
func TestHistogramScrapeCoherence(t *testing.T) {
	h := NewHistogram(0.0005, 0.002, 0.01)
	const (
		writers = 4
		perW    = 5000
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perW; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	close(start)
	parse := func(text string) (buckets []int64, count int64, sum float64) {
		for _, line := range strings.Split(text, "\n") {
			switch {
			case strings.HasPrefix(line, "m_bucket"):
				var v int64
				if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				buckets = append(buckets, v)
			case strings.HasPrefix(line, "m_count"):
				if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &count); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
			case strings.HasPrefix(line, "m_sum"):
				if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &sum); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
			}
		}
		return buckets, count, sum
	}
	for i := 0; i < 200; i++ {
		var b strings.Builder
		h.renderBuckets(&b, "m", "")
		buckets, count, sum := parse(b.String())
		if len(buckets) != 4 {
			t.Fatalf("scrape %d: %d buckets, want 4", i, len(buckets))
		}
		for j := 1; j < len(buckets); j++ {
			if buckets[j] < buckets[j-1] {
				t.Fatalf("scrape %d: cumulative buckets decrease: %v", i, buckets)
			}
		}
		if buckets[len(buckets)-1] != count {
			t.Fatalf("scrape %d: +Inf bucket %d != _count %d", i, buckets[len(buckets)-1], count)
		}
		if sum < float64(count)*0.001-1e-9 {
			t.Fatalf("scrape %d: _sum %g does not cover _count %d × 1ms", i, sum, count)
		}
	}
	wg.Wait()
	var b strings.Builder
	h.renderBuckets(&b, "m", "")
	_, count, _ := parse(b.String())
	if want := int64(writers * perW); count != want {
		t.Fatalf("final _count = %d, want %d", count, want)
	}
}

// TestDistMetricsRender: the distributed-tier families render from every
// registry even before a coordinator has run, and per-worker shard counters
// appear once a shard completes.
func TestDistMetricsRender(t *testing.T) {
	text := NewRegistry().RenderText()
	for _, line := range []string{
		"# TYPE periodica_dist_shards_total counter",
		"# TYPE periodica_dist_retries_total counter",
		"# TYPE periodica_dist_hedges_total counter",
		"# TYPE periodica_dist_local_fallbacks_total counter",
		"# TYPE periodica_dist_integrity_failures_total counter",
		"# TYPE periodica_dist_verify_mismatches_total counter",
		"# TYPE periodica_dist_breaker_opens_total counter",
		"# TYPE periodica_dist_resumed_mines_total counter",
		"# TYPE periodica_dist_resumed_shards_total counter",
		"# TYPE periodica_dist_shard_duration_seconds histogram",
		"periodica_dist_shard_duration_seconds_count",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("render missing %q:\n%s", line, text)
		}
	}

	before := Dist().WorkerShards("http://w1:8723").Value()
	retriesBefore := Dist().Retries.Value()
	Dist().ObserveShard("http://w1:8723", 5*time.Millisecond)
	Dist().Retries.Inc()
	text = NewRegistry().RenderText()
	want := fmt.Sprintf(`periodica_dist_shards_total{worker="http://w1:8723"} %d`, before+1)
	if !strings.Contains(text, want) {
		t.Errorf("render missing %q:\n%s", want, text)
	}
	want = fmt.Sprintf("periodica_dist_retries_total %d", retriesBefore+1)
	if !strings.Contains(text, want) {
		t.Errorf("render missing %q:\n%s", want, text)
	}
}

func TestRegistryMineDurations(t *testing.T) {
	r := NewRegistry()
	if count, sum := r.MineDurations(); count != 0 || sum != 0 {
		t.Fatalf("empty registry MineDurations = (%d, %v), want (0, 0)", count, sum)
	}
	r.Endpoint("/v1/mine").ObserveMine(2 * time.Second)
	r.Endpoint("/v1/candidates").ObserveMine(1 * time.Second)
	count, sum := r.MineDurations()
	if count != 2 || sum != 3*time.Second {
		t.Fatalf("MineDurations = (%d, %v), want (2, 3s)", count, sum)
	}
}
