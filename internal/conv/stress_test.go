package conv

import (
	"math/rand"
	"sync"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/fft"
	"periodica/internal/series"
)

// TestBatchedCountsConcurrentStress hammers the shared plan cache and the
// batched autocorrelation path from many goroutines at once — while another
// goroutine keeps flipping the parallelism threshold — and asserts every
// result is bit-identical to the serial reference. Run under -race this
// exercises the atomic threshold, the mutex-guarded plan cache, and the
// scratch pool's concurrent Get/Put traffic.
func TestBatchedCountsConcurrentStress(t *testing.T) {
	const (
		n     = 3000
		sigma = 7
	)
	rng := rand.New(rand.NewSource(42))
	idx := make([]uint16, n)
	for i := range idx {
		idx[i] = uint16(rng.Intn(sigma))
	}
	s := series.FromIndices(alphabet.Letters(sigma), idx)

	// Serial reference, computed before any threshold games start.
	want := LagMatchCountsBatched(s, 1)

	defer fft.SetParallelThreshold(fft.DefaultParallelThreshold)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// One goroutine keeps moving the threshold so transforms race between
	// the serial and parallel butterfly paths mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		thresholds := []int{256, 1 << 12, fft.DefaultParallelThreshold}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				fft.SetParallelThreshold(thresholds[i%len(thresholds)])
			}
		}
	}()

	// Another keeps the plan cache busy with assorted sizes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{64, 256, 1024, 4096, fft.NextPow2(2 * n)}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				fft.PlanFor(sizes[i%len(sizes)])
			}
		}
	}()

	const (
		hammers = 8
		rounds  = 4
	)
	var mu sync.Mutex
	var failed bool
	var hwg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		hwg.Add(1)
		go func(g int) {
			defer hwg.Done()
			for r := 0; r < rounds; r++ {
				got := LagMatchCountsBatched(s, 1+(g+r)%4)
				for k := range want {
					for p := range want[k] {
						if got[k][p] != want[k][p] {
							mu.Lock()
							if !failed {
								failed = true
								t.Errorf("goroutine %d round %d: counts[%d][%d] = %d, want %d",
									g, r, k, p, got[k][p], want[k][p])
							}
							mu.Unlock()
							return
						}
					}
				}
			}
		}(g)
	}
	hwg.Wait()
	close(stop)
	wg.Wait()
}
