// Package conv implements the paper's mapping scheme (§3.2) and modified
// convolution (§3.1): symbols map to σ-bit binary codes of powers of two, the
// series becomes a binary vector T′ of length σn, and the convolution
// component for period p is the integer whose powers of two identify every
// lag-p symbol match together with its symbol and starting position.
//
// The component values are kept in binary (bit vectors / big.Int) rather than
// as decimal magnitudes: a value c′_p has up to σn bits, and the paper's own
// extraction step consumes exactly its set of powers of two. Three equivalent
// realizations are provided:
//
//   - the literal textbook pipeline (reverse, Σ 2^j x_j y_{i−j}, reverse) over
//     big.Int, used as the O(n²)-per-series fidelity reference;
//   - word-parallel bit operations, the production form: c′_p = T′ AND (T′ >> σp);
//   - per-symbol FFT autocorrelation, giving the aggregate lag-match counts
//     Σ_l F2(s_k, π_{p,l}) for all p in O(σ n log n).
package conv

import (
	"fmt"
	"math/big"
	"runtime"

	"periodica/internal/bitvec"
	"periodica/internal/exec"
	"periodica/internal/fft"
	"periodica/internal/series"
)

// Mapped is a series together with its binary vector T′ under the mapping Φ.
// Bit w of T′ is set iff w = σ(n−1−i)+k and t_i = s_k; this numbering makes
// the paper's power-decoding formulas hold verbatim.
type Mapped struct {
	Series *series.Series
	TPrime *bitvec.Vector
	Sigma  int
	N      int
}

// Map builds T′ for s.
func Map(s *series.Series) *Mapped {
	n, sigma := s.Len(), s.Alphabet().Size()
	t := bitvec.New(sigma * n)
	for i := 0; i < n; i++ {
		k := s.At(i)
		t.Set(sigma*(n-1-i) + k)
	}
	return &Mapped{Series: s, TPrime: t, Sigma: sigma, N: n}
}

// Component returns c′_p as a bit vector of length σn: bit w is set iff the
// series has a lag-p match of symbol k = w mod σ starting at position
// i = n−p−1−⌊w/σ⌋. Equal to T′ AND (T′ >> σp). dst may be nil or a previous
// result to reuse its storage.
//
//opvet:noalloc
func (m *Mapped) Component(p int, dst *bitvec.Vector) *bitvec.Vector {
	if p < 0 || p >= m.N {
		panic(fmt.Sprintf("conv: period %d out of range [0,%d)", p, m.N))
	}
	return m.TPrime.AndShiftRight(m.Sigma*p, dst)
}

// Wp returns the set W_p of powers of two contained in c′_p, ascending.
func (m *Mapped) Wp(p int) []int {
	var out []int
	m.Component(p, nil).ForEach(func(w int) { out = append(out, w) })
	return out
}

// DecodePower inverts the weight encoding for a power w found in c′_p:
// it returns the symbol index k = w mod σ, the match start position
// i = n−p−1−⌊w/σ⌋, and the phase l = i mod p (the paper's position formula).
func DecodePower(w, sigma, n, p int) (k, i, l int) {
	k = w % sigma
	i = n - p - 1 - w/sigma
	l = i % p
	return k, i, l
}

// EncodePower is the inverse of DecodePower: the weight contributed by a
// lag-p match of symbol k starting at position i.
func EncodePower(k, i, sigma, n, p int) int {
	return sigma*(n-p-1-i) + k
}

// Wpk returns W_{p,k}: the powers of c′_p whose symbol is k.
func (m *Mapped) Wpk(p, k int) []int {
	var out []int
	for _, w := range m.Wp(p) {
		if w%m.Sigma == k {
			out = append(out, w)
		}
	}
	return out
}

// Wpkl returns W_{p,k,l}: the powers of c′_p with symbol k and phase l.
// Its cardinality equals F2(s_k, π_{p,l}(T)).
func (m *Mapped) Wpkl(p, k, l int) []int {
	var out []int
	for _, w := range m.Wp(p) {
		dk, _, dl := DecodePower(w, m.Sigma, m.N, p)
		if dk == k && dl == l {
			out = append(out, w)
		}
	}
	return out
}

// ComponentInt returns c′_p as the integer the paper reasons about
// (Σ 2^w over matches).
func (m *Mapped) ComponentInt(p int) *big.Int {
	return m.Component(p, nil).Int()
}

// ModifiedConvolution computes the paper's modified convolution of two 0/1
// sequences: z_i = Σ_{j=0}^{i} 2^j a_j b_{i−j}, for i = 0..len(a)−1.
// Quadratic; reference implementation for fidelity tests.
func ModifiedConvolution(a, b []uint8) []*big.Int {
	n := len(a)
	if len(b) != n {
		panic(fmt.Sprintf("conv: length mismatch %d vs %d", n, len(b)))
	}
	out := make([]*big.Int, n)
	for i := range out {
		z := new(big.Int)
		for j := 0; j <= i; j++ {
			if a[j] != 0 && b[i-j] != 0 {
				z.SetBit(z, j, 1)
			}
		}
		out[i] = z
	}
	return out
}

// BinaryChars returns Φ(T) as the left-to-right character sequence of the
// written binary vector (the form the paper feeds to the convolution), where
// character c of symbol block i is 1 iff k = σ−1−(c mod σ) equals t_i.
func BinaryChars(s *series.Series) []uint8 {
	n, sigma := s.Len(), s.Alphabet().Size()
	out := make([]uint8, sigma*n)
	for i := 0; i < n; i++ {
		k := s.At(i)
		out[sigma*i+(sigma-1-k)] = 1
	}
	return out
}

// PaperComponents runs the literal pipeline of the paper's algorithm sketch:
// form Φ(T), reverse one copy, take the modified convolution, reverse the
// output, and project to the symbol start positions. The returned slice holds
// c^T_p for p = 0..n−1. Quadratic; used to validate the bit-operation form.
func PaperComponents(s *series.Series) []*big.Int {
	u := BinaryChars(s)
	rev := make([]uint8, len(u))
	for i := range u {
		rev[i] = u[len(u)-1-i]
	}
	z := ModifiedConvolution(rev, u)
	// Reverse the output, then take every σ-th component starting at 0.
	sigma, n := s.Alphabet().Size(), s.Len()
	out := make([]*big.Int, n)
	for p := 0; p < n; p++ {
		out[p] = z[len(z)-1-sigma*p]
	}
	return out
}

// Indicators holds per-symbol 0/1 indicator bit vectors of a series, the
// word-parallel working form of T′ split by symbol.
type Indicators struct {
	N     int
	Sigma int
	vecs  []*bitvec.Vector
}

// NewIndicators builds the per-symbol indicators of s.
func NewIndicators(s *series.Series) *Indicators {
	n, sigma := s.Len(), s.Alphabet().Size()
	ind := &Indicators{N: n, Sigma: sigma, vecs: make([]*bitvec.Vector, sigma)}
	for k := range ind.vecs {
		ind.vecs[k] = bitvec.New(n)
	}
	for i := 0; i < n; i++ {
		ind.vecs[s.At(i)].Set(i)
	}
	return ind
}

// EmptyIndicators builds all-zero indicators for incremental (streaming)
// construction; call Observe for each symbol in order.
func EmptyIndicators(n, sigma int) *Indicators {
	ind := &Indicators{N: n, Sigma: sigma, vecs: make([]*bitvec.Vector, sigma)}
	for k := range ind.vecs {
		ind.vecs[k] = bitvec.New(n)
	}
	return ind
}

// Observe records that position i holds symbol k.
//
//opvet:noalloc
func (ind *Indicators) Observe(i, k int) { ind.vecs[k].Set(i) }

// Vector returns the indicator vector of symbol k.
func (ind *Indicators) Vector(k int) *bitvec.Vector { return ind.vecs[k] }

// MatchSet returns the lag-p match set of symbol k: bit i is set iff
// t_i = t_{i+p} = s_k. Equivalent to the symbol-k bits of c′_p. dst may be
// nil or reused storage.
//
//opvet:noalloc
func (ind *Indicators) MatchSet(k, p int, dst *bitvec.Vector) *bitvec.Vector {
	return ind.vecs[k].AndShiftRight(p, dst)
}

// F2Counts returns counts[l] = F2(s_k, π_{p,l}(T)) for l = 0..p−1, computed
// from the lag-p match set. scratch may be nil or reused storage for the
// match set.
func (ind *Indicators) F2Counts(k, p int, scratch *bitvec.Vector) []int {
	return ind.MatchSet(k, p, scratch).CountMod(p)
}

// LagMatchCounts returns, for every symbol k and every lag p in [0, n),
// r[k][p] = |{i : t_i = t_{i+p} = s_k}| = Σ_l F2(s_k, π_{p,l}(T)), computed
// in O(σ n log n) total with pair-packed FFTs: two symbols' indicators share
// one forward and one inverse transform. It is the serial form of
// LagMatchCountsBatched; the counts are identical at any worker count.
func LagMatchCounts(s *series.Series) [][]int64 {
	return LagMatchCountsBatched(s, 1)
}

// LagMatchCountsParallel is LagMatchCounts with the pair-packed FFTs spread
// over the given number of goroutines (0 means GOMAXPROCS).
func LagMatchCountsParallel(s *series.Series, workers int) [][]int64 {
	return LagMatchCountsBatched(s, workers)
}

// LagMatchCountsBatched is the batched autocorrelation driver behind the
// detection sweep: the σ indicator vectors are packed into ⌈σ/2⌉ pair
// transforms, scheduled across a pool of `workers` goroutines (0 means
// GOMAXPROCS) that share one cached fft.Plan. The indicators are real, so
// each pair runs through the plan's half-size real-input kernel with the two
// buffers interleaved stage by stage (one walk of the swap and twiddle
// tables per pair); above the four-step threshold the transforms switch to
// the cache-blocked kernel. Each worker reuses a pair of indicator buffers,
// and any workers left over after the pairs are assigned go to parallel
// butterflies inside the transforms, so both wide-alphabet and long-series
// workloads keep every core busy. The counts are exact integers and
// bit-identical for every worker count and kernel choice.
func LagMatchCountsBatched(s *series.Series, workers int) [][]int64 {
	out, _ := lagMatchCountsBatched(s, workers, nil)
	return out
}

// LagMatchCountsBatchedCancel is LagMatchCountsBatched with cooperative
// cancellation: cancel (e.g. ctx.Err) is polled before each pair transform
// is claimed, and a non-nil return aborts the batch with that error and nil
// counts. A transform already in flight runs to completion, so the
// cancellation latency is bounded by one pair FFT, not the whole batch —
// the difference matters for wide alphabets.
func LagMatchCountsBatchedCancel(s *series.Series, workers int, cancel func() error) ([][]int64, error) {
	return lagMatchCountsBatched(s, workers, cancel)
}

func lagMatchCountsBatched(s *series.Series, workers int, cancel func() error) ([][]int64, error) {
	sched := exec.New(exec.Config{Workers: workers, Cancel: cancel})
	return LagMatchCountsExec(s, sched, workers, nil)
}

// LagMatchCountsExec is the scheduler-driven form of the batched
// autocorrelation and the implementation behind every other LagMatchCounts
// variant: the pair transforms are sharded over sched's worker pool, which
// is also where cancellation is polled (before each pair is claimed, so the
// cancellation latency is bounded by one in-flight pair FFT). workers caps
// the total cores used (0 means all cores — the FFT precompute fans out
// fully even when the surrounding stage pipeline is serial); workers left over
// after the pairs are assigned go to parallel butterflies inside each
// transform. plans supplies the FFT plan cache (nil means the process-shared
// cache). The counts are exact integers and bit-identical for every worker
// count.
func LagMatchCountsExec(s *series.Series, sched *exec.Scheduler, workers int, plans *fft.PlanCache) ([][]int64, error) {
	n, sigma := s.Len(), s.Alphabet().Size()
	out := make([][]int64, sigma)
	if sigma == 0 {
		return out, nil
	}
	flat := make([]int64, sigma*n)
	for k := range out {
		out[k] = flat[k*n : (k+1)*n : (k+1)*n]
	}
	if n == 0 {
		return out, nil
	}
	if plans == nil {
		plans = fft.SharedPlans()
	}
	plan := plans.For(fft.NextPow2(2 * n))
	pairs := (sigma + 1) / 2
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := workers
	if outer > pairs {
		outer = pairs
	}
	// Cores not consumed by pair-level parallelism parallelize the
	// butterflies of each transform instead.
	inner := workers / outer
	err := sched.Run(pairs, outer, func(w int) func(i int) error {
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		return func(i int) error {
			k := 2 * i
			s.IndicatorInto(k, x1)
			if k+1 < sigma {
				s.IndicatorInto(k+1, x2)
				plan.AutocorrelateCountsPairInto(x1, x2, out[k], out[k+1], inner)
			} else {
				plan.AutocorrelateCountsInto(x1, out[k], inner)
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LagMatchCountsNaive is the direct O(σ n²) form of LagMatchCounts, used to
// validate the FFT form.
func LagMatchCountsNaive(s *series.Series) [][]int64 {
	n, sigma := s.Len(), s.Alphabet().Size()
	out := make([][]int64, sigma)
	for k := range out {
		out[k] = make([]int64, n)
	}
	for p := 0; p < n; p++ {
		for i := 0; i+p < n; i++ {
			if s.At(i) == s.At(i+p) {
				out[s.At(i)][p]++
			}
		}
	}
	return out
}
