package conv

import (
	"fmt"
	"math/rand"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/fft"
	"periodica/internal/series"
)

func benchSeries(n, sigma int) *series.Series {
	rng := rand.New(rand.NewSource(1))
	idx := make([]uint16, n)
	for i := range idx {
		idx[i] = uint16(rng.Intn(sigma))
	}
	return series.FromIndices(alphabet.Letters(sigma), idx)
}

// BenchmarkLagMatchCounts is the ablation FFT vs naive vs parallel for the
// detection phase's aggregate counts.
func BenchmarkLagMatchCounts(b *testing.B) {
	s := benchSeries(1<<13, 10)
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LagMatchCounts(s)
		}
	})
	b.Run("fft-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LagMatchCountsParallel(s, 0)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LagMatchCountsNaive(s)
		}
	})
}

// BenchmarkAutocorrelateBatched is the detection sweep's inner loop at
// benchmark scale: σ indicators through pair-packed planned FFTs, at several
// worker counts, against the unbatched per-symbol form.
func BenchmarkAutocorrelateBatched(b *testing.B) {
	for _, n := range []int{1 << 15, 1 << 17} {
		s := benchSeries(n, 10)
		b.Run(fmt.Sprintf("batched-serial/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LagMatchCountsBatched(s, 1)
			}
		})
		b.Run(fmt.Sprintf("batched-parallel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LagMatchCountsBatched(s, 0)
			}
		})
		b.Run(fmt.Sprintf("per-symbol/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for k := 0; k < s.Alphabet().Size(); k++ {
					fft.AutocorrelateCounts(s.Indicator(k))
				}
			}
		})
	}
}

func BenchmarkComponentExtraction(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		s := benchSeries(n, 5)
		m := Map(s)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var dst = m.Component(1, nil)
			for i := 0; i < b.N; i++ {
				dst = m.Component(1+i%(n-1), dst)
			}
		})
	}
}

func BenchmarkMatchSet(b *testing.B) {
	s := benchSeries(1<<16, 10)
	ind := NewIndicators(s)
	b.ResetTimer()
	var dst = ind.MatchSet(0, 1, nil)
	for i := 0; i < b.N; i++ {
		dst = ind.MatchSet(i%10, 1+i%1000, dst)
	}
}

func BenchmarkMap(b *testing.B) {
	s := benchSeries(1<<14, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(s)
	}
}
