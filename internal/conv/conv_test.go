package conv

import (
	"math/big"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
	"periodica/internal/fft"
	"periodica/internal/series"
)

func TestBinaryCharsPaperExample(t *testing.T) {
	// Paper §3.2: T = acccabb maps to the binary vector
	// 001 100 100 100 001 010 010.
	s := series.FromString("acccabb")
	got := BinaryChars(s)
	want := "001100100100001010010"
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		var bit uint8
		if want[i] == '1' {
			bit = 1
		}
		if got[i] != bit {
			t.Fatalf("BinaryChars mismatch at %d: got %v, want %s", i, got, want)
		}
	}
}

func TestTPrimeStringMatchesBinaryChars(t *testing.T) {
	// Map's bit-vector String (MSB first) must render the same characters.
	s := series.FromString("acccabb")
	m := Map(s)
	if got, want := m.TPrime.String(), "001100100100001010010"; got != want {
		t.Fatalf("T′ = %s, want %s", got, want)
	}
}

func TestComponentPaperExampleAcccabb(t *testing.T) {
	// Paper §3.2: for T = acccabb, c′_1 = 2^1 + 2^11 + 2^14 and c′_4 = 2^6.
	s := series.FromString("acccabb")
	m := Map(s)

	c1 := m.ComponentInt(1)
	want1 := new(big.Int)
	for _, w := range []int{1, 11, 14} {
		want1.SetBit(want1, w, 1)
	}
	if c1.Cmp(want1) != 0 {
		t.Fatalf("c′_1 = %v (bits %v), want 2^1+2^11+2^14", c1, m.Wp(1))
	}

	c4 := m.ComponentInt(4)
	want4 := new(big.Int).SetBit(new(big.Int), 6, 1)
	if c4.Cmp(want4) != 0 {
		t.Fatalf("c′_4 = %v (bits %v), want 2^6", c4, m.Wp(4))
	}
}

func TestWSetsPaperExampleAbcabbabcb(t *testing.T) {
	// Paper §3.2: T = abcabbabcb, n=10, σ=3, p=3:
	// W_3 = {18,16,9,7}, W_{3,0} = {18,9}, W_{3,0,0} = {18,9} → F2 = 2.
	s := series.FromString("abcabbabcb")
	m := Map(s)

	w3 := m.Wp(3)
	sort.Ints(w3)
	wantW3 := []int{7, 9, 16, 18}
	if len(w3) != len(wantW3) {
		t.Fatalf("W_3 = %v, want %v", w3, wantW3)
	}
	for i := range wantW3 {
		if w3[i] != wantW3[i] {
			t.Fatalf("W_3 = %v, want %v", w3, wantW3)
		}
	}

	w30 := m.Wpk(3, 0)
	sort.Ints(w30)
	if len(w30) != 2 || w30[0] != 9 || w30[1] != 18 {
		t.Fatalf("W_{3,0} = %v, want [9 18]", w30)
	}
	w300 := m.Wpkl(3, 0, 0)
	if len(w300) != 2 {
		t.Fatalf("|W_{3,0,0}| = %d, want 2", len(w300))
	}
	// W_{3,1,1} = {16,7} corresponds to symbol b at position 1.
	w311 := m.Wpkl(3, 1, 1)
	sort.Ints(w311)
	if len(w311) != 2 || w311[0] != 7 || w311[1] != 16 {
		t.Fatalf("W_{3,1,1} = %v, want [7 16]", w311)
	}
}

func TestWSetsPaperExampleCabccbacd(t *testing.T) {
	// Paper §3.2: T = cabccbacd, n=9, σ=4, p=4:
	// W_4 = {18,6}, W_{4,2} = {18,6}, W_{4,2,0} = {18}, W_{4,2,3} = {6}.
	s := series.FromString("cabccbacd")
	if s.Alphabet().Size() != 4 {
		t.Fatalf("σ = %d, want 4", s.Alphabet().Size())
	}
	m := Map(s)
	w4 := m.Wp(4)
	sort.Ints(w4)
	if len(w4) != 2 || w4[0] != 6 || w4[1] != 18 {
		t.Fatalf("W_4 = %v, want [6 18]", w4)
	}
	w42 := m.Wpk(4, 2)
	if len(w42) != 2 {
		t.Fatalf("W_{4,2} = %v, want two entries", w42)
	}
	if got := m.Wpkl(4, 2, 0); len(got) != 1 || got[0] != 18 {
		t.Fatalf("W_{4,2,0} = %v, want [18]", got)
	}
	if got := m.Wpkl(4, 2, 3); len(got) != 1 || got[0] != 6 {
		t.Fatalf("W_{4,2,3} = %v, want [6]", got)
	}
}

func TestPaperComponentsMatchBitForm(t *testing.T) {
	// The literal pipeline (reverse → Σ2^j x_j y_{i−j} → reverse → π_{σ,0})
	// must produce exactly the bit-operation components for every period.
	for _, text := range []string{"acccabb", "abcabbabcb", "cabccbacd", "aaaa", "ab"} {
		s := series.FromString(text)
		m := Map(s)
		lit := PaperComponents(s)
		for p := 1; p < s.Len(); p++ {
			if lit[p].Cmp(m.ComponentInt(p)) != 0 {
				t.Fatalf("T=%s p=%d: literal %v != bit form %v", text, p, lit[p], m.ComponentInt(p))
			}
		}
	}
}

func TestPaperComponentsMatchBitFormRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30) + 2
		sigma := rng.Intn(4) + 2
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		m := Map(s)
		lit := PaperComponents(s)
		for p := 1; p < n; p++ {
			if lit[p].Cmp(m.ComponentInt(p)) != 0 {
				t.Fatalf("T=%s p=%d: literal != bit form", s, p)
			}
		}
	}
}

func TestWpklCardinalityEqualsF2(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(60) + 5
		sigma := rng.Intn(3) + 2
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		m := Map(s)
		for p := 1; p <= n/2; p++ {
			for k := 0; k < sigma; k++ {
				for l := 0; l < p; l++ {
					if got, want := len(m.Wpkl(p, k, l)), s.F2(k, p, l); got != want {
						t.Fatalf("T=%s |W_{%d,%d,%d}| = %d, want F2 = %d", s, p, k, l, got, want)
					}
				}
			}
		}
	}
}

func TestDecodeEncodePowerRoundTrip(t *testing.T) {
	f := func(kRaw, iRaw, sRaw, pRaw uint8) bool {
		sigma := int(sRaw)%8 + 1
		k := int(kRaw) % sigma
		p := int(pRaw)%50 + 1
		n := 200
		i := int(iRaw) % (n - p)
		w := EncodePower(k, i, sigma, n, p)
		dk, di, dl := DecodePower(w, sigma, n, p)
		return dk == k && di == i && dl == i%p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchSetMatchesDefinition(t *testing.T) {
	s := series.FromString("abcabbabcb")
	ind := NewIndicators(s)
	b, _ := s.Alphabet().Index("b")
	// b at positions 1,4,5,7,9: lag-3 matches start at 1 (1,4) and 4 (4,7).
	ms := ind.MatchSet(b, 3, nil)
	if ms.Count() != 2 || !ms.Get(1) || !ms.Get(4) {
		t.Fatalf("MatchSet(b,3) = %s", ms)
	}
}

func TestF2CountsMatchSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	idx := make([]uint16, 300)
	for i := range idx {
		idx[i] = uint16(rng.Intn(5))
	}
	s := series.FromIndices(alphabet.Letters(5), idx)
	ind := NewIndicators(s)
	for p := 1; p <= 40; p++ {
		for k := 0; k < 5; k++ {
			counts := ind.F2Counts(k, p, nil)
			for l := 0; l < p; l++ {
				if want := s.F2(k, p, l); counts[l] != want {
					t.Fatalf("F2Counts(%d,%d)[%d] = %d, want %d", k, p, l, counts[l], want)
				}
			}
		}
	}
}

func TestLagMatchCountsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 5; trial++ {
		n := rng.Intn(300) + 10
		sigma := rng.Intn(5) + 2
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		fftCounts := LagMatchCounts(s)
		naive := LagMatchCountsNaive(s)
		for k := 0; k < sigma; k++ {
			for p := 0; p < n; p++ {
				if fftCounts[k][p] != naive[k][p] {
					t.Fatalf("n=%d σ=%d: r_%d(%d) fft=%d naive=%d", n, sigma, k, p, fftCounts[k][p], naive[k][p])
				}
			}
		}
	}
}

func TestLagMatchCountsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	idx := make([]uint16, 700)
	for i := range idx {
		idx[i] = uint16(rng.Intn(6))
	}
	s := series.FromIndices(alphabet.Letters(6), idx)
	want := LagMatchCounts(s)
	for _, workers := range []int{0, 1, 2, 16} {
		got := LagMatchCountsParallel(s, workers)
		for k := range want {
			for p := range want[k] {
				if got[k][p] != want[k][p] {
					t.Fatalf("workers=%d: r_%d(%d) = %d, want %d", workers, k, p, got[k][p], want[k][p])
				}
			}
		}
	}
}

func TestObserveBuildsSameIndicators(t *testing.T) {
	s := series.FromString("abcabbabcb")
	want := NewIndicators(s)
	got := EmptyIndicators(s.Len(), s.Alphabet().Size())
	for i := 0; i < s.Len(); i++ {
		got.Observe(i, s.At(i))
	}
	for k := 0; k < s.Alphabet().Size(); k++ {
		if !got.Vector(k).Equal(want.Vector(k)) {
			t.Fatalf("indicator %d differs", k)
		}
	}
}

func TestModifiedConvolutionSmall(t *testing.T) {
	// a = [1,1], b = [1,0]: z_0 = 2^0·a0·b0 = 1; z_1 = 2^0·a0·b1 + 2^1·a1·b0 = 2.
	z := ModifiedConvolution([]uint8{1, 1}, []uint8{1, 0})
	if z[0].Int64() != 1 || z[1].Int64() != 2 {
		t.Fatalf("z = [%v %v], want [1 2]", z[0], z[1])
	}
}

func TestModifiedConvolutionLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch: want panic")
		}
	}()
	ModifiedConvolution([]uint8{1}, []uint8{1, 0})
}

func TestComponentOutOfRangePanics(t *testing.T) {
	m := Map(series.FromString("abc"))
	defer func() {
		if recover() == nil {
			t.Fatal("Component(3) on n=3: want panic")
		}
	}()
	m.Component(3, nil)
}

func TestUnmodifiedMatchCountViaWp(t *testing.T) {
	// Paper: for T = acccabb, comparing T to T(1) yields 3 matches.
	s := series.FromString("acccabb")
	m := Map(s)
	if got := len(m.Wp(1)); got != 3 {
		t.Fatalf("|W_1| = %d, want 3", got)
	}
	if got := s.MatchCount(1); got != 3 {
		t.Fatalf("MatchCount(1) = %d, want 3", got)
	}
}

// TestLagMatchCountsBatchedMatchesPerSymbol pins the batched pair-packed
// driver against independent per-symbol FFT autocorrelations and the naive
// quadratic count: all three must agree bit-for-bit on randomized series, at
// every worker count and for odd and even alphabet sizes (the odd tail takes
// the single-symbol path).
func TestLagMatchCountsBatchedMatchesPerSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, sigma := range []int{1, 2, 3, 5, 8} {
		n := rng.Intn(400) + 50
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		naive := LagMatchCountsNaive(s)
		perSymbol := make([][]int64, sigma)
		for k := 0; k < sigma; k++ {
			perSymbol[k] = fft.AutocorrelateCounts(s.Indicator(k))
		}
		for _, workers := range []int{0, 1, 2, 3, 16} {
			got := LagMatchCountsBatched(s, workers)
			for k := 0; k < sigma; k++ {
				for p := 0; p < n; p++ {
					if got[k][p] != perSymbol[k][p] {
						t.Fatalf("σ=%d workers=%d: r_%d(%d) batched=%d per-symbol=%d",
							sigma, workers, k, p, got[k][p], perSymbol[k][p])
					}
					if got[k][p] != naive[k][p] {
						t.Fatalf("σ=%d workers=%d: r_%d(%d) batched=%d naive=%d",
							sigma, workers, k, p, got[k][p], naive[k][p])
					}
				}
			}
		}
	}
}

// TestLagMatchCountsBatchedDegenerate covers empty series and σ larger than
// the worker count.
func TestLagMatchCountsBatchedDegenerate(t *testing.T) {
	s := series.FromIndices(alphabet.Letters(3), nil)
	out := LagMatchCountsBatched(s, 4)
	if len(out) != 3 {
		t.Fatalf("empty series: %d rows, want 3", len(out))
	}
	for k, row := range out {
		if len(row) != 0 {
			t.Fatalf("empty series: row %d has length %d", k, len(row))
		}
	}
}

// FuzzLagMatchCountsBatched cross-checks batched counts against the naive
// quadratic form on fuzz-generated series.
func FuzzLagMatchCountsBatched(f *testing.F) {
	f.Add([]byte("abcabbabcb"), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1, 2, 3, 4}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		if len(data) == 0 || len(data) > 512 {
			t.Skip()
		}
		sigma := 0
		idx := make([]uint16, len(data))
		for i, b := range data {
			k := int(b) % 8
			idx[i] = uint16(k)
			if k+1 > sigma {
				sigma = k + 1
			}
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		got := LagMatchCountsBatched(s, int(workers)%5)
		want := LagMatchCountsNaive(s)
		for k := range want {
			for p := range want[k] {
				if got[k][p] != want[k][p] {
					t.Fatalf("r_%d(%d) = %d, want %d", k, p, got[k][p], want[k][p])
				}
			}
		}
	})
}

// TestLagMatchCountsTunedKernelsBitIdentical sweeps the batched driver
// across tuning extremes — four-step forced on at its floor, everything
// forced off — and every worker count, requiring counts bit-identical to the
// untuned serial run (and exactly equal to the quadratic reference). This is
// the conv-level guarantee that a tuned profile can never change mining
// results.
func TestLagMatchCountsTunedKernelsBitIdentical(t *testing.T) {
	defer fft.ResetTuned()
	rng := rand.New(rand.NewSource(23))
	idx := make([]uint16, 3000)
	for i := range idx {
		idx[i] = uint16(rng.Intn(5))
	}
	s := series.FromIndices(alphabet.Letters(5), idx)
	fft.ResetTuned()
	want := LagMatchCounts(s)
	naive := LagMatchCountsNaive(s)
	for k := range want {
		for p := range want[k] {
			if want[k][p] != naive[k][p] {
				t.Fatalf("untuned r_%d(%d) = %d, naive %d", k, p, want[k][p], naive[k][p])
			}
		}
	}
	for _, prof := range []*fft.TunedProfile{
		{ParallelThreshold: 1 << 10, FourStepMin: 1}, // everything on, as early as possible
		{ParallelThreshold: 1 << 30, FourStepMin: fft.FourStepDisabled}, // everything off
	} {
		fft.ApplyTuned(prof)
		for _, workers := range []int{1, 2, 3, 8} {
			got := LagMatchCountsParallel(s, workers)
			for k := range want {
				for p := range want[k] {
					if got[k][p] != want[k][p] {
						t.Fatalf("profile %+v workers=%d: r_%d(%d) = %d, want %d",
							prof, workers, k, p, got[k][p], want[k][p])
					}
				}
			}
		}
		fft.ResetTuned()
	}
}
