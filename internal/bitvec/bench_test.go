package bitvec

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchVector(n int) *Vector {
	rng := rand.New(rand.NewSource(1))
	return randomVector(rng, n, 0.3)
}

func BenchmarkAndShiftRight(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		v := benchVector(n)
		dst := New(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = v.AndShiftRight(i%n, dst)
			}
		})
	}
}

func BenchmarkCountMod(b *testing.B) {
	v := benchVector(1 << 16)
	match := v.AndShiftRight(24, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.CountMod(24)
	}
}

func BenchmarkCount(b *testing.B) {
	v := benchVector(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Count()
	}
}

func BenchmarkForEach(b *testing.B) {
	v := benchVector(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		v.ForEach(func(j int) { sum += j })
	}
}
