package bitvec

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVector(rng *rand.Rand, n int, density float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	if got, want := v.Count(), 67; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, fn := range []func(){
		func() { v.Get(10) },
		func() { v.Set(-1) },
		func() { v.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access: want panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1): want panic")
		}
	}()
	New(-1)
}

// andShiftNaive is the definitional form: bit i set iff bits i and i+p set.
func andShiftNaive(v *Vector, p int) *Vector {
	out := New(v.Len())
	for i := 0; i+p < v.Len(); i++ {
		if v.Get(i) && v.Get(i+p) {
			out.Set(i)
		}
	}
	return out
}

func TestAndShiftRightMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 63, 64, 65, 129, 1000} {
		v := randomVector(rng, n, 0.4)
		for _, p := range []int{0, 1, 2, 63, 64, 65, n - 1, n, n + 5} {
			if p < 0 {
				continue
			}
			got := v.AndShiftRight(p, nil)
			want := andShiftNaive(v, p)
			if !got.Equal(want) {
				t.Fatalf("n=%d p=%d: AndShiftRight mismatch\n got %s\nwant %s", n, p, got, want)
			}
		}
	}
}

func TestAndShiftRightReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := randomVector(rng, 300, 0.5)
	dst := New(300)
	got := v.AndShiftRight(7, dst)
	if got != dst {
		t.Fatal("AndShiftRight did not reuse matching dst")
	}
	if !got.Equal(andShiftNaive(v, 7)) {
		t.Fatal("AndShiftRight with dst: wrong bits")
	}
	// A wrong-sized dst must be replaced, not written out of bounds.
	small := New(10)
	got = v.AndShiftRight(7, small)
	if got == small || got.Len() != 300 {
		t.Fatal("AndShiftRight did not reallocate wrong-sized dst")
	}
}

func TestAndShiftRightNegativePanics(t *testing.T) {
	v := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift: want panic")
		}
	}()
	v.AndShiftRight(-1, nil)
}

func TestAppendGrows(t *testing.T) {
	v := New(0)
	pattern := []bool{true, false, true, true, false}
	for i := 0; i < 200; i++ {
		v.Append(pattern[i%len(pattern)])
	}
	if v.Len() != 200 {
		t.Fatalf("Len = %d, want 200", v.Len())
	}
	for i := 0; i < 200; i++ {
		if v.Get(i) != pattern[i%len(pattern)] {
			t.Fatalf("bit %d = %v after Append", i, v.Get(i))
		}
	}
	if want := 200 / 5 * 3; v.Count() != want {
		t.Fatalf("Count = %d, want %d", v.Count(), want)
	}
}

func TestForEachOrderAndCompleteness(t *testing.T) {
	v := New(150)
	want := []int{0, 5, 63, 64, 100, 149}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestCountMod(t *testing.T) {
	v := New(20)
	for _, i := range []int{0, 3, 6, 7, 13} {
		v.Set(i)
	}
	counts := v.CountMod(3)
	// residues: 0,0,0,1,1 -> l=0:3, l=1:2, l=2:0
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 0 {
		t.Fatalf("CountMod(3) = %v, want [3 2 0]", counts)
	}
}

func TestCountModSumsToCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomVector(rng, 500, 0.3)
	for _, p := range []int{1, 2, 7, 64, 499} {
		sum := 0
		for _, c := range v.CountMod(p) {
			sum += c
		}
		if sum != v.Count() {
			t.Fatalf("p=%d: CountMod sums to %d, want %d", p, sum, v.Count())
		}
	}
}

func TestCountModInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CountMod(0): want panic")
		}
	}()
	New(8).CountMod(0)
}

func TestAndOr(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	and := a.And(b, nil)
	if and.Count() != 1 || !and.Get(70) {
		t.Fatalf("And: got %s", and)
	}
	or := a.Or(b, nil)
	if or.Count() != 3 || !or.Get(1) || !or.Get(70) || !or.Get(99) {
		t.Fatalf("Or: got %s", or)
	}
}

func TestAndLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And length mismatch: want panic")
		}
	}()
	New(8).And(New(9), nil)
}

func TestCloneIsIndependent(t *testing.T) {
	v := New(64)
	v.Set(5)
	c := v.Clone()
	c.Set(6)
	if v.Get(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestIntRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 64, 65, 130} {
		v := randomVector(rng, n, 0.5)
		back := FromInt(v.Int(), n)
		if !v.Equal(back) {
			t.Fatalf("n=%d: Int/FromInt round trip failed", n)
		}
	}
}

func TestIntMatchesBitPositions(t *testing.T) {
	v := New(70)
	v.Set(0)
	v.Set(69)
	want := new(big.Int).SetBit(new(big.Int).SetInt64(1), 69, 1)
	if v.Int().Cmp(want) != 0 {
		t.Fatalf("Int = %v, want %v", v.Int(), want)
	}
}

func TestStringMSBFirst(t *testing.T) {
	v := New(4)
	v.Set(0) // least significant -> rightmost character
	v.Set(3)
	if got := v.String(); got != "1001" {
		t.Fatalf("String = %q, want 1001", got)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Fatal("vectors of different length reported equal")
	}
}

func TestAndShiftRightProperty(t *testing.T) {
	f := func(words []uint64, shift uint16) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 16 {
			words = words[:16]
		}
		n := len(words) * 64
		v := New(n)
		for i := 0; i < n; i++ {
			if words[i/64]&(1<<uint(i%64)) != 0 {
				v.Set(i)
			}
		}
		p := int(shift) % (n + 2)
		return v.AndShiftRight(p, nil).Equal(andShiftNaive(v, p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
