// Package bitvec provides dense bit vectors with the shift, AND and counting
// operations that back the exact form of the paper's modified convolution:
// the set of lag-p matches of a 0/1 indicator vector is exactly
// B AND (B >> p), and per-phase match counts are strided popcounts.
package bitvec

import (
	"fmt"
	"math/big"
	"math/bits"
)

const wordBits = 64

// Vector is a fixed-length bit vector. Bit i corresponds to position i of a
// time series. The zero value is an empty vector of length 0.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of length n.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the vector length in bits.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Append extends the vector by one bit at the high end.
func (v *Vector) Append(bit bool) {
	if v.n%wordBits == 0 {
		v.words = append(v.words, 0)
	}
	if bit {
		v.words[v.n/wordBits] |= 1 << uint(v.n%wordBits)
	}
	v.n++
}

// Clone returns a copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndShiftRight computes dst = v AND (v >> p) into dst, resizing dst as
// needed, and returns dst. Bit i of the result is set iff bits i and i+p of v
// are both set; the result therefore has logical length v.Len()-p (higher bits
// are zero). dst may be nil.
//
// This is the word-parallel form of the paper's modified convolution value:
// for a symbol-indicator vector, the result is the set of lag-p match
// positions.
func (v *Vector) AndShiftRight(p int, dst *Vector) *Vector {
	if p < 0 {
		panic(fmt.Sprintf("bitvec: negative shift %d", p))
	}
	if dst == nil || dst.n != v.n {
		dst = New(v.n)
	}
	wordShift, bitShift := p/wordBits, uint(p%wordBits)
	nw := len(v.words)
	if bitShift == 0 {
		for i := 0; i < nw; i++ {
			var s uint64
			if i+wordShift < nw {
				s = v.words[i+wordShift]
			}
			dst.words[i] = v.words[i] & s
		}
	} else {
		for i := 0; i < nw; i++ {
			var lo, hi uint64
			if i+wordShift < nw {
				lo = v.words[i+wordShift] >> bitShift
			}
			if i+wordShift+1 < nw {
				hi = v.words[i+wordShift+1] << (wordBits - bitShift)
			}
			dst.words[i] = v.words[i] & (lo | hi)
		}
	}
	return dst
}

// ForEach calls fn for every set bit, in increasing order of index.
func (v *Vector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// CountMod returns counts[l] = number of set bits at indices i with
// i mod p == l, for l in [0,p). This yields the per-phase match counts
// F2(s, π_{p,l}(T)) from a lag-p match vector.
func (v *Vector) CountMod(p int) []int {
	if p <= 0 {
		panic(fmt.Sprintf("bitvec: non-positive modulus %d", p))
	}
	counts := make([]int, p)
	v.ForEach(func(i int) { counts[i%p]++ })
	return counts
}

// And computes dst = v AND w; the vectors must have equal length. dst may be
// nil or either operand.
func (v *Vector) And(w, dst *Vector) *Vector {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	if dst == nil || dst.n != v.n {
		dst = New(v.n)
	}
	for i := range v.words {
		dst.words[i] = v.words[i] & w.words[i]
	}
	return dst
}

// Or computes dst = v OR w; the vectors must have equal length.
func (v *Vector) Or(w, dst *Vector) *Vector {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	if dst == nil || dst.n != v.n {
		dst = New(v.n)
	}
	for i := range v.words {
		dst.words[i] = v.words[i] | w.words[i]
	}
	return dst
}

// Equal reports whether v and w have the same length and bits.
func (v *Vector) Equal(w *Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Int returns the vector as a big.Int whose bit i equals bit i of v. This is
// the "value" form of the paper's convolution components: the number whose
// powers of two are exactly the set bits.
func (v *Vector) Int() *big.Int {
	z := new(big.Int)
	for i, w := range v.words {
		if w == 0 {
			continue
		}
		t := new(big.Int).Lsh(new(big.Int).SetUint64(w), uint(i*wordBits))
		z.Or(z, t)
	}
	return z
}

// FromInt sets the bits of a new length-n vector from the low n bits of z.
func FromInt(z *big.Int, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if z.Bit(i) == 1 {
			v.Set(i)
		}
	}
	return v
}

// String renders the vector most-significant-bit first, matching how the
// paper writes binary vectors (leftmost bit = highest position).
func (v *Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(v.n - 1 - i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
