// Package eval scores detected period sets against a known ground-truth
// period, with harmonic awareness: every multiple of the embedded period is
// a correct answer (the series repeats at 2P as surely as at P), while
// anything else is a false alarm. Used by the quality experiments comparing
// the miner to the other detectors.
package eval

import "fmt"

// Metrics scores one detected period set.
type Metrics struct {
	TruePeriod int
	// Hit reports that the exact true period was detected.
	Hit bool
	// HitHarmonic reports that some multiple of the true period was
	// detected.
	HitHarmonic bool
	// Precision is the fraction of detected periods that are multiples of
	// the true period (1 when nothing was detected is not granted: an empty
	// detection has precision 0 by convention here, to penalize silence).
	Precision float64
	// Recall is the fraction of the true period's in-range multiples that
	// were detected.
	Recall float64
	// Detected is the size of the evaluated set.
	Detected int
}

// Evaluate scores detected (any order) against truePeriod, considering
// multiples up to maxPeriod.
func Evaluate(detected []int, truePeriod, maxPeriod int) (Metrics, error) {
	if truePeriod < 1 {
		return Metrics{}, fmt.Errorf("eval: true period %d < 1", truePeriod)
	}
	if maxPeriod < truePeriod {
		return Metrics{}, fmt.Errorf("eval: maxPeriod %d below true period %d", maxPeriod, truePeriod)
	}
	m := Metrics{TruePeriod: truePeriod, Detected: len(detected)}
	correct := 0
	hitMultiples := map[int]bool{}
	for _, p := range detected {
		if p == truePeriod {
			m.Hit = true
		}
		if p > 0 && p%truePeriod == 0 {
			m.HitHarmonic = true
			correct++
			hitMultiples[p/truePeriod] = true
		}
	}
	if len(detected) > 0 {
		m.Precision = float64(correct) / float64(len(detected))
	}
	totalMultiples := maxPeriod / truePeriod
	if totalMultiples > 0 {
		m.Recall = float64(len(hitMultiples)) / float64(totalMultiples)
	}
	return m, nil
}

// RankOfTrue returns the 1-based position of the first multiple of
// truePeriod in a ranked candidate list, or 0 when absent.
func RankOfTrue(ranked []int, truePeriod int) int {
	for i, p := range ranked {
		if p > 0 && p%truePeriod == 0 {
			return i + 1
		}
	}
	return 0
}

// HitAtK reports whether a multiple of truePeriod appears within the first k
// entries of a ranked candidate list.
func HitAtK(ranked []int, truePeriod, k int) bool {
	if k > len(ranked) {
		k = len(ranked)
	}
	r := RankOfTrue(ranked[:k], truePeriod)
	return r > 0
}
