package eval

import (
	"testing"
	"testing/quick"
)

func TestEvaluateExactHit(t *testing.T) {
	m, err := Evaluate([]int{25, 50, 7}, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Hit || !m.HitHarmonic {
		t.Fatalf("hit flags wrong: %+v", m)
	}
	// 2 of 3 detected are multiples; 2 of 4 in-range multiples found.
	if m.Precision != 2.0/3.0 {
		t.Fatalf("precision %v", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Fatalf("recall %v", m.Recall)
	}
}

func TestEvaluateHarmonicOnly(t *testing.T) {
	m, err := Evaluate([]int{50}, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hit {
		t.Fatal("exact hit reported for harmonic")
	}
	if !m.HitHarmonic || m.Precision != 1 {
		t.Fatalf("harmonic scoring wrong: %+v", m)
	}
}

func TestEvaluateEmptyDetection(t *testing.T) {
	m, err := Evaluate(nil, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hit || m.HitHarmonic || m.Precision != 0 || m.Recall != 0 {
		t.Fatalf("empty detection scored %+v", m)
	}
}

func TestEvaluateDuplicateMultiplesCountOnce(t *testing.T) {
	m, err := Evaluate([]int{20, 20, 20}, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Recall counts distinct multiples: only 20 of {10,20,30,40}.
	if m.Recall != 0.25 {
		t.Fatalf("recall %v, want 0.25", m.Recall)
	}
	if m.Precision != 1 {
		t.Fatalf("precision %v, want 1", m.Precision)
	}
}

func TestEvaluateValidates(t *testing.T) {
	if _, err := Evaluate(nil, 0, 10); err == nil {
		t.Fatal("true period 0: want error")
	}
	if _, err := Evaluate(nil, 10, 5); err == nil {
		t.Fatal("maxPeriod < true: want error")
	}
}

func TestRankOfTrue(t *testing.T) {
	ranked := []int{13, 7, 50, 25}
	if got := RankOfTrue(ranked, 25); got != 3 {
		t.Fatalf("rank %d, want 3 (first multiple, 50)", got)
	}
	if got := RankOfTrue(ranked, 11); got != 0 {
		t.Fatalf("rank %d for absent period, want 0", got)
	}
}

func TestHitAtK(t *testing.T) {
	ranked := []int{13, 7, 50, 25}
	if HitAtK(ranked, 25, 2) {
		t.Fatal("hit@2 should be false")
	}
	if !HitAtK(ranked, 25, 3) {
		t.Fatal("hit@3 should be true")
	}
	if !HitAtK(ranked, 25, 100) {
		t.Fatal("k beyond list should clamp")
	}
}

func TestPrecisionRecallBoundsProperty(t *testing.T) {
	f := func(periods []uint16, trueRaw uint8) bool {
		truePeriod := int(trueRaw)%50 + 1
		detected := make([]int, 0, len(periods))
		for _, p := range periods {
			detected = append(detected, int(p)%200+1)
		}
		m, err := Evaluate(detected, truePeriod, 200)
		if err != nil {
			return false
		}
		return m.Precision >= 0 && m.Precision <= 1 && m.Recall >= 0 && m.Recall <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
