// Package discretize turns numeric feature values into the nominal symbol
// levels the miner operates on (§2.1 of the paper; both real-data experiments
// use five levels from "very low" to "very high"). Schemes: explicit
// breakpoints (how the paper's domain experts set levels), equal-width bins,
// and quantile bins.
package discretize

import (
	"fmt"
	"sort"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// Scheme maps a numeric value to a level index in [0, Levels).
// A value v maps to the smallest i with v < Breakpoints[i], or to the last
// level if v is ≥ every breakpoint.
type Scheme struct {
	breakpoints []float64
}

// NewBreakpoints builds a scheme with the given ascending breakpoints,
// yielding len(breaks)+1 levels.
func NewBreakpoints(breaks []float64) (Scheme, error) {
	if len(breaks) == 0 {
		return Scheme{}, fmt.Errorf("discretize: no breakpoints")
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return Scheme{}, fmt.Errorf("discretize: breakpoints not strictly ascending at %d", i)
		}
	}
	out := make([]float64, len(breaks))
	copy(out, breaks)
	return Scheme{breakpoints: out}, nil
}

// NewEqualWidth splits [min, max] into the given number of equal-width
// levels.
func NewEqualWidth(min, max float64, levels int) (Scheme, error) {
	if levels < 2 {
		return Scheme{}, fmt.Errorf("discretize: levels %d < 2", levels)
	}
	if max <= min {
		return Scheme{}, fmt.Errorf("discretize: max %v ≤ min %v", max, min)
	}
	breaks := make([]float64, levels-1)
	width := (max - min) / float64(levels)
	for i := range breaks {
		breaks[i] = min + width*float64(i+1)
	}
	return Scheme{breakpoints: breaks}, nil
}

// NewQuantile places breakpoints at the empirical quantiles of values so each
// level receives roughly the same mass.
func NewQuantile(values []float64, levels int) (Scheme, error) {
	if levels < 2 {
		return Scheme{}, fmt.Errorf("discretize: levels %d < 2", levels)
	}
	if len(values) < levels {
		return Scheme{}, fmt.Errorf("discretize: %d values for %d levels", len(values), levels)
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	var breaks []float64
	for i := 1; i < levels; i++ {
		q := sorted[i*len(sorted)/levels]
		if len(breaks) == 0 || q > breaks[len(breaks)-1] {
			breaks = append(breaks, q)
		}
	}
	if len(breaks) != levels-1 {
		return Scheme{}, fmt.Errorf("discretize: values too uniform for %d levels", levels)
	}
	return Scheme{breakpoints: breaks}, nil
}

// Levels returns the number of levels.
func (s Scheme) Levels() int { return len(s.breakpoints) + 1 }

// Level returns the level index of v.
func (s Scheme) Level(v float64) int {
	// Binary search: first breakpoint strictly greater than v.
	lo, hi := 0, len(s.breakpoints)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < s.breakpoints[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Apply discretizes values into a series over alpha, which must have exactly
// Levels() symbols.
func (s Scheme) Apply(values []float64, alpha *alphabet.Alphabet) (*series.Series, error) {
	if alpha.Size() != s.Levels() {
		return nil, fmt.Errorf("discretize: alphabet size %d, scheme has %d levels", alpha.Size(), s.Levels())
	}
	idx := make([]uint16, len(values))
	for i, v := range values {
		idx[i] = uint16(s.Level(v))
	}
	return series.FromIndices(alpha, idx), nil
}

// FiveLevelNames are the level names both real-data experiments use, in
// symbol order a..e.
var FiveLevelNames = []string{"very low", "low", "medium", "high", "very high"}
