package discretize

import (
	"testing"
	"testing/quick"

	"periodica/internal/alphabet"
)

func TestNewBreakpointsLevels(t *testing.T) {
	s, err := NewBreakpoints([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 4 {
		t.Fatalf("Levels = %d, want 4", s.Levels())
	}
	cases := map[float64]int{5: 0, 9.99: 0, 10: 1, 15: 1, 20: 2, 29: 2, 30: 3, 1000: 3}
	for v, want := range cases {
		if got := s.Level(v); got != want {
			t.Errorf("Level(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestNewBreakpointsValidates(t *testing.T) {
	if _, err := NewBreakpoints(nil); err == nil {
		t.Fatal("empty breakpoints: want error")
	}
	if _, err := NewBreakpoints([]float64{1, 1}); err == nil {
		t.Fatal("non-ascending breakpoints: want error")
	}
	if _, err := NewBreakpoints([]float64{2, 1}); err == nil {
		t.Fatal("descending breakpoints: want error")
	}
}

func TestNewEqualWidth(t *testing.T) {
	s, err := NewEqualWidth(0, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 5 {
		t.Fatalf("Levels = %d, want 5", s.Levels())
	}
	cases := map[float64]int{-5: 0, 0: 0, 19: 0, 20: 1, 45: 2, 79: 3, 80: 4, 200: 4}
	for v, want := range cases {
		if got := s.Level(v); got != want {
			t.Errorf("Level(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestNewEqualWidthValidates(t *testing.T) {
	if _, err := NewEqualWidth(0, 10, 1); err == nil {
		t.Fatal("levels=1: want error")
	}
	if _, err := NewEqualWidth(10, 10, 3); err == nil {
		t.Fatal("max==min: want error")
	}
}

func TestNewQuantileBalances(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := NewQuantile(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, s.Levels())
	for _, v := range values {
		counts[s.Level(v)]++
	}
	for lvl, c := range counts {
		if c < 200 || c > 300 {
			t.Fatalf("quantile level %d holds %d of 1000 values", lvl, c)
		}
	}
}

func TestNewQuantileValidates(t *testing.T) {
	if _, err := NewQuantile([]float64{1, 2}, 5); err == nil {
		t.Fatal("too few values: want error")
	}
	if _, err := NewQuantile([]float64{1, 1, 1, 1, 1}, 3); err == nil {
		t.Fatal("constant values: want error")
	}
	if _, err := NewQuantile([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("levels=1: want error")
	}
}

func TestApply(t *testing.T) {
	s, err := NewBreakpoints([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	alpha := alphabet.Letters(3)
	ser, err := s.Apply([]float64{5, 15, 25, 7}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if ser.String() != "abca" {
		t.Fatalf("Apply = %q, want abca", ser.String())
	}
}

func TestApplyAlphabetMismatch(t *testing.T) {
	s, _ := NewBreakpoints([]float64{10})
	if _, err := s.Apply([]float64{1}, alphabet.Letters(5)); err == nil {
		t.Fatal("alphabet/levels mismatch: want error")
	}
}

func TestFiveLevelNames(t *testing.T) {
	if len(FiveLevelNames) != 5 || FiveLevelNames[0] != "very low" || FiveLevelNames[4] != "very high" {
		t.Fatalf("FiveLevelNames = %v", FiveLevelNames)
	}
}

func TestLevelMonotoneProperty(t *testing.T) {
	s, err := NewBreakpoints([]float64{-3, 0, 2.5, 9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return s.Level(a) <= s.Level(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
