package query

// The typechecker. Each clause kind has a type signature — conf takes a
// number in (0,1], period bounds take positive integers, engine takes one
// of four enum words — and a query may bind each clause at most once, like
// a record with optional fields. Everything here is static: a query that
// typechecks can still fail against a concrete series (period range beyond
// n/2), but that is Normalize's job; nothing about the query itself remains
// unverified after this pass.

import "math"

// typecheck validates a parsed clause list.
func typecheck(clauses []clause) error {
	seen := make(map[clauseKind]bool, len(clauses))
	for _, cl := range clauses {
		if seen[cl.kind] {
			return errAt(cl.pos, "duplicate %s clause", cl.kind)
		}
		seen[cl.kind] = true
		if err := checkClause(cl); err != nil {
			return err
		}
	}
	return nil
}

// intArg requires a positive integer literal that fits an int32 — every
// integer knob (periods, caps, limits, workers) is a count, and the int32
// ceiling keeps later arithmetic (n/2, shard planning) overflow-free.
func intArg(n numLit, what string) error {
	if n.isFloat {
		return errAt(n.pos, "%s must be an integer, found %v", what, n.f)
	}
	if n.i < 1 {
		return errAt(n.pos, "%s must be at least 1, found %d", what, n.i)
	}
	if n.i > math.MaxInt32 {
		return errAt(n.pos, "%s %d out of range", what, n.i)
	}
	return nil
}

func checkClause(cl clause) error {
	switch cl.kind {
	case clauseConf:
		v := cl.args[0].value()
		if v <= 0 || v > 1 {
			return errAt(cl.args[0].pos, "threshold ψ=%v outside (0,1]", v)
		}
	case clausePeriod:
		for _, n := range cl.args {
			if err := intArg(n, "period bound"); err != nil {
				return err
			}
		}
		if cl.op == "in" && cl.args[0].i > cl.args[1].i {
			return errAt(cl.pos, "empty period range %d..%d", cl.args[0].i, cl.args[1].i)
		}
	case clausePairs:
		return intArg(cl.args[0], "pairs bound")
	case clauseSymbol:
		seen := make(map[string]bool, len(cl.set))
		for _, sym := range cl.set {
			if seen[sym.text] {
				return errAt(sym.pos, "duplicate symbol %q in set", sym.text)
			}
			seen[sym.text] = true
		}
	case clauseMaximal:
		// Bare clause; nothing to check.
	case clauseLimit:
		if err := intArg(cl.args[0], "limit"); err != nil {
			return err
		}
		switch cl.word {
		case LimitByConf, "confidence", LimitBySupport, LimitByPeriod:
		default:
			return errAt(cl.wordPos, "unknown limit ordering %q (want conf, support, or period)", cl.word)
		}
	case clauseEngine:
		switch cl.word {
		case EngineAuto, EngineNaive, EngineBitset, EngineFFT:
		default:
			return errAt(cl.wordPos, "unknown engine %q (want auto, naive, bitset, or fft)", cl.word)
		}
	case clausePatternPeriod:
		if cl.op == "<=" {
			return intArg(cl.args[0], "pattern period cap")
		}
	case clausePatterns:
		return intArg(cl.args[0], "patterns cap")
	case clauseLevels:
		n := cl.args[0]
		if n.isFloat || n.i < 2 || n.i > 26 {
			return errAt(n.pos, "levels must be an integer in 2..26")
		}
	case clauseDiscretize:
		switch cl.word {
		case DiscretizeWidth, DiscretizeSAX:
		default:
			return errAt(cl.wordPos, "unknown discretization %q (want width or sax)", cl.word)
		}
	case clauseWorkers:
		return intArg(cl.args[0], "workers")
	}
	return nil
}
