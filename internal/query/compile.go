package query

import (
	"sync"

	"periodica/internal/obs"
)

// Compile runs the full front end — lex → parse → typecheck → fold — and
// returns the canonical Spec for src. Results are memoized in a bounded
// process-wide cache keyed by the exact source string: standing queries,
// retried requests, and per-shard fan-out all repeat the same string, so
// repeated compiles cost one mutex and one map probe (obs.Query() counts
// the traffic). The returned Spec is a value; callers may modify their
// copy freely.
func Compile(src string) (Spec, error) {
	cacheMu.Lock()
	sp, ok := cache[src]
	cacheMu.Unlock()
	if ok {
		obs.Query().CacheHits.Inc()
		return sp, nil
	}
	obs.Query().Compiles.Inc()
	sp, err := compile(src)
	if err != nil {
		obs.Query().CompileErrors.Inc()
		return Spec{}, err
	}
	cacheMu.Lock()
	if len(cache) >= cacheLimit {
		// Wholesale eviction: the cache exists for tight repetition (the
		// same standing queries over and over), so after a churn of unique
		// strings the cheapest correct policy is to start over.
		cache = make(map[string]Spec, cacheLimit)
	}
	cache[src] = sp
	cacheMu.Unlock()
	return sp, nil
}

const cacheLimit = 256

var cacheMu sync.Mutex
var cache = map[string]Spec{} //opvet:racesafe guarded by cacheMu

// compile is the uncached front end.
func compile(src string) (Spec, error) {
	clauses, err := parse(src)
	if err != nil {
		return Spec{}, err
	}
	if err := typecheck(clauses); err != nil {
		return Spec{}, err
	}
	return fold(clauses)
}

// fold lowers a typechecked clause list into the canonical Spec.
func fold(clauses []clause) (Spec, error) {
	var sp Spec
	haveConf := false
	for _, cl := range clauses {
		switch cl.kind {
		case clauseConf:
			haveConf = true
			sp.Threshold = cl.args[0].value()
		case clausePeriod:
			switch cl.op {
			case "in":
				sp.MinPeriod, sp.MaxPeriod = int(cl.args[0].i), int(cl.args[1].i)
			case ">=":
				sp.MinPeriod = int(cl.args[0].i)
			case "<=":
				sp.MaxPeriod = int(cl.args[0].i)
			case "=":
				sp.MinPeriod = int(cl.args[0].i)
				sp.MaxPeriod = sp.MinPeriod
			}
		case clausePairs:
			sp.MinPairs = int(cl.args[0].i)
		case clauseSymbol:
			syms := make([]string, len(cl.set))
			for i, s := range cl.set {
				syms[i] = s.text
			}
			sp.Symbols = NormalizeSymbols(syms)
		case clauseMaximal:
			sp.MaximalOnly = true
		case clauseLimit:
			sp.Limit = int(cl.args[0].i)
			sp.LimitBy = cl.word
			if sp.LimitBy == "confidence" {
				sp.LimitBy = LimitByConf
			}
		case clauseEngine:
			sp.Engine = cl.word
		case clausePatternPeriod:
			if cl.op == "off" {
				sp.MaxPatternPeriod = -1
			} else {
				sp.MaxPatternPeriod = int(cl.args[0].i)
			}
		case clausePatterns:
			sp.MaxPatterns = int(cl.args[0].i)
		case clauseLevels:
			sp.Levels = int(cl.args[0].i)
		case clauseDiscretize:
			sp.Discretize = cl.word
		case clauseWorkers:
			sp.Workers = int(cl.args[0].i)
		}
	}
	if !haveConf {
		return Spec{}, errAt(0, `missing conf clause (every query states its threshold, e.g. "conf >= 0.8")`)
	}
	if err := sp.Validate(); err != nil {
		// Unreachable after typecheck; kept so a Spec never leaves the
		// compiler unvalidated.
		return Spec{}, errAt(0, "%v", err)
	}
	return sp, nil
}

// CacheSizeForTest reports the current cache population (test hook).
func CacheSizeForTest() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cache)
}
