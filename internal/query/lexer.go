package query

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates the token types of the query language.
type tokKind int

const (
	tokEOF tokKind = iota
	// tokWord is a bare word: a selector keyword ("conf", "period"), a
	// connective ("and", "in", "by"), or a symbol name. Keywords are not
	// reserved — the parser reads words contextually, so any word usable as
	// a keyword is also usable as a symbol inside a set.
	tokWord
	tokInt
	tokFloat
	tokString // double-quoted, Go escaping
	tokGE     // >=
	tokLE     // <=
	tokEQ     // =
	tokDotDot // ..
	tokLBrace
	tokRBrace
	tokComma
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokWord:
		return "word"
	case tokInt:
		return "integer"
	case tokFloat:
		return "number"
	case tokString:
		return "quoted symbol"
	case tokGE:
		return `">="`
	case tokLE:
		return `"<="`
	case tokEQ:
		return `"="`
	case tokDotDot:
		return `".."`
	case tokLBrace:
		return `"{"`
	case tokRBrace:
		return `"}"`
	case tokComma:
		return `","`
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its byte position (for error messages).
type token struct {
	kind tokKind
	pos  int
	text string  // word/string contents (unquoted), or raw number text
	i    int64   // tokInt value
	f    float64 // tokFloat value
}

// Error is a query compilation failure with the byte offset it points at.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("query: column %d: %s", e.Pos+1, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// isWordRune reports whether r may appear in a bare word token.
func isWordRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexer scans a query string into tokens. Queries are short (one line), so
// it lexes eagerly into a slice the parser indexes.
type lexer struct {
	src string
	pos int
}

// lex scans the whole query, returning the token stream ending in tokEOF.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	var toks []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		if c := lx.src[lx.pos]; c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	switch c := lx.src[lx.pos]; {
	case c == '{':
		lx.pos++
		return token{kind: tokLBrace, pos: start}, nil
	case c == '}':
		lx.pos++
		return token{kind: tokRBrace, pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tokEQ, pos: start}, nil
	case c == '>' || c == '<':
		if lx.pos+1 >= len(lx.src) || lx.src[lx.pos+1] != '=' {
			return token{}, errAt(start, "expected %q or %q, found %q", ">=", "<=", string(c))
		}
		lx.pos += 2
		if c == '>' {
			return token{kind: tokGE, pos: start}, nil
		}
		return token{kind: tokLE, pos: start}, nil
	case c == '.':
		if lx.pos+1 >= len(lx.src) || lx.src[lx.pos+1] != '.' {
			return token{}, errAt(start, "unexpected %q", ".")
		}
		lx.pos += 2
		return token{kind: tokDotDot, pos: start}, nil
	case c == '"':
		return lx.lexString()
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	default:
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if r == utf8.RuneError && size <= 1 {
			return token{}, errAt(start, "invalid UTF-8")
		}
		if !isWordRune(r) {
			return token{}, errAt(start, "unexpected character %q", r)
		}
		return lx.lexWord()
	}
}

// lexWord scans a run of word runes. A word starting with a digit is lexed
// by lexNumber instead, so numbers and words cannot collide.
func (lx *lexer) lexWord() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isWordRune(r) {
			break
		}
		lx.pos += size
	}
	return token{kind: tokWord, pos: start, text: lx.src[start:lx.pos]}, nil
}

// lexNumber scans an integer or a decimal float. A '.' is part of the
// number only when followed by a digit; ".." always terminates the integer,
// so "2..512" lexes as INT DOTDOT INT.
func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	digits := func() {
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	digits()
	isFloat := false
	if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
		isFloat = true
		lx.pos++
		digits()
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		mark := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			isFloat = true
			digits()
		} else {
			lx.pos = mark // "7eggs": the exponent didn't materialize
		}
	}
	text := lx.src[start:lx.pos]
	if lx.pos < len(lx.src) {
		if r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:]); isWordRune(r) {
			return token{}, errAt(start, "malformed number %q", text+string(r))
		}
	}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errAt(start, "malformed number %q", text)
		}
		return token{kind: tokFloat, pos: start, text: text, f: f}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, errAt(start, "integer %q out of range", text)
	}
	return token{kind: tokInt, pos: start, text: text, i: i}, nil
}

// lexString scans a double-quoted symbol with Go escape sequences.
func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	i := lx.pos + 1
	for i < len(lx.src) {
		switch lx.src[i] {
		case '\\':
			i += 2
			continue
		case '"':
			raw := lx.src[start : i+1]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return token{}, errAt(start, "malformed quoted symbol %s", raw)
			}
			lx.pos = i + 1
			return token{kind: tokString, pos: start, text: s}, nil
		}
		i++
	}
	return token{}, errAt(start, "unterminated quoted symbol")
}
