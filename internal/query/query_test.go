package query

import (
	"encoding/json"
	"strings"
	"testing"

	"periodica/internal/obs"
)

func cacheHits() int64 { return obs.Query().CacheHits.Value() }

func mustCompile(t *testing.T, src string) Spec {
	t.Helper()
	sp, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return sp
}

func TestCompileFullQuery(t *testing.T) {
	sp := mustCompile(t, `conf >= 0.8 and period in 2..512 and pairs >= 3 and `+
		`symbol in {b, a} and maximal only and pattern period <= 64 and patterns <= 500 and `+
		`engine fft and limit 100 by conf and levels 5 and discretize sax and workers 8`)
	want := Spec{
		Threshold: 0.8, MinPeriod: 2, MaxPeriod: 512, MinPairs: 3,
		Symbols: []string{"a", "b"}, MaximalOnly: true,
		MaxPatternPeriod: 64, MaxPatterns: 500, Engine: EngineFFT,
		Limit: 100, LimitBy: LimitByConf, Levels: 5, Discretize: DiscretizeSAX,
		Workers: 8,
	}
	if !sp.Equal(&want) {
		t.Fatalf("compiled spec = %+v, want %+v", sp, want)
	}
}

func TestCompileForms(t *testing.T) {
	cases := []struct {
		src  string
		want Spec
	}{
		{"conf >= 0.5", Spec{Threshold: 0.5}},
		{"conf >= 1", Spec{Threshold: 1}},
		{"confidence >= 0.25", Spec{Threshold: 0.25}},
		{"conf >= 0.5 and period >= 7", Spec{Threshold: 0.5, MinPeriod: 7}},
		{"conf >= 0.5 and period <= 100", Spec{Threshold: 0.5, MaxPeriod: 100}},
		{"conf >= 0.5 and period = 24", Spec{Threshold: 0.5, MinPeriod: 24, MaxPeriod: 24}},
		{"conf >= 0.5 and pattern period off", Spec{Threshold: 0.5, MaxPatternPeriod: -1}},
		{`conf >= 0.5 and symbol in {"a b", c}`, Spec{Threshold: 0.5, Symbols: []string{"a b", "c"}}},
		{"conf >= 0.5 and symbols in {x}", Spec{Threshold: 0.5, Symbols: []string{"x"}}},
		{"conf >= 0.5 and limit 10 by confidence", Spec{Threshold: 0.5, Limit: 10, LimitBy: LimitByConf}},
		{"conf >= 0.5 and limit 10 by support", Spec{Threshold: 0.5, Limit: 10, LimitBy: LimitBySupport}},
		{"conf>=0.5 and period in 2..4", Spec{Threshold: 0.5, MinPeriod: 2, MaxPeriod: 4}},
	}
	for _, tc := range cases {
		sp, err := Compile(tc.src)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.src, err)
			continue
		}
		if !sp.Equal(&tc.want) {
			t.Errorf("Compile(%q) = %+v, want %+v", tc.src, sp, tc.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "expected a clause"},
		{"period in 2..4", "missing conf clause"},
		{"conf >= 0", "outside (0,1]"},
		{"conf >= 1.5", "outside (0,1]"},
		{"conf >= 0.5 and conf >= 0.6", "duplicate conf clause"},
		{"conf >= 0.5 and period in 9..3", "empty period range"},
		{"conf >= 0.5 and period in 2.5..7", "must be an integer"},
		{"conf >= 0.5 and period in 0..7", "at least 1"},
		{"conf >= 0.5 and engine gpu", "unknown engine"},
		{"conf >= 0.5 and limit 10 by size", "unknown limit ordering"},
		{"conf >= 0.5 and limit 0 by conf", "at least 1"},
		{"conf >= 0.5 and symbol in {}", "empty symbol set"},
		{"conf >= 0.5 and symbol in {a, a}", "duplicate symbol"},
		{"conf >= 0.5 and levels 1", "levels"},
		{"conf >= 0.5 and levels 99", "levels"},
		{"conf >= 0.5 and discretize zscore", "unknown discretization"},
		{"conf >= 0.5 and frobnicate 3", "unknown clause"},
		{"conf >= 0.5 extra", `expected "and"`},
		{"conf <= 0.5", `conf takes ">="`},
		{"conf >= 0.5 and maximal", `expected "only"`},
		{`conf >= 0.5 and symbol in {"unterminated`, "unterminated quoted symbol"},
		{"conf >= 0.5 and period in 2..", "expected a number"},
		{"conf >= 0.5 and workers 0", "at least 1"},
		{"conf >= 0.5 and pairs >= 99999999999999999999", "out of range"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil {
			t.Errorf("Compile(%q): expected error containing %q, got nil", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Compile(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

// TestRenderFixedPoint pins the canonical-form contract: compiling a
// rendered Spec yields the same Spec and the same rendering.
func TestRenderFixedPoint(t *testing.T) {
	srcs := []string{
		"conf >= 0.8",
		"conf >= 0.8 and period in 2..512 and engine fft",
		"conf >= 0.5 and period = 24 and maximal only",
		`conf >= 0.5 and symbol in {"a b", z, c} and limit 5 by period`,
		"conf >= 0.3333333333333333 and pairs >= 2 and pattern period off and workers 3",
		"confidence >= 0.25 and levels 7 and discretize width and patterns <= 17",
	}
	for _, src := range srcs {
		sp := mustCompile(t, src)
		canon := sp.Render()
		sp2, err := Compile(canon)
		if err != nil {
			t.Errorf("recompiling canonical %q: %v", canon, err)
			continue
		}
		if !sp.Equal(&sp2) {
			t.Errorf("canonical round trip of %q: %+v != %+v", src, sp, sp2)
		}
		if again := sp2.Render(); again != canon {
			t.Errorf("render not stable: %q then %q", canon, again)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	sp := mustCompile(t, "conf >= 0.6")
	norm, err := sp.Normalize(1000)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Threshold: 0.6, MinPeriod: 1, MaxPeriod: 500,
		MaxPatternPeriod: 128, MaxPatterns: 10000, MinPairs: 1, Engine: EngineAuto}
	if !norm.Equal(&want) {
		t.Fatalf("Normalize = %+v, want %+v", norm, want)
	}
}

func TestNormalizeRejectsRangeBeyondSeries(t *testing.T) {
	sp := mustCompile(t, "conf >= 0.6 and period in 2..600")
	if _, err := sp.Normalize(100); err == nil ||
		!strings.Contains(err.Error(), "invalid period range [2,600] for n=100") {
		t.Fatalf("Normalize error = %v, want period-range failure", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{},
		{Threshold: 1.5},
		{Threshold: 0.5, MinPeriod: -1},
		{Threshold: 0.5, MinPeriod: 5, MaxPeriod: 2},
		{Threshold: 0.5, Engine: "gpu"},
		{Threshold: 0.5, MinPairs: -2},
		{Threshold: 0.5, Limit: 5},
		{Threshold: 0.5, LimitBy: LimitByConf},
		{Threshold: 0.5, Limit: 5, LimitBy: "size"},
		{Threshold: 0.5, Levels: 1},
		{Threshold: 0.5, Discretize: "zscore"},
		{Threshold: 0.5, Workers: -1},
		{Threshold: 0.5, Symbols: []string{"b", "a"}},
		{Threshold: 0.5, Symbols: []string{"a", "a"}},
		{Threshold: 0.5, Symbols: []string{""}},
	}
	for _, sp := range cases {
		if err := sp.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", sp)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	sp := mustCompile(t, "conf >= 0.8 and period in 2..64 and symbol in {a, b} and limit 3 by conf")
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !sp.Equal(&back) {
		t.Fatalf("JSON round trip: %+v != %+v", sp, back)
	}
}

func TestCompileCache(t *testing.T) {
	src := "conf >= 0.123456 and period in 3..33"
	hits0 := cacheHits()
	first := mustCompile(t, src)
	second := mustCompile(t, src)
	if !first.Equal(&second) {
		t.Fatal("cached compile differs from fresh compile")
	}
	if got := cacheHits(); got <= hits0 {
		t.Fatalf("expected a cache hit on recompile; hits %d -> %d", hits0, got)
	}
	// Mutating the returned value must not poison the cache.
	second.Threshold = 0.999
	third := mustCompile(t, src)
	if third.Threshold != first.Threshold {
		t.Fatal("cache returned a mutated spec")
	}
}

func TestNormalizeSymbols(t *testing.T) {
	got := NormalizeSymbols([]string{"c", "a", "c", "b", "a"})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("NormalizeSymbols = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeSymbols = %v, want %v", got, want)
		}
	}
	if NormalizeSymbols(nil) != nil {
		t.Fatal("NormalizeSymbols(nil) should be nil")
	}
}
