package query

// The parser turns the token stream into a clause list — the query AST.
// It is purely syntactic: it knows each selector's shape ("conf" takes a
// comparison, "symbol" takes a set, "maximal" takes the word "only") but
// leaves literal types, value ranges, enum spellings, and duplicate
// detection to the typechecker, so a query that parses but means nothing
// still gets a precise, positioned error.

// clauseKind enumerates the query language's clause forms.
type clauseKind int

const (
	clauseConf clauseKind = iota
	clausePeriod
	clausePairs
	clauseSymbol
	clauseMaximal
	clauseLimit
	clauseEngine
	clausePatternPeriod
	clausePatterns
	clauseLevels
	clauseDiscretize
	clauseWorkers
)

// clauseName maps a kind back to its selector spelling for error messages.
func (k clauseKind) String() string {
	switch k {
	case clauseConf:
		return "conf"
	case clausePeriod:
		return "period"
	case clausePairs:
		return "pairs"
	case clauseSymbol:
		return "symbol"
	case clauseMaximal:
		return "maximal only"
	case clauseLimit:
		return "limit"
	case clauseEngine:
		return "engine"
	case clausePatternPeriod:
		return "pattern period"
	case clausePatterns:
		return "patterns"
	case clauseLevels:
		return "levels"
	case clauseDiscretize:
		return "discretize"
	case clauseWorkers:
		return "workers"
	}
	return "clause"
}

// numLit is a numeric literal with enough type information for the checker
// to distinguish integers from floats.
type numLit struct {
	pos     int
	isFloat bool
	f       float64
	i       int64
}

// value returns the literal as a float regardless of lexical type.
func (n numLit) value() float64 {
	if n.isFloat {
		return n.f
	}
	return float64(n.i)
}

// symLit is one symbol in a set literal.
type symLit struct {
	pos  int
	text string
}

// clause is one parsed query clause.
type clause struct {
	kind    clauseKind
	pos     int
	op      string // ">=", "<=", "=", "in", "off", or "" for bare clauses
	args    []numLit
	word    string // engine name / limit ordering / discretization scheme
	wordPos int
	set     []symLit
}

// parser consumes the token stream.
type parser struct {
	toks []token
	i    int
}

func parse(src string) ([]clause, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var clauses []clause
	for {
		cl, err := p.clause()
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, cl)
		switch tok := p.peek(); {
		case tok.kind == tokEOF:
			return clauses, nil
		case tok.kind == tokWord && tok.text == "and":
			p.i++
		default:
			return nil, errAt(tok.pos, `expected "and" or end of query, found %s`, describe(tok))
		}
	}
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) take() token {
	tok := p.toks[p.i]
	if tok.kind != tokEOF {
		p.i++
	}
	return tok
}

// describe renders a token for an error message.
func describe(tok token) string {
	switch tok.kind {
	case tokWord:
		return `"` + tok.text + `"`
	case tokInt, tokFloat:
		return tok.text
	case tokString:
		return "quoted symbol"
	default:
		return tok.kind.String()
	}
}

// number expects a numeric literal.
func (p *parser) number() (numLit, error) {
	tok := p.take()
	switch tok.kind {
	case tokInt:
		return numLit{pos: tok.pos, i: tok.i}, nil
	case tokFloat:
		return numLit{pos: tok.pos, isFloat: true, f: tok.f}, nil
	}
	return numLit{}, errAt(tok.pos, "expected a number, found %s", describe(tok))
}

// word expects a bare word.
func (p *parser) word() (token, error) {
	tok := p.take()
	if tok.kind != tokWord {
		return tok, errAt(tok.pos, "expected a word, found %s", describe(tok))
	}
	return tok, nil
}

// keyword expects the exact word want.
func (p *parser) keyword(want string) error {
	tok := p.take()
	if tok.kind != tokWord || tok.text != want {
		return errAt(tok.pos, "expected %q, found %s", want, describe(tok))
	}
	return nil
}

// clause parses one clause, dispatching on its selector word.
func (p *parser) clause() (clause, error) {
	sel, err := p.word()
	if err != nil {
		return clause{}, errAt(sel.pos, "expected a clause (conf, period, symbol, …), found %s", describe(sel))
	}
	switch sel.text {
	case "conf", "confidence":
		return p.comparison(clauseConf, sel.pos, tokGE)
	case "period":
		return p.periodClause(sel.pos)
	case "pairs":
		return p.comparison(clausePairs, sel.pos, tokGE)
	case "symbol", "symbols":
		return p.symbolClause(sel.pos)
	case "maximal":
		if err := p.keyword("only"); err != nil {
			return clause{}, err
		}
		return clause{kind: clauseMaximal, pos: sel.pos}, nil
	case "limit":
		return p.limitClause(sel.pos)
	case "engine":
		return p.wordClause(clauseEngine, sel.pos)
	case "pattern":
		if err := p.keyword("period"); err != nil {
			return clause{}, err
		}
		return p.patternPeriodClause(sel.pos)
	case "patterns":
		return p.comparison(clausePatterns, sel.pos, tokLE)
	case "levels":
		return p.bareNumberClause(clauseLevels, sel.pos)
	case "discretize":
		return p.wordClause(clauseDiscretize, sel.pos)
	case "workers":
		return p.bareNumberClause(clauseWorkers, sel.pos)
	}
	return clause{}, errAt(sel.pos, "unknown clause %q", sel.text)
}

// comparison parses `sel <op> number` where the only accepted operator is
// wantOp (conf and pairs are lower bounds, patterns an upper bound).
func (p *parser) comparison(kind clauseKind, pos int, wantOp tokKind) (clause, error) {
	op := p.take()
	if op.kind != wantOp {
		return clause{}, errAt(op.pos, "%s takes %s, found %s", kind, wantOp, describe(op))
	}
	n, err := p.number()
	if err != nil {
		return clause{}, err
	}
	opText := ">="
	if wantOp == tokLE {
		opText = "<="
	}
	return clause{kind: kind, pos: pos, op: opText, args: []numLit{n}}, nil
}

// periodClause parses `period in a..b`, `period >= a`, `period <= b`, or
// `period = p`.
func (p *parser) periodClause(pos int) (clause, error) {
	switch op := p.take(); op.kind {
	case tokWord:
		if op.text != "in" {
			return clause{}, errAt(op.pos, `period takes "in", ">=", "<=", or "=", found %s`, describe(op))
		}
		lo, err := p.number()
		if err != nil {
			return clause{}, err
		}
		if tok := p.take(); tok.kind != tokDotDot {
			return clause{}, errAt(tok.pos, `expected ".." in period range, found %s`, describe(tok))
		}
		hi, err := p.number()
		if err != nil {
			return clause{}, err
		}
		return clause{kind: clausePeriod, pos: pos, op: "in", args: []numLit{lo, hi}}, nil
	case tokGE, tokLE, tokEQ:
		n, err := p.number()
		if err != nil {
			return clause{}, err
		}
		opText := map[tokKind]string{tokGE: ">=", tokLE: "<=", tokEQ: "="}[op.kind]
		return clause{kind: clausePeriod, pos: pos, op: opText, args: []numLit{n}}, nil
	default:
		return clause{}, errAt(op.pos, `period takes "in", ">=", "<=", or "=", found %s`, describe(op))
	}
}

// symbolClause parses `symbol in {a, b, "c"}`.
func (p *parser) symbolClause(pos int) (clause, error) {
	if err := p.keyword("in"); err != nil {
		return clause{}, err
	}
	if tok := p.take(); tok.kind != tokLBrace {
		return clause{}, errAt(tok.pos, `expected "{" to open the symbol set, found %s`, describe(tok))
	}
	var set []symLit
	for {
		tok := p.take()
		switch tok.kind {
		case tokWord, tokString:
			set = append(set, symLit{pos: tok.pos, text: tok.text})
		case tokInt:
			// Symbols may be numeric strings; reuse the raw text.
			set = append(set, symLit{pos: tok.pos, text: tok.text})
		case tokRBrace:
			if len(set) == 0 {
				return clause{}, errAt(tok.pos, "empty symbol set")
			}
			return clause{}, errAt(tok.pos, `expected a symbol, found "}"`)
		default:
			return clause{}, errAt(tok.pos, "expected a symbol, found %s", describe(tok))
		}
		switch tok := p.take(); tok.kind {
		case tokComma:
		case tokRBrace:
			return clause{kind: clauseSymbol, pos: pos, op: "in", set: set}, nil
		default:
			return clause{}, errAt(tok.pos, `expected "," or "}" in symbol set, found %s`, describe(tok))
		}
	}
}

// limitClause parses `limit N by conf|support|period`.
func (p *parser) limitClause(pos int) (clause, error) {
	n, err := p.number()
	if err != nil {
		return clause{}, err
	}
	if err := p.keyword("by"); err != nil {
		return clause{}, err
	}
	by, err := p.word()
	if err != nil {
		return clause{}, err
	}
	return clause{kind: clauseLimit, pos: pos, args: []numLit{n}, word: by.text, wordPos: by.pos}, nil
}

// wordClause parses `sel word` (engine names, discretization schemes).
func (p *parser) wordClause(kind clauseKind, pos int) (clause, error) {
	w, err := p.word()
	if err != nil {
		return clause{}, err
	}
	return clause{kind: kind, pos: pos, word: w.text, wordPos: w.pos}, nil
}

// bareNumberClause parses `sel N` (levels, workers).
func (p *parser) bareNumberClause(kind clauseKind, pos int) (clause, error) {
	n, err := p.number()
	if err != nil {
		return clause{}, err
	}
	return clause{kind: kind, pos: pos, args: []numLit{n}}, nil
}

// patternPeriodClause parses `pattern period <= P` or `pattern period off`.
func (p *parser) patternPeriodClause(pos int) (clause, error) {
	switch tok := p.take(); {
	case tok.kind == tokLE:
		n, err := p.number()
		if err != nil {
			return clause{}, err
		}
		return clause{kind: clausePatternPeriod, pos: pos, op: "<=", args: []numLit{n}}, nil
	case tok.kind == tokWord && tok.text == "off":
		return clause{kind: clausePatternPeriod, pos: pos, op: "off"}, nil
	default:
		return clause{}, errAt(tok.pos, `pattern period takes "<=" or "off", found %s`, describe(tok))
	}
}
