// Package query implements the pattern-query language: a small
// statically-typed expression language in which callers state what they want
// mined — confidence threshold, period range, symbol constraints, output
// shaping, engine and budget hints — compiled once into a canonical,
// validated, serializable Spec that every layer of the system consumes.
//
// A query is a conjunction of typed clauses:
//
//	conf >= 0.8 and period in 2..512 and symbol in {a, b} and maximal only
//
// The front end is staged classically — lexer → parser → typechecker →
// compiler — and all validation happens exactly once, here: the option
// structs of the public API, the HTTP API, and the shard wire are thin
// builders for a Spec, so defaults and error messages cannot drift between
// layers. Compile is memoized through a bounded cache (standing queries and
// shard fan-out repeat the same string), instrumented in obs.Query().
//
// The canonical form — Spec.Render — orders clauses deterministically and
// formats every literal minimally, so compile∘render is a fixed point:
// rendering a compiled Spec and compiling the result yields the same Spec.
// That is what lets the distributed coordinator put the canonical form on
// the /v1/shard wire and every worker provably run the same query.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Engine names accepted by the "engine" clause; they mirror
// core.Engine.String. The empty string means "unset" and resolves to auto.
const (
	EngineAuto   = "auto"
	EngineNaive  = "naive"
	EngineBitset = "bitset"
	EngineFFT    = "fft"
)

// Limit orderings accepted by the "limit N by ..." clause.
const (
	LimitByConf    = "conf"
	LimitBySupport = "support"
	LimitByPeriod  = "period"
)

// Discretization schemes accepted by the "discretize" clause.
const (
	DiscretizeWidth = "width"
	DiscretizeSAX   = "sax"
)

// Spec is a compiled pattern query: the one canonical description of a mine
// that every layer consumes. The zero value of each field means "use the
// default" (filled by Normalize), matching the sentinel conventions of the
// option structs the Spec replaces, so converting between them is lossless.
type Spec struct {
	// Threshold is the periodicity threshold ψ ∈ (0,1] ("conf >= ψ").
	// Required: a Spec with Threshold 0 does not validate.
	Threshold float64 `json:"threshold"`
	// MinPeriod and MaxPeriod bound candidate periods inclusively
	// ("period in a..b"); 0 defaults to 1 and n/2.
	MinPeriod int `json:"minPeriod,omitempty"`
	MaxPeriod int `json:"maxPeriod,omitempty"`
	// Engine is the evaluation strategy by name ("engine fft"); empty
	// means auto.
	Engine string `json:"engine,omitempty"`
	// MaxPatternPeriod caps multi-symbol pattern enumeration ("pattern
	// period <= p"); 0 defaults to 128, negative ("pattern period off")
	// disables multi-symbol mining.
	MaxPatternPeriod int `json:"maxPatternPeriod,omitempty"`
	// MaxPatterns caps emitted multi-symbol patterns ("patterns <= n");
	// 0 defaults to 10000.
	MaxPatterns int `json:"maxPatterns,omitempty"`
	// MaximalOnly keeps only maximal multi-symbol patterns ("maximal
	// only").
	MaximalOnly bool `json:"maximalOnly,omitempty"`
	// MinPairs is the minimum projection-pair count behind a periodicity
	// ("pairs >= k"); 0 defaults to 1, the paper's semantics.
	MinPairs int `json:"minPairs,omitempty"`
	// Symbols, when non-empty, restricts results to periodicities and
	// patterns over these symbols ("symbol in {a, b}"); sorted, distinct.
	Symbols []string `json:"symbols,omitempty"`
	// Limit caps the result to the top Limit entries under the LimitBy
	// ordering ("limit 100 by conf"); 0 means unlimited.
	Limit   int    `json:"limit,omitempty"`
	LimitBy string `json:"limitBy,omitempty"`
	// Levels and Discretize choose how numeric input is symbolized
	// ("levels 5 and discretize sax"); 0/"" mean the consumer's default.
	Levels     int    `json:"levels,omitempty"`
	Discretize string `json:"discretize,omitempty"`
	// Workers is a parallelism hint for entry points that accept one
	// ("workers 8"); 0 means the runtime decides.
	Workers int `json:"workers,omitempty"`
}

// validEngine reports whether name is a known engine spelling ("" = unset).
func validEngine(name string) bool {
	switch name {
	case "", EngineAuto, EngineNaive, EngineBitset, EngineFFT:
		return true
	}
	return false
}

// Validate checks every series-length-independent invariant of the Spec.
// This is the single validator the option structs of all layers funnel
// through; Normalize adds the length-dependent checks and the defaults.
func (sp *Spec) Validate() error {
	if sp.Threshold <= 0 || sp.Threshold > 1 {
		return fmt.Errorf("threshold ψ=%v outside (0,1]", sp.Threshold)
	}
	if sp.MinPeriod < 0 {
		return fmt.Errorf("min period %d negative", sp.MinPeriod)
	}
	if sp.MaxPeriod < 0 {
		return fmt.Errorf("max period %d negative", sp.MaxPeriod)
	}
	if sp.MinPeriod > 0 && sp.MaxPeriod > 0 && sp.MinPeriod > sp.MaxPeriod {
		return fmt.Errorf("invalid period range [%d,%d]", sp.MinPeriod, sp.MaxPeriod)
	}
	if !validEngine(sp.Engine) {
		return fmt.Errorf("unknown engine %q", sp.Engine)
	}
	if sp.MaxPatterns < 0 {
		return fmt.Errorf("patterns cap %d negative", sp.MaxPatterns)
	}
	if sp.MinPairs < 0 {
		return fmt.Errorf("MinPairs %d < 1", sp.MinPairs)
	}
	if sp.Limit < 0 {
		return fmt.Errorf("limit %d negative", sp.Limit)
	}
	switch sp.LimitBy {
	case "":
		if sp.Limit > 0 {
			return fmt.Errorf("limit %d has no ordering; add \"by conf\", \"by support\", or \"by period\"", sp.Limit)
		}
	case LimitByConf, LimitBySupport, LimitByPeriod:
		if sp.Limit == 0 {
			return fmt.Errorf("limit ordering %q without a limit", sp.LimitBy)
		}
	default:
		return fmt.Errorf("unknown limit ordering %q", sp.LimitBy)
	}
	if sp.Levels < 0 {
		return fmt.Errorf("levels must be non-negative, got %d", sp.Levels)
	}
	if sp.Levels != 0 && (sp.Levels < 2 || sp.Levels > 26) {
		return fmt.Errorf("levels %d outside 2..26", sp.Levels)
	}
	switch sp.Discretize {
	case "", DiscretizeWidth, DiscretizeSAX:
	default:
		return fmt.Errorf("unknown discretization %q", sp.Discretize)
	}
	if sp.Workers < 0 {
		return fmt.Errorf("workers %d negative", sp.Workers)
	}
	for i, sym := range sp.Symbols {
		if sym == "" {
			return fmt.Errorf("empty symbol in symbol set")
		}
		if i > 0 && sp.Symbols[i-1] >= sym {
			return fmt.Errorf("symbol set not sorted and distinct at %q", sym)
		}
	}
	return nil
}

// Normalize validates the Spec against a series of length n and fills every
// default, returning the fully resolved Spec. It is the one place defaults
// live: core.Options.withDefaults, the HTTP layers, and the distributed
// coordinator all delegate here, so a default changed here changes
// everywhere at once. The error messages are stable — core wraps them with
// its package prefix unchanged.
func (sp Spec) Normalize(n int) (Spec, error) {
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	if sp.MinPeriod == 0 {
		sp.MinPeriod = 1
	}
	if sp.MaxPeriod == 0 {
		sp.MaxPeriod = n / 2
	}
	if sp.MinPeriod < 1 || sp.MaxPeriod > n || sp.MinPeriod > sp.MaxPeriod {
		return sp, fmt.Errorf("invalid period range [%d,%d] for n=%d", sp.MinPeriod, sp.MaxPeriod, n)
	}
	if sp.MaxPatternPeriod == 0 {
		sp.MaxPatternPeriod = 128
	}
	if sp.MaxPatterns == 0 {
		sp.MaxPatterns = 10000
	}
	if sp.MinPairs == 0 {
		sp.MinPairs = 1
	}
	if sp.Engine == "" {
		sp.Engine = EngineAuto
	}
	return sp, nil
}

// NormalizeSymbols sorts and dedupes a symbol set into the canonical order
// Validate requires.
func NormalizeSymbols(symbols []string) []string {
	if len(symbols) == 0 {
		return nil
	}
	out := append([]string(nil), symbols...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// bareSymbol reports whether a symbol renders unquoted: it must lex back as
// exactly the single word or integer token it came from (a digit-led word
// like "0A" reads as a malformed number, so it must be quoted).
func bareSymbol(s string) bool {
	toks, err := lex(s)
	if err != nil || len(toks) != 2 {
		return false
	}
	switch toks[0].kind {
	case tokWord, tokInt:
		return toks[0].text == s
	}
	return false
}

// formatFloat renders a float minimally and round-trip exactly, so the
// canonical form re-compiles to the identical Spec.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Render writes the Spec in canonical query form: clauses in a fixed order,
// defaults omitted, every literal formatted minimally. Compiling the
// rendered string yields the same Spec (the fixed point FuzzQueryParse
// pins), and the rendered string is what travels on the /v1/shard wire.
func (sp *Spec) Render() string {
	var cl []string
	add := func(format string, args ...any) {
		cl = append(cl, fmt.Sprintf(format, args...))
	}
	add("conf >= %s", formatFloat(sp.Threshold))
	switch {
	case sp.MinPeriod > 0 && sp.MaxPeriod > 0 && sp.MinPeriod == sp.MaxPeriod:
		add("period = %d", sp.MinPeriod)
	case sp.MinPeriod > 0 && sp.MaxPeriod > 0:
		add("period in %d..%d", sp.MinPeriod, sp.MaxPeriod)
	case sp.MinPeriod > 0:
		add("period >= %d", sp.MinPeriod)
	case sp.MaxPeriod > 0:
		add("period <= %d", sp.MaxPeriod)
	}
	if sp.MinPairs > 0 {
		add("pairs >= %d", sp.MinPairs)
	}
	if len(sp.Symbols) > 0 {
		quoted := make([]string, len(sp.Symbols))
		for i, s := range sp.Symbols {
			if bareSymbol(s) {
				quoted[i] = s
			} else {
				quoted[i] = strconv.Quote(s)
			}
		}
		add("symbol in {%s}", strings.Join(quoted, ", "))
	}
	if sp.MaximalOnly {
		cl = append(cl, "maximal only")
	}
	if sp.MaxPatternPeriod < 0 {
		cl = append(cl, "pattern period off")
	} else if sp.MaxPatternPeriod > 0 {
		add("pattern period <= %d", sp.MaxPatternPeriod)
	}
	if sp.MaxPatterns > 0 {
		add("patterns <= %d", sp.MaxPatterns)
	}
	if sp.Engine != "" {
		add("engine %s", sp.Engine)
	}
	if sp.Limit > 0 {
		add("limit %d by %s", sp.Limit, sp.LimitBy)
	}
	if sp.Levels > 0 {
		add("levels %d", sp.Levels)
	}
	if sp.Discretize != "" {
		add("discretize %s", sp.Discretize)
	}
	if sp.Workers > 0 {
		add("workers %d", sp.Workers)
	}
	return strings.Join(cl, " and ")
}

// Equal reports whether two Specs describe the same query.
func (sp *Spec) Equal(other *Spec) bool {
	if sp.Threshold != other.Threshold || //opvet:ignore floatcmp spec equality is identity of the written query, not numeric closeness
		sp.MinPeriod != other.MinPeriod || sp.MaxPeriod != other.MaxPeriod ||
		sp.Engine != other.Engine ||
		sp.MaxPatternPeriod != other.MaxPatternPeriod ||
		sp.MaxPatterns != other.MaxPatterns ||
		sp.MaximalOnly != other.MaximalOnly ||
		sp.MinPairs != other.MinPairs ||
		sp.Limit != other.Limit || sp.LimitBy != other.LimitBy ||
		sp.Levels != other.Levels || sp.Discretize != other.Discretize ||
		sp.Workers != other.Workers ||
		len(sp.Symbols) != len(other.Symbols) {
		return false
	}
	for i, s := range sp.Symbols {
		if other.Symbols[i] != s {
			return false
		}
	}
	return true
}
