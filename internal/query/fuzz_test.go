package query

import "testing"

// FuzzQueryParse drives arbitrary byte strings through the full front end.
// Invariants: the compiler never panics, and on every accepted input the
// canonical form is a fixed point — rendering the compiled Spec and
// compiling the rendering yields the same Spec and the same rendering.
func FuzzQueryParse(f *testing.F) {
	f.Add("conf >= 0.8 and period in 2..512")
	f.Add("conf >= 0.5 and symbol in {a, b} and maximal only and limit 100 by conf")
	f.Add(`conf >= 1 and symbol in {"a b", "\""} and engine fft`)
	f.Add("confidence >= 0.25 and pattern period off and patterns <= 7")
	f.Add("conf >= 0.5 and period = 24 and pairs >= 2 and levels 5 and discretize sax and workers 8")
	f.Add("conf >= .5")
	f.Add("conf >= 5e-1 and period in 1..1")
	f.Add("period in 2..4 and conf >= 0.9 and engine bitset")
	f.Add("conf\t>=\n0.5")
	f.Add("{}..=>=<=,")
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := compile(src) // uncached: the fuzzer must exercise the front end, not the cache
		if err != nil {
			return
		}
		canon := sp.Render()
		sp2, err := compile(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted query %q does not compile: %v", canon, src, err)
		}
		if !sp.Equal(&sp2) {
			t.Fatalf("canonical form %q compiles to a different spec:\n  first  %+v\n  second %+v", canon, sp, sp2)
		}
		if again := sp2.Render(); again != canon {
			t.Fatalf("render not a fixed point: %q then %q", canon, again)
		}
	})
}
