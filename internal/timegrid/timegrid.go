// Package timegrid turns irregular, timestamped observations — the event
// logs and sensor feeds of the paper's §2.1 — into the regular symbol or
// value grids the miner consumes: events are binned at a fixed resolution
// (empty bins get an explicit idle symbol, collisions resolve by policy),
// and numeric samples are resampled by aggregation.
package timegrid

import (
	"fmt"
	"sort"
	"time"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// Event is one timestamped nominal observation.
type Event struct {
	Time   time.Time
	Symbol string
}

// Conflict selects how multiple events in one bin resolve.
type Conflict int

const (
	// KeepFirst keeps the earliest event of the bin.
	KeepFirst Conflict = iota
	// KeepLast keeps the latest event of the bin.
	KeepLast
	// Majority keeps the bin's most frequent symbol (earliest wins ties).
	Majority
)

// Config drives Grid.
type Config struct {
	// Bin is the grid resolution; required.
	Bin time.Duration
	// Idle is the symbol assigned to bins with no event; required, and must
	// not collide with an event symbol.
	Idle string
	// Conflict resolves multi-event bins; default KeepFirst.
	Conflict Conflict
	// MaxBins guards against runaway grids from misordered timestamps;
	// default 10 million.
	MaxBins int
}

// Grid bins events into a regular symbol series spanning the first to the
// last event. The alphabet is the idle symbol followed by the distinct event
// symbols in order of first appearance.
func Grid(events []Event, cfg Config) (*series.Series, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("timegrid: no events")
	}
	if cfg.Bin <= 0 {
		return nil, fmt.Errorf("timegrid: bin duration %v must be positive", cfg.Bin)
	}
	if cfg.Idle == "" {
		return nil, fmt.Errorf("timegrid: idle symbol required")
	}
	if cfg.MaxBins == 0 {
		cfg.MaxBins = 10_000_000
	}
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	start := sorted[0].Time
	span := sorted[len(sorted)-1].Time.Sub(start)
	bins := int(span/cfg.Bin) + 1
	if bins > cfg.MaxBins {
		return nil, fmt.Errorf("timegrid: %d bins exceed the %d-bin guard", bins, cfg.MaxBins)
	}

	symbols := []string{cfg.Idle}
	index := map[string]int{cfg.Idle: 0}
	for _, e := range sorted {
		if e.Symbol == "" {
			return nil, fmt.Errorf("timegrid: empty event symbol at %v", e.Time)
		}
		if e.Symbol == cfg.Idle {
			return nil, fmt.Errorf("timegrid: event symbol collides with idle symbol %q", cfg.Idle)
		}
		if _, ok := index[e.Symbol]; !ok {
			index[e.Symbol] = len(symbols)
			symbols = append(symbols, e.Symbol)
		}
	}
	alpha, err := alphabet.New(symbols...)
	if err != nil {
		return nil, err
	}

	grid := make([]uint16, bins) // zero value = idle
	switch cfg.Conflict {
	case KeepFirst:
		filled := make([]bool, bins)
		for _, e := range sorted {
			b := int(e.Time.Sub(start) / cfg.Bin)
			if !filled[b] {
				filled[b] = true
				grid[b] = uint16(index[e.Symbol])
			}
		}
	case KeepLast:
		for _, e := range sorted {
			b := int(e.Time.Sub(start) / cfg.Bin)
			grid[b] = uint16(index[e.Symbol])
		}
	case Majority:
		counts := map[int]map[uint16]int{}
		order := map[int][]uint16{}
		for _, e := range sorted {
			b := int(e.Time.Sub(start) / cfg.Bin)
			k := uint16(index[e.Symbol])
			if counts[b] == nil {
				counts[b] = map[uint16]int{}
			}
			if counts[b][k] == 0 {
				order[b] = append(order[b], k)
			}
			counts[b][k]++
		}
		for b, bySym := range counts {
			best, bestCount := uint16(0), 0
			for _, k := range order[b] {
				if bySym[k] > bestCount {
					best, bestCount = k, bySym[k]
				}
			}
			grid[b] = best
		}
	default:
		return nil, fmt.Errorf("timegrid: unknown conflict policy %d", cfg.Conflict)
	}
	return series.FromIndices(alpha, grid), nil
}

// Sample is one timestamped numeric observation.
type Sample struct {
	Time  time.Time
	Value float64
}

// Aggregate selects how a bin's samples combine.
type Aggregate int

const (
	Mean Aggregate = iota
	Sum
	Max
	Count
)

// GridValues resamples irregular numeric samples onto a regular grid;
// bins with no sample hold the previous bin's value (or 0 before the first
// sample under Sum/Count, which are additive).
func GridValues(samples []Sample, bin time.Duration, agg Aggregate) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("timegrid: no samples")
	}
	if bin <= 0 {
		return nil, fmt.Errorf("timegrid: bin duration %v must be positive", bin)
	}
	sorted := append([]Sample(nil), samples...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	start := sorted[0].Time
	bins := int(sorted[len(sorted)-1].Time.Sub(start)/bin) + 1

	sums := make([]float64, bins)
	maxs := make([]float64, bins)
	counts := make([]int, bins)
	for _, s := range sorted {
		b := int(s.Time.Sub(start) / bin)
		sums[b] += s.Value
		if counts[b] == 0 || s.Value > maxs[b] {
			maxs[b] = s.Value
		}
		counts[b]++
	}
	out := make([]float64, bins)
	var last float64
	for b := range out {
		switch agg {
		case Mean:
			if counts[b] > 0 {
				last = sums[b] / float64(counts[b])
			}
			out[b] = last
		case Max:
			if counts[b] > 0 {
				last = maxs[b]
			}
			out[b] = last
		case Sum:
			out[b] = sums[b]
		case Count:
			out[b] = float64(counts[b])
		default:
			return nil, fmt.Errorf("timegrid: unknown aggregate %d", agg)
		}
	}
	return out, nil
}
