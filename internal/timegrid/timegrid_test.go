package timegrid

import (
	"testing"
	"time"

	"periodica/internal/core"
)

var t0 = time.Date(2004, 3, 14, 0, 0, 0, 0, time.UTC)

func at(minutes int) time.Time { return t0.Add(time.Duration(minutes) * time.Minute) }

func TestGridBasic(t *testing.T) {
	events := []Event{
		{at(0), "x"}, {at(2), "y"}, {at(5), "x"},
	}
	s, err := Grid(events, Config{Bin: time.Minute, Idle: "-"})
	if err != nil {
		t.Fatal(err)
	}
	// Bins 0..5: x, idle, y, idle, idle, x.
	want := []string{"x", "-", "y", "-", "-", "x"}
	if s.Len() != len(want) {
		t.Fatalf("len = %d, want %d", s.Len(), len(want))
	}
	for i, sym := range want {
		if got := s.Alphabet().Symbol(s.At(i)); got != sym {
			t.Fatalf("bin %d = %q, want %q", i, got, sym)
		}
	}
}

func TestGridConflictPolicies(t *testing.T) {
	events := []Event{
		{at(0), "a"}, {at(0), "b"}, {at(0), "b"},
	}
	cases := map[Conflict]string{KeepFirst: "a", KeepLast: "b", Majority: "b"}
	for policy, want := range cases {
		s, err := Grid(events, Config{Bin: time.Minute, Idle: "-", Conflict: policy})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Alphabet().Symbol(s.At(0)); got != want {
			t.Fatalf("policy %d: bin 0 = %q, want %q", policy, got, want)
		}
	}
}

func TestGridUnsortedInput(t *testing.T) {
	events := []Event{
		{at(5), "b"}, {at(0), "a"},
	}
	s, err := Grid(events, Config{Bin: time.Minute, Idle: "."})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 || s.Alphabet().Symbol(s.At(0)) != "a" || s.Alphabet().Symbol(s.At(5)) != "b" {
		t.Fatalf("unsorted events gridded wrong: %v", s)
	}
}

func TestGridValidates(t *testing.T) {
	ok := []Event{{at(0), "a"}}
	if _, err := Grid(nil, Config{Bin: time.Minute, Idle: "-"}); err == nil {
		t.Fatal("no events: want error")
	}
	if _, err := Grid(ok, Config{Bin: 0, Idle: "-"}); err == nil {
		t.Fatal("bin 0: want error")
	}
	if _, err := Grid(ok, Config{Bin: time.Minute}); err == nil {
		t.Fatal("missing idle: want error")
	}
	if _, err := Grid([]Event{{at(0), "-"}}, Config{Bin: time.Minute, Idle: "-"}); err == nil {
		t.Fatal("idle collision: want error")
	}
	if _, err := Grid([]Event{{at(0), ""}}, Config{Bin: time.Minute, Idle: "-"}); err == nil {
		t.Fatal("empty symbol: want error")
	}
	far := []Event{{at(0), "a"}, {at(1000000), "a"}}
	if _, err := Grid(far, Config{Bin: time.Minute, Idle: "-", MaxBins: 100}); err == nil {
		t.Fatal("bin guard: want error")
	}
}

func TestGridFeedsMiner(t *testing.T) {
	// A job every 15 minutes for a day, logged with jitter-free timestamps;
	// binned at 1 minute, the miner finds period 15.
	var events []Event
	for m := 0; m < 24*60; m += 15 {
		events = append(events, Event{at(m), "job"})
	}
	events = append(events, Event{at(24*60 - 1), "noise"})
	s, err := Grid(events, Config{Bin: time.Minute, Idle: "idle"})
	if err != nil {
		t.Fatal(err)
	}
	if conf := core.PeriodConfidence(s, 15); conf < 0.95 {
		t.Fatalf("period 15 confidence %v from gridded events", conf)
	}
}

func TestGridValuesMean(t *testing.T) {
	samples := []Sample{
		{at(0), 10}, {at(0), 20}, {at(2), 30},
	}
	out, err := GridValues(samples, time.Minute, Mean)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 15, 30} // empty bin 1 carries the last mean
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestGridValuesSumAndCount(t *testing.T) {
	samples := []Sample{
		{at(0), 10}, {at(0), 20}, {at(2), 30},
	}
	sum, err := GridValues(samples, time.Minute, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 30 || sum[1] != 0 || sum[2] != 30 {
		t.Fatalf("sum = %v", sum)
	}
	count, err := GridValues(samples, time.Minute, Count)
	if err != nil {
		t.Fatal(err)
	}
	if count[0] != 2 || count[1] != 0 || count[2] != 1 {
		t.Fatalf("count = %v", count)
	}
}

func TestGridValuesMax(t *testing.T) {
	samples := []Sample{
		{at(0), -5}, {at(0), -2}, {at(1), 7},
	}
	out, err := GridValues(samples, time.Minute, Max)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != -2 || out[1] != 7 {
		t.Fatalf("max = %v", out)
	}
}

func TestGridValuesValidates(t *testing.T) {
	if _, err := GridValues(nil, time.Minute, Mean); err == nil {
		t.Fatal("no samples: want error")
	}
	if _, err := GridValues([]Sample{{at(0), 1}}, 0, Mean); err == nil {
		t.Fatal("bin 0: want error")
	}
	if _, err := GridValues([]Sample{{at(0), 1}}, time.Minute, Aggregate(99)); err == nil {
		t.Fatal("unknown aggregate: want error")
	}
}
