package periodogram

import (
	"testing"

	"periodica/internal/core"
	"periodica/internal/gen"
	"periodica/internal/series"
)

func hasPeriodNear(cands []Candidate, p, slack int) bool {
	for _, c := range cands {
		if c.Period >= p-slack && c.Period <= p+slack {
			return true
		}
		// Multiples of the fundamental are equally valid spectral answers.
		if c.Period%p == 0 {
			return true
		}
	}
	return false
}

func TestDetectEmbeddedPeriodClean(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 4096, Period: 32, Sigma: 8, Dist: gen.Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Detect(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on perfectly periodic data")
	}
	if !hasPeriodNear(cands, 32, 0) {
		t.Fatalf("period 32 (or multiple) missing: %+v", cands)
	}
}

func TestDetectEmbeddedPeriodNoisy(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 8192, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Detect(s, Config{PowerFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPeriodNear(cands, 25, 1) {
		t.Fatalf("period 25 missing under noise: %+v", cands)
	}
}

func TestDetectAgreesWithMiner(t *testing.T) {
	// On the Wal-Mart-like daily data both the spectral method and the
	// convolution miner must surface the 24-hour rhythm; only the miner also
	// yields positions and symbols (checked elsewhere).
	s, _, err := gen.Generate(gen.Config{Length: 24 * 200, Period: 24, Sigma: 6, Dist: gen.Normal,
		Noise: gen.Replacement, NoiseRatio: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Detect(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPeriodNear(cands, 24, 0) {
		t.Fatalf("spectral method missed period 24: %+v", cands)
	}
	if conf := core.PeriodConfidence(s, 24); conf < 0.8 {
		t.Fatalf("miner confidence %v at period 24", conf)
	}
}

func TestDetectConstantSeries(t *testing.T) {
	s := series.FromString("aaaaaaaaaaaaaaaa")
	cands, err := Detect(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("constant series produced candidates: %+v", cands)
	}
}

func TestDetectValidates(t *testing.T) {
	s := series.FromString("ab")
	if _, err := Detect(s, Config{}); err == nil {
		t.Fatal("n=2: want error")
	}
	long := series.FromString("abcabcabcabc")
	if _, err := Detect(long, Config{MaxPeriod: 100}); err == nil {
		t.Fatal("maxPeriod ≥ n: want error")
	}
}

func TestPowerPeakLocation(t *testing.T) {
	// Pure period-16 data of power-of-two length: the padded length equals
	// n, so the dominant frequency bin is exactly m/16.
	s, _, err := gen.Generate(gen.Config{Length: 1024, Period: 16, Sigma: 6, Dist: gen.Uniform, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	power, m := Power(s)
	if m != 1024 {
		t.Fatalf("padded length %d", m)
	}
	best, bestJ := 0.0, 0
	for j := 1; j < len(power); j++ {
		if power[j] > best {
			best, bestJ = power[j], j
		}
	}
	if bestJ%(m/16) != 0 {
		t.Fatalf("dominant bin %d is not a multiple of the fundamental %d", bestJ, m/16)
	}
}

func TestAutoCorrValidationRanksTruePeriodHigh(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 4096, Period: 20, Sigma: 8, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Detect(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Period%20 == 0 && c.AutoCorr < 0.4 {
			t.Fatalf("true-period candidate with weak autocorrelation: %+v", c)
		}
	}
}
