// Package periodogram implements the classic spectral approach to period
// detection — the scattered folk method the paper's contribution organizes
// and surpasses: per-symbol indicator periodograms are summed, spectral
// peaks above a significance threshold become candidate frequencies, and
// each candidate period N/k is validated and refined on the autocorrelation
// (a hill climb to the nearest local maximum), AUTOPERIOD-style. Unlike the
// convolution miner it yields only period values — no positions, symbols or
// patterns — which is precisely the gap §1 describes.
package periodogram

import (
	"fmt"
	"math"
	"sort"

	"periodica/internal/conv"
	"periodica/internal/fft"
	"periodica/internal/series"
)

// Candidate is a detected period with its spectral and autocorrelation
// evidence.
type Candidate struct {
	Period   int
	Power    float64 // summed periodogram power at the source frequency
	AutoCorr float64 // total lag-match fraction at the refined period
}

// Config tunes Detect.
type Config struct {
	// MaxPeriod bounds the reported periods; 0 means n/2.
	MaxPeriod int
	// PowerFactor is the significance threshold: a frequency qualifies when
	// its power exceeds PowerFactor × the mean spectral power. Default 4.
	PowerFactor float64
	// TopK caps the number of candidates. Default 20.
	TopK int
}

func (c Config) withDefaults(n int) Config {
	if c.MaxPeriod == 0 {
		c.MaxPeriod = n / 2
	}
	if c.PowerFactor == 0 { //opvet:ignore floatcmp zero means unset
		c.PowerFactor = 4
	}
	if c.TopK == 0 {
		c.TopK = 20
	}
	return c
}

// Power returns the summed per-symbol periodogram of s: for each symbol's
// mean-centred indicator, |FFT|² is accumulated over the padded length m;
// entry k corresponds to frequency k/m.
func Power(s *series.Series) ([]float64, int) {
	n := s.Len()
	m := fft.NextPow2(n)
	power := make([]float64, m/2+1)
	buf := make([]complex128, m)
	for k := 0; k < s.Alphabet().Size(); k++ {
		ind := s.Indicator(k)
		mean := 0.0
		for _, v := range ind {
			mean += v
		}
		mean /= float64(n)
		for i := range buf {
			buf[i] = 0
		}
		for i, v := range ind {
			buf[i] = complex(v-mean, 0)
		}
		fft.Forward(buf)
		for j := 0; j <= m/2; j++ {
			re, im := real(buf[j]), imag(buf[j])
			power[j] += re*re + im*im
		}
	}
	return power, m
}

// Detect finds candidate periods of s from spectral peaks validated on the
// autocorrelation. Results are ordered by power, strongest first; each
// refined period appears once.
func Detect(s *series.Series, cfg Config) ([]Candidate, error) {
	n := s.Len()
	if n < 4 {
		return nil, fmt.Errorf("periodogram: series too short (n=%d)", n)
	}
	cfg = cfg.withDefaults(n)
	if cfg.MaxPeriod < 2 || cfg.MaxPeriod >= n {
		return nil, fmt.Errorf("periodogram: maxPeriod %d outside [2,%d)", cfg.MaxPeriod, n)
	}

	power, m := Power(s)
	var meanPower float64
	for _, p := range power[1:] {
		meanPower += p
	}
	meanPower /= float64(len(power) - 1)
	if meanPower == 0 { //opvet:ignore floatcmp division guard; exact zero only from constant input
		return nil, nil // constant series: no periodicity
	}

	// Total autocorrelation (fraction of lag-p positions matching), for
	// validation and refinement.
	lag := conv.LagMatchCounts(s)
	autoCorr := func(p int) float64 {
		if p < 1 || p >= n {
			return 0
		}
		var matches int64
		for k := range lag {
			matches += lag[k][p]
		}
		return float64(matches) / float64(n-p)
	}

	type peak struct {
		freq  int
		power float64
	}
	var peaks []peak
	for j := 2; j < len(power); j++ { // j=1 is the whole-series "period"
		if power[j] >= cfg.PowerFactor*meanPower {
			peaks = append(peaks, peak{freq: j, power: power[j]})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].power > peaks[j].power })

	seen := map[int]bool{}
	var out []Candidate
	for _, pk := range peaks {
		if len(out) >= cfg.TopK {
			break
		}
		p := int(math.Round(float64(m) / float64(pk.freq)))
		p = refine(p, cfg.MaxPeriod, autoCorr)
		if p < 2 || p > cfg.MaxPeriod || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, Candidate{Period: p, Power: pk.power, AutoCorr: autoCorr(p)})
	}
	return out, nil
}

// refine hill-climbs from an initial period estimate to the nearest local
// maximum of the autocorrelation, compensating the frequency grid's
// quantization (period = m/k only hits divisors of the padded length).
func refine(p, maxPeriod int, autoCorr func(int) float64) int {
	if p < 2 {
		return p
	}
	if p > maxPeriod {
		p = maxPeriod
	}
	for {
		cur := autoCorr(p)
		best, bestP := cur, p
		if v := autoCorr(p - 1); v > best {
			best, bestP = v, p-1
		}
		if p+1 <= maxPeriod {
			if v := autoCorr(p + 1); v > best {
				bestP = p + 1
			}
		}
		if bestP == p {
			return p
		}
		p = bestP
	}
}
