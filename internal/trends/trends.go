// Package trends implements the periodic-trends baseline of Indyk, Koudas and
// Muthukrishnan (VLDB 2000) as the paper's §4 uses it: for every candidate
// period p it computes (or sketches) the distance D(p) between the series and
// its p-shift over their overlap, ranks periods ascending by distance, and
// reports the normalized rank of a period as its confidence. The exact form
// evaluates all distances with per-symbol FFT autocorrelations; the sketched
// form uses O(log n) random ±1 projections for an overall O(n log² n) cost,
// the baseline's published complexity.
package trends

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"periodica/internal/conv"
	"periodica/internal/fft"
	"periodica/internal/series"
	"periodica/internal/sketch"
)

// Ranking holds the distance of every candidate period and the induced
// candidacy order.
type Ranking struct {
	N int
	// Distances[p] is D(p) (or its estimate) for p in [MinPeriod, MaxPeriod];
	// entries outside that range are NaN.
	Distances []float64
	MinPeriod int
	MaxPeriod int
	// ranks[p] is the 1-based candidacy rank of period p (1 = most
	// candidate, i.e. smallest distance; ties broken by smaller period).
	ranks []int
}

// Confidence returns the normalized rank of period p: the most candidate
// period has confidence 1 and the least candidate 0 (or 1 if there is a
// single candidate). This is the confidence §4.1 of the paper plots for the
// trends algorithm.
func (r *Ranking) Confidence(p int) float64 {
	if p < r.MinPeriod || p > r.MaxPeriod {
		return 0
	}
	total := r.MaxPeriod - r.MinPeriod + 1
	if total == 1 {
		return 1
	}
	return float64(total-r.ranks[p]) / float64(total-1)
}

// Rank returns the 1-based candidacy rank of p.
func (r *Ranking) Rank(p int) int {
	if p < r.MinPeriod || p > r.MaxPeriod {
		return 0
	}
	return r.ranks[p]
}

// Candidates returns the periods in candidacy order (most candidate first),
// the baseline's published output: a set of candidate period values.
func (r *Ranking) Candidates() []int {
	out := make([]int, 0, r.MaxPeriod-r.MinPeriod+1)
	for p := r.MinPeriod; p <= r.MaxPeriod; p++ {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return r.ranks[out[i]] < r.ranks[out[j]] })
	return out
}

func newRanking(n, minP, maxP int, distances []float64) *Ranking {
	r := &Ranking{N: n, Distances: distances, MinPeriod: minP, MaxPeriod: maxP}
	order := make([]int, 0, maxP-minP+1)
	for p := minP; p <= maxP; p++ {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := distances[order[i]], distances[order[j]]
		if di != dj { //opvet:ignore floatcmp exact tie-break in sort comparator
			return di < dj
		}
		return order[i] < order[j]
	})
	r.ranks = make([]int, maxP+1)
	for rank, p := range order {
		r.ranks[p] = rank + 1
	}
	return r
}

func periodBounds(n, maxPeriod int) (int, int, error) {
	if maxPeriod == 0 {
		maxPeriod = n / 2
	}
	if n < 2 || maxPeriod < 1 || maxPeriod >= n {
		return 0, 0, fmt.Errorf("trends: invalid n=%d maxPeriod=%d", n, maxPeriod)
	}
	return 1, maxPeriod, nil
}

// Exact ranks periods by the exact Hamming distance
// D(p) = |{i < n−p : t_i ≠ t_{i+p}}| = (n−p) − Σ_k r_k(p),
// computed with one FFT autocorrelation per symbol. maxPeriod 0 means n/2.
func Exact(s *series.Series, maxPeriod int) (*Ranking, error) {
	minP, maxP, err := periodBounds(s.Len(), maxPeriod)
	if err != nil {
		return nil, err
	}
	lag := conv.LagMatchCounts(s)
	distances := nanSlice(maxP + 1)
	for p := minP; p <= maxP; p++ {
		var matches int64
		for k := range lag {
			matches += lag[k][p]
		}
		distances[p] = float64(int64(s.Len()-p) - matches)
	}
	return newRanking(s.Len(), minP, maxP, distances), nil
}

// Sketched ranks periods by an unbiased sketch estimate of D(p): with R
// random ±1 symbol hashes h_r, E[Σ_i h_r(t_i)h_r(t_{i+p})] = matches(p), so
// D̂(p) = (n−p) − avg_r corr_r(p). repetitions 0 means ⌈log2 n⌉, giving the
// baseline's O(n log² n) total cost. maxPeriod 0 means n/2.
func Sketched(s *series.Series, maxPeriod, repetitions int, seed int64) (*Ranking, error) {
	minP, maxP, err := periodBounds(s.Len(), maxPeriod)
	if err != nil {
		return nil, err
	}
	if repetitions == 0 {
		repetitions = bits.Len(uint(s.Len()))
	}
	if repetitions < 1 {
		return nil, fmt.Errorf("trends: repetitions %d < 1", repetitions)
	}
	n := s.Len()
	sums := make([]float64, maxP+1)
	for rep := 0; rep < repetitions; rep++ {
		h := sketch.NewSign(s.Alphabet().Size(), seed+int64(rep))
		v := h.Project(s)
		corr := fft.CrossCorrelate(v, v)
		for p := minP; p <= maxP; p++ {
			sums[p] += corr[p]
		}
	}
	distances := nanSlice(maxP + 1)
	for p := minP; p <= maxP; p++ {
		distances[p] = float64(n-p) - sums[p]/float64(repetitions)
	}
	return newRanking(n, minP, maxP, distances), nil
}

// HammingDistanceNaive is the definitional D(p), used to validate Exact.
func HammingDistanceNaive(s *series.Series, p int) int {
	d := 0
	for i := 0; i+p < s.Len(); i++ {
		if s.At(i) != s.At(i+p) {
			d++
		}
	}
	return d
}

func nanSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}
