package trends

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"periodica/internal/gen"
	"periodica/internal/series"
)

func TestExactMatchesNaiveHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := rng.Intn(200) + 20
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(4))
		}
		s, err := series.New(seriesAlpha(4), toInts(idx))
		if err != nil {
			t.Fatal(err)
		}
		r, err := Exact(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= n/2; p++ {
			if got, want := r.Distances[p], float64(HammingDistanceNaive(s, p)); got != want {
				t.Fatalf("n=%d D(%d) = %v, want %v", n, p, got, want)
			}
		}
	}
}

func toInts(u []uint16) []int {
	out := make([]int, len(u))
	for i, v := range u {
		out[i] = int(v)
	}
	return out
}

func TestExactPerfectPeriodHasZeroDistance(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 500, Period: 25, Sigma: 10, Dist: gen.Uniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{25, 50, 75} {
		if r.Distances[p] != 0 {
			t.Fatalf("D(%d) = %v on inerrant data, want 0", p, r.Distances[p])
		}
	}
	if r.Rank(25) != 1 {
		t.Fatalf("rank(25) = %d, want 1 (ties broken by smaller period)", r.Rank(25))
	}
	if r.Confidence(25) != 1 {
		t.Fatalf("confidence(25) = %v, want 1", r.Confidence(25))
	}
}

func TestConfidenceIsNormalizedRank(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 300, Period: 20, Sigma: 8, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := r.MaxPeriod - r.MinPeriod + 1
	seen := map[int]bool{}
	for p := r.MinPeriod; p <= r.MaxPeriod; p++ {
		rank := r.Rank(p)
		if rank < 1 || rank > total || seen[rank] {
			t.Fatalf("rank(%d) = %d invalid or duplicated", p, rank)
		}
		seen[rank] = true
		want := float64(total-rank) / float64(total-1)
		if math.Abs(r.Confidence(p)-want) > 1e-12 {
			t.Fatalf("confidence(%d) = %v, want %v", p, r.Confidence(p), want)
		}
	}
	if r.Confidence(0) != 0 || r.Rank(r.MaxPeriod+1) != 0 {
		t.Fatal("out-of-range period not handled")
	}
}

func TestCandidatesOrderedByDistance(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 400, Period: 16, Sigma: 6, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	cands := r.Candidates()
	if len(cands) != r.MaxPeriod-r.MinPeriod+1 {
		t.Fatalf("candidate count %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if r.Distances[cands[i-1]] > r.Distances[cands[i]] {
			t.Fatalf("candidates not sorted by distance at %d", i)
		}
	}
	// The true period must be among the leading candidates under light noise.
	for i, p := range cands[:10] {
		if p%16 == 0 {
			return
		}
		_ = i
	}
	t.Fatalf("no multiple of 16 in top-10 candidates %v", cands[:10])
}

func TestLargePeriodBiasOnNoisyData(t *testing.T) {
	// §4.1 / Fig. 4(b): the trends algorithm favors the higher multiples of
	// the true period on noisy data, because the absolute distance shrinks
	// with the overlap. Verify the distances at multiples decrease.
	s, _, err := gen.Generate(gen.Config{Length: 4000, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := r.Distances[25], r.Distances[50]
	if d2 >= d1 {
		t.Fatalf("D(50)=%v not below D(25)=%v: large-period bias absent", d2, d1)
	}
}

func TestSketchedIsUnbiasedEnoughToRankTruePeriodHigh(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 2000, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Sketched(s, 0, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	bestMultiple := false
	for _, p := range r.Candidates()[:20] {
		if p%25 == 0 {
			bestMultiple = true
			break
		}
	}
	if !bestMultiple {
		t.Fatalf("no multiple of 25 in sketched top-20: %v", r.Candidates()[:20])
	}
}

func TestSketchedEstimateCloseToExact(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 1000, Period: 20, Sigma: 8, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Sketched(s, 0, 64, 123)
	if err != nil {
		t.Fatal(err)
	}
	// Mean relative error over periods with substantial distance.
	var relSum float64
	var count int
	for p := 1; p <= exact.MaxPeriod; p++ {
		if exact.Distances[p] < 50 {
			continue
		}
		relSum += math.Abs(sk.Distances[p]-exact.Distances[p]) / exact.Distances[p]
		count++
	}
	if count == 0 {
		t.Fatal("no periods with substantial distance")
	}
	if mean := relSum / float64(count); mean > 0.25 {
		t.Fatalf("mean relative sketch error %v too large", mean)
	}
}

func TestSketchedDefaultRepetitions(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 256, Period: 8, Sigma: 4, Dist: gen.Uniform, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sketched(s, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Sketched(s, 0, -1, 1); err == nil {
		t.Fatal("negative repetitions: want error")
	}
}

func TestConfidenceConsistentWithDistancesProperty(t *testing.T) {
	// Smaller distance must never yield a smaller confidence, and
	// candidates must enumerate every period exactly once.
	f := func(seed int64, ln uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(ln)%200 + 20
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(4))
		}
		s, err := series.New(seriesAlpha(4), toInts(idx))
		if err != nil {
			return false
		}
		r, err := Exact(s, 0)
		if err != nil {
			return false
		}
		cands := r.Candidates()
		seen := map[int]bool{}
		for _, p := range cands {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		if len(cands) != r.MaxPeriod-r.MinPeriod+1 {
			return false
		}
		for a := r.MinPeriod; a <= r.MaxPeriod; a++ {
			for b := a + 1; b <= r.MaxPeriod; b++ {
				if r.Distances[a] < r.Distances[b] && r.Confidence(a) < r.Confidence(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidInputs(t *testing.T) {
	one, err := series.New(seriesAlpha(2), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(one, 0); err == nil {
		t.Fatal("n=1: want error")
	}
	ok, err := series.New(seriesAlpha(2), []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(ok, 10); err == nil {
		t.Fatal("maxPeriod ≥ n: want error")
	}
}
