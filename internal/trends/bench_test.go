package trends

import (
	"fmt"
	"testing"

	"periodica/internal/gen"
)

// BenchmarkTrends compares the exact distance evaluation with the sketched
// estimator across repetition counts — the accuracy/cost ablation of the
// baseline.
func BenchmarkTrends(b *testing.B) {
	s, _, err := gen.Generate(gen.Config{Length: 1 << 15, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Exact(s, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, reps := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("sketched/reps=%d", reps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Sketched(s, 0, reps, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
