package trends

import "periodica/internal/alphabet"

func seriesAlpha(sigma int) *alphabet.Alphabet { return alphabet.Letters(sigma) }
