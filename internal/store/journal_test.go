package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"periodica/internal/iofault"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "mine.journal")
}

func mustAppend(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, recs, err := OpenJournal(iofault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal returned %d records", len(recs))
	}
	mustAppend(t, j, "one", "two", "three")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(iofault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }() // read-only reopen; nothing to lose
	want := []string{"one", "two", "three"}
	if len(recs) != len(want) {
		t.Fatalf("reopened journal has %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if string(recs[i]) != w {
			t.Errorf("record %d = %q, want %q", i, recs[i], w)
		}
	}
	// Appends continue after the clean prefix.
	mustAppend(t, j2, "four")
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenJournal(iofault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || string(recs[3]) != "four" {
		t.Fatalf("after reopen+append: %d records, tail %q", len(recs), recs[len(recs)-1])
	}
}

// TestJournalTornTailTruncated: a crash mid-append leaves a partial trailing
// frame; reopening must return the clean prefix and truncate the tail so
// later appends produce a decodable journal.
func TestJournalTornTailTruncated(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(iofault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "alpha", "beta")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-int(frameHeaderLen+frameTrailerLen+5); cut-- {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := OpenJournal(iofault.OS(), path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0]) != "alpha" {
			t.Fatalf("cut %d: records %q, want [alpha]", cut, recs)
		}
		mustAppend(t, j2, "gamma")
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err = OpenJournal(iofault.OS(), path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || string(recs[1]) != "gamma" {
			t.Fatalf("cut %d: after re-append records %q", cut, recs)
		}
	}
}

// TestJournalCorruptRecordEndsPrefix: a bit flip inside an interior record
// ends the clean prefix there — append-only semantics mean everything after
// an undecodable record is unreachable.
func TestJournalCorruptRecordEndsPrefix(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(iofault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "first", "second", "third")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := frameHeaderLen + len("first") + frameTrailerLen
	data := append([]byte(nil), pristine...)
	data[frameLen+frameHeaderLen] ^= 0x40 // flip a payload bit of "second"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := OpenJournal(iofault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }() // read-only reopen; nothing to lose
	if len(recs) != 1 || string(recs[0]) != "first" {
		t.Fatalf("records %q, want exactly [first]", recs)
	}
}

// TestJournalCrashSweep drives an append workload under the iofault injector,
// crashing at every write operation in turn: reopening must always succeed
// and return an exact prefix of the records appended before the crash.
func TestJournalCrashSweep(t *testing.T) {
	records := []string{"r0", "r1", "r2", "r3"}
	workload := func(fsys iofault.FS, path string) (appended int, err error) {
		j, _, err := OpenJournal(fsys, path)
		if err != nil {
			return 0, err
		}
		for _, r := range records {
			if err := j.Append([]byte(r)); err != nil {
				_ = j.Close() // crashed injector; the append error is the one worth reporting
				return appended, err
			}
			appended++
		}
		return appended, j.Close()
	}

	count := iofault.NewInjector(iofault.OS(), iofault.ModeCount, 0, 1)
	dir := t.TempDir()
	if _, err := workload(count, filepath.Join(dir, "count.journal")); err != nil {
		t.Fatal(err)
	}
	ops := count.Ops()
	if ops == 0 {
		t.Fatal("workload performed no write operations; the sweep is vacuous")
	}

	for _, mode := range []iofault.Mode{iofault.ModeCrash, iofault.ModeTorn} {
		for at := int64(1); at <= ops; at++ {
			path := filepath.Join(dir, fmt.Sprintf("m%d-at%d.journal", mode, at))
			inj := iofault.NewInjector(iofault.OS(), mode, at, at)
			durable, err := workload(inj, path)
			if err == nil {
				t.Fatalf("mode %d at %d: workload survived its injected crash", mode, at)
			}
			if !errors.Is(err, iofault.ErrCrashed) {
				t.Fatalf("mode %d at %d: err = %v, want ErrCrashed", mode, at, err)
			}
			if _, statErr := os.Stat(path); statErr != nil {
				continue // crashed before the file existed; nothing to recover
			}
			_, recs, err := OpenJournal(iofault.OS(), path)
			if err != nil {
				t.Fatalf("mode %d at %d: reopen: %v", mode, at, err)
			}
			// The clean prefix holds at least every record whose Append
			// returned success, and never a record that was not written.
			if len(recs) < durable || len(recs) > len(records) {
				t.Fatalf("mode %d at %d: %d records recovered, %d were durable", mode, at, len(recs), durable)
			}
			for i, r := range recs {
				if !bytes.Equal(r, []byte(records[i])) {
					t.Fatalf("mode %d at %d: record %d = %q, want %q", mode, at, i, r, records[i])
				}
			}
		}
	}
}
