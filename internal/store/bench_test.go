package store

import (
	"math/rand"
	"testing"
)

// BenchmarkRangeQueryVsRemine compares answering from merged summaries with
// rebuilding the summary from raw symbols — the value the store's persisted
// summaries buy.
func BenchmarkRangeQueryVsRemine(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dir := b.TempDir()
	db, err := Open(dir, Options{Sigma: 5, MaxPeriod: 64, SegmentSize: 2000})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]uint16, 20000)
	for i := range data {
		k := i % 7 % 5
		if rng.Float64() < 0.1 {
			k = rng.Intn(5)
		}
		data[i] = uint16(k)
		if err := db.Append(k); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("summary-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Periodicities(0.6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remine-raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := buildSummary(data, 5, 64)
			_ = s.periodicities(0.6)
		}
	})
}

// BenchmarkAppend measures the store's ingest rate including sealing.
func BenchmarkAppend(b *testing.B) {
	db, err := Open(b.TempDir(), Options{Sigma: 5, MaxPeriod: 64, SegmentSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(i % 5); err != nil {
			b.Fatal(err)
		}
	}
}
