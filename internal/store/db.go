package store

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/iofault"
	"periodica/internal/obs"
	"periodica/internal/series"
)

// Options configure a store.
type Options struct {
	// Sigma is the alphabet size (1..26); symbols are indices 0..σ−1.
	Sigma int
	// MaxPeriod bounds the periods summarized per segment.
	MaxPeriod int
	// SegmentSize is the number of symbols per sealed segment; must be at
	// least MaxPeriod so neighbouring summaries stitch exactly.
	SegmentSize int
}

func (o Options) validate() error {
	if o.Sigma < 1 || o.Sigma > 26 {
		return fmt.Errorf("store: sigma %d outside [1,26]", o.Sigma)
	}
	if o.MaxPeriod < 1 {
		return fmt.Errorf("store: maxPeriod %d < 1", o.MaxPeriod)
	}
	if o.SegmentSize < o.MaxPeriod {
		return fmt.Errorf("store: segment size %d below maxPeriod %d", o.SegmentSize, o.MaxPeriod)
	}
	return nil
}

const (
	manifestName  = "manifest.json"
	quarantineDir = "quarantine"
	tmpMarker     = ".tmp-"
)

type manifest struct {
	Version     int `json:"version"`
	Sigma       int `json:"sigma"`
	MaxPeriod   int `json:"maxPeriod"`
	SegmentSize int `json:"segmentSize"`
}

// DB is an append-only, segmented symbol log with per-segment periodicity
// summaries. Sealed segments are durable: every persisted file is a
// checksummed frame committed by write-temp → fsync → rename → dir-fsync, so
// a crash loses at most the in-memory active segment, never sealed data, and
// a torn or bit-flipped file is detected on read instead of being served.
type DB struct {
	fs     iofault.FS
	dir    string
	opt    Options
	alpha  *alphabet.Alphabet
	sealed []*summary // in segment order
	active []uint16
	closed bool
}

// OpenExisting loads a store created earlier, taking its options from the
// on-disk manifest.
func OpenExisting(dir string) (*DB, error) {
	return OpenExistingFS(iofault.OS(), dir)
}

// OpenExistingFS is OpenExisting over an explicit file layer.
func OpenExistingFS(fsys iofault.FS, dir string) (*DB, error) {
	m, _, err := readManifest(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("store: no usable store at %s: %v", dir, err)
	}
	return OpenFS(fsys, dir, Options{Sigma: m.Sigma, MaxPeriod: m.MaxPeriod, SegmentSize: m.SegmentSize})
}

// Sigma returns the store's alphabet size.
func (db *DB) Sigma() int { return db.opt.Sigma }

// MaxPeriod returns the store's summarized period bound.
func (db *DB) MaxPeriod() int { return db.opt.MaxPeriod }

// Open creates the store in dir (creating the directory if needed) or loads
// an existing one. For an existing store, opt must match its manifest.
// Opening runs a recovery pass: stray commit temps are swept, a torn tail
// segment (crash mid-seal) is quarantined, and missing or corrupt summaries
// are rebuilt from their raw segments.
func Open(dir string, opt Options) (*DB, error) {
	return OpenFS(iofault.OS(), dir, opt)
}

// OpenFS is Open over an explicit file layer (tests inject faults here).
func OpenFS(fsys iofault.FS, dir string, opt Options) (*DB, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{fs: fsys, dir: dir, opt: opt, alpha: alphabet.Letters(opt.Sigma)}

	m, legacy, err := readManifest(fsys, dir)
	switch {
	case err == nil:
		if m.Sigma != opt.Sigma || m.MaxPeriod != opt.MaxPeriod || m.SegmentSize != opt.SegmentSize {
			return nil, fmt.Errorf("store: options %+v do not match existing manifest %+v", opt, m)
		}
		if legacy {
			// Upgrade a pre-durability bare-JSON manifest to the framed,
			// checksummed form (atomically, like every other write).
			if err := db.writeManifest(); err != nil {
				return nil, err
			}
		}
		if err := db.recoverAndLoad(); err != nil {
			return nil, err
		}
	case errors.Is(err, fs.ErrNotExist):
		if err := db.writeManifest(); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	return db, nil
}

// readManifest loads and validates the manifest, reporting whether it was in
// the legacy (unframed) format.
func readManifest(fsys iofault.FS, dir string) (manifest, bool, error) {
	raw, err := iofault.ReadFile(fsys, filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if len(raw) >= len(frameMagic) && string(raw[:len(frameMagic)]) == frameMagic {
		payload, err := decodeFrame(raw, kindManifest)
		if err != nil {
			return manifest{}, false, err
		}
		if err := json.Unmarshal(payload, &m); err != nil {
			return manifest{}, false, corruptf("manifest payload: %v", err)
		}
		return m, false, nil
	}
	// Legacy pre-durability stores persisted bare JSON.
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, false, corruptf("manifest: %v", err)
	}
	return m, true, nil
}

func (db *DB) writeManifest() error {
	payload, err := json.Marshal(manifest{Version: 1, Sigma: db.opt.Sigma,
		MaxPeriod: db.opt.MaxPeriod, SegmentSize: db.opt.SegmentSize})
	if err != nil {
		return err
	}
	return db.writeFileAtomic(manifestName, kindManifest, payload)
}

// writeFileAtomic commits one framed record under name via the durable
// write protocol: frame → temp file in the same directory → fsync → close →
// rename over the final name → directory fsync. On any failure the temp file
// is removed (best effort) and the final name is untouched.
func (db *DB) writeFileAtomic(name string, kind byte, payload []byte) (err error) {
	frame := encodeFrame(kind, payload)
	tmp, err := db.fs.CreateTemp(db.dir, name+tmpMarker+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close()           // may already be closed; the first error wins
			_ = db.fs.Remove(tmpName) // best-effort cleanup on the error path
		}
	}()
	if _, err = tmp.Write(frame); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = db.fs.Rename(tmpName, filepath.Join(db.dir, name)); err != nil {
		return err
	}
	return db.fs.SyncDir(db.dir)
}

// recoverAndLoad scans the directory, sweeps uncommitted temp files, loads
// (or rebuilds) every summary, and quarantines a torn tail segment.
func (db *DB) recoverAndLoad() error {
	entries, err := db.fs.ReadDir(db.dir)
	if err != nil {
		return err
	}
	var segs, sums []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.Contains(name, tmpMarker) {
			// An uncommitted temp from an interrupted atomic write: by
			// protocol it was never renamed into place, so it holds no
			// durable data.
			if err := db.fs.Remove(filepath.Join(db.dir, name)); err != nil {
				return err
			}
			obs.Recovery().StrayTempsRemoved.Inc()
			continue
		}
		switch filepath.Ext(name) {
		case ".seg":
			segs = append(segs, name)
		case ".sum":
			sums = append(sums, name)
		}
	}
	sort.Strings(segs)
	// A summary without its segment (e.g. a crash between the two renames of
	// an earlier quarantine) would shadow future seals; quarantine it.
	for _, name := range sums {
		var idx int
		if _, err := fmt.Sscanf(name, "%d.sum", &idx); err == nil && idx < len(segs) {
			continue
		}
		if err := db.quarantineFile(name); err != nil {
			return err
		}
	}
	for i, name := range segs {
		var want int
		if _, err := fmt.Sscanf(name, "%d.seg", &want); err != nil || want != i {
			return fmt.Errorf("store: segment file %q out of sequence (want index %d); run `opstore repair` to truncate to the clean prefix", name, i)
		}
	}
	for i := range segs {
		last := i == len(segs)-1
		sum, err := db.loadOrRebuildSummary(i, last)
		if err != nil {
			if isCorrupt(err) {
				obs.Recovery().ChecksumFailures.Inc()
				if last {
					// Torn tail: the crash hit mid-seal, after the segment
					// file appeared but before its content committed.
					// Quarantine segment and summary; everything before them
					// is intact.
					if qerr := db.quarantinePair(i); qerr != nil {
						return qerr
					}
					break
				}
				return fmt.Errorf("store: segment %d: %v; run `opstore repair` to truncate to the clean prefix", i, err)
			}
			return err
		}
		db.sealed = append(db.sealed, sum)
	}
	return nil
}

// loadOrRebuildSummary returns segment i's summary, rebuilding it from the
// raw segment when the summary file is missing, torn, or corrupt. When
// verifySeg is set (the tail segment), the segment frame is checksummed even
// if the summary loads cleanly.
func (db *DB) loadOrRebuildSummary(i int, verifySeg bool) (*summary, error) {
	sum, serr := db.loadSummary(i)
	if serr == nil {
		if verifySeg {
			if _, err := db.readSegmentData(i); err != nil {
				return nil, err
			}
		}
		return sum, nil
	}
	if !isCorrupt(serr) && !errors.Is(serr, fs.ErrNotExist) {
		return nil, serr
	}
	// Rebuild from the raw segment (its frame is fully verified here).
	data, err := db.readSegmentData(i)
	if err != nil {
		return nil, err
	}
	rebuilt := buildSummary(data, db.opt.Sigma, db.opt.MaxPeriod)
	if err := db.writeSummary(i, rebuilt); err != nil {
		return nil, err
	}
	obs.Recovery().SummariesRebuilt.Inc()
	return rebuilt, nil
}

// quarantinePair moves segment i's files into the quarantine subdirectory.
func (db *DB) quarantinePair(i int) error {
	if err := db.quarantineFile(segName(i)); err != nil {
		return err
	}
	if _, err := db.fs.Stat(db.sumPath(i)); err == nil {
		return db.quarantineFile(sumName(i))
	}
	return nil
}

// quarantineFile moves one file under quarantine/, never overwriting an
// earlier quarantined file of the same name.
func (db *DB) quarantineFile(name string) error {
	qdir := filepath.Join(db.dir, quarantineDir)
	if err := db.fs.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, name)
	for n := 1; ; n++ {
		if _, err := db.fs.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, n))
	}
	//opvet:ignore commitpath moves an already-committed file; its content was fsynced when written, and SyncDir follows
	if err := db.fs.Rename(filepath.Join(db.dir, name), dst); err != nil {
		return err
	}
	if err := db.fs.SyncDir(db.dir); err != nil {
		return err
	}
	obs.Recovery().FilesQuarantined.Inc()
	return nil
}

func segName(i int) string { return fmt.Sprintf("%08d.seg", i) }
func sumName(i int) string { return fmt.Sprintf("%08d.sum", i) }

func (db *DB) segPath(i int) string { return filepath.Join(db.dir, segName(i)) }
func (db *DB) sumPath(i int) string { return filepath.Join(db.dir, sumName(i)) }

// summaryRecord is the on-disk form of a summary (the frame payload, gob
// encoded).
type summaryRecord struct {
	Version   int
	Sigma     int
	MaxPeriod int
	Length    int
	Head      []uint16
	Tail      []uint16
	F2        [][][]int32
}

// validate checks the record's internal consistency, so that even a payload
// that passed the CRC (a logic bug, not bit rot) can never produce an
// out-of-bounds panic or silently wrong counts downstream.
func (rec *summaryRecord) validate() error {
	if rec.Version != 1 {
		return corruptf("summary record: unsupported version %d", rec.Version)
	}
	if rec.Sigma < 1 || rec.MaxPeriod < 1 || rec.Length < 1 {
		return corruptf("summary record: non-positive shape σ=%d maxPeriod=%d length=%d",
			rec.Sigma, rec.MaxPeriod, rec.Length)
	}
	bound := rec.MaxPeriod
	if bound > rec.Length {
		bound = rec.Length
	}
	if len(rec.Head) != bound || len(rec.Tail) != bound {
		return corruptf("summary record: head/tail lengths %d/%d, want %d",
			len(rec.Head), len(rec.Tail), bound)
	}
	for _, k := range rec.Head {
		if int(k) >= rec.Sigma {
			return corruptf("summary record: head symbol %d outside σ=%d", k, rec.Sigma)
		}
	}
	for _, k := range rec.Tail {
		if int(k) >= rec.Sigma {
			return corruptf("summary record: tail symbol %d outside σ=%d", k, rec.Sigma)
		}
	}
	if len(rec.F2) != rec.Sigma {
		return corruptf("summary record: %d symbol planes, want σ=%d", len(rec.F2), rec.Sigma)
	}
	for k := range rec.F2 {
		if len(rec.F2[k]) != rec.MaxPeriod+1 {
			return corruptf("summary record: symbol %d has %d period rows, want %d",
				k, len(rec.F2[k]), rec.MaxPeriod+1)
		}
		for p, counts := range rec.F2[k] {
			if counts == nil {
				continue
			}
			if p == 0 || len(counts) != p {
				return corruptf("summary record: symbol %d period %d has %d phases", k, p, len(counts))
			}
			for _, c := range counts {
				if c < 0 {
					return corruptf("summary record: negative count at symbol %d period %d", k, p)
				}
			}
		}
	}
	return nil
}

func (db *DB) writeSummary(i int, s *summary) error {
	rec := summaryRecord{Version: 1, Sigma: s.sigma, MaxPeriod: s.maxPeriod,
		Length: s.length, Head: s.head, Tail: s.tail, F2: s.f2}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return err
	}
	return db.writeFileAtomic(sumName(i), kindSummary, buf.Bytes())
}

// decodeSummaryPayload decodes and validates one summary frame payload.
func decodeSummaryPayload(payload []byte) (*summaryRecord, error) {
	var rec summaryRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, corruptf("summary payload: %v", err)
	}
	if err := rec.validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}

func (db *DB) loadSummary(i int) (*summary, error) {
	raw, err := iofault.ReadFile(db.fs, db.sumPath(i))
	if err != nil {
		return nil, err
	}
	payload, err := decodeFrame(raw, kindSummary)
	if err != nil {
		return nil, err
	}
	rec, err := decodeSummaryPayload(payload)
	if err != nil {
		return nil, err
	}
	if rec.Sigma != db.opt.Sigma || rec.MaxPeriod != db.opt.MaxPeriod {
		return nil, corruptf("summary %d: shape mismatch (σ=%d maxPeriod=%d, store has σ=%d maxPeriod=%d)",
			i, rec.Sigma, rec.MaxPeriod, db.opt.Sigma, db.opt.MaxPeriod)
	}
	return &summary{sigma: rec.Sigma, maxPeriod: rec.MaxPeriod, length: rec.Length,
		head: rec.Head, tail: rec.Tail, f2: rec.F2}, nil
}

// decodeSegmentPayload decodes one segment frame payload into its series.
func decodeSegmentPayload(payload []byte) (*series.Series, error) {
	s, err := series.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return nil, corruptf("segment payload: %v", err)
	}
	return s, nil
}

// readSegmentData reads segment i's symbols, fully verifying its frame.
func (db *DB) readSegmentData(i int) ([]uint16, error) {
	raw, err := iofault.ReadFile(db.fs, db.segPath(i))
	if err != nil {
		return nil, err
	}
	payload, err := decodeFrame(raw, kindSegment)
	if err != nil {
		return nil, err
	}
	s, err := decodeSegmentPayload(payload)
	if err != nil {
		return nil, err
	}
	if s.Alphabet().Size() != db.opt.Sigma {
		return nil, corruptf("segment %d: alphabet size %d, store has σ=%d", i, s.Alphabet().Size(), db.opt.Sigma)
	}
	return s.Indices(), nil
}

// Append ingests symbol indices, sealing segments as they fill. On error,
// the symbol that triggered the failed seal (and everything after it in the
// same call) is not ingested, so the call is safely retryable after a
// transient I/O error; symbols before it in the same call remain staged.
func (db *DB) Append(symbols ...int) error {
	if db.closed {
		return fmt.Errorf("store: closed")
	}
	for _, k := range symbols {
		if k < 0 || k >= db.opt.Sigma {
			return fmt.Errorf("store: symbol index %d out of range [0,%d)", k, db.opt.Sigma)
		}
		db.active = append(db.active, uint16(k))
		if len(db.active) == db.opt.SegmentSize {
			if err := db.seal(); err != nil {
				db.active = db.active[:len(db.active)-1]
				return err
			}
		}
	}
	return nil
}

// seal persists the active segment and its summary, each as an atomic
// framed commit. A crash between the two commits leaves a segment without
// its summary; Open rebuilds the summary from the segment.
func (db *DB) seal() error {
	idx := len(db.sealed)
	var buf bytes.Buffer
	s := series.FromIndices(db.alpha, db.active)
	if err := series.WriteBinary(&buf, s); err != nil {
		return err
	}
	if err := db.writeFileAtomic(segName(idx), kindSegment, buf.Bytes()); err != nil {
		return err
	}
	sum := buildSummary(db.active, db.opt.Sigma, db.opt.MaxPeriod)
	if err := db.writeSummary(idx, sum); err != nil {
		return err
	}
	db.sealed = append(db.sealed, sum)
	db.active = nil
	return nil
}

// Flush seals the active segment even if it is not full (no-op when empty).
func (db *DB) Flush() error {
	if db.closed {
		return fmt.Errorf("store: closed")
	}
	if len(db.active) == 0 {
		return nil
	}
	return db.seal()
}

// Close flushes and marks the store closed.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	if err := db.Flush(); err != nil {
		return err
	}
	db.closed = true
	return nil
}

// Len returns the total number of stored symbols, active segment included.
func (db *DB) Len() int {
	total := len(db.active)
	for _, s := range db.sealed {
		total += s.length
	}
	return total
}

// Segments returns the number of sealed segments.
func (db *DB) Segments() int { return len(db.sealed) }

// ReadRange loads the raw symbols of segments [fromSeg, toSeg) (plus the
// active segment when toSeg == Segments()) back into one series — the slow
// path for queries the summaries cannot answer, such as pattern mining.
// Every segment frame read here is checksum-verified.
func (db *DB) ReadRange(fromSeg, toSeg int) (*series.Series, error) {
	if fromSeg < 0 || toSeg < fromSeg || toSeg > len(db.sealed) {
		return nil, fmt.Errorf("store: segment range [%d,%d) outside [0,%d]", fromSeg, toSeg, len(db.sealed))
	}
	var data []uint16
	for i := fromSeg; i < toSeg; i++ {
		seg, err := db.readSegmentData(i)
		if err != nil {
			return nil, fmt.Errorf("store: segment %d unreadable: %v", i, err)
		}
		data = append(data, seg...)
	}
	if toSeg == len(db.sealed) {
		data = append(data, db.active...)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("store: empty range")
	}
	return series.FromIndices(db.alpha, data), nil
}

// Mine runs the full pattern miner over a segment range, reading the raw
// symbols back from disk; use PeriodicitiesRange when only periodicities are
// needed (summaries suffice there).
func (db *DB) Mine(fromSeg, toSeg int, opt core.Options) (*core.Result, error) {
	s, err := db.ReadRange(fromSeg, toSeg)
	if err != nil {
		return nil, err
	}
	if opt.MaxPeriod == 0 && db.opt.MaxPeriod < s.Len()/2 {
		opt.MaxPeriod = db.opt.MaxPeriod
	}
	return core.Mine(s, opt)
}

// Periodicities answers over the whole history (sealed + active) at
// threshold psi, from summaries alone.
func (db *DB) Periodicities(psi float64) ([]core.SymbolPeriodicity, error) {
	return db.PeriodicitiesRange(0, len(db.sealed), psi)
}

// PeriodicitiesRange answers over segments [fromSeg, toSeg) — with toSeg ==
// Segments() including the active segment — by merging the stored summaries
// left to right. Positions are phases relative to the range start.
func (db *DB) PeriodicitiesRange(fromSeg, toSeg int, psi float64) ([]core.SymbolPeriodicity, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("store: threshold ψ=%v outside (0,1]", psi)
	}
	if fromSeg < 0 || toSeg < fromSeg || toSeg > len(db.sealed) {
		return nil, fmt.Errorf("store: segment range [%d,%d) outside [0,%d]", fromSeg, toSeg, len(db.sealed))
	}
	var acc *summary
	for i := fromSeg; i < toSeg; i++ {
		if acc == nil {
			acc = db.sealed[i].clone()
			continue
		}
		if err := acc.merge(db.sealed[i]); err != nil {
			return nil, err
		}
	}
	if toSeg == len(db.sealed) && len(db.active) > 0 {
		activeSum := buildSummary(db.active, db.opt.Sigma, db.opt.MaxPeriod)
		if acc == nil {
			acc = activeSum
		} else if err := acc.merge(activeSum); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, nil
	}
	return acc.periodicities(psi), nil
}

// periodicities extracts the qualifying symbol periodicities of a summary.
func (s *summary) periodicities(psi float64) []core.SymbolPeriodicity {
	var out []core.SymbolPeriodicity
	n := s.length
	for p := 1; p <= s.maxPeriod && p < n; p++ {
		for l := 0; l < p; l++ {
			pairs := (n-l+p-1)/p - 1
			if pairs < 1 {
				continue
			}
			for k := 0; k < s.sigma; k++ {
				if s.f2[k][p] == nil {
					continue
				}
				f2 := int(s.f2[k][p][l])
				if f2 == 0 {
					continue
				}
				conf := float64(f2) / float64(pairs)
				if conf >= psi {
					out = append(out, core.SymbolPeriodicity{
						Symbol: k, Period: p, Position: l,
						F2: f2, Pairs: pairs, Confidence: conf,
					})
				}
			}
		}
	}
	return out
}
