package store

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/series"
)

// Options configure a store.
type Options struct {
	// Sigma is the alphabet size (1..26); symbols are indices 0..σ−1.
	Sigma int
	// MaxPeriod bounds the periods summarized per segment.
	MaxPeriod int
	// SegmentSize is the number of symbols per sealed segment; must be at
	// least MaxPeriod so neighbouring summaries stitch exactly.
	SegmentSize int
}

func (o Options) validate() error {
	if o.Sigma < 1 || o.Sigma > 26 {
		return fmt.Errorf("store: sigma %d outside [1,26]", o.Sigma)
	}
	if o.MaxPeriod < 1 {
		return fmt.Errorf("store: maxPeriod %d < 1", o.MaxPeriod)
	}
	if o.SegmentSize < o.MaxPeriod {
		return fmt.Errorf("store: segment size %d below maxPeriod %d", o.SegmentSize, o.MaxPeriod)
	}
	return nil
}

type manifest struct {
	Version     int `json:"version"`
	Sigma       int `json:"sigma"`
	MaxPeriod   int `json:"maxPeriod"`
	SegmentSize int `json:"segmentSize"`
}

// DB is an append-only, segmented symbol log with per-segment periodicity
// summaries. Sealed segments are durable; the active segment lives in
// memory until Flush or Close seals it (a crash loses at most the active
// segment, never sealed data).
type DB struct {
	dir    string
	opt    Options
	alpha  *alphabet.Alphabet
	sealed []*summary // in segment order
	active []uint16
	closed bool
}

// OpenExisting loads a store created earlier, taking its options from the
// on-disk manifest.
func OpenExisting(dir string) (*DB, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("store: no store at %s: %v", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %v", err)
	}
	return Open(dir, Options{Sigma: m.Sigma, MaxPeriod: m.MaxPeriod, SegmentSize: m.SegmentSize})
}

// Sigma returns the store's alphabet size.
func (db *DB) Sigma() int { return db.opt.Sigma }

// MaxPeriod returns the store's summarized period bound.
func (db *DB) MaxPeriod() int { return db.opt.MaxPeriod }

// Open creates the store in dir (creating the directory if needed) or loads
// an existing one. For an existing store, opt must match its manifest.
func Open(dir string, opt Options) (*DB, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opt: opt, alpha: alphabet.Letters(opt.Sigma)}

	manifestPath := filepath.Join(dir, "manifest.json")
	if raw, err := os.ReadFile(manifestPath); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("store: corrupt manifest: %v", err)
		}
		if m.Sigma != opt.Sigma || m.MaxPeriod != opt.MaxPeriod || m.SegmentSize != opt.SegmentSize {
			return nil, fmt.Errorf("store: options %+v do not match existing manifest %+v", opt, m)
		}
		if err := db.loadSegments(); err != nil {
			return nil, err
		}
	} else if os.IsNotExist(err) {
		raw, err := json.Marshal(manifest{Version: 1, Sigma: opt.Sigma, MaxPeriod: opt.MaxPeriod, SegmentSize: opt.SegmentSize})
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(manifestPath, raw, 0o644); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}
	return db, nil
}

func (db *DB) loadSegments() error {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	for i, name := range segs {
		var want int
		if _, err := fmt.Sscanf(name, "%d.seg", &want); err != nil || want != i {
			return fmt.Errorf("store: segment file %q out of sequence (want index %d)", name, i)
		}
		sum, err := db.loadSummary(i)
		if err != nil {
			// Recovery: rebuild the summary from the segment data.
			sum, err = db.rebuildSummary(i)
			if err != nil {
				return err
			}
			if err := db.writeSummary(i, sum); err != nil {
				return err
			}
		}
		db.sealed = append(db.sealed, sum)
	}
	return nil
}

func (db *DB) segPath(i int) string { return filepath.Join(db.dir, fmt.Sprintf("%08d.seg", i)) }
func (db *DB) sumPath(i int) string { return filepath.Join(db.dir, fmt.Sprintf("%08d.sum", i)) }

// summaryRecord is the on-disk form of a summary.
type summaryRecord struct {
	Version   int
	Sigma     int
	MaxPeriod int
	Length    int
	Head      []uint16
	Tail      []uint16
	F2        [][][]int32
}

func (db *DB) writeSummary(i int, s *summary) error {
	f, err := os.Create(db.sumPath(i))
	if err != nil {
		return err
	}
	rec := summaryRecord{Version: 1, Sigma: s.sigma, MaxPeriod: s.maxPeriod,
		Length: s.length, Head: s.head, Tail: s.tail, F2: s.f2}
	if err := gob.NewEncoder(f).Encode(rec); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func (db *DB) loadSummary(i int) (*summary, error) {
	f, err := os.Open(db.sumPath(i))
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	var rec summaryRecord
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return nil, fmt.Errorf("store: corrupt summary %d: %v", i, err)
	}
	if rec.Sigma != db.opt.Sigma || rec.MaxPeriod != db.opt.MaxPeriod {
		return nil, fmt.Errorf("store: summary %d shape mismatch", i)
	}
	return &summary{sigma: rec.Sigma, maxPeriod: rec.MaxPeriod, length: rec.Length,
		head: rec.Head, tail: rec.Tail, f2: rec.F2}, nil
}

func (db *DB) rebuildSummary(i int) (*summary, error) {
	f, err := os.Open(db.segPath(i))
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	s, err := series.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("store: segment %d unreadable: %v", i, err)
	}
	if s.Alphabet().Size() != db.opt.Sigma {
		return nil, fmt.Errorf("store: segment %d alphabet mismatch", i)
	}
	return buildSummary(s.Indices(), db.opt.Sigma, db.opt.MaxPeriod), nil
}

// Append ingests symbol indices, sealing segments as they fill.
func (db *DB) Append(symbols ...int) error {
	if db.closed {
		return fmt.Errorf("store: closed")
	}
	for _, k := range symbols {
		if k < 0 || k >= db.opt.Sigma {
			return fmt.Errorf("store: symbol index %d out of range [0,%d)", k, db.opt.Sigma)
		}
		db.active = append(db.active, uint16(k))
		if len(db.active) == db.opt.SegmentSize {
			if err := db.seal(); err != nil {
				return err
			}
		}
	}
	return nil
}

// seal persists the active segment and its summary.
func (db *DB) seal() error {
	idx := len(db.sealed)
	f, err := os.Create(db.segPath(idx))
	if err != nil {
		return err
	}
	s := series.FromIndices(db.alpha, db.active)
	if err := series.WriteBinary(f, s); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sum := buildSummary(db.active, db.opt.Sigma, db.opt.MaxPeriod)
	if err := db.writeSummary(idx, sum); err != nil {
		return err
	}
	db.sealed = append(db.sealed, sum)
	db.active = nil
	return nil
}

// Flush seals the active segment even if it is not full (no-op when empty).
func (db *DB) Flush() error {
	if db.closed {
		return fmt.Errorf("store: closed")
	}
	if len(db.active) == 0 {
		return nil
	}
	return db.seal()
}

// Close flushes and marks the store closed.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	if err := db.Flush(); err != nil {
		return err
	}
	db.closed = true
	return nil
}

// Len returns the total number of stored symbols, active segment included.
func (db *DB) Len() int {
	total := len(db.active)
	for _, s := range db.sealed {
		total += s.length
	}
	return total
}

// Segments returns the number of sealed segments.
func (db *DB) Segments() int { return len(db.sealed) }

// ReadRange loads the raw symbols of segments [fromSeg, toSeg) (plus the
// active segment when toSeg == Segments()) back into one series — the slow
// path for queries the summaries cannot answer, such as pattern mining.
func (db *DB) ReadRange(fromSeg, toSeg int) (*series.Series, error) {
	if fromSeg < 0 || toSeg < fromSeg || toSeg > len(db.sealed) {
		return nil, fmt.Errorf("store: segment range [%d,%d) outside [0,%d]", fromSeg, toSeg, len(db.sealed))
	}
	var data []uint16
	for i := fromSeg; i < toSeg; i++ {
		f, err := os.Open(db.segPath(i))
		if err != nil {
			return nil, err
		}
		s, err := series.ReadBinary(f)
		_ = f.Close() // read-only; nothing to lose on close
		if err != nil {
			return nil, fmt.Errorf("store: segment %d unreadable: %v", i, err)
		}
		data = append(data, s.Indices()...)
	}
	if toSeg == len(db.sealed) {
		data = append(data, db.active...)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("store: empty range")
	}
	return series.FromIndices(db.alpha, data), nil
}

// Mine runs the full pattern miner over a segment range, reading the raw
// symbols back from disk; use PeriodicitiesRange when only periodicities are
// needed (summaries suffice there).
func (db *DB) Mine(fromSeg, toSeg int, opt core.Options) (*core.Result, error) {
	s, err := db.ReadRange(fromSeg, toSeg)
	if err != nil {
		return nil, err
	}
	if opt.MaxPeriod == 0 && db.opt.MaxPeriod < s.Len()/2 {
		opt.MaxPeriod = db.opt.MaxPeriod
	}
	return core.Mine(s, opt)
}

// Periodicities answers over the whole history (sealed + active) at
// threshold psi, from summaries alone.
func (db *DB) Periodicities(psi float64) ([]core.SymbolPeriodicity, error) {
	return db.PeriodicitiesRange(0, len(db.sealed), psi)
}

// PeriodicitiesRange answers over segments [fromSeg, toSeg) — with toSeg ==
// Segments() including the active segment — by merging the stored summaries
// left to right. Positions are phases relative to the range start.
func (db *DB) PeriodicitiesRange(fromSeg, toSeg int, psi float64) ([]core.SymbolPeriodicity, error) {
	if psi <= 0 || psi > 1 {
		return nil, fmt.Errorf("store: threshold ψ=%v outside (0,1]", psi)
	}
	if fromSeg < 0 || toSeg < fromSeg || toSeg > len(db.sealed) {
		return nil, fmt.Errorf("store: segment range [%d,%d) outside [0,%d]", fromSeg, toSeg, len(db.sealed))
	}
	var acc *summary
	for i := fromSeg; i < toSeg; i++ {
		if acc == nil {
			acc = db.sealed[i].clone()
			continue
		}
		if err := acc.merge(db.sealed[i]); err != nil {
			return nil, err
		}
	}
	if toSeg == len(db.sealed) && len(db.active) > 0 {
		activeSum := buildSummary(db.active, db.opt.Sigma, db.opt.MaxPeriod)
		if acc == nil {
			acc = activeSum
		} else if err := acc.merge(activeSum); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, nil
	}
	return acc.periodicities(psi), nil
}

// periodicities extracts the qualifying symbol periodicities of a summary.
func (s *summary) periodicities(psi float64) []core.SymbolPeriodicity {
	var out []core.SymbolPeriodicity
	n := s.length
	for p := 1; p <= s.maxPeriod && p < n; p++ {
		for l := 0; l < p; l++ {
			pairs := (n-l+p-1)/p - 1
			if pairs < 1 {
				continue
			}
			for k := 0; k < s.sigma; k++ {
				if s.f2[k][p] == nil {
					continue
				}
				f2 := int(s.f2[k][p][l])
				if f2 == 0 {
					continue
				}
				conf := float64(f2) / float64(pairs)
				if conf >= psi {
					out = append(out, core.SymbolPeriodicity{
						Symbol: k, Period: p, Position: l,
						F2: f2, Pairs: pairs, Confidence: conf,
					})
				}
			}
		}
	}
	return out
}
