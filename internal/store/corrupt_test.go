package store

// Corruption detection and the recovery state machine: every single-bit
// flip and every truncation of a persisted file must surface as a decode
// error (never as silently wrong data), Open must quarantine a torn tail
// and refuse interior damage, and Repair must truncate to the longest clean
// prefix and reconstruct what it can.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"periodica/internal/iofault"
	"periodica/internal/obs"
)

// buildSmallStore seals exactly segments full segments and returns the dir.
func buildSmallStore(t *testing.T, segments int) string {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, Options{Sigma: 3, MaxPeriod: 4, SegmentSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16*segments; i++ {
		if err := db.Append(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// decodeStoreFile routes one file through the same decode path the store
// uses, returning its error.
func decodeStoreFile(dir, name string) error {
	switch {
	case name == manifestName:
		_, _, err := readManifest(iofault.OS(), dir)
		return err
	case filepath.Ext(name) == ".seg":
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		payload, err := decodeFrame(raw, kindSegment)
		if err != nil {
			return err
		}
		_, err = decodeSegmentPayload(payload)
		return err
	case filepath.Ext(name) == ".sum":
		_, err := readSummaryRecord(iofault.OS(), filepath.Join(dir, name))
		return err
	}
	return nil
}

func TestBitFlipSweepDetected(t *testing.T) {
	dir := buildSmallStore(t, 1)
	for _, name := range []string{manifestName, segName(0), sumName(0)} {
		path := filepath.Join(dir, name)
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if decodeStoreFile(dir, name) != nil {
			t.Fatalf("%s: pristine file does not decode", name)
		}
		for pos := range pristine {
			for bit := 0; bit < 8; bit++ {
				mutated := append([]byte(nil), pristine...)
				mutated[pos] ^= 1 << bit
				if err := os.WriteFile(path, mutated, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := decodeStoreFile(dir, name); err == nil {
					t.Fatalf("%s: bit flip at byte %d bit %d decoded as valid", name, pos, bit)
				}
			}
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The restored store is intact.
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("restored store not clean: %v", rep.Problems)
	}
}

func TestTruncationSweepDetected(t *testing.T) {
	dir := buildSmallStore(t, 1)
	for _, name := range []string{manifestName, segName(0), sumName(0)} {
		path := filepath.Join(dir, name)
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(pristine); cut++ {
			if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := decodeStoreFile(dir, name); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded as valid", name, cut, len(pristine))
			}
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenQuarantinesTornTail(t *testing.T) {
	dir := buildSmallStore(t, 3)
	// Tear the last segment (simulating a crash mid-commit on a filesystem
	// that tore the write) and damage its summary too.
	tearFile(t, filepath.Join(dir, segName(2)))
	tearFile(t, filepath.Join(dir, sumName(2)))
	before := obs.Recovery().FilesQuarantined.Value()

	db, err := OpenExisting(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if db.Segments() != 2 {
		t.Fatalf("segments = %d, want 2 after tail quarantine", db.Segments())
	}
	if got := obs.Recovery().FilesQuarantined.Value(); got != before+2 {
		t.Fatalf("quarantine counter rose by %d, want 2", got-before)
	}
	entries, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(entries) != 2 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(entries), err)
	}
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after tail quarantine: %v", rep.Problems)
	}
	// The freed tail index is reusable.
	for i := 0; i < 16; i++ {
		if err := db.Append(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	if db.Segments() != 3 {
		t.Fatalf("segments = %d after refill, want 3", db.Segments())
	}
}

// TestReadRangeDetectsInteriorCorruption covers the lazy-verification
// design: Open trusts an interior segment whose summary is intact (only the
// tail gets a full CRC pass), but any actual read of the damaged segment
// must fail its checksum rather than return flipped data.
func TestReadRangeDetectsInteriorCorruption(t *testing.T) {
	dir := buildSmallStore(t, 3)
	flipByte(t, filepath.Join(dir, segName(1)), 20)

	db, err := OpenExisting(dir)
	if err != nil {
		t.Fatalf("open with intact summaries: %v", err)
	}
	if _, err := db.ReadRange(1, 2); err == nil {
		t.Fatal("read of bit-flipped segment returned data")
	}
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("verify missed the interior bit flip")
	}
}

func TestOpenRefusesInteriorCorruptionRepairTruncates(t *testing.T) {
	dir := buildSmallStore(t, 3)
	// Damage segment 1 and its summary: Open must rebuild the summary from
	// the segment, hit the checksum failure, and — since an interior
	// segment cannot be quarantined without losing later data silently —
	// refuse to open.
	flipByte(t, filepath.Join(dir, segName(1)), 20)
	flipByte(t, filepath.Join(dir, sumName(1)), 25)

	_, err := OpenExisting(dir)
	if err == nil {
		t.Fatal("open with interior corruption: want error")
	}
	if !strings.Contains(err.Error(), "repair") {
		t.Fatalf("error %q does not point at repair", err)
	}

	rep, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 1 {
		t.Fatalf("repair kept %d segments, want 1 (clean prefix)", rep.Segments)
	}
	if len(rep.Actions) == 0 {
		t.Fatal("repair reported no actions")
	}
	vrep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !vrep.Clean() {
		t.Fatalf("store not clean after repair: %v", vrep.Problems)
	}
	db, err := OpenExisting(dir)
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	if db.Segments() != 1 {
		t.Fatalf("segments = %d after repair, want 1", db.Segments())
	}
	s, err := db.ReadRange(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if s.At(i) != i%3 {
			t.Fatalf("surviving data wrong at %d", i)
		}
	}
}

func TestRepairRebuildsSummariesAndSweepsTemps(t *testing.T) {
	dir := buildSmallStore(t, 2)
	if err := os.Remove(filepath.Join(dir, sumName(0))); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, sumName(1)), 25)
	stray := filepath.Join(dir, segName(9)+tmpMarker+"zzz")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 2 {
		t.Fatalf("repair kept %d segments, want 2", rep.Segments)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray temp survived repair")
	}
	vrep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !vrep.Clean() {
		t.Fatalf("not clean after repair: %v", vrep.Problems)
	}
}

func TestRepairReconstructsManifest(t *testing.T) {
	dir := buildSmallStore(t, 2)
	db, err := OpenExisting(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	rep, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Actions) == 0 {
		t.Fatal("repair reported no actions")
	}
	db2, err := OpenExisting(dir)
	if err != nil {
		t.Fatalf("open after manifest reconstruction: %v", err)
	}
	if db2.Sigma() != 3 || db2.MaxPeriod() != 4 {
		t.Fatalf("reconstructed shape σ=%d maxPeriod=%d", db2.Sigma(), db2.MaxPeriod())
	}
	got, err := db2.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortPers(got), sortPers(want)) {
		t.Fatal("answers changed across manifest reconstruction")
	}
}

func TestOpenUpgradesLegacyManifest(t *testing.T) {
	dir := buildSmallStore(t, 1)
	// Replace the framed manifest with the pre-durability bare JSON form.
	legacy := []byte(`{"version":1,"sigma":3,"maxPeriod":4,"segmentSize":16}`)
	if err := os.WriteFile(filepath.Join(dir, manifestName), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("verify did not flag the legacy manifest")
	}

	db, err := OpenExisting(dir)
	if err != nil {
		t.Fatalf("open legacy store: %v", err)
	}
	if db.Sigma() != 3 {
		t.Fatalf("sigma = %d", db.Sigma())
	}
	// Open rewrote the manifest framed; verify is now clean.
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("legacy manifest not upgraded: %v", rep.Problems)
	}
}

func TestVerifyFlagsCrossKindSwap(t *testing.T) {
	dir := buildSmallStore(t, 1)
	// A summary copied over a segment passes any size check but must fail
	// on the frame's kind byte.
	sum, err := os.ReadFile(filepath.Join(dir, sumName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(0)), sum, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decodeStoreFile(dir, segName(0)); err == nil {
		t.Fatal("summary bytes decoded as a segment")
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("verify missed the kind swap")
	}
}

func tearFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, pos int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pos >= len(raw) {
		pos = len(raw) - 1
	}
	raw[pos] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
