package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/series"
)

func sortPers(pers []core.SymbolPeriodicity) []core.SymbolPeriodicity {
	out := append([]core.SymbolPeriodicity(nil), pers...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		if a.Position != b.Position {
			return a.Position < b.Position
		}
		return a.Symbol < b.Symbol
	})
	return out
}

// referencePeriodicities mines the same stream with the batch miner.
func referencePeriodicities(t *testing.T, stream []int, sigma, maxPeriod int, psi float64) []core.SymbolPeriodicity {
	t.Helper()
	idx := make([]uint16, len(stream))
	for i, k := range stream {
		idx[i] = uint16(k)
	}
	s := series.FromIndices(alphabet.Letters(sigma), idx)
	mp := maxPeriod
	if mp >= s.Len() {
		mp = s.Len() - 1
	}
	res, err := core.Mine(s, core.Options{Threshold: psi, MaxPeriod: mp,
		Engine: core.EngineNaive, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Periodicities
}

func TestSummaryMergeMatchesDirectBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		sigma := rng.Intn(3) + 2
		maxP := rng.Intn(12) + 1
		nA := rng.Intn(60) + 1
		nB := rng.Intn(60) + 1
		a := make([]uint16, nA)
		b := make([]uint16, nB)
		for i := range a {
			a[i] = uint16(rng.Intn(sigma))
		}
		for i := range b {
			b[i] = uint16(rng.Intn(sigma))
		}
		merged := buildSummary(a, sigma, maxP)
		if err := merged.merge(buildSummary(b, sigma, maxP)); err != nil {
			t.Fatal(err)
		}
		whole := buildSummary(append(append([]uint16(nil), a...), b...), sigma, maxP)
		if merged.length != whole.length {
			t.Fatalf("trial %d: length %d vs %d", trial, merged.length, whole.length)
		}
		if !reflect.DeepEqual(merged.head, whole.head) || !reflect.DeepEqual(merged.tail, whole.tail) {
			t.Fatalf("trial %d (nA=%d nB=%d maxP=%d): head/tail mismatch", trial, nA, nB, maxP)
		}
		for k := 0; k < sigma; k++ {
			for p := 1; p <= maxP; p++ {
				for l := 0; l < p; l++ {
					mv, wv := int32(0), int32(0)
					if merged.f2[k][p] != nil {
						mv = merged.f2[k][p][l]
					}
					if whole.f2[k][p] != nil {
						wv = whole.f2[k][p][l]
					}
					if mv != wv {
						t.Fatalf("trial %d: F2(%d,%d,%d) = %d, want %d", trial, k, p, l, mv, wv)
					}
				}
			}
		}
	}
}

func TestSummaryMergeShapeMismatch(t *testing.T) {
	a := buildSummary([]uint16{0, 1}, 2, 3)
	b := buildSummary([]uint16{0, 1}, 2, 4)
	if err := a.merge(b); err == nil {
		t.Fatal("maxPeriod mismatch: want error")
	}
}

func TestDBPeriodicitiesMatchBatchMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	dir := t.TempDir()
	db, err := Open(dir, Options{Sigma: 4, MaxPeriod: 15, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	var stream []int
	for i := 0; i < 500; i++ {
		k := i % 5 % 4 // periodic-ish with irregularity
		if rng.Float64() < 0.2 {
			k = rng.Intn(4)
		}
		stream = append(stream, k)
		if err := db.Append(k); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Periodicities(0.4)
	if err != nil {
		t.Fatal(err)
	}
	want := referencePeriodicities(t, stream, 4, 15, 0.4)
	if !reflect.DeepEqual(sortPers(got), sortPers(want)) {
		t.Fatalf("store answers differ from batch miner: %d vs %d", len(got), len(want))
	}
}

func TestDBSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Sigma: 3, MaxPeriod: 10, SegmentSize: 50}
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var stream []int
	for i := 0; i < 240; i++ {
		k := i % 3
		stream = append(stream, k)
		if err := db.Append(k); err != nil {
			t.Fatal(err)
		}
	}
	before, err := db.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 240 {
		t.Fatalf("reopened Len = %d, want 240", db2.Len())
	}
	after, err := db2.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortPers(before), sortPers(after)) {
		t.Fatal("answers changed across reopen")
	}
}

func TestDBRebuildsMissingSummary(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Sigma: 2, MaxPeriod: 6, SegmentSize: 40}
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		_ = db.Append(i % 2)
	}
	want, _ := db.Periodicities(0.9)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete one summary file; Open must rebuild it from the segment.
	if err := os.Remove(filepath.Join(dir, "00000001.sum")); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortPers(got), sortPers(want)) {
		t.Fatal("rebuilt summary changed the answers")
	}
	if _, err := os.Stat(filepath.Join(dir, "00000001.sum")); err != nil {
		t.Fatal("rebuilt summary not persisted")
	}
}

func TestDBRangeQuery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sigma: 3, MaxPeriod: 8, SegmentSize: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Segments 0-1: period 3. Segments 2-3: period 2.
	var first, second []int
	for i := 0; i < 60; i++ {
		k := i % 3
		first = append(first, k)
		_ = db.Append(k)
	}
	for i := 0; i < 60; i++ {
		k := i % 2
		second = append(second, k)
		_ = db.Append(k)
	}
	if db.Segments() != 4 {
		t.Fatalf("segments = %d, want 4", db.Segments())
	}
	got, err := db.PeriodicitiesRange(0, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := referencePeriodicities(t, first, 3, 8, 0.9)
	if !reflect.DeepEqual(sortPers(got), sortPers(want)) {
		t.Fatal("range [0,2) differs from mining the first half")
	}
	got, err = db.PeriodicitiesRange(2, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want = referencePeriodicities(t, second, 3, 8, 0.9)
	if !reflect.DeepEqual(sortPers(got), sortPers(want)) {
		t.Fatal("range [2,4) differs from mining the second half")
	}
}

func TestDBValidates(t *testing.T) {
	dir := t.TempDir()
	bad := []Options{
		{Sigma: 0, MaxPeriod: 5, SegmentSize: 10},
		{Sigma: 30, MaxPeriod: 5, SegmentSize: 10},
		{Sigma: 3, MaxPeriod: 0, SegmentSize: 10},
		{Sigma: 3, MaxPeriod: 20, SegmentSize: 10},
	}
	for _, opt := range bad {
		if _, err := Open(dir, opt); err == nil {
			t.Errorf("Open(%+v): want error", opt)
		}
	}
	db, err := Open(dir, Options{Sigma: 3, MaxPeriod: 5, SegmentSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(9); err == nil {
		t.Fatal("bad symbol: want error")
	}
	if _, err := db.Periodicities(0); err == nil {
		t.Fatal("ψ=0: want error")
	}
	if _, err := db.PeriodicitiesRange(0, 5, 0.5); err == nil {
		t.Fatal("range beyond segments: want error")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(0); err == nil {
		t.Fatal("append after close: want error")
	}
	// Reopening with mismatching options must fail.
	if _, err := Open(dir, Options{Sigma: 4, MaxPeriod: 5, SegmentSize: 10}); err == nil {
		t.Fatal("manifest mismatch: want error")
	}
}

func TestDBReadRangeAndMine(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sigma: 3, MaxPeriod: 10, SegmentSize: 30})
	if err != nil {
		t.Fatal(err)
	}
	var stream []int
	for i := 0; i < 95; i++ { // 3 sealed segments + 5 active symbols
		k := i % 3
		stream = append(stream, k)
		_ = db.Append(k)
	}
	s, err := db.ReadRange(0, db.Segments())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 95 {
		t.Fatalf("ReadRange length %d, want 95 (with active)", s.Len())
	}
	for i, k := range stream {
		if s.At(i) != k {
			t.Fatalf("symbol %d = %d, want %d", i, s.At(i), k)
		}
	}
	res, err := db.Mine(0, db.Segments(), core.Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pt := range res.Patterns {
		if pt.Period == 3 && pt.FixedSymbols() == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("full pattern abc not mined from the store")
	}
	// Partial ranges exclude the active segment.
	part, err := db.ReadRange(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if part.Len() != 30 {
		t.Fatalf("partial range length %d, want 30", part.Len())
	}
	if _, err := db.ReadRange(0, 99); err == nil {
		t.Fatal("range beyond segments: want error")
	}
}

func TestDBEmptyQueries(t *testing.T) {
	db, err := Open(t.TempDir(), Options{Sigma: 2, MaxPeriod: 4, SegmentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	pers, err := db.Periodicities(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pers != nil {
		t.Fatalf("empty store returned %v", pers)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Segments() != 0 {
		t.Fatal("flush of empty store created a segment")
	}
}
