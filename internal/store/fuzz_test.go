package store

// Fuzz the decode paths that face on-disk bytes. The contract under test:
// decoding arbitrary input may fail, but must never panic, and a successful
// decode must be self-consistent — re-encoding a decoded frame reproduces
// the input, and decoded records pass the same validation the store applies
// at Open. Silently wrong records are the one outcome that is never
// acceptable.

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// seedCorpus returns well-formed frames of every kind plus near-miss
// mutations so the fuzzer starts at the interesting boundaries.
func seedCorpus() [][]byte {
	sum := buildSummary([]uint16{0, 1, 2, 0, 1, 2, 0, 1}, 3, 4)
	rec := summaryRecord{
		Version: 1, Sigma: 3, MaxPeriod: 4, Length: 8,
		Head: sum.head, Tail: sum.tail, F2: sum.f2,
	}
	var gobBuf bytes.Buffer
	_ = gob.NewEncoder(&gobBuf).Encode(&rec) // seed only; errors just shrink the corpus
	segPayload := []byte("PSER1 3 4\n\x00\x01\x02\x00")
	frames := [][]byte{
		encodeFrame(kindManifest, []byte(`{"version":1,"sigma":3,"maxPeriod":4,"segmentSize":16}`)),
		encodeFrame(kindSegment, segPayload),
		encodeFrame(kindSummary, gobBuf.Bytes()),
		encodeFrame(kindSegment, nil),
	}
	out := append([][]byte(nil), frames...)
	for _, f := range frames {
		truncated := f[:len(f)-1]
		out = append(out, append([]byte(nil), truncated...))
		flipped := append([]byte(nil), f...)
		flipped[len(flipped)/2] ^= 0x01
		out = append(out, flipped)
	}
	return out
}

func FuzzFrameDecode(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range []byte{kindManifest, kindSegment, kindSummary} {
			payload, err := decodeFrame(data, kind)
			if err != nil {
				continue
			}
			// Round-trip property: a frame that decodes re-encodes to the
			// exact input bytes, so no two distinct byte strings can decode
			// to the same accepted frame.
			if re := encodeFrame(kind, payload); !bytes.Equal(re, data) {
				t.Fatalf("kind %d: decode/encode round trip diverged", kind)
			}
		}
	})
}

func FuzzSegmentDecode(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeFrame(data, kindSegment)
		if err != nil {
			return
		}
		s, err := decodeSegmentPayload(payload)
		if err != nil {
			return
		}
		// An accepted segment must be internally consistent: every symbol
		// within its own alphabet.
		sigma := s.Alphabet().Size()
		if sigma <= 0 {
			t.Fatal("accepted segment with non-positive alphabet")
		}
		for i := 0; i < s.Len(); i++ {
			if k := s.At(i); k < 0 || k >= sigma {
				t.Fatalf("accepted segment holds symbol %d outside σ=%d", k, sigma)
			}
		}
	})
}

func FuzzSummaryDecode(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeFrame(data, kindSummary)
		if err != nil {
			return
		}
		rec, err := decodeSummaryPayload(payload)
		if err != nil {
			return
		}
		// decodeSummaryPayload runs validate(); double-check the invariants
		// downstream code leans on so a validation gap fails loudly here.
		if rec.Sigma <= 0 || rec.MaxPeriod <= 0 || rec.Length <= 0 {
			t.Fatalf("accepted summary with shape σ=%d maxPeriod=%d len=%d", rec.Sigma, rec.MaxPeriod, rec.Length)
		}
		want := rec.MaxPeriod
		if rec.Length < want {
			want = rec.Length
		}
		if len(rec.Head) != want || len(rec.Tail) != want {
			t.Fatalf("accepted summary with head/tail %d/%d, want %d", len(rec.Head), len(rec.Tail), want)
		}
		for _, k := range rec.Head {
			if int(k) >= rec.Sigma {
				t.Fatal("accepted summary with out-of-alphabet head symbol")
			}
		}
		for _, k := range rec.Tail {
			if int(k) >= rec.Sigma {
				t.Fatal("accepted summary with out-of-alphabet tail symbol")
			}
		}
		if len(rec.F2) != rec.Sigma {
			t.Fatalf("accepted summary with %d F2 rows, σ=%d", len(rec.F2), rec.Sigma)
		}
	})
}
