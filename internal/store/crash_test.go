package store

// The crash-consistency harness: run an append/flush workload under the
// fault-injecting file layer, fault every enumerated write operation in
// turn (transient EIO, hard crash, torn write + crash), then reopen with
// the real filesystem — the "next process" — and assert that the store
// recovers, Verify reports clean, and every symbol sealed before the fault
// is still readable as an exact prefix of the input stream.

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"periodica/internal/iofault"
)

var crashOpt = Options{Sigma: 3, MaxPeriod: 6, SegmentSize: 16}

// crashStream is a deterministic periodic-ish input.
func crashStream(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % 4 % 3
	}
	return out
}

// sealedSymbols is the durable watermark: symbols held by sealed segments.
func sealedSymbols(db *DB) int {
	total := 0
	for _, s := range db.sealed {
		total += s.length
	}
	return total
}

// runCrashWorkload opens a store on fsys and appends stream symbol by
// symbol, flushing a short segment two-thirds in and closing at the end.
// It returns the watermark after the last successful operation and the
// first error hit.
func runCrashWorkload(fsys iofault.FS, dir string, stream []int) (int, error) {
	db, err := OpenFS(fsys, dir, crashOpt)
	if err != nil {
		return 0, err
	}
	watermark := sealedSymbols(db)
	for i, k := range stream {
		if err := db.Append(k); err != nil {
			return watermark, err
		}
		watermark = sealedSymbols(db)
		if i == len(stream)*2/3 {
			if err := db.Flush(); err != nil {
				return watermark, err
			}
			watermark = sealedSymbols(db)
		}
	}
	if err := db.Close(); err != nil {
		return watermark, err
	}
	return sealedSymbols(db), nil
}

// reopenAndCheck plays the next process: reopen the faulted directory on the
// real filesystem and assert recovery, cleanliness, and prefix durability.
func reopenAndCheck(t *testing.T, dir string, stream []int, watermark int, tag string) {
	t.Helper()
	db, err := OpenExisting(dir)
	if err != nil {
		// The only legitimate reopen failure: the fault predates the init
		// commit, so no store ever durably existed.
		if watermark == 0 {
			if _, serr := os.Stat(filepath.Join(dir, manifestName)); errors.Is(serr, fs.ErrNotExist) {
				return
			}
		}
		exportCrashArtifacts(t, dir)
		t.Fatalf("%s: reopen failed with %d durable symbols: %v", tag, watermark, err)
	}
	durable := sealedSymbols(db)
	if durable < watermark {
		exportCrashArtifacts(t, dir)
		t.Fatalf("%s: %d symbols durable, watermark was %d", tag, durable, watermark)
	}
	if db.Segments() > 0 {
		s, err := db.ReadRange(0, db.Segments())
		if err != nil {
			exportCrashArtifacts(t, dir)
			t.Fatalf("%s: reading recovered data: %v", tag, err)
		}
		if s.Len() != durable {
			exportCrashArtifacts(t, dir)
			t.Fatalf("%s: read %d symbols, summaries claim %d", tag, s.Len(), durable)
		}
		for i := 0; i < s.Len(); i++ {
			if s.At(i) != stream[i] {
				exportCrashArtifacts(t, dir)
				t.Fatalf("%s: recovered symbol %d = %d, want %d (not a prefix)", tag, i, s.At(i), stream[i])
			}
		}
	}
	rep, err := db.Verify()
	if err != nil {
		t.Fatalf("%s: verify: %v", tag, err)
	}
	if !rep.Clean() {
		exportCrashArtifacts(t, dir)
		t.Fatalf("%s: verify not clean after recovery: %v", tag, rep.Problems)
	}
	// The recovered store must stay writable.
	if err := db.Append(0, 1, 2); err != nil {
		t.Fatalf("%s: append after recovery: %v", tag, err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("%s: close after recovery: %v", tag, err)
	}
}

// exportCrashArtifacts copies the faulted store directory to the artifact
// directory CI uploads on failure (PERIODICA_ARTIFACT_DIR, if set).
func exportCrashArtifacts(t *testing.T, dir string) {
	t.Helper()
	root := os.Getenv("PERIODICA_ARTIFACT_DIR")
	if root == "" {
		return
	}
	dst := filepath.Join(root, filepath.Base(t.Name())+"-"+filepath.Base(dir))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifact export: %v", err)
		return
	}
	_ = filepath.Walk(dir, func(path string, info fs.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(out, raw, 0o644)
	})
	t.Logf("faulted store exported to %s", dst)
}

// enumerateCrashPoints counts the workload's write operations once.
func enumerateCrashPoints(t *testing.T, stream []int) int64 {
	t.Helper()
	in := iofault.NewInjector(iofault.OS(), iofault.ModeCount, 0, 1)
	if _, err := runCrashWorkload(in, t.TempDir(), stream); err != nil {
		t.Fatalf("counting run failed: %v", err)
	}
	if in.Ops() == 0 {
		t.Fatal("workload performed no write operations")
	}
	return in.Ops()
}

func TestCrashConsistencyAppendSweep(t *testing.T) {
	stream := crashStream(60)
	total := enumerateCrashPoints(t, stream)
	modes := []struct {
		name string
		mode iofault.Mode
	}{
		{"crash", iofault.ModeCrash},
		{"torn", iofault.ModeTorn},
		{"eio", iofault.ModeEIO},
	}
	for _, m := range modes {
		for at := int64(1); at <= total; at++ {
			dir := t.TempDir()
			in := iofault.NewInjector(iofault.OS(), m.mode, at, at*7919+3)
			watermark, err := runCrashWorkload(in, dir, stream)
			if err == nil {
				t.Fatalf("%s@%d: fault did not surface as an error", m.name, at)
			}
			switch m.mode {
			case iofault.ModeEIO:
				if !errors.Is(err, iofault.ErrInjected) {
					t.Fatalf("%s@%d: err = %v, want ErrInjected", m.name, at, err)
				}
			default:
				if !errors.Is(err, iofault.ErrCrashed) {
					t.Fatalf("%s@%d: err = %v, want ErrCrashed", m.name, at, err)
				}
			}
			reopenAndCheck(t, dir, stream, watermark, m.name+"@"+itoa(at))
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestCrashConsistencyDoubleFault reopens the store under a second injector,
// so the recovery pass itself (temp sweep, summary rebuild, tail
// quarantine) is also swept for crash safety.
func TestCrashConsistencyDoubleFault(t *testing.T) {
	stream := crashStream(60)
	total := enumerateCrashPoints(t, stream)
	// First fault: a crash two-thirds through the workload's write ops —
	// late enough that recovery has real work (sealed segments, often a
	// mid-seal tear).
	firstAt := total * 2 / 3
	if firstAt < 1 {
		firstAt = 1
	}

	// Enumerate the recovery pass's own write ops.
	proto := t.TempDir()
	in := iofault.NewInjector(iofault.OS(), iofault.ModeCrash, firstAt, 5)
	watermark, err := runCrashWorkload(in, proto, stream)
	if err == nil {
		t.Fatal("first fault did not surface")
	}
	counter := iofault.NewInjector(iofault.OS(), iofault.ModeCount, 0, 1)
	if _, err := OpenExistingFS(counter, proto); err != nil {
		t.Fatalf("recovery under counting layer: %v", err)
	}
	recoveryOps := counter.Ops()

	for at := int64(1); at <= recoveryOps; at++ {
		dir := t.TempDir()
		in := iofault.NewInjector(iofault.OS(), iofault.ModeCrash, firstAt, 5)
		wm, err := runCrashWorkload(in, dir, stream)
		if err == nil {
			t.Fatal("first fault did not surface")
		}
		if wm != watermark {
			t.Fatalf("first fault not deterministic: watermark %d vs %d", wm, watermark)
		}
		// Crash the recovery pass at write op `at`…
		rec := iofault.NewInjector(iofault.OS(), iofault.ModeCrash, at, at)
		if _, err := OpenExistingFS(rec, dir); err == nil && rec.Fired() {
			t.Fatalf("recovery@%d: fault did not surface", at)
		}
		// …then recover for real and hold the same guarantees.
		reopenAndCheck(t, dir, stream, watermark, "double@"+itoa(at))
	}
}

// TestFaultEIOAppendContinues checks the transient-error path inside one
// process: after an injected EIO the same DB handle keeps working, and
// nothing on disk is corrupted.
func TestFaultEIOAppendContinues(t *testing.T) {
	dir := t.TempDir()
	in := iofault.NewInjector(iofault.OS(), iofault.ModeEIO, 9, 1)
	db, err := OpenFS(in, dir, crashOpt)
	if err != nil {
		t.Fatal(err)
	}
	stream := crashStream(64)
	sawErr := false
	for _, k := range stream {
		if err := db.Append(k); err != nil {
			if !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("append: %v", err)
			}
			sawErr = true
			// Retry the same symbol: the failed seal left the active
			// segment in memory, so the append is repeatable.
			if err := db.Append(k); err != nil {
				t.Fatalf("retry after EIO: %v", err)
			}
		}
	}
	if !sawErr {
		t.Fatal("EIO fault never fired")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenExisting(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after in-process EIO: %v", rep.Problems)
	}
	s, err := db2.ReadRange(0, db2.Segments())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Indices()[:len(stream)], toU16(stream)) {
		t.Fatal("stream corrupted by transient EIO")
	}
}

func toU16(stream []int) []uint16 {
	out := make([]uint16, len(stream))
	for i, k := range stream {
		out[i] = uint16(k)
	}
	return out
}
