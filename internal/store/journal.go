package store

// Append-only record journal over the store's checksummed frame format. A
// journal is a single file of concatenated kindJournal frames, each fsynced
// as it is appended, so a reader after a crash sees an exact prefix of the
// records written — the same guarantee the segment log gives, without the
// temp-and-rename commit (a journal record is cheap and frequent; a torn
// tail is expected and simply truncated away on open).
//
// The distributed coordinator uses this to checkpoint completed shards of a
// mine: each record is one shard's slot set, and an interrupted mine resumes
// from the clean prefix instead of restarting.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"periodica/internal/iofault"
	"periodica/internal/obs"
)

// Journal is an append-only log of framed records. Not safe for concurrent
// use; callers serialize appends (the coordinator holds its own mutex).
type Journal struct {
	fsys iofault.FS
	path string
	f    iofault.File
	off  int64 // end of the clean prefix; appends land here
}

// OpenJournal opens (creating if missing) the journal at path, scans its
// records, truncates any torn or corrupt tail, and returns the payloads of
// the clean prefix. A record that fails its CRC ends the clean prefix —
// everything after it is unreachable by the append-only protocol and is
// discarded, counted as a checksum failure in the recovery metrics.
func OpenJournal(fsys iofault.FS, path string) (*Journal, [][]byte, error) {
	created := false
	if _, err := fsys.Stat(path); err != nil {
		created = true
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open journal: %w", err)
	}
	opened := false
	defer func() {
		if !opened {
			_ = f.Close() // the error being returned is the one worth reporting
		}
	}()
	if created {
		// Make the journal file itself durable before recording into it.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return nil, nil, fmt.Errorf("store: sync journal dir: %w", err)
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, fmt.Errorf("store: read journal: %w", err)
	}
	records, clean := scanJournal(data)
	if clean < int64(len(data)) {
		if err := f.Truncate(clean); err != nil {
			return nil, nil, fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
		// Make the trim durable, so a crash cannot resurrect the torn tail
		// under records appended after it.
		if err := f.Sync(); err != nil {
			return nil, nil, fmt.Errorf("store: sync truncated journal: %w", err)
		}
	}
	opened = true
	return &Journal{fsys: fsys, path: path, f: f, off: clean}, records, nil
}

// scanJournal walks concatenated journal frames and returns the payloads of
// the longest decodable prefix plus its byte length.
func scanJournal(data []byte) ([][]byte, int64) {
	var records [][]byte
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeaderLen+frameTrailerLen {
			break // empty or torn header
		}
		if string(rest[:4]) != frameMagic || rest[4] != kindJournal ||
			rest[5] != frameVersion || rest[6] != 0 || rest[7] != 0 {
			break
		}
		plen := binary.LittleEndian.Uint64(rest[8:])
		total := uint64(frameHeaderLen) + plen + frameTrailerLen
		if plen > uint64(len(rest)) || total > uint64(len(rest)) {
			break // torn payload
		}
		want := binary.LittleEndian.Uint32(rest[total-frameTrailerLen:])
		got := crc32.Checksum(rest[:total-frameTrailerLen], crcTable)
		if got != want {
			obs.Recovery().ChecksumFailures.Inc()
			break
		}
		payload := make([]byte, plen)
		copy(payload, rest[frameHeaderLen:total-frameTrailerLen])
		records = append(records, payload)
		off += int(total)
	}
	return records, int64(off)
}

// Append frames payload, writes it at the journal's end, and fsyncs, so a
// successful Append is durable: a crash at any later point replays it.
func (j *Journal) Append(payload []byte) error {
	frame := encodeFrame(kindJournal, payload)
	if _, err := j.f.WriteAt(frame, j.off); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	j.off += int64(len(frame))
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file, leaving its records on disk.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	return f.Close()
}

// Remove closes the journal and deletes its file — the mine completed, so
// there is nothing left to resume.
func (j *Journal) Remove() error {
	if err := j.Close(); err != nil {
		return err
	}
	return j.fsys.Remove(j.path)
}
