// Verify and Repair: the offline integrity pass over a store directory.
// Verify is read-only and reports every problem it can find — frame and
// checksum failures, sequence gaps, shape mismatches, orphaned summaries,
// stray commit temps, a legacy unframed manifest. Repair applies the
// recovery state machine: sweep temps, rewrite or reconstruct the manifest,
// rebuild summaries from raw segments, and quarantine everything after the
// first unrecoverable segment so the store truncates to its longest clean
// prefix instead of staying bricked. Both work on directories too damaged
// for Open to succeed.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"periodica/internal/iofault"
	"periodica/internal/obs"
)

// Problem is one integrity issue found in a store directory.
type Problem struct {
	File   string // base name within the store directory
	Detail string
}

func (p Problem) String() string { return p.File + ": " + p.Detail }

// Report is the outcome of a Verify or Repair pass.
type Report struct {
	Dir      string
	Segments int // healthy segments forming the clean prefix
	Symbols  int // symbols held by that clean prefix
	Problems []Problem
	Actions  []string // repair actions taken (Repair only)
}

// Clean reports whether the pass found no problems.
func (r *Report) Clean() bool { return len(r.Problems) == 0 }

func (r *Report) problemf(file, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{File: file, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) actionf(format string, args ...any) {
	r.Actions = append(r.Actions, fmt.Sprintf(format, args...))
	obs.Recovery().RepairActions.Inc()
}

// Verify checks every persisted file of the store at dir without modifying
// anything. It returns an error only when the directory itself cannot be
// read; file-level damage is reported in the Report.
func Verify(dir string) (*Report, error) { return VerifyFS(iofault.OS(), dir) }

// VerifyFS is Verify over an explicit file layer.
func VerifyFS(fsys iofault.FS, dir string) (*Report, error) {
	rep := &Report{Dir: dir}
	scan, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	for _, name := range scan.temps {
		rep.problemf(name, "stray commit temp file (uncommitted atomic write; repair removes it)")
	}

	m, legacy, merr := readManifest(fsys, dir)
	haveManifest := merr == nil
	switch {
	case haveManifest && legacy:
		rep.problemf(manifestName, "legacy unframed manifest (no checksum; repair rewrites it framed)")
	case errors.Is(merr, fs.ErrNotExist):
		rep.problemf(manifestName, "missing (repair reconstructs it from summaries when possible)")
	case merr != nil:
		rep.problemf(manifestName, "%v", merr)
	}

	// Walk segments in index order; the clean prefix ends at the first
	// missing, out-of-sequence, or damaged segment.
	prefixIntact := true
	for i, name := range scan.segs {
		idx, ok := segIndex(name)
		if !ok || idx != i {
			rep.problemf(name, "out of sequence (want index %d; repair truncates to the clean prefix)", i)
			prefixIntact = false
			continue
		}
		segLen, segErr := verifySegmentFile(fsys, filepath.Join(dir, name), m, haveManifest)
		if segErr != nil {
			rep.problemf(name, "%v", segErr)
			prefixIntact = false
		}
		sumFile := sumName(i)
		rec, sumErr := readSummaryRecord(fsys, filepath.Join(dir, sumFile))
		switch {
		case errors.Is(sumErr, fs.ErrNotExist):
			rep.problemf(sumFile, "missing (repair rebuilds it from %s)", name)
		case sumErr != nil:
			rep.problemf(sumFile, "%v", sumErr)
		case haveManifest && (rec.Sigma != m.Sigma || rec.MaxPeriod != m.MaxPeriod):
			rep.problemf(sumFile, "shape σ=%d maxPeriod=%d does not match manifest σ=%d maxPeriod=%d",
				rec.Sigma, rec.MaxPeriod, m.Sigma, m.MaxPeriod)
		case segErr == nil && rec.Length != segLen:
			rep.problemf(sumFile, "summarizes %d symbols but segment holds %d", rec.Length, segLen)
		}
		if prefixIntact && segErr == nil {
			rep.Segments++
			rep.Symbols += segLen
		}
	}
	for _, name := range scan.orphanSums {
		rep.problemf(name, "summary without a segment (repair quarantines it)")
	}
	return rep, nil
}

// Repair applies the recovery state machine to the store at dir and returns
// what it did. After a successful repair, Verify reports clean (unless the
// directory held nothing recoverable at all).
func Repair(dir string) (*Report, error) { return RepairFS(iofault.OS(), dir) }

// RepairFS is Repair over an explicit file layer.
func RepairFS(fsys iofault.FS, dir string) (*Report, error) {
	rep := &Report{Dir: dir}
	scan, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	for _, name := range scan.temps {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
		obs.Recovery().StrayTempsRemoved.Inc()
		rep.actionf("removed stray commit temp %s", name)
	}

	m, legacy, merr := readManifest(fsys, dir)
	if merr != nil {
		if !errors.Is(merr, fs.ErrNotExist) && !isCorrupt(merr) {
			return nil, merr
		}
		rm, ok := reconstructManifest(fsys, dir, scan)
		if !ok {
			rep.problemf(manifestName, "unreadable and not reconstructible (no decodable summary to take σ/maxPeriod from)")
			return rep, nil
		}
		m = rm
		legacy = true // force the framed rewrite below
		rep.actionf("reconstructed manifest (σ=%d maxPeriod=%d segment=%d)", m.Sigma, m.MaxPeriod, m.SegmentSize)
	}
	helper := &DB{fs: fsys, dir: dir, opt: Options{Sigma: m.Sigma, MaxPeriod: m.MaxPeriod, SegmentSize: m.SegmentSize}}
	if legacy {
		if err := helper.writeManifest(); err != nil {
			return nil, err
		}
		rep.actionf("rewrote manifest as a framed checksummed record")
	}

	// Find the longest clean prefix of segments; everything after it is
	// quarantined (segments cannot be rebuilt — the summaries are lossy).
	cut := -1
	for i, name := range scan.segs {
		idx, ok := segIndex(name)
		if !ok || idx != i {
			cut = i
			break
		}
		segLen, segErr := verifySegmentFile(fsys, filepath.Join(dir, name), m, true)
		if segErr != nil {
			obs.Recovery().ChecksumFailures.Inc()
			cut = i
			break
		}
		// Segment healthy: make sure its summary is too, else rebuild.
		rec, sumErr := readSummaryRecord(fsys, filepath.Join(dir, sumName(i)))
		healthy := sumErr == nil && rec.Sigma == m.Sigma && rec.MaxPeriod == m.MaxPeriod && rec.Length == segLen
		if !healthy {
			data, err := helper.readSegmentData(i)
			if err != nil {
				return nil, err
			}
			if err := helper.writeSummary(i, buildSummary(data, m.Sigma, m.MaxPeriod)); err != nil {
				return nil, err
			}
			obs.Recovery().SummariesRebuilt.Inc()
			rep.actionf("rebuilt summary %s from its segment", sumName(i))
		}
		rep.Segments++
		rep.Symbols += segLen
	}
	if cut >= 0 {
		for _, name := range scan.segs[cut:] {
			if err := helper.quarantineFile(name); err != nil {
				return nil, err
			}
			rep.actionf("quarantined %s", name)
			idx, ok := segIndex(name)
			if !ok {
				continue
			}
			if _, err := fsys.Stat(filepath.Join(dir, sumName(idx))); err == nil {
				if err := helper.quarantineFile(sumName(idx)); err != nil {
					return nil, err
				}
				rep.actionf("quarantined %s", sumName(idx))
			}
		}
	}
	// Quarantine summaries with no segment (their segment may just have
	// been quarantined above, or was never committed).
	postScan, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	for _, name := range postScan.orphanSums {
		if err := helper.quarantineFile(name); err != nil {
			return nil, err
		}
		rep.actionf("quarantined orphan summary %s", name)
	}
	return rep, nil
}

// Verify runs the offline integrity pass over the store's directory (sealed
// state only; the in-memory active segment is not on disk yet).
func (db *DB) Verify() (*Report, error) { return VerifyFS(db.fs, db.dir) }

// dirScan is the classified listing of a store directory.
type dirScan struct {
	segs       []string // *.seg sorted by name
	sums       map[int]bool
	orphanSums []string // *.sum with no matching *.seg
	temps      []string // files containing the commit-temp marker
}

func scanDir(fsys iofault.FS, dir string) (*dirScan, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	scan := &dirScan{sums: make(map[int]bool)}
	segIdx := make(map[int]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		switch {
		case strings.Contains(name, tmpMarker):
			scan.temps = append(scan.temps, name)
		case filepath.Ext(name) == ".seg":
			scan.segs = append(scan.segs, name)
			if idx, ok := segIndex(name); ok {
				segIdx[idx] = true
			}
		case filepath.Ext(name) == ".sum":
			var idx int
			if _, err := fmt.Sscanf(name, "%d.sum", &idx); err == nil {
				scan.sums[idx] = true
			} else {
				scan.orphanSums = append(scan.orphanSums, name)
			}
		}
	}
	sort.Strings(scan.segs)
	for idx := range scan.sums {
		if !segIdx[idx] {
			scan.orphanSums = append(scan.orphanSums, sumName(idx))
		}
	}
	sort.Strings(scan.orphanSums)
	return scan, nil
}

func segIndex(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, "%d.seg", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// verifySegmentFile fully checks one segment frame and returns its length.
func verifySegmentFile(fsys iofault.FS, path string, m manifest, haveManifest bool) (int, error) {
	raw, err := iofault.ReadFile(fsys, path)
	if err != nil {
		return 0, err
	}
	payload, err := decodeFrame(raw, kindSegment)
	if err != nil {
		return 0, err
	}
	s, err := decodeSegmentPayload(payload)
	if err != nil {
		return 0, err
	}
	if haveManifest && s.Alphabet().Size() != m.Sigma {
		return 0, corruptf("segment: alphabet size %d, manifest has σ=%d", s.Alphabet().Size(), m.Sigma)
	}
	return s.Len(), nil
}

// readSummaryRecord reads and validates one summary frame.
func readSummaryRecord(fsys iofault.FS, path string) (*summaryRecord, error) {
	raw, err := iofault.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	payload, err := decodeFrame(raw, kindSummary)
	if err != nil {
		return nil, err
	}
	return decodeSummaryPayload(payload)
}

// reconstructManifest derives a manifest from the surviving files: σ and
// maxPeriod from the first decodable summary, the segment size from the
// largest surviving segment (a lower bound — flushed segments may be short).
func reconstructManifest(fsys iofault.FS, dir string, scan *dirScan) (manifest, bool) {
	var m manifest
	found := false
	for idx := range scan.sums {
		rec, err := readSummaryRecord(fsys, filepath.Join(dir, sumName(idx)))
		if err != nil {
			continue
		}
		m = manifest{Version: 1, Sigma: rec.Sigma, MaxPeriod: rec.MaxPeriod}
		found = true
		break
	}
	if !found {
		return manifest{}, false
	}
	for _, name := range scan.segs {
		if n, err := verifySegmentFile(fsys, filepath.Join(dir, name), m, true); err == nil && n > m.SegmentSize {
			m.SegmentSize = n
		}
	}
	if m.SegmentSize < m.MaxPeriod {
		m.SegmentSize = m.MaxPeriod
	}
	return m, m.SegmentSize > 0
}
