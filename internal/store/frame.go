// On-disk frame format. Every file the store persists — manifest, segment,
// summary — is one frame: a fixed 16-byte header, the payload, and a CRC-32C
// trailer covering header and payload. The checksum turns any torn write,
// truncation, or bit flip into a detected decode error instead of silently
// wrong data, and the kind byte stops a summary from ever being decoded as a
// segment (or vice versa) after an operator shuffles files around.
//
//	offset size
//	0      4    magic "OPF1"
//	4      1    record kind (1 manifest, 2 segment, 3 summary, 4 journal record)
//	5      1    format version (currently 1)
//	6      2    reserved, zero
//	8      8    payload length, little-endian
//	16     len  payload
//	16+len 4    CRC-32C (Castagnoli) of bytes [0, 16+len), little-endian
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	frameMagic      = "OPF1"
	frameHeaderLen  = 16
	frameTrailerLen = 4
	frameVersion    = 1

	kindManifest byte = 1
	kindSegment  byte = 2
	kindSummary  byte = 3
	kindJournal  byte = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func kindName(kind byte) string {
	switch kind {
	case kindManifest:
		return "manifest"
	case kindSegment:
		return "segment"
	case kindSummary:
		return "summary"
	case kindJournal:
		return "journal"
	}
	return fmt.Sprintf("kind %d", kind)
}

// encodeFrame wraps payload in a framed record of the given kind.
func encodeFrame(kind byte, payload []byte) []byte {
	out := make([]byte, frameHeaderLen+len(payload)+frameTrailerLen)
	copy(out, frameMagic)
	out[4] = kind
	out[5] = frameVersion
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	copy(out[frameHeaderLen:], payload)
	sum := crc32.Checksum(out[:frameHeaderLen+len(payload)], crcTable)
	binary.LittleEndian.PutUint32(out[frameHeaderLen+len(payload):], sum)
	return out
}

// corruptError marks decode failures that mean "this file is damaged"
// (as opposed to I/O errors reading it), so the recovery pass can decide
// between quarantine and propagation.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "store: corrupt " + e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// isCorrupt reports whether err marks on-disk damage.
func isCorrupt(err error) bool {
	var ce *corruptError
	for err != nil {
		if e, ok := err.(*corruptError); ok {
			ce = e
			break
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			break
		}
		err = u.Unwrap()
	}
	return ce != nil
}

// decodeFrame validates a framed record of the wanted kind and returns its
// payload. data must be the entire file: the declared payload length plus
// header and trailer must match len(data) exactly, and the CRC must verify.
func decodeFrame(data []byte, wantKind byte) ([]byte, error) {
	if len(data) < frameHeaderLen+frameTrailerLen {
		return nil, corruptf("%s frame: %d bytes, below minimum %d (torn write or truncation)",
			kindName(wantKind), len(data), frameHeaderLen+frameTrailerLen)
	}
	if string(data[:4]) != frameMagic {
		return nil, corruptf("%s frame: bad magic %q", kindName(wantKind), data[:4])
	}
	if data[4] != wantKind {
		return nil, corruptf("%s frame: record kind is %s", kindName(wantKind), kindName(data[4]))
	}
	if data[5] != frameVersion {
		return nil, corruptf("%s frame: unsupported version %d", kindName(wantKind), data[5])
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, corruptf("%s frame: nonzero reserved bytes", kindName(wantKind))
	}
	plen := binary.LittleEndian.Uint64(data[8:])
	if plen != uint64(len(data)-frameHeaderLen-frameTrailerLen) {
		return nil, corruptf("%s frame: declared payload %d bytes, file holds %d",
			kindName(wantKind), plen, len(data)-frameHeaderLen-frameTrailerLen)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-frameTrailerLen:])
	got := crc32.Checksum(data[:len(data)-frameTrailerLen], crcTable)
	if got != want {
		return nil, corruptf("%s frame: CRC mismatch (stored %08x, computed %08x)",
			kindName(wantKind), want, got)
	}
	return data[frameHeaderLen : len(data)-frameTrailerLen], nil
}
