// Package store is an embedded, disk-backed store for symbol time series:
// an append-only log cut into segments, each persisted together with a
// periodicity summary — the per-(symbol, period, position) consecutive-match
// counts for all periods up to a bound. Queries over any contiguous segment
// range answer from summaries alone, merged left to right with the
// boundary-stitching of merge mining; the symbol data itself is only read
// when a segment's summary is missing. This is the database shape the
// paper's incremental/merge-mining follow-on work (its reference [4])
// points at.
package store

import (
	"fmt"
)

// summary is the data-light periodicity state of one stretch of the log:
// its counts, plus just enough boundary symbols (up to maxPeriod at each
// end) to stitch it to a neighbour.
type summary struct {
	maxPeriod int
	sigma     int
	length    int
	head      []uint16 // first min(maxPeriod, length) symbols
	tail      []uint16 // last min(maxPeriod, length) symbols
	// f2[k][p][l] with l in coordinates local to the stretch's start.
	f2 [][][]int32
}

func newSummary(sigma, maxPeriod int) *summary {
	s := &summary{maxPeriod: maxPeriod, sigma: sigma, f2: make([][][]int32, sigma)}
	for k := range s.f2 {
		s.f2[k] = make([][]int32, maxPeriod+1)
	}
	return s
}

// buildSummary computes the summary of one symbol slice.
func buildSummary(data []uint16, sigma, maxPeriod int) *summary {
	s := newSummary(sigma, maxPeriod)
	for i, k := range data {
		for p := 1; p <= maxPeriod && p <= i; p++ {
			if data[i-p] == k {
				s.bump(int(k), p, (i-p)%p)
			}
		}
	}
	s.length = len(data)
	b := maxPeriod
	if b > len(data) {
		b = len(data)
	}
	s.head = append([]uint16(nil), data[:b]...)
	s.tail = append([]uint16(nil), data[len(data)-b:]...)
	return s
}

func (s *summary) bump(k, p, l int) {
	if s.f2[k][p] == nil {
		s.f2[k][p] = make([]int32, p)
	}
	s.f2[k][p][l]++
}

// clone copies s deeply.
func (s *summary) clone() *summary {
	out := newSummary(s.sigma, s.maxPeriod)
	out.length = s.length
	out.head = append([]uint16(nil), s.head...)
	out.tail = append([]uint16(nil), s.tail...)
	for k := range s.f2 {
		for p := range s.f2[k] {
			if s.f2[k][p] != nil {
				out.f2[k][p] = append([]int32(nil), s.f2[k][p]...)
			}
		}
	}
	return out
}

// merge appends next to s: counts add (next's phases shift by s.length),
// boundary matches between s's tail and next's head are stitched in, and
// head/tail are recomputed. Both summaries must agree on σ and maxPeriod.
func (s *summary) merge(next *summary) error {
	if s.sigma != next.sigma || s.maxPeriod != next.maxPeriod {
		return fmt.Errorf("store: summary shape mismatch (σ %d/%d, maxPeriod %d/%d)",
			s.sigma, next.sigma, s.maxPeriod, next.maxPeriod)
	}
	offset := s.length
	for k := range next.f2 {
		for p := 1; p <= next.maxPeriod; p++ {
			counts := next.f2[k][p]
			if counts == nil {
				continue
			}
			for l, c := range counts {
				if c != 0 {
					s.addF2(k, p, (l+offset)%p, c)
				}
			}
		}
	}
	// Boundary matches: start i in [offset−maxPeriod, offset), partner
	// i+p in next's head. s.tail covers positions offset−len(tail)..offset−1.
	tailStart := offset - len(s.tail)
	for p := 1; p <= s.maxPeriod; p++ {
		for i := offset - p; i < offset; i++ {
			if i < tailStart || i < 0 {
				continue
			}
			j := i + p - offset
			if j >= len(next.head) {
				continue
			}
			if s.tail[i-tailStart] == next.head[j] {
				s.bump(int(next.head[j]), p, i%p)
			}
		}
	}
	s.length += next.length
	s.head = firstN(s.maxPeriod, s.head, next.head, s.length-next.length, next.length)
	s.tail = lastN(s.maxPeriod, s.tail, next.tail, next.length)
	return nil
}

func (s *summary) addF2(k, p, l int, c int32) {
	if s.f2[k][p] == nil {
		s.f2[k][p] = make([]int32, p)
	}
	s.f2[k][p][l] += c
}

// firstN returns the first n symbols of the concatenation, given the prior
// head (covering min(n, aLen) of a) and next's head.
func firstN(n int, aHead, bHead []uint16, aLen, bLen int) []uint16 {
	if aLen >= n {
		return aHead
	}
	out := append([]uint16(nil), aHead...)
	need := n - len(out)
	if need > len(bHead) {
		need = len(bHead)
	}
	return append(out, bHead[:need]...)
}

// lastN returns the last n symbols of the concatenation, given the prior
// tail and next's tail (covering min(n, bLen) of b).
func lastN(n int, aTail, bTail []uint16, bLen int) []uint16 {
	if bLen >= n {
		return bTail
	}
	combined := append(append([]uint16(nil), aTail...), bTail...)
	if len(combined) > n {
		combined = combined[len(combined)-n:]
	}
	return combined
}
