package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/gen"
	"periodica/internal/series"
)

func TestMaxSubpatternMatchesHanMine(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 12; trial++ {
		n := rng.Intn(300) + 30
		sigma := rng.Intn(3) + 2
		p := rng.Intn(6) + 2
		idx := make([]uint16, n)
		for i := range idx {
			idx[i] = uint16(rng.Intn(sigma))
		}
		s := series.FromIndices(alphabet.Letters(sigma), idx)
		for _, minSup := range []float64{0.2, 0.5, 0.9} {
			want := HanMine(s, p, minSup, 100000)
			m := NewMaxSubpatternMiner(s, p, minSup)
			var got []KnownPeriodPattern
			if m != nil {
				got = m.Mine(100000)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d σ=%d p=%d sup=%v:\n hit-set %v\n DFS     %v", n, sigma, p, minSup, got, want)
			}
		}
	}
}

func TestMaxSubpatternCompressesRepetitiveData(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 5000, Period: 10, Sigma: 8, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.05, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaxSubpatternMiner(s, 10, 0.5)
	if m == nil {
		t.Fatal("miner not built")
	}
	if m.Segments() != 500 {
		t.Fatalf("segments = %d, want 500", m.Segments())
	}
	// With 5% noise most segments reduce to the same hit; the structure must
	// compress far below one entry per segment.
	if m.DistinctHits() >= m.Segments()/2 {
		t.Fatalf("distinct hits %d of %d segments — no compression", m.DistinctHits(), m.Segments())
	}
	pats := m.Mine(100000)
	full := 0
	for _, pt := range pats {
		if fixedCount(pt.Symbols) == 10 {
			full++
		}
	}
	if full == 0 {
		t.Fatal("full-length embedded pattern not frequent at 50%")
	}
}

func TestMaxSubpatternInvalidParams(t *testing.T) {
	s := series.FromString("abcabc")
	if NewMaxSubpatternMiner(s, 0, 0.5) != nil {
		t.Fatal("p=0: want nil")
	}
	if NewMaxSubpatternMiner(s, 2, 0) != nil {
		t.Fatal("minSup=0: want nil")
	}
	if NewMaxSubpatternMiner(s, 7, 0.5) != nil {
		t.Fatal("p>n: want nil")
	}
	var m *MaxSubpatternMiner
	if m.Mine(10) != nil {
		t.Fatal("nil miner Mine: want nil")
	}
}

func TestMaxSubpatternMaxPatterns(t *testing.T) {
	s := series.FromString("abababababababab")
	m := NewMaxSubpatternMiner(s, 2, 0.5)
	if got := m.Mine(2); len(got) > 2 {
		t.Fatalf("got %d patterns, want ≤ 2", len(got))
	}
}
