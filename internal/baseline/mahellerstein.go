// Package baseline implements the related-work algorithms the paper compares
// against in §1.1: the Ma–Hellerstein linear distance-based period finder,
// the Berberidis et al. per-symbol multi-pass candidate-period finder, and a
// Han-style partial-periodic-pattern miner for a known period (the second
// pass those multi-pass approaches must run to obtain actual patterns).
package baseline

import (
	"fmt"
	"sort"

	"periodica/internal/series"
)

// PeriodScore is a candidate period for one symbol with its test score.
type PeriodScore struct {
	Period int
	Count  int
	Score  float64
}

// MHConfig configures the Ma–Hellerstein finder.
type MHConfig struct {
	// Chi is the chi-square significance threshold; a distance qualifies if
	// its score (C−E)²/E with C>E exceeds Chi. Default 3.84 (95%).
	Chi float64
	// MinCount discards distances observed fewer times. Default 2.
	MinCount int
}

func (c MHConfig) withDefaults() MHConfig {
	if c.Chi == 0 { //opvet:ignore floatcmp zero means unset
		c.Chi = 3.84
	}
	if c.MinCount == 0 {
		c.MinCount = 2
	}
	return c
}

// MaHellerstein finds candidate periods per symbol from the distances between
// *adjacent* occurrences, scored by a chi-square test against the geometric
// inter-arrival distribution of a random placement. One linear pass per
// symbol; by construction it only ever proposes adjacent inter-arrival
// values, so it misses periods realized by non-adjacent occurrences — the
// deficiency §1.1 of the paper illustrates with occurrences at
// 0, 4, 5, 7, 10 whose underlying period 5 never appears as an adjacent
// distance.
func MaHellerstein(s *series.Series, cfg MHConfig) map[int][]PeriodScore {
	cfg = cfg.withDefaults()
	n := s.Len()
	out := make(map[int][]PeriodScore)
	for k := 0; k < s.Alphabet().Size(); k++ {
		positions := occurrences(s, k)
		if len(positions) < 2 {
			continue
		}
		hist := map[int]int{}
		for i := 1; i < len(positions); i++ {
			hist[positions[i]-positions[i-1]]++
		}
		rho := float64(len(positions)) / float64(n)
		trials := float64(len(positions) - 1)
		var cands []PeriodScore
		for d, c := range hist {
			if c < cfg.MinCount {
				continue
			}
			expected := trials * geomProb(rho, d)
			if expected <= 0 {
				expected = 1e-9
			}
			if float64(c) <= expected {
				continue
			}
			score := (float64(c) - expected) * (float64(c) - expected) / expected
			if score >= cfg.Chi {
				cands = append(cands, PeriodScore{Period: d, Count: c, Score: score})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score { //opvet:ignore floatcmp exact tie-break in sort comparator
				return cands[i].Score > cands[j].Score
			}
			return cands[i].Period < cands[j].Period
		})
		if len(cands) > 0 {
			out[k] = cands
		}
	}
	return out
}

// geomProb is the probability that a random placement with density rho has an
// adjacent inter-arrival of exactly d.
func geomProb(rho float64, d int) float64 {
	p := rho
	for i := 1; i < d; i++ {
		p *= 1 - rho
	}
	return p
}

func occurrences(s *series.Series, k int) []int {
	var out []int
	for i := 0; i < s.Len(); i++ {
		if s.At(i) == k {
			out = append(out, i)
		}
	}
	return out
}

// HasPeriod reports whether period p appears among the candidates for symbol
// k in a MaHellerstein result.
func HasPeriod(cands map[int][]PeriodScore, k, p int) bool {
	for _, c := range cands[k] {
		if c.Period == p {
			return true
		}
	}
	return false
}

// String renders a PeriodScore.
func (ps PeriodScore) String() string {
	return fmt.Sprintf("p=%d count=%d score=%.2f", ps.Period, ps.Count, ps.Score)
}
