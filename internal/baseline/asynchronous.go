package baseline

import (
	"fmt"

	"periodica/internal/series"
)

// AsyncPattern is a longest asynchronous occurrence of a single-symbol
// periodicity in the style of Yang, Wang and Yu (KDD 2000, the paper's
// reference [20]): a chain of valid segments — runs of the symbol recurring
// every Period positions, each at least MinRep repetitions long — where
// consecutive segments may be separated (and the phase shifted) by at most
// MaxDisturbance positions. Unlike Definition 1, the pattern's phase may
// drift along the series; the price is that the period must effectively be
// confirmed segment by segment.
type AsyncPattern struct {
	Symbol      int
	Period      int
	Start       int // first position of the first segment
	End         int // last position of the last segment
	Repetitions int // total symbol occurrences across the chained segments
	Segments    int
}

// AsyncConfig tunes FindAsync.
type AsyncConfig struct {
	// MinRep is the minimum repetitions for a segment to be valid.
	// Default 3.
	MinRep int
	// MaxDisturbance is the largest gap (in positions) allowed between
	// chained segments. Default = Period.
	MaxDisturbance int
}

// FindAsync returns, for symbol k at period p, the longest asynchronous
// pattern (maximizing total repetitions, then span), or nil when no valid
// segment exists. Linear in the series length: segments are the maximal
// arithmetic runs of k with stride p, chained greedily by a DP over segment
// ends.
func FindAsync(s *series.Series, k, p int, cfg AsyncConfig) (*AsyncPattern, error) {
	n := s.Len()
	if p < 1 || p >= n {
		return nil, fmt.Errorf("baseline: period %d outside [1,%d)", p, n)
	}
	if k < 0 || k >= s.Alphabet().Size() {
		return nil, fmt.Errorf("baseline: symbol %d outside alphabet", k)
	}
	if cfg.MinRep == 0 {
		cfg.MinRep = 3
	}
	if cfg.MinRep < 2 {
		return nil, fmt.Errorf("baseline: MinRep %d < 2", cfg.MinRep)
	}
	if cfg.MaxDisturbance == 0 {
		cfg.MaxDisturbance = p
	}

	// Maximal stride-p runs of symbol k, per phase, in start order.
	type segment struct {
		start, end, reps int
	}
	var segments []segment
	for l := 0; l < p; l++ {
		runStart, reps := -1, 0
		for i := l; i < n; i += p {
			if s.At(i) == k {
				if runStart < 0 {
					runStart = i
				}
				reps++
				continue
			}
			if reps >= cfg.MinRep {
				segments = append(segments, segment{runStart, runStart + (reps-1)*p, reps})
			}
			runStart, reps = -1, 0
		}
		if reps >= cfg.MinRep {
			segments = append(segments, segment{runStart, runStart + (reps-1)*p, reps})
		}
	}
	if len(segments) == 0 {
		return nil, nil
	}
	// Sort by start for the chaining DP.
	for i := 1; i < len(segments); i++ {
		for j := i; j > 0 && segments[j].start < segments[j-1].start; j-- {
			segments[j], segments[j-1] = segments[j-1], segments[j]
		}
	}

	type state struct {
		reps, count, start int
	}
	best := make([]state, len(segments))
	overallBest, overallIdx := state{}, -1
	for i, seg := range segments {
		best[i] = state{reps: seg.reps, count: 1, start: seg.start}
		for j := i - 1; j >= 0; j-- {
			prev := segments[j]
			if prev.end >= seg.start {
				continue // overlapping phases; a chain must move forward
			}
			gap := seg.start - prev.end - p // slack beyond the regular stride
			if gap < 0 {
				gap = seg.start - prev.end
			}
			if gap > cfg.MaxDisturbance {
				continue
			}
			if cand := best[j].reps + seg.reps; cand > best[i].reps {
				best[i] = state{reps: cand, count: best[j].count + 1, start: best[j].start}
			}
		}
		if best[i].reps > overallBest.reps ||
			(best[i].reps == overallBest.reps && overallIdx >= 0 && seg.end-best[i].start > segments[overallIdx].end-overallBest.start) {
			overallBest, overallIdx = best[i], i
		}
	}
	return &AsyncPattern{
		Symbol: k, Period: p,
		Start: overallBest.start, End: segments[overallIdx].end,
		Repetitions: overallBest.reps, Segments: overallBest.count,
	}, nil
}
