package baseline

import (
	"testing"

	"periodica/internal/gen"
)

// BenchmarkKnownPeriodMiners compares the occurrence-bitset DFS miner with
// the hit-set (max-subpattern) formulation on repetitive data, where the
// hit compression pays.
func BenchmarkKnownPeriodMiners(b *testing.B) {
	s, _, err := gen.Generate(gen.Config{Length: 50000, Period: 10, Sigma: 8, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dfs-bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HanMine(s, 10, 0.5, 100000)
		}
	})
	b.Run("hit-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewMaxSubpatternMiner(s, 10, 0.5).Mine(100000)
		}
	})
}

// BenchmarkPeriodFinders compares the three candidate-period approaches the
// paper's related work covers.
func BenchmarkPeriodFinders(b *testing.B) {
	s, _, err := gen.Generate(gen.Config{Length: 1 << 14, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ma-hellerstein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaHellerstein(s, MHConfig{})
		}
	})
	b.Run("berberidis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Berberidis(s, BerberidisConfig{MinConfidence: 0.6})
		}
	})
}
