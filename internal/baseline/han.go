package baseline

import (
	"sort"
	"strings"

	"periodica/internal/alphabet"
	"periodica/internal/bitvec"
	"periodica/internal/series"
)

// KnownPeriodPattern is a partial periodic pattern for a fixed, known period:
// Symbols[l] is the symbol required at offset l of each period occurrence, or
// -1 for don't-care. Support counts the occurrences at which every fixed
// offset holds.
type KnownPeriodPattern struct {
	Period  int
	Symbols []int
	Count   int
	Support float64
}

// Render writes the pattern with '*' don't-cares.
func (pt KnownPeriodPattern) Render(alpha *alphabet.Alphabet) string {
	var b strings.Builder
	for _, s := range pt.Symbols {
		if s < 0 {
			b.WriteByte('*')
		} else {
			b.WriteString(alpha.Symbol(s))
		}
	}
	return b.String()
}

// HanMine mines partial periodic patterns for a known period p in the style
// of Han, Dong and Yin (ICDE 1999): the series is cut into ⌊n/p⌋ full
// occurrences, frequent single (symbol, offset) pairs seed an Apriori-pruned
// depth-first enumeration, and a pattern is frequent when it holds in at
// least minSup·⌊n/p⌋ occurrences. Note the counting model differs from the
// convolution miner's Definition 1: occurrences are counted directly rather
// than through consecutive-pair matches, which is exactly why these miners
// need the period as an input parameter.
func HanMine(s *series.Series, p int, minSup float64, maxPatterns int) []KnownPeriodPattern {
	n := s.Len()
	if p < 1 || p > n || minSup <= 0 || minSup > 1 {
		return nil
	}
	total := n / p
	if total < 1 {
		return nil
	}
	sigma := s.Alphabet().Size()

	// Occurrence sets per (offset, symbol): bit m set iff t_{mp+l} = s_k.
	occ := make([][]*bitvec.Vector, p)
	for l := 0; l < p; l++ {
		occ[l] = make([]*bitvec.Vector, sigma)
	}
	for m := 0; m < total; m++ {
		for l := 0; l < p; l++ {
			k := s.At(m*p + l)
			if occ[l][k] == nil {
				occ[l][k] = bitvec.New(total)
			}
			occ[l][k].Set(m)
		}
	}

	minCount := int(minSup * float64(total))
	if float64(minCount) < minSup*float64(total) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}

	// Frequent singles per offset.
	type single struct {
		symbol int
		set    *bitvec.Vector
	}
	slots := make([][]single, p)
	for l := 0; l < p; l++ {
		for k := 0; k < sigma; k++ {
			if occ[l][k] != nil && occ[l][k].Count() >= minCount {
				slots[l] = append(slots[l], single{symbol: k, set: occ[l][k]})
			}
		}
	}

	var out []KnownPeriodPattern
	symbols := make([]int, p)
	for i := range symbols {
		symbols[i] = -1
	}
	var walk func(l int, cur *bitvec.Vector, fixed int)
	walk = func(l int, cur *bitvec.Vector, fixed int) {
		if len(out) >= maxPatterns {
			return
		}
		if cur != nil && cur.Count() < minCount {
			return
		}
		if l == p {
			if fixed >= 1 {
				count := cur.Count()
				syms := make([]int, p)
				copy(syms, symbols)
				out = append(out, KnownPeriodPattern{
					Period: p, Symbols: syms, Count: count,
					Support: float64(count) / float64(total),
				})
			}
			return
		}
		walk(l+1, cur, fixed)
		for _, sg := range slots[l] {
			next := sg.set
			if cur != nil {
				next = cur.And(sg.set, nil)
			}
			symbols[l] = sg.symbol
			walk(l+1, next, fixed+1)
			symbols[l] = -1
		}
	}
	walk(0, nil, 0)

	sort.Slice(out, func(i, j int) bool {
		fi, fj := fixedCount(out[i].Symbols), fixedCount(out[j].Symbols)
		if fi != fj {
			return fi < fj
		}
		if out[i].Support != out[j].Support { //opvet:ignore floatcmp exact tie-break in sort comparator
			return out[i].Support > out[j].Support
		}
		return lessInts(out[i].Symbols, out[j].Symbols)
	})
	return out
}

func fixedCount(symbols []int) int {
	c := 0
	for _, s := range symbols {
		if s >= 0 {
			c++
		}
	}
	return c
}

func lessInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
