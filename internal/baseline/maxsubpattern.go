package baseline

import (
	"sort"

	"periodica/internal/series"
)

// MaxSubpatternMiner is the hit-set formulation of Han, Dong and Yin's
// known-period partial-periodic-pattern miner (ICDE 1999): the first scan
// finds the frequent single (offset, symbol) pairs and forms the candidate
// max-pattern C_max; the second scan reduces every period segment to its
// *hit* — the maximal subpattern of C_max it matches — and stores only the
// distinct hits with counts. Every pattern frequency is then derived from
// the hit set without touching the data again, which is the point of the
// original max-subpattern tree; the hit multiset here is that tree's
// information content in hash-map form.
type MaxSubpatternMiner struct {
	period   int
	sigma    int
	total    int
	minCount int
	// frequent[l][k] reports whether symbol k is frequent at offset l.
	frequent [][]bool
	// hits maps the canonical hit encoding to its segment count.
	hits map[string]int
}

// NewMaxSubpatternMiner runs both scans over s for the given period and
// minimum support. Returns nil for infeasible parameters (mirroring
// HanMine).
func NewMaxSubpatternMiner(s *series.Series, p int, minSup float64) *MaxSubpatternMiner {
	n := s.Len()
	if p < 1 || p > n || minSup <= 0 || minSup > 1 {
		return nil
	}
	total := n / p
	if total < 1 {
		return nil
	}
	sigma := s.Alphabet().Size()
	minCount := int(minSup * float64(total))
	if float64(minCount) < minSup*float64(total) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}
	m := &MaxSubpatternMiner{period: p, sigma: sigma, total: total, minCount: minCount}

	// Scan 1: frequent singles.
	counts := make([][]int, p)
	for l := range counts {
		counts[l] = make([]int, sigma)
	}
	for seg := 0; seg < total; seg++ {
		for l := 0; l < p; l++ {
			counts[l][s.At(seg*p+l)]++
		}
	}
	m.frequent = make([][]bool, p)
	for l := 0; l < p; l++ {
		m.frequent[l] = make([]bool, sigma)
		for k := 0; k < sigma; k++ {
			m.frequent[l][k] = counts[l][k] >= minCount
		}
	}

	// Scan 2: reduce each segment to its hit against C_max and count
	// distinct hits.
	m.hits = make(map[string]int)
	hit := make([]byte, p)
	for seg := 0; seg < total; seg++ {
		for l := 0; l < p; l++ {
			k := s.At(seg*p + l)
			if m.frequent[l][k] {
				hit[l] = byte(k + 1)
			} else {
				hit[l] = 0
			}
		}
		m.hits[string(hit)]++
	}
	return m
}

// DistinctHits returns the number of distinct hits stored — the compression
// the structure achieves over the ⌊n/p⌋ segments.
func (m *MaxSubpatternMiner) DistinctHits() int { return len(m.hits) }

// Segments returns ⌊n/p⌋, the number of period segments scanned.
func (m *MaxSubpatternMiner) Segments() int { return m.total }

// Mine derives every frequent pattern (≥ 1 fixed offset) from the hit set
// alone, depth-first with Apriori pruning; output matches HanMine.
func (m *MaxSubpatternMiner) Mine(maxPatterns int) []KnownPeriodPattern {
	if m == nil {
		return nil
	}
	type hitEntry struct {
		pattern string
		count   int
	}
	all := make([]hitEntry, 0, len(m.hits))
	for pat, c := range m.hits {
		all = append(all, hitEntry{pat, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pattern < all[j].pattern })

	symbols := make([]int, m.period)
	for i := range symbols {
		symbols[i] = -1
	}
	var out []KnownPeriodPattern

	// walk refines the set of compatible hits offset by offset.
	var walk func(l int, compatible []hitEntry, fixed int)
	walk = func(l int, compatible []hitEntry, fixed int) {
		if len(out) >= maxPatterns {
			return
		}
		count := 0
		for _, h := range compatible {
			count += h.count
		}
		if count < m.minCount {
			return
		}
		if l == m.period {
			if fixed >= 1 {
				syms := make([]int, m.period)
				copy(syms, symbols)
				out = append(out, KnownPeriodPattern{
					Period: m.period, Symbols: syms, Count: count,
					Support: float64(count) / float64(m.total),
				})
			}
			return
		}
		// Don't-care keeps every compatible hit.
		walk(l+1, compatible, fixed)
		for k := 0; k < m.sigma; k++ {
			if !m.frequent[l][k] {
				continue
			}
			var narrowed []hitEntry
			for _, h := range compatible {
				if h.pattern[l] == byte(k+1) {
					narrowed = append(narrowed, h)
				}
			}
			if len(narrowed) == 0 {
				continue
			}
			symbols[l] = k
			walk(l+1, narrowed, fixed+1)
			symbols[l] = -1
		}
	}
	walk(0, all, 0)

	sort.Slice(out, func(i, j int) bool {
		fi, fj := fixedCount(out[i].Symbols), fixedCount(out[j].Symbols)
		if fi != fj {
			return fi < fj
		}
		if out[i].Support != out[j].Support { //opvet:ignore floatcmp exact tie-break in sort comparator
			return out[i].Support > out[j].Support
		}
		return lessInts(out[i].Symbols, out[j].Symbols)
	})
	return out
}
