package baseline

import (
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/gen"
	"periodica/internal/series"
)

// paperCounterexample builds a series where symbol a occurs at positions
// 0, 4, 5, 7, 10 — §1.1's example of a period (5) the distance-based
// algorithm cannot see, because the adjacent inter-arrivals are only
// 4, 1, 2 and 3.
func paperCounterexample(t *testing.T) *series.Series {
	t.Helper()
	idx := make([]int, 12)
	for i := range idx {
		idx[i] = 1 + i%2 // background noise symbols b, c
	}
	for _, pos := range []int{0, 4, 5, 7, 10} {
		idx[pos] = 0
	}
	s, err := series.New(alphabet.Letters(3), idx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMaHellersteinMissesNonAdjacentPeriod(t *testing.T) {
	s := paperCounterexample(t)
	cands := MaHellerstein(s, MHConfig{Chi: 0.0001, MinCount: 1})
	if HasPeriod(cands, 0, 5) {
		t.Fatal("Ma-Hellerstein proposed period 5, which adjacent inter-arrivals cannot contain")
	}
	// Meanwhile the convolution miner detects it: a matches at lag 5 from
	// positions 0 and 5.
	res, err := core.Mine(s, core.Options{Threshold: 0.9, MinPeriod: 5, MaxPeriod: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range res.Periodicities {
		if sp.Symbol == 0 && sp.Period == 5 && sp.Position == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("convolution miner missed period 5 at position 0")
	}
}

func TestMaHellersteinFindsAdjacentPeriod(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 1000, Period: 10, Sigma: 10, Dist: gen.Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := MaHellerstein(s, MHConfig{})
	// Every symbol present in the pattern recurs every 10 positions (or a
	// divisor if repeated within the pattern); at least one symbol must
	// surface an adjacent-distance candidate that divides or equals 10.
	hit := false
	for _, list := range cands {
		for _, ps := range list {
			if 10%ps.Period == 0 || ps.Period%10 == 0 {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatal("no period related to 10 among Ma-Hellerstein candidates")
	}
}

func TestMaHellersteinIgnoresRareSymbols(t *testing.T) {
	s, err := series.New(alphabet.Letters(2), []int{0, 0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := MaHellerstein(s, MHConfig{})
	if _, ok := cands[1]; ok {
		t.Fatal("candidate for symbol with a single occurrence")
	}
}

func TestBerberidisFindsEmbeddedPeriod(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 2000, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cands := Berberidis(s, BerberidisConfig{MinConfidence: 0.6})
	hit := false
	for _, periods := range cands {
		for _, p := range periods {
			if p == 25 {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatalf("period 25 not among Berberidis candidates: %v", cands)
	}
}

func TestBerberidisSeesNonAdjacentPeriod(t *testing.T) {
	// Unlike Ma-Hellerstein, autocorrelation counts non-adjacent recurrences.
	s := paperCounterexample(t)
	cands := Berberidis(s, BerberidisConfig{MinConfidence: 0.4, MaxPeriod: 6})
	found := false
	for _, p := range cands[0] {
		if p == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Berberidis missed period 5 for symbol a: %v", cands)
	}
}

func TestHanMineKnownPeriod(t *testing.T) {
	// abc repeated: at p=3 the pattern abc holds at every occurrence.
	s := series.FromString("abcabcabcabc")
	pats := HanMine(s, 3, 0.9, 100)
	if len(pats) == 0 {
		t.Fatal("no patterns mined")
	}
	full := ""
	for _, pt := range pats {
		if fixedCount(pt.Symbols) == 3 {
			full = pt.Render(s.Alphabet())
			if pt.Support != 1 {
				t.Fatalf("full pattern support %v, want 1", pt.Support)
			}
		}
	}
	if full != "abc" {
		t.Fatalf("full pattern %q, want abc", full)
	}
}

func TestHanMineSupportCounting(t *testing.T) {
	// p=2 over "abababacab..": occurrence-based counting.
	s := series.FromString("abababacab")
	pats := HanMine(s, 2, 0.5, 100)
	var ab *KnownPeriodPattern
	for i := range pats {
		if pats[i].Render(s.Alphabet()) == "ab" {
			ab = &pats[i]
		}
	}
	if ab == nil {
		t.Fatalf("pattern ab missing: %v", pats)
	}
	// Occurrences: ab ab ab ac ab → 4 of 5.
	if ab.Count != 4 || ab.Support != 0.8 {
		t.Fatalf("ab count=%d support=%v, want 4 and 0.8", ab.Count, ab.Support)
	}
}

func TestHanMineRespectsMinSup(t *testing.T) {
	s := series.FromString("abababacab")
	for _, pt := range HanMine(s, 2, 0.9, 100) {
		if pt.Support < 0.9 {
			t.Fatalf("pattern %v below minSup", pt)
		}
	}
}

func TestHanMineInvalidInputs(t *testing.T) {
	s := series.FromString("abc")
	if pats := HanMine(s, 0, 0.5, 10); pats != nil {
		t.Fatal("p=0 should mine nothing")
	}
	if pats := HanMine(s, 2, 0, 10); pats != nil {
		t.Fatal("minSup=0 should mine nothing")
	}
	if pats := HanMine(s, 2, 1.5, 10); pats != nil {
		t.Fatal("minSup>1 should mine nothing")
	}
}

func TestHanMineMaxPatterns(t *testing.T) {
	s := series.FromString("abababababab")
	pats := HanMine(s, 2, 0.1, 2)
	if len(pats) > 2 {
		t.Fatalf("got %d patterns, want ≤ 2", len(pats))
	}
}

func TestBerberidisMineMultiPass(t *testing.T) {
	s, _, err := gen.Generate(gen.Config{Length: 400, Period: 8, Sigma: 6, Dist: gen.Uniform, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pats, passes := BerberidisMine(s, BerberidisConfig{MinConfidence: 0.8, MaxPeriod: 40}, 0.8)
	if passes < 2 {
		t.Fatalf("multi-pass pipeline reported %d passes", passes)
	}
	if len(pats[8]) == 0 {
		t.Fatalf("no patterns at embedded period 8; periods mined: %v", keys(pats))
	}
}

func keys(m map[int][]KnownPeriodPattern) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPeriodScoreString(t *testing.T) {
	got := PeriodScore{Period: 7, Count: 3, Score: 1.5}.String()
	if got != "p=7 count=3 score=1.50" {
		t.Fatalf("String = %q", got)
	}
}
