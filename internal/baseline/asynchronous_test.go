package baseline

import (
	"testing"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// buildSeries places symbol 0 at the given positions over a length-n series
// of background symbol 1.
func buildSeries(t *testing.T, n int, positions []int) *series.Series {
	t.Helper()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = 1
	}
	for _, pos := range positions {
		idx[pos] = 0
	}
	s, err := series.New(alphabet.Letters(2), idx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFindAsyncSingleSegment(t *testing.T) {
	// Symbol at 2, 7, 12, 17: one stride-5 run of 4 repetitions.
	s := buildSeries(t, 25, []int{2, 7, 12, 17})
	pat, err := FindAsync(s, 0, 5, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pat == nil {
		t.Fatal("no pattern found")
	}
	if pat.Start != 2 || pat.End != 17 || pat.Repetitions != 4 || pat.Segments != 1 {
		t.Fatalf("pattern %+v", pat)
	}
}

func TestFindAsyncChainsAcrossPhaseShift(t *testing.T) {
	// Segment A: 0, 5, 10 (phase 0). Then a shift of +2: 17, 22, 27
	// (phase 2). The asynchronous pattern chains both; Definition 1 sees
	// only 3 repetitions at either phase.
	s := buildSeries(t, 35, []int{0, 5, 10, 17, 22, 27})
	pat, err := FindAsync(s, 0, 5, AsyncConfig{MaxDisturbance: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pat == nil {
		t.Fatal("no pattern")
	}
	if pat.Segments != 2 || pat.Repetitions != 6 || pat.Start != 0 || pat.End != 27 {
		t.Fatalf("pattern %+v, want 2 segments × 6 repetitions over [0,27]", pat)
	}
}

func TestFindAsyncRespectsMaxDisturbance(t *testing.T) {
	s := buildSeries(t, 60, []int{0, 5, 10, 30, 35, 40})
	// Gap of 20−5=15 beyond the stride: disallowed at 3, allowed at 15.
	tight, err := FindAsync(s, 0, 5, AsyncConfig{MaxDisturbance: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Segments != 1 || tight.Repetitions != 3 {
		t.Fatalf("tight %+v, want a single segment", tight)
	}
	loose, err := FindAsync(s, 0, 5, AsyncConfig{MaxDisturbance: 15})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Segments != 2 || loose.Repetitions != 6 {
		t.Fatalf("loose %+v, want both segments chained", loose)
	}
}

func TestFindAsyncMinRep(t *testing.T) {
	// Two repetitions only: below the default MinRep of 3.
	s := buildSeries(t, 20, []int{0, 5})
	pat, err := FindAsync(s, 0, 5, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pat != nil {
		t.Fatalf("pattern %+v from a 2-repetition run", pat)
	}
	pat, err = FindAsync(s, 0, 5, AsyncConfig{MinRep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pat == nil || pat.Repetitions != 2 {
		t.Fatalf("MinRep=2 should accept the run: %+v", pat)
	}
}

func TestFindAsyncValidates(t *testing.T) {
	s := buildSeries(t, 10, []int{0})
	if _, err := FindAsync(s, 0, 0, AsyncConfig{}); err == nil {
		t.Fatal("p=0: want error")
	}
	if _, err := FindAsync(s, 5, 2, AsyncConfig{}); err == nil {
		t.Fatal("bad symbol: want error")
	}
	if _, err := FindAsync(s, 0, 2, AsyncConfig{MinRep: 1}); err == nil {
		t.Fatal("MinRep=1: want error")
	}
}

func TestFindAsyncPrefersMoreRepetitions(t *testing.T) {
	// A long run (5 reps) and a short one (3 reps) far apart: the best
	// pattern is the long run alone when chaining is impossible.
	s := buildSeries(t, 80, []int{0, 5, 10, 15, 20, 60, 65, 70})
	pat, err := FindAsync(s, 0, 5, AsyncConfig{MaxDisturbance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pat.Repetitions != 5 || pat.Start != 0 {
		t.Fatalf("pattern %+v, want the 5-repetition run", pat)
	}
}
