package baseline

import (
	"sort"

	"periodica/internal/conv"
	"periodica/internal/series"
)

// BerberidisConfig configures the per-symbol autocorrelation period finder.
type BerberidisConfig struct {
	// MinConfidence is the minimum fraction of the maximum possible lag-p
	// matches a candidate must reach. Default 0.5.
	MinConfidence float64
	// MaxPeriod bounds the candidate periods; 0 means n/2.
	MaxPeriod int
}

func (c BerberidisConfig) withDefaults(n int) BerberidisConfig {
	if c.MinConfidence == 0 { //opvet:ignore floatcmp zero means unset
		c.MinConfidence = 0.5
	}
	if c.MaxPeriod == 0 {
		c.MaxPeriod = n / 2
	}
	return c
}

// Berberidis finds candidate periods per symbol by thresholding the symbol's
// autocorrelation (Berberidis et al., ECAI 2002): one FFT pass per symbol,
// candidate p when the lag-p match count reaches MinConfidence of the
// largest count achievable at that lag. Unlike Ma–Hellerstein it sees
// non-adjacent recurrences, but it yields only candidate periods — obtaining
// the patterns themselves requires a further known-period mining pass per
// candidate (BerberidisMine), which is the multi-pass structure §1.1
// criticizes.
func Berberidis(s *series.Series, cfg BerberidisConfig) map[int][]int {
	cfg = cfg.withDefaults(s.Len())
	lag := conv.LagMatchCounts(s)
	n := s.Len()
	out := make(map[int][]int)
	for k := range lag {
		var cands []int
		for p := 1; p <= cfg.MaxPeriod; p++ {
			// A symbol can match at lag p at most once per projection slot
			// pair; ⌈(n−p)/p⌉ caps the count when every slot matches.
			maxPossible := (n + p - 1) / p
			if maxPossible < 1 {
				continue
			}
			if float64(lag[k][p]) >= cfg.MinConfidence*float64(maxPossible) {
				cands = append(cands, p)
			}
		}
		if len(cands) > 0 {
			sort.Ints(cands)
			out[k] = cands
		}
	}
	return out
}

// BerberidisMine is the full multi-pass pipeline: find candidate periods per
// symbol, then run the known-period miner once per distinct candidate period.
// It returns the union of patterns keyed by period. The extra scans per
// candidate are inherent to the approach; the caller can count them via the
// returned pass count.
func BerberidisMine(s *series.Series, cfg BerberidisConfig, minSup float64) (map[int][]KnownPeriodPattern, int) {
	cands := Berberidis(s, cfg)
	periodSet := map[int]bool{}
	for _, ps := range cands {
		for _, p := range ps {
			periodSet[p] = true
		}
	}
	passes := 1 // the autocorrelation pass
	out := make(map[int][]KnownPeriodPattern)
	var periods []int
	for p := range periodSet {
		periods = append(periods, p)
	}
	sort.Ints(periods)
	for _, p := range periods {
		passes++
		pats := HanMine(s, p, minSup, 1000)
		if len(pats) > 0 {
			out[p] = pats
		}
	}
	return out, passes
}
