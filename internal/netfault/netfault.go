// Package netfault is the narrow seam between the distributed tier and the
// network: a deterministic, seeded fault-injecting http.RoundTripper. It
// plays the role internal/iofault plays for the persistence layers — an
// enumerable set of adversarial network behaviors (drop a response, delay
// it, duplicate the request, truncate or bit-flip the response body, inject
// a 5xx/429, partition a host) that tests sweep exhaustively instead of
// hand-writing one flaky-worker stub per failure mode.
//
// Faults are scripted per *bucket*: every request is assigned a bucket key
// (by default its target host; tests usually key by the shard ID inside the
// request body) and a 1-based attempt number within that bucket, and the
// injector fires when the attempt number matches the plan. Because the
// attempt count is per bucket, concurrent dispatch of many shards cannot
// reorder which request gets faulted — "fault the first attempt of every
// shard" means exactly that, at any interleaving. The same seed, plan, and
// workload always corrupt the same bytes, so a failing sweep cell reproduces
// from its logged (seed, fault, attempt) triple.
//
// Production code never sees this package; the coordinator's ShardClient
// accepts any *http.Client, and tests hand it one whose Transport is an
// Injector.
package netfault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Errors returned by injected faults. ErrInjected models a response lost in
// flight — the server did the work, the client never saw the answer — so a
// retry after it is a true duplicate delivery. ErrPartitioned models a
// network partition: no bytes reach the host at all.
var (
	ErrInjected    = errors.New("netfault: injected network fault — response dropped")
	ErrPartitioned = errors.New("netfault: host partitioned")
)

// Fault selects what happens at the injection point.
type Fault int

const (
	// FaultNone injects nothing; the injector only counts requests.
	FaultNone Fault = iota
	// FaultDrop performs the round trip, discards the response, and returns
	// ErrInjected — the adversarial kind of drop, where the worker has
	// already done (and will dedupe-merge-test) the work.
	FaultDrop
	// FaultDelay holds the request for Plan.Delay before forwarding it,
	// aborting early if the request context expires — a slow link or a
	// stalled worker, from the caller's point of view.
	FaultDelay
	// FaultDuplicate delivers the request twice (sequentially); the first
	// response is discarded and the second returned, so the server observes
	// a duplicate delivery.
	FaultDuplicate
	// FaultTruncate forwards the request and returns a seeded strict prefix
	// of the response body, with Content-Length rewritten so the truncation
	// is invisible at the HTTP layer — only body-level integrity checks can
	// catch it.
	FaultTruncate
	// FaultBitFlip forwards the request and flips one seeded bit of the
	// response body — the sketch-corruption case: the JSON may still parse
	// with a silently wrong integer.
	FaultBitFlip
	// FaultStatus short-circuits the request with a synthetic Plan.Status
	// response (and optional Retry-After), the way an overloaded worker or
	// an intermediary would.
	FaultStatus
)

// String names the fault for sweep logs.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultTruncate:
		return "truncate"
	case FaultBitFlip:
		return "bitflip"
	case FaultStatus:
		return "status"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Plan is one scripted injection: fire Fault at the Attempt-th request of
// every bucket.
type Plan struct {
	Fault Fault
	// Attempt is the 1-based request index within a bucket at which the
	// fault fires; 0 fires on every request.
	Attempt int64
	// Status is the synthetic response status for FaultStatus.
	Status int
	// RetryAfterSecs, when positive, adds a Retry-After header to the
	// synthetic FaultStatus response.
	RetryAfterSecs int
	// Delay is the hold time for FaultDelay.
	Delay time.Duration
}

// Injector is a fault-injecting http.RoundTripper. The zero value is not
// usable; call New. Safe for concurrent use.
type Injector struct {
	base http.RoundTripper
	key  func(*http.Request) string
	plan Plan
	seed uint64

	mu          sync.Mutex
	counts      map[string]int64
	partitioned map[string]bool
	fired       int64
}

// New wraps base (nil means http.DefaultTransport) with the given plan and
// seed. The default bucket key is the request's target host; SetKeyFunc
// replaces it.
func New(base http.RoundTripper, plan Plan, seed int64) *Injector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Injector{
		base:        base,
		key:         func(r *http.Request) string { return r.URL.Host },
		plan:        plan,
		seed:        uint64(seed)*2862933555777941757 + 3037000493,
		counts:      map[string]int64{},
		partitioned: map[string]bool{},
	}
}

// SetKeyFunc replaces the bucket-key function. Call before any request is
// issued; the key must be derivable without consuming the request body
// (PeekBody reads a replayable copy).
func (in *Injector) SetKeyFunc(key func(*http.Request) string) { in.key = key }

// Partition cuts the named hosts off: every request to them fails with
// ErrPartitioned until Heal.
func (in *Injector) Partition(hosts ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, h := range hosts {
		in.partitioned[h] = true
	}
}

// Heal reconnects a partitioned host.
func (in *Injector) Heal(host string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.partitioned, host)
}

// Fired returns how many times the plan's fault has fired.
func (in *Injector) Fired() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Requests returns the total number of requests observed.
func (in *Injector) Requests() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, c := range in.counts {
		n += c
	}
	return n
}

// PeekBody returns a copy of the request body without consuming it, using
// the replayable GetBody the http client sets for buffered bodies; it
// returns nil when the body is not replayable.
func PeekBody(r *http.Request) []byte {
	if r.GetBody == nil {
		return nil
	}
	rc, err := r.GetBody()
	if err != nil {
		return nil
	}
	defer func() { _ = rc.Close() }() // in-memory replay reader; close cannot lose data
	b, err := io.ReadAll(rc)
	if err != nil {
		return nil
	}
	return b
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	key := in.key(req)
	in.mu.Lock()
	if in.partitioned[req.URL.Host] {
		in.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, req.URL.Host)
	}
	in.counts[key]++
	n := in.counts[key]
	fire := in.plan.Fault != FaultNone && (in.plan.Attempt == 0 || n == in.plan.Attempt)
	if fire {
		in.fired++
	}
	in.mu.Unlock()
	if !fire {
		return in.base.RoundTrip(req)
	}

	switch in.plan.Fault {
	case FaultDrop:
		resp, err := in.base.RoundTrip(req)
		if err == nil {
			discard(resp)
		}
		return nil, fmt.Errorf("%w (bucket %q attempt %d)", ErrInjected, key, n)
	case FaultDelay:
		t := time.NewTimer(in.plan.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return in.base.RoundTrip(req)
	case FaultDuplicate:
		if req.GetBody != nil {
			first := req.Clone(req.Context())
			body, err := req.GetBody()
			if err == nil {
				first.Body = body
				if resp, err := in.base.RoundTrip(first); err == nil {
					discard(resp)
				}
				if rebody, err := req.GetBody(); err == nil {
					req.Body = rebody
				}
			}
		}
		return in.base.RoundTrip(req)
	case FaultTruncate:
		return in.mangleBody(req, key, n, func(b []byte, r uint64) []byte {
			if len(b) == 0 {
				return b
			}
			return b[:r%uint64(len(b))] // strict prefix, deterministic in (seed, bucket, attempt)
		})
	case FaultBitFlip:
		return in.mangleBody(req, key, n, func(b []byte, r uint64) []byte {
			if len(b) == 0 {
				return b
			}
			bit := r % uint64(len(b)*8)
			b[bit/8] ^= 1 << (bit % 8)
			return b
		})
	case FaultStatus:
		return in.syntheticStatus(req), nil
	}
	return in.base.RoundTrip(req)
}

// mangleBody forwards the request, then rewrites the response body through
// mutate with a value deterministic in (seed, bucket, attempt).
func (in *Injector) mangleBody(req *http.Request, key string, n int64, mutate func([]byte, uint64) []byte) (*http.Response, error) {
	resp, err := in.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	cerr := resp.Body.Close()
	if err != nil || cerr != nil {
		return nil, fmt.Errorf("netfault: reading body to mangle: %w", errors.Join(err, cerr))
	}
	body = mutate(body, in.mix(key, n))
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}

// syntheticStatus builds the injected non-200 response.
func (in *Injector) syntheticStatus(req *http.Request) *http.Response {
	body := fmt.Sprintf(`{"error":"netfault: injected status %d"}`, in.plan.Status)
	h := http.Header{"Content-Type": []string{"application/json"}}
	if in.plan.RetryAfterSecs > 0 {
		h.Set("Retry-After", strconv.Itoa(in.plan.RetryAfterSecs))
	}
	return &http.Response{
		StatusCode:    in.plan.Status,
		Status:        fmt.Sprintf("%d %s", in.plan.Status, http.StatusText(in.plan.Status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// mix derives the deterministic per-injection randomness from the seed, the
// bucket key, and the attempt number (splitmix-style finalizer over an FNV
// hash of the key).
func (in *Injector) mix(key string, n int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := in.seed ^ h ^ uint64(n)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// discard drains and closes a response the injector is about to lose, so the
// underlying connection returns to the pool.
func discard(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close() // response is being discarded; nothing to lose
}
