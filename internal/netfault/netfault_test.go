package netfault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer answers every POST with its request body and counts deliveries.
func echoServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("server read: %v", err)
		}
		_, _ = w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func post(t *testing.T, c *http.Client, url, body string) (*http.Response, []byte, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = resp.Body.Close() }() // test read; nothing to lose on close
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b, nil
}

func client(in *Injector) *http.Client { return &http.Client{Transport: in} }

func TestDropLosesResponseAfterDelivery(t *testing.T) {
	srv, hits := echoServer(t)
	in := New(nil, Plan{Fault: FaultDrop, Attempt: 1}, 1)
	_, _, err := post(t, client(in), srv.URL, "hello")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d deliveries, want 1 (drop loses the response, not the request)", hits.Load())
	}
	// The next attempt in the same bucket passes untouched.
	_, body, err := post(t, client(in), srv.URL, "again")
	if err != nil || string(body) != "again" {
		t.Fatalf("post-fault request: body %q err %v", body, err)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired())
	}
}

func TestDelayHoldsThenForwards(t *testing.T) {
	srv, _ := echoServer(t)
	in := New(nil, Plan{Fault: FaultDelay, Attempt: 1, Delay: 50 * time.Millisecond}, 1)
	start := time.Now()
	_, body, err := post(t, client(in), srv.URL, "slow")
	if err != nil || string(body) != "slow" {
		t.Fatalf("body %q err %v", body, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request completed in %v, want ≥ the 50ms injected delay", d)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	srv, hits := echoServer(t)
	in := New(nil, Plan{Fault: FaultDuplicate, Attempt: 1}, 1)
	_, body, err := post(t, client(in), srv.URL, "twice")
	if err != nil || string(body) != "twice" {
		t.Fatalf("body %q err %v", body, err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits.Load())
	}
}

func TestTruncateIsDeterministicStrictPrefix(t *testing.T) {
	srv, _ := echoServer(t)
	full := strings.Repeat("0123456789", 20)
	var got [2]string
	for i := range got {
		in := New(nil, Plan{Fault: FaultTruncate, Attempt: 1}, 42)
		resp, body, err := post(t, client(in), srv.URL, full)
		if err != nil {
			t.Fatal(err)
		}
		if len(body) >= len(full) || !strings.HasPrefix(full, string(body)) {
			t.Fatalf("body %q is not a strict prefix of the original", body)
		}
		if int(resp.ContentLength) != len(body) {
			t.Fatalf("Content-Length %d disagrees with body length %d — truncation must be invisible at the HTTP layer",
				resp.ContentLength, len(body))
		}
		got[i] = string(body)
	}
	if got[0] != got[1] {
		t.Fatalf("same seed truncated differently: %d vs %d bytes", len(got[0]), len(got[1]))
	}
}

func TestBitFlipFlipsExactlyOneBitDeterministically(t *testing.T) {
	srv, _ := echoServer(t)
	full := strings.Repeat("abcdefgh", 16)
	var got [2][]byte
	for i := range got {
		in := New(nil, Plan{Fault: FaultBitFlip, Attempt: 1}, 7)
		_, body, err := post(t, client(in), srv.URL, full)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = body
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Fatal("same seed flipped different bits")
	}
	diffBits := 0
	for i := range got[0] {
		b := got[0][i] ^ full[i]
		for ; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diffBits)
	}
}

func TestStatusInjectsRetryAfter(t *testing.T) {
	srv, hits := echoServer(t)
	in := New(nil, Plan{Fault: FaultStatus, Attempt: 1, Status: 429, RetryAfterSecs: 3}, 1)
	resp, _, err := post(t, client(in), srv.URL, "x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("status %d Retry-After %q, want 429 / 3", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if hits.Load() != 0 {
		t.Fatalf("synthetic status must not reach the server; saw %d deliveries", hits.Load())
	}
}

func TestPartitionAndHeal(t *testing.T) {
	srv, _ := echoServer(t)
	in := New(nil, Plan{}, 1)
	host := strings.TrimPrefix(srv.URL, "http://")
	in.Partition(host)
	if _, _, err := post(t, client(in), srv.URL, "x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	in.Heal(host)
	if _, body, err := post(t, client(in), srv.URL, "back"); err != nil || string(body) != "back" {
		t.Fatalf("after heal: body %q err %v", body, err)
	}
}

// TestBucketCountingIsPerKey: with a body-derived key, the Nth attempt of
// each bucket is faulted regardless of interleaving with other buckets.
func TestBucketCountingIsPerKey(t *testing.T) {
	srv, _ := echoServer(t)
	in := New(nil, Plan{Fault: FaultStatus, Attempt: 2, Status: 500}, 1)
	in.SetKeyFunc(func(r *http.Request) string { return string(PeekBody(r)) })
	c := client(in)
	for _, bucket := range []string{"a", "b"} {
		if resp, _, err := post(t, c, srv.URL, bucket); err != nil || resp.StatusCode != 200 {
			t.Fatalf("bucket %s attempt 1: %v", bucket, err)
		}
	}
	for _, bucket := range []string{"a", "b"} {
		resp, _, err := post(t, c, srv.URL, bucket)
		if err != nil || resp.StatusCode != 500 {
			t.Fatalf("bucket %s attempt 2: status %v err %v, want injected 500", bucket, resp, err)
		}
	}
	if in.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", in.Fired())
	}
}
