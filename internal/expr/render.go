package expr

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderCorrectness writes the Fig. 3 / Fig. 4 points as one curve per
// (distribution, period) with a column per multiple of P.
func RenderCorrectness(w io.Writer, title string, points []CorrectnessPoint) {
	fmt.Fprintf(w, "%s\n", title)
	type key struct {
		dist   string
		period int
	}
	curves := map[key]map[int]float64{}
	var keys []key
	var mults []int
	seenMult := map[int]bool{}
	for _, pt := range points {
		k := key{pt.Dist.String(), pt.Period}
		if curves[k] == nil {
			curves[k] = map[int]float64{}
			keys = append(keys, k)
		}
		curves[k][pt.Multiple] = pt.Confidence
		if !seenMult[pt.Multiple] {
			seenMult[pt.Multiple] = true
			mults = append(mults, pt.Multiple)
		}
	}
	sort.Ints(mults)
	fmt.Fprintf(w, "%-12s", "curve")
	for _, m := range mults {
		fmt.Fprintf(w, "  %6s", fmt.Sprintf("%dP", m))
	}
	fmt.Fprintln(w)
	for _, k := range keys {
		fmt.Fprintf(w, "%-12s", fmt.Sprintf("%s, P=%d", k.dist, k.period))
		for _, m := range mults {
			fmt.Fprintf(w, "  %6.3f", curves[k][m])
		}
		fmt.Fprintln(w)
	}
}

// RenderNoise writes the Fig. 6 sweep as one row per noise mixture with a
// column per ratio.
func RenderNoise(w io.Writer, title string, points []NoisePoint) {
	fmt.Fprintf(w, "%s\n", title)
	var ratios []float64
	seen := map[float64]bool{}
	rows := map[string]map[float64]float64{}
	var order []string
	for _, pt := range points {
		if !seen[pt.Ratio] {
			seen[pt.Ratio] = true
			ratios = append(ratios, pt.Ratio)
		}
		k := pt.Kind.String()
		if rows[k] == nil {
			rows[k] = map[float64]float64{}
			order = append(order, k)
		}
		rows[k][pt.Ratio] = pt.Confidence
	}
	sort.Float64s(ratios)
	fmt.Fprintf(w, "%-8s", "noise")
	for _, r := range ratios {
		fmt.Fprintf(w, "  %6.0f%%", r*100)
	}
	fmt.Fprintln(w)
	for _, k := range order {
		fmt.Fprintf(w, "%-8s", k)
		for _, r := range ratios {
			fmt.Fprintf(w, "  %7.3f", rows[k][r])
		}
		fmt.Fprintln(w)
	}
}

// RenderTiming writes the Fig. 5 points (log-log in the paper; plain columns
// here).
func RenderTiming(w io.Writer, title string, points []TimingPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%12s  %14s  %14s  %8s\n", "n (symbols)", "miner (s)", "trends (s)", "speedup")
	for _, pt := range points {
		speedup := 0.0
		if pt.MinerSecs > 0 {
			speedup = pt.TrendsSecs / pt.MinerSecs
		}
		fmt.Fprintf(w, "%12d  %14.4f  %14.4f  %7.2fx\n", pt.N, pt.MinerSecs, pt.TrendsSecs, speedup)
	}
}

// RenderPeriodTable writes Table 1 rows.
func RenderPeriodTable(w io.Writer, title string, rows []PeriodRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10s  %9s  %s\n", "threshold", "# periods", "some periods")
	for _, row := range rows {
		var sample []string
		for _, p := range row.Sample {
			sample = append(sample, fmt.Sprintf("%d", p))
		}
		fmt.Fprintf(w, "%9d%%  %9d  %s\n", row.ThresholdPct, row.NumPeriods, strings.Join(sample, ", "))
	}
}

// RenderSinglePatternTable writes Table 2 rows.
func RenderSinglePatternTable(w io.Writer, title string, rows []SinglePatternRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10s  %10s  %s\n", "threshold", "# patterns", "patterns")
	for _, row := range rows {
		fmt.Fprintf(w, "%9d%%  %10d  %s\n", row.ThresholdPct, len(row.Patterns), strings.Join(row.Patterns, " "))
	}
}

// RenderPatternTable writes Table 3 rows.
func RenderPatternTable(w io.Writer, title string, rows []PatternRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-32s  %s\n", "periodic pattern", "support")
	for _, row := range rows {
		fmt.Fprintf(w, "%-32s  %6.2f%%\n", row.Pattern, row.SupportPct)
	}
}
