// Package alphabet maintains the symbol table Σ of a discretized time series
// and the paper's power-of-two mapping Φ that turns symbols into σ-bit binary
// codes (symbol s_k ↦ the binary representation of 2^k).
package alphabet

import (
	"fmt"
	"sort"
)

// Alphabet is an ordered set of symbols. The order fixes the index k assigned
// to each symbol and therefore the bit position used by the mapping Φ.
type Alphabet struct {
	symbols []string
	index   map[string]int
}

// New builds an alphabet from the given symbols in the given order.
// Duplicate symbols are rejected.
func New(symbols ...string) (*Alphabet, error) {
	a := &Alphabet{index: make(map[string]int, len(symbols))}
	for _, s := range symbols {
		if s == "" {
			return nil, fmt.Errorf("alphabet: empty symbol")
		}
		if _, dup := a.index[s]; dup {
			return nil, fmt.Errorf("alphabet: duplicate symbol %q", s)
		}
		a.index[s] = len(a.symbols)
		a.symbols = append(a.symbols, s)
	}
	return a, nil
}

// MustNew is New, panicking on error. Intended for tests and fixed literals.
func MustNew(symbols ...string) *Alphabet {
	a, err := New(symbols...)
	if err != nil {
		panic(err)
	}
	return a
}

// FromString builds a single-rune-symbol alphabet from the distinct runes of s
// in sorted order, so e.g. "abcabbabcb" yields {a, b, c} with a=0, b=1, c=2 as
// in the paper's examples.
func FromString(s string) *Alphabet {
	seen := make(map[rune]bool)
	var runes []rune
	for _, r := range s {
		if !seen[r] {
			seen[r] = true
			runes = append(runes, r)
		}
	}
	sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
	a := &Alphabet{index: make(map[string]int, len(runes))}
	for _, r := range runes {
		a.index[string(r)] = len(a.symbols)
		a.symbols = append(a.symbols, string(r))
	}
	return a
}

// Letters returns an alphabet of the first σ lowercase latin letters
// ("a", "b", ...). σ must be in [1, 26].
func Letters(sigma int) *Alphabet {
	if sigma < 1 || sigma > 26 {
		panic(fmt.Sprintf("alphabet: Letters(%d) out of range [1,26]", sigma))
	}
	a := &Alphabet{index: make(map[string]int, sigma)}
	for k := 0; k < sigma; k++ {
		s := string(rune('a' + k))
		a.index[s] = k
		a.symbols = append(a.symbols, s)
	}
	return a
}

// Size returns σ, the number of symbols.
func (a *Alphabet) Size() int { return len(a.symbols) }

// Index returns the index k of symbol s and whether it is present.
func (a *Alphabet) Index(s string) (int, bool) {
	k, ok := a.index[s]
	return k, ok
}

// Symbol returns the symbol with index k.
func (a *Alphabet) Symbol(k int) string {
	if k < 0 || k >= len(a.symbols) {
		panic(fmt.Sprintf("alphabet: symbol index %d out of range [0,%d)", k, len(a.symbols)))
	}
	return a.symbols[k]
}

// Symbols returns the symbols in index order. The caller must not mutate the
// returned slice.
func (a *Alphabet) Symbols() []string { return a.symbols }

// Code returns Φ(s_k): the σ-bit code of symbol k, i.e. the integer 2^k.
// It is valid only for σ ≤ 63; larger alphabets use bit vectors directly.
func (a *Alphabet) Code(k int) uint64 {
	if k < 0 || k >= len(a.symbols) {
		panic(fmt.Sprintf("alphabet: symbol index %d out of range [0,%d)", k, len(a.symbols)))
	}
	if len(a.symbols) > 63 {
		panic("alphabet: Code requires σ ≤ 63")
	}
	return 1 << uint(k)
}

// String renders the alphabet as "{a, b, c}".
func (a *Alphabet) String() string {
	out := "{"
	for i, s := range a.symbols {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out + "}"
}
