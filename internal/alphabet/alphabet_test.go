package alphabet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAssignsIndicesInOrder(t *testing.T) {
	a, err := New("low", "medium", "high")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.Size() != 3 {
		t.Fatalf("Size = %d, want 3", a.Size())
	}
	for want, s := range []string{"low", "medium", "high"} {
		k, ok := a.Index(s)
		if !ok || k != want {
			t.Errorf("Index(%q) = %d,%v, want %d,true", s, k, ok, want)
		}
		if got := a.Symbol(want); got != s {
			t.Errorf("Symbol(%d) = %q, want %q", want, got, s)
		}
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New("a", "b", "a"); err == nil {
		t.Fatal("New with duplicate symbol: want error, got nil")
	}
}

func TestNewRejectsEmptySymbol(t *testing.T) {
	if _, err := New("a", ""); err == nil {
		t.Fatal("New with empty symbol: want error, got nil")
	}
}

func TestMustNewPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with duplicate: want panic")
		}
	}()
	MustNew("x", "x")
}

func TestFromStringSortsDistinctRunes(t *testing.T) {
	a := FromString("cabccbacd")
	want := []string{"a", "b", "c", "d"}
	if a.Size() != len(want) {
		t.Fatalf("Size = %d, want %d", a.Size(), len(want))
	}
	for i, s := range want {
		if a.Symbol(i) != s {
			t.Errorf("Symbol(%d) = %q, want %q", i, a.Symbol(i), s)
		}
	}
}

func TestFromStringEmpty(t *testing.T) {
	a := FromString("")
	if a.Size() != 0 {
		t.Fatalf("Size = %d, want 0", a.Size())
	}
}

func TestLetters(t *testing.T) {
	a := Letters(5)
	if a.Size() != 5 {
		t.Fatalf("Size = %d, want 5", a.Size())
	}
	if a.Symbol(0) != "a" || a.Symbol(4) != "e" {
		t.Errorf("Letters(5) = %v, want a..e", a.Symbols())
	}
	k, ok := a.Index("c")
	if !ok || k != 2 {
		t.Errorf("Index(c) = %d,%v, want 2,true", k, ok)
	}
}

func TestLettersPanicsOutOfRange(t *testing.T) {
	for _, bad := range []int{0, -1, 27} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Letters(%d): want panic", bad)
				}
			}()
			Letters(bad)
		}()
	}
}

func TestCodeIsPowerOfTwo(t *testing.T) {
	a := Letters(10)
	for k := 0; k < 10; k++ {
		if got, want := a.Code(k), uint64(1)<<uint(k); got != want {
			t.Errorf("Code(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestCodeRejectsWideAlphabet(t *testing.T) {
	syms := make([]string, 64)
	for i := range syms {
		syms[i] = "s" + strings.Repeat("x", i+1)
	}
	a := MustNew(syms...)
	defer func() {
		if recover() == nil {
			t.Fatal("Code on σ=64 alphabet: want panic")
		}
	}()
	a.Code(0)
}

func TestIndexMissing(t *testing.T) {
	a := Letters(3)
	if _, ok := a.Index("z"); ok {
		t.Fatal("Index(z) on {a,b,c}: want ok=false")
	}
}

func TestString(t *testing.T) {
	if got := Letters(3).String(); got != "{a, b, c}" {
		t.Fatalf("String = %q, want {a, b, c}", got)
	}
}

func TestSymbolPanicsOutOfRange(t *testing.T) {
	a := Letters(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Symbol(5): want panic")
		}
	}()
	a.Symbol(5)
}

func TestFromStringRoundTripProperty(t *testing.T) {
	// Every rune of the input must be indexable, and indices must decode back
	// to the same rune.
	f := func(s string) bool {
		a := FromString(s)
		for _, r := range s {
			k, ok := a.Index(string(r))
			if !ok || a.Symbol(k) != string(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
