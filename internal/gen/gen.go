// Package gen produces the controlled synthetic time series of the paper's
// experimental study (§4): inerrant data is a random length-P pattern drawn
// from a uniform or normal symbol distribution and repeated to span the
// requested length; noise — replacement, insertion, deletion, or any mixture
// — is then introduced randomly and uniformly over the whole series.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"periodica/internal/alphabet"
	"periodica/internal/series"
)

// Distribution selects how pattern symbols are drawn.
type Distribution int

const (
	// Uniform draws each pattern symbol uniformly from the alphabet.
	Uniform Distribution = iota
	// Normal draws symbols from a normal distribution centred on the middle
	// of the alphabet (σ/6 standard deviation), clamped to the alphabet.
	Normal
)

func (d Distribution) String() string {
	if d == Uniform {
		return "U"
	}
	return "N"
}

// Noise is a set of noise kinds, combined with bitwise OR. The paper's
// "R ⊕ I ⊕ D" combinations distribute the noise ratio equally among the
// selected kinds.
type Noise uint8

const (
	Replacement Noise = 1 << iota
	Insertion
	Deletion
)

// Kinds returns the individual kinds present, in R, I, D order.
func (no Noise) Kinds() []Noise {
	var out []Noise
	for _, k := range []Noise{Replacement, Insertion, Deletion} {
		if no&k != 0 {
			out = append(out, k)
		}
	}
	return out
}

// ParseNoise parses a noise specification like "R", "I+D" or "R+I+D"
// (case-insensitive, '+'-separated). An empty spec means no noise.
func ParseNoise(spec string) (Noise, error) {
	var out Noise
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, "+") {
		switch strings.ToUpper(strings.TrimSpace(part)) {
		case "R":
			out |= Replacement
		case "I":
			out |= Insertion
		case "D":
			out |= Deletion
		default:
			return 0, fmt.Errorf("gen: unknown noise kind %q (want R, I, D or combinations like R+I)", part)
		}
	}
	return out, nil
}

func (no Noise) String() string {
	if no == 0 {
		return "none"
	}
	var parts []string
	if no&Replacement != 0 {
		parts = append(parts, "R")
	}
	if no&Insertion != 0 {
		parts = append(parts, "I")
	}
	if no&Deletion != 0 {
		parts = append(parts, "D")
	}
	return strings.Join(parts, "+")
}

// Config describes a synthetic series.
type Config struct {
	Length     int          // n, the series length
	Period     int          // P, the embedded period
	Sigma      int          // alphabet size
	Dist       Distribution // symbol distribution of the pattern
	Noise      Noise        // noise kinds (zero = inerrant)
	NoiseRatio float64      // fraction of positions hit by a noise event
	Seed       int64        // RNG seed
}

func (c Config) validate() error {
	if c.Length < 1 {
		return fmt.Errorf("gen: length %d < 1", c.Length)
	}
	if c.Period < 1 || c.Period > c.Length {
		return fmt.Errorf("gen: period %d outside [1,%d]", c.Period, c.Length)
	}
	if c.Sigma < 1 || c.Sigma > 26 {
		return fmt.Errorf("gen: sigma %d outside [1,26]", c.Sigma)
	}
	if c.NoiseRatio < 0 || c.NoiseRatio > 1 {
		return fmt.Errorf("gen: noise ratio %v outside [0,1]", c.NoiseRatio)
	}
	if c.NoiseRatio > 0 && c.Noise == 0 {
		return fmt.Errorf("gen: noise ratio %v with no noise kinds", c.NoiseRatio)
	}
	return nil
}

// Pattern draws a length-p pattern of symbol indices from the distribution.
func Pattern(rng *rand.Rand, p, sigma int, dist Distribution) []uint16 {
	out := make([]uint16, p)
	for i := range out {
		out[i] = drawSymbol(rng, sigma, dist)
	}
	return out
}

func drawSymbol(rng *rand.Rand, sigma int, dist Distribution) uint16 {
	if dist == Uniform {
		return uint16(rng.Intn(sigma))
	}
	v := int(rng.NormFloat64()*float64(sigma)/6 + float64(sigma)/2)
	if v < 0 {
		v = 0
	}
	if v >= sigma {
		v = sigma - 1
	}
	return uint16(v)
}

// Generate builds the series described by cfg and returns it together with
// the embedded pattern.
func Generate(cfg Config) (*series.Series, []uint16, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pattern := Pattern(rng, cfg.Period, cfg.Sigma, cfg.Dist)

	// Repeat the pattern past the target length by the expected number of
	// deletions so that post-noise truncation still yields cfg.Length.
	extra := 0
	if cfg.Noise&Deletion != 0 {
		extra = int(cfg.NoiseRatio*float64(cfg.Length)) + cfg.Period
	}
	data := make([]uint16, 0, cfg.Length+extra)
	for len(data) < cfg.Length+extra {
		data = append(data, pattern[len(data)%cfg.Period])
	}

	data = applyNoise(rng, data, cfg)

	// Normalize to the requested length.
	for len(data) < cfg.Length {
		data = append(data, pattern[rng.Intn(cfg.Period)])
	}
	data = data[:cfg.Length]

	s := series.FromIndices(alphabet.Letters(cfg.Sigma), data)
	return s, pattern, nil
}

// MustGenerate is Generate, panicking on configuration errors. Intended for
// benchmarks and experiments with fixed configurations.
func MustGenerate(cfg Config) (*series.Series, []uint16) {
	s, pat, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return s, pat
}

func applyNoise(rng *rand.Rand, data []uint16, cfg Config) []uint16 {
	kinds := cfg.Noise.Kinds()
	if len(kinds) == 0 || cfg.NoiseRatio == 0 { //opvet:ignore floatcmp zero means unset
		return data
	}
	events := int(cfg.NoiseRatio * float64(cfg.Length))
	for e := 0; e < events; e++ {
		if len(data) == 0 {
			break
		}
		switch kinds[e%len(kinds)] {
		case Replacement:
			pos := rng.Intn(len(data))
			repl := uint16(rng.Intn(cfg.Sigma))
			for cfg.Sigma > 1 && repl == data[pos] {
				repl = uint16(rng.Intn(cfg.Sigma))
			}
			data[pos] = repl
		case Insertion:
			pos := rng.Intn(len(data) + 1)
			data = append(data, 0)
			copy(data[pos+1:], data[pos:])
			data[pos] = uint16(rng.Intn(cfg.Sigma))
		case Deletion:
			pos := rng.Intn(len(data))
			data = append(data[:pos], data[pos+1:]...)
		}
	}
	return data
}
