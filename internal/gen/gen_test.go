package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"periodica/internal/core"
)

func TestGenerateInerrantIsPerfectlyPeriodic(t *testing.T) {
	s, pattern, err := Generate(Config{Length: 1000, Period: 25, Sigma: 10, Dist: Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	if len(pattern) != 25 {
		t.Fatalf("pattern length %d, want 25", len(pattern))
	}
	for i := 0; i < s.Len(); i++ {
		if uint16(s.At(i)) != pattern[i%25] {
			t.Fatalf("position %d deviates from pattern", i)
		}
	}
}

func TestInerrantConfidenceIsOne(t *testing.T) {
	// Fig. 3(a): inerrant data must be detected with the highest possible
	// confidence at P and its multiples.
	for _, dist := range []Distribution{Uniform, Normal} {
		for _, p := range []int{25, 32} {
			s, _, err := Generate(Config{Length: 2000, Period: p, Sigma: 10, Dist: dist, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			for mult := 1; mult <= 3; mult++ {
				if conf := core.PeriodConfidence(s, p*mult); conf != 1 {
					t.Fatalf("%v P=%d: confidence at %dP = %v, want 1", dist, p, mult, conf)
				}
			}
		}
	}
}

func TestReplacementNoiseLowersButKeepsConfidence(t *testing.T) {
	s, _, err := Generate(Config{Length: 5000, Period: 25, Sigma: 10, Dist: Uniform,
		Noise: Replacement, NoiseRatio: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conf := core.PeriodConfidence(s, 25)
	if conf >= 1 {
		t.Fatalf("confidence %v not reduced by 20%% replacement noise", conf)
	}
	if conf < 0.5 {
		t.Fatalf("confidence %v collapsed under 20%% replacement noise", conf)
	}
}

func TestDeletionKeepsLength(t *testing.T) {
	s, _, err := Generate(Config{Length: 3000, Period: 32, Sigma: 10, Dist: Normal,
		Noise: Deletion, NoiseRatio: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000 after deletions", s.Len())
	}
}

func TestInsertionKeepsLength(t *testing.T) {
	s, _, err := Generate(Config{Length: 3000, Period: 32, Sigma: 10, Dist: Uniform,
		Noise: Insertion, NoiseRatio: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000 after insertions", s.Len())
	}
}

func TestMixedNoiseKeepsLength(t *testing.T) {
	s, _, err := Generate(Config{Length: 2000, Period: 25, Sigma: 10, Dist: Uniform,
		Noise: Replacement | Insertion | Deletion, NoiseRatio: 0.4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000 after mixed noise", s.Len())
	}
}

func TestNoiseString(t *testing.T) {
	cases := map[Noise]string{
		0:                                  "none",
		Replacement:                        "R",
		Insertion:                          "I",
		Deletion:                           "D",
		Replacement | Insertion:            "R+I",
		Replacement | Deletion:             "R+D",
		Insertion | Deletion:               "I+D",
		Replacement | Insertion | Deletion: "R+I+D",
	}
	for no, want := range cases {
		if got := no.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", no, got, want)
		}
	}
}

func TestParseNoise(t *testing.T) {
	good := map[string]Noise{
		"":      0,
		"R":     Replacement,
		"i":     Insertion,
		"d":     Deletion,
		"R+I":   Replacement | Insertion,
		"r+i+d": Replacement | Insertion | Deletion,
		" I+D ": Insertion | Deletion,
	}
	for spec, want := range good {
		got, err := ParseNoise(spec)
		if err != nil || got != want {
			t.Errorf("ParseNoise(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	for _, bad := range []string{"X", "R+Q", "R,I"} {
		if _, err := ParseNoise(bad); err == nil {
			t.Errorf("ParseNoise(%q): want error", bad)
		}
	}
}

func TestNoiseKinds(t *testing.T) {
	k := (Replacement | Deletion).Kinds()
	if len(k) != 2 || k[0] != Replacement || k[1] != Deletion {
		t.Fatalf("Kinds = %v", k)
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "U" || Normal.String() != "N" {
		t.Fatal("Distribution.String mismatch")
	}
}

func TestGenerateValidates(t *testing.T) {
	bad := []Config{
		{Length: 0, Period: 1, Sigma: 2},
		{Length: 10, Period: 0, Sigma: 2},
		{Length: 10, Period: 11, Sigma: 2},
		{Length: 10, Period: 2, Sigma: 0},
		{Length: 10, Period: 2, Sigma: 27},
		{Length: 10, Period: 2, Sigma: 3, NoiseRatio: 1.5, Noise: Replacement},
		{Length: 10, Period: 2, Sigma: 3, NoiseRatio: 0.5}, // ratio without kinds
	}
	for _, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v): want error", cfg)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := Config{Length: 500, Period: 25, Sigma: 10, Dist: Uniform,
		Noise: Replacement, NoiseRatio: 0.1, Seed: 42}
	a, _, _ := Generate(cfg)
	b, _, _ := Generate(cfg)
	if a.String() != b.String() {
		t.Fatal("same seed produced different series")
	}
	cfg.Seed = 43
	c, _, _ := Generate(cfg)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical series")
	}
}

func TestNormalDistributionConcentratesCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[drawSymbol(rng, 10, Normal)]++
	}
	center := counts[4] + counts[5]
	edges := counts[0] + counts[9]
	if center <= edges {
		t.Fatalf("normal draw not centred: center=%d edges=%d", center, edges)
	}
}

func TestReplacementAlwaysChangesSymbol(t *testing.T) {
	// With σ>1 a replacement event must alter the symbol, so at ratio 1 the
	// series cannot remain perfectly periodic.
	s, pattern, err := Generate(Config{Length: 400, Period: 8, Sigma: 4, Dist: Uniform,
		Noise: Replacement, NoiseRatio: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := 0; i < s.Len(); i++ {
		if uint16(s.At(i)) != pattern[i%8] {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("ratio-1 replacement noise left series unchanged")
	}
}

func TestGenerateLengthProperty(t *testing.T) {
	f := func(seed int64, ln, per, ratio uint8, kinds uint8) bool {
		n := int(ln)%500 + 10
		p := int(per)%n + 1
		no := Noise(kinds) & (Replacement | Insertion | Deletion)
		r := float64(ratio%100) / 100
		if no == 0 {
			r = 0
		}
		s, _, err := Generate(Config{Length: n, Period: p, Sigma: 5, Dist: Uniform,
			Noise: no, NoiseRatio: r, Seed: seed})
		return err == nil && s.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
