package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeWorkload performs a fixed sequence of mutations and returns the first
// error. It models a write-temp → sync → rename → dir-sync commit.
func writeWorkload(fsys FS, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fsys.CreateTemp(dir, "w-*")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		_ = f.Close()
		return err
	}
	if _, err := f.WriteAt([]byte("HELLO"), 0); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(f.Name(), filepath.Join(dir, "final")); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

func TestOSPassthrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub")
	if err := writeWorkload(OS(), dir); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadFile(OS(), filepath.Join(dir, "final"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "HELLO world" {
		t.Fatalf("final content %q", raw)
	}
}

func TestInjectorCountsDeterministically(t *testing.T) {
	counts := make([]int64, 3)
	for i := range counts {
		in := NewInjector(OS(), ModeCount, 0, 1)
		if err := writeWorkload(in, filepath.Join(t.TempDir(), "sub")); err != nil {
			t.Fatal(err)
		}
		counts[i] = in.Ops()
	}
	// mkdir, create, write, writeat, sync, rename, syncdir = 7 mutations.
	if counts[0] != 7 {
		t.Fatalf("ops = %d, want 7", counts[0])
	}
	if counts[1] != counts[0] || counts[2] != counts[0] {
		t.Fatalf("op counts unstable: %v", counts)
	}
}

func TestInjectorEIOFailsOnceThenRecovers(t *testing.T) {
	in := NewInjector(OS(), ModeEIO, 3, 1)
	dir := filepath.Join(t.TempDir(), "sub")
	err := writeWorkload(in, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !in.Fired() {
		t.Fatal("fault point not reached")
	}
	// A transient error does not crash the layer: a retry succeeds.
	if err := writeWorkload(in, dir); err != nil {
		t.Fatalf("retry after EIO: %v", err)
	}
}

func TestInjectorCrashHaltsAllWrites(t *testing.T) {
	for failAt := int64(1); failAt <= 7; failAt++ {
		in := NewInjector(OS(), ModeCrash, failAt, 1)
		dir := filepath.Join(t.TempDir(), "sub")
		err := writeWorkload(in, dir)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("failAt=%d: err = %v, want ErrCrashed", failAt, err)
		}
		if !in.Crashed() {
			t.Fatalf("failAt=%d: not in crashed state", failAt)
		}
		// Every further mutation fails; the frozen state is inspectable
		// through reads only.
		if err := writeWorkload(in, dir); !errors.Is(err, ErrCrashed) {
			t.Fatalf("failAt=%d: post-crash write = %v, want ErrCrashed", failAt, err)
		}
		if failAt < 6 {
			// Crash before the rename: the final file must not exist.
			if _, err := os.Stat(filepath.Join(dir, "final")); err == nil {
				t.Fatalf("failAt=%d: final file exists before commit point", failAt)
			}
		}
	}
}

func TestInjectorTornWriteLeavesPrefix(t *testing.T) {
	// Fault the first Write (op 3: mkdir, create, write).
	in := NewInjector(OS(), ModeTorn, 3, 42)
	dir := filepath.Join(t.TempDir(), "sub")
	if err := writeWorkload(in, dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries, want the torn temp file", len(entries))
	}
	raw, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= len("hello world") {
		t.Fatalf("torn write wrote %d bytes, want a strict prefix", len(raw))
	}
	if string(raw) != "hello world"[:len(raw)] {
		t.Fatalf("torn bytes %q are not a prefix", raw)
	}
	// Determinism: the same seed tears at the same length.
	in2 := NewInjector(OS(), ModeTorn, 3, 42)
	dir2 := filepath.Join(t.TempDir(), "sub")
	if err := writeWorkload(in2, dir2); !errors.Is(err, ErrCrashed) {
		t.Fatal("second run did not crash")
	}
	entries2, err := os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(filepath.Join(dir2, entries2[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw2) != string(raw) {
		t.Fatalf("torn write not deterministic: %q vs %q", raw, raw2)
	}
}

func TestInjectorReadsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(OS(), ModeCrash, 1, 1)
	if err := in.Remove(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove = %v, want ErrCrashed", err)
	}
	raw, err := ReadFile(in, filepath.Join(dir, "a"))
	if err != nil || string(raw) != "abc" {
		t.Fatalf("post-crash read = %q, %v", raw, err)
	}
	if _, err := in.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("post-crash stat: %v", err)
	}
}
