// Package iofault is the narrow seam between the persistence layers and the
// operating system: a small VFS interface covering exactly the file
// operations the store and the external FFT perform, one passthrough
// implementation backed by the real filesystem, and a deterministic fault
// injector that can fail, tear, or halt the Nth write operation. Production
// code always runs on the passthrough; tests sweep the injector across every
// enumerated write point to prove crash consistency.
package iofault

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the persistence layers use. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// FS is the file-system access layer. Implementations must be safe for
// concurrent use by multiple goroutines.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new unique temp file in dir (os.CreateTemp
	// pattern semantics), open for reading and writing.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat stats a path.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and creates in it durable.
	SyncDir(name string) error
}

// Open opens name read-only on fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// Create creates (truncating) name on fsys, open for reading and writing.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// ReadFile reads the whole of name from fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := Open(fsys, name)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose on close
	return io.ReadAll(f)
}

// osFS is the passthrough implementation over the real filesystem.
type osFS struct{}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync error is the one worth reporting
		return err
	}
	return d.Close()
}
