package iofault

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// Errors returned by injected faults. ErrInjected models a transient I/O
// error (EIO) on a single operation; ErrCrashed models a process or machine
// crash — the faulted operation and every later mutation fail, freezing the
// on-disk state at the crash point.
var (
	ErrInjected = errors.New("iofault: injected I/O error")
	ErrCrashed  = errors.New("iofault: crashed — all further writes halted")
)

// Mode selects what happens at the injection point.
type Mode int

const (
	// ModeCount injects nothing; the injector only counts write operations,
	// which is how tests enumerate the crash points of a workload.
	ModeCount Mode = iota
	// ModeEIO fails the Nth write operation with ErrInjected, once; the
	// operation performs no work and later operations proceed normally.
	ModeEIO
	// ModeCrash fails the Nth and every subsequent write operation with
	// ErrCrashed; the faulted operation performs no work.
	ModeCrash
	// ModeTorn performs a seeded short (torn) write at the Nth operation if
	// it is a data write — a prefix of the buffer reaches the file — and then
	// behaves like ModeCrash. Non-write operations at the fault point behave
	// exactly like ModeCrash.
	ModeTorn
)

// Injector wraps a base FS and deterministically faults its Nth write
// operation. Write operations — the countable crash points — are: file
// creation (OpenFile with O_CREATE or O_TRUNC, CreateTemp), Write, WriteAt,
// Truncate, Sync, Rename, Remove, MkdirAll, and SyncDir. Reads, plain opens,
// stats, and closes are passed through uncounted.
//
// The injector is deterministic: the same base state, workload, mode, fault
// index, and seed always produce the same faulted state, so a test can first
// run a workload under ModeCount to learn its operation count N and then
// sweep every fault index in [1, N].
type Injector struct {
	base   FS
	mode   Mode
	failAt int64 // 1-based write-op index to fault; 0 never fires
	seed   uint64

	mu      sync.Mutex
	ops     int64
	crashed bool
	fired   bool
}

// NewInjector wraps base, faulting write operation number failAt (1-based)
// according to mode. The seed picks torn-write prefix lengths.
func NewInjector(base FS, mode Mode, failAt int64, seed int64) *Injector {
	return &Injector{base: base, mode: mode, failAt: failAt, seed: uint64(seed)*2862933555777941757 + 3037000493}
}

// Ops returns the number of write operations observed so far.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Fired reports whether the fault point was reached.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Crashed reports whether the injector is in the post-crash state (all
// mutations failing).
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// step accounts one non-data-write mutation and returns the error to inject,
// if any.
func (in *Injector) step() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.ops++
	if in.failAt == 0 || in.ops != in.failAt {
		return nil
	}
	in.fired = true
	switch in.mode {
	case ModeEIO:
		return ErrInjected
	case ModeCrash, ModeTorn:
		in.crashed = true
		return ErrCrashed
	}
	return nil
}

// stepWrite accounts one data write of n bytes. It returns how many bytes to
// actually write (n when healthy, a strict prefix for a torn write) and the
// error to inject.
func (in *Injector) stepWrite(n int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, ErrCrashed
	}
	in.ops++
	if in.failAt == 0 || in.ops != in.failAt {
		return n, nil
	}
	in.fired = true
	switch in.mode {
	case ModeEIO:
		return 0, ErrInjected
	case ModeCrash:
		in.crashed = true
		return 0, ErrCrashed
	case ModeTorn:
		in.crashed = true
		// Deterministic prefix in [0, n): xorshift over the seed and index.
		x := in.seed ^ uint64(in.ops)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		if n == 0 {
			return 0, ErrCrashed
		}
		return int(x % uint64(n)), ErrCrashed
	}
	return n, nil
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		if err := in.step(); err != nil {
			return nil, err
		}
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.base.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.base.ReadDir(name) }
func (in *Injector) Stat(name string) (fs.FileInfo, error)      { return in.base.Stat(name) }

func (in *Injector) SyncDir(name string) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.base.SyncDir(name)
}

// faultFile routes a file's mutating operations through the injector.
type faultFile struct {
	File
	in *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	allow, ierr := f.in.stepWrite(len(p))
	written := 0
	if allow > 0 {
		var err error
		written, err = f.File.Write(p[:allow])
		if ierr == nil && err != nil {
			return written, err
		}
	}
	if ierr != nil {
		return written, ierr
	}
	return written, nil
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	allow, ierr := f.in.stepWrite(len(p))
	written := 0
	if allow > 0 {
		var err error
		written, err = f.File.WriteAt(p[:allow], off)
		if ierr == nil && err != nil {
			return written, err
		}
	}
	if ierr != nil {
		return written, ierr
	}
	return written, nil
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.in.step(); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

func (f *faultFile) Sync() error {
	if err := f.in.step(); err != nil {
		return err
	}
	return f.File.Sync()
}
