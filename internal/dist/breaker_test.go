package dist

import (
	"testing"
	"time"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.note(false, clk.now())
		if b.state != breakerClosed {
			t.Fatalf("after %d failures state is %v, want closed", i+1, b.state)
		}
	}
	b.note(true, clk.now()) // a success resets the consecutive count
	for i := 0; i < 2; i++ {
		b.note(false, clk.now())
	}
	if b.state != breakerClosed {
		t.Fatal("non-consecutive failures opened the circuit")
	}
	b.note(false, clk.now())
	if b.state != breakerOpen {
		t.Fatalf("state %v after 3 consecutive failures, want open", b.state)
	}
	if b.allow(clk.now()) {
		t.Fatal("open circuit admitted a request inside its cooldown")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second)
	b.note(false, clk.now())
	clk.advance(time.Second)
	if !b.allow(clk.now()) {
		t.Fatal("elapsed cooldown refused the probe")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state %v after probe admission, want half-open", b.state)
	}
	if b.allow(clk.now()) {
		t.Fatal("second request admitted while the probe is in flight")
	}
	b.note(true, clk.now())
	if b.state != breakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.state)
	}
	if !b.allow(clk.now()) {
		t.Fatal("closed circuit refused a request")
	}
}

func TestBreakerReopenDoublesCooldown(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second)
	b.note(false, clk.now()) // open, cooldown 1s
	for i, wantCooldown := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second} {
		clk.advance(b.cooldown)
		if !b.allow(clk.now()) {
			t.Fatalf("round %d: probe refused after cooldown", i)
		}
		b.note(false, clk.now()) // probe fails: reopen, doubled
		if b.state != breakerOpen {
			t.Fatalf("round %d: state %v, want open", i, b.state)
		}
		if b.cooldown != wantCooldown {
			t.Fatalf("round %d: cooldown %v, want %v", i, b.cooldown, wantCooldown)
		}
	}
	// The doubling caps at base << maxCooldownDoublings.
	for i := 0; i < 10; i++ {
		clk.advance(b.cooldown)
		b.allow(clk.now())
		b.note(false, clk.now())
	}
	if want := time.Second << maxCooldownDoublings; b.cooldown != want {
		t.Fatalf("cooldown %v after many reopens, want capped %v", b.cooldown, want)
	}
	// A successful probe resets the cooldown to base.
	clk.advance(b.cooldown)
	b.allow(clk.now())
	b.note(true, clk.now())
	if b.cooldown != time.Second {
		t.Fatalf("cooldown %v after recovery, want base 1s", b.cooldown)
	}
}

// TestBreakerLateResultWhileOpen: a result from a request admitted before
// the circuit opened (e.g. a hedge) must not perturb the open state.
func TestBreakerLateResultWhileOpen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second)
	b.note(false, clk.now())
	b.note(true, clk.now()) // late straggler success
	if b.state != breakerOpen {
		t.Fatalf("state %v after late success, want still open", b.state)
	}
	if b.allow(clk.now()) {
		t.Fatal("late success reopened admission inside the cooldown")
	}
}
