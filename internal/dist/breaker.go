package dist

// Per-worker circuit breakers. The earlier consecutive-failure health count
// had a blind spot: a worker that died stayed "unhealthy" forever unless a
// degraded pick happened to land on it after recovery, and under a full
// outage every pick degraded to a dead worker anyway. A breaker makes the
// recovery path explicit — after a cooldown, exactly one probe request is
// allowed through (half-open); success closes the breaker, failure reopens
// it with a doubled cooldown — so a recovered worker rejoins within one
// cooldown and a still-dead one absorbs one probe instead of a retry storm.

import (
	"time"

	"periodica/internal/obs"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one worker's circuit. Not self-locking: the Coordinator calls
// it under its own mutex, which also serializes the half-open probe claim.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // current open duration; doubles per reopen
	base      time.Duration // first-open cooldown

	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// maxCooldownDoublings caps the reopen backoff at base × 2^5 (32×), so a
// worker down for an hour still gets probed every few seconds rather than
// being forgotten for minutes.
const maxCooldownDoublings = 5

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, base: cooldown}
}

// allow reports whether a request may be sent now. In the open state it
// transitions to half-open once the cooldown has elapsed and admits exactly
// one probe; callers that are refused should prefer another worker.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	}
	return true
}

// note records a request outcome. A half-open success closes the circuit and
// resets the cooldown; a half-open failure reopens it with a doubled
// cooldown. Closed-state failures count toward the threshold.
func (b *breaker) note(ok bool, now time.Time) {
	switch b.state {
	case breakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.open(now)
		}
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.fails = 0
			b.cooldown = b.base
			return
		}
		if b.cooldown < b.base<<maxCooldownDoublings {
			b.cooldown *= 2
		}
		b.open(now)
	case breakerOpen:
		// A result from a request admitted before the circuit opened (e.g. a
		// hedge still in flight); the open state already reflects failure.
	}
}

func (b *breaker) open(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.fails = 0
	obs.Dist().BreakerOpens.Inc()
}

// rank orders workers for picking without mutating the circuit: 0 for a
// circuit that admits a request now (closed, or a probe opportunity — open
// past its cooldown, or half-open with no probe in flight), 2 for a refusing
// one. A probe opportunity ranks equal to closed on purpose: round-robin
// then reaches it within a cycle, so a recovered worker rejoins promptly
// instead of starving behind still-healthy peers. The chosen worker's probe
// slot is then claimed with allow.
func (b *breaker) rank(now time.Time) int {
	switch b.state {
	case breakerClosed:
		return 0
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			return 0
		}
	case breakerHalfOpen:
		if !b.probing {
			return 0
		}
	}
	return 2
}

// breakerSet is the Coordinator's worker→breaker table. Not self-locking:
// the Coordinator's mutex guards every access, which also makes a pick's
// rank-then-claim sequence atomic.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	byWorker  map[string]*breaker
	now       func() time.Time // injectable clock for tests
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		byWorker:  map[string]*breaker{},
		now:       time.Now,
	}
}

func (s *breakerSet) get(worker string) *breaker {
	b := s.byWorker[worker]
	if b == nil {
		b = newBreaker(s.threshold, s.cooldown)
		s.byWorker[worker] = b
	}
	return b
}
