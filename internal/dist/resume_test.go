package dist

// Kill-and-resume: a journaled mine interrupted after its k-th checkpoint
// must resume to a byte-identical result while re-dispatching only the
// shards the journal does not hold, for every k across the shard boundaries.

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"periodica/internal/core"
	"periodica/internal/exec"
	"periodica/internal/httpapi"
	"periodica/internal/netfault"
	"periodica/internal/obs"
)

// quarantineJournal exports a resume journal to PERIODICA_ARTIFACT_DIR when
// the test fails, so a CI failure ships the exact checkpoint that reproduced
// it. A journal already removed by a completed mine is silently skipped.
func quarantineJournal(t *testing.T, path string) {
	t.Helper()
	t.Cleanup(func() {
		root := os.Getenv("PERIODICA_ARTIFACT_DIR")
		if root == "" || !t.Failed() {
			return
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return
		}
		if err := os.MkdirAll(root, 0o755); err != nil {
			t.Logf("journal quarantine: %v", err)
			return
		}
		dst := filepath.Join(root,
			filepath.Base(t.Name())+"-"+filepath.Base(filepath.Dir(path))+".journal")
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Logf("journal quarantine: %v", err)
			return
		}
		t.Logf("failed mine's journal exported to %s", dst)
	})
}

// planSize computes how many shards a coordinator with n workers cuts the
// fixture into, mirroring Mine's own planning.
func planSize(t *testing.T, nWorkers int) int {
	t.Helper()
	s := fixture(t)
	copt, err := coreOptions(fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := core.NormalizeOptions(copt, len(s.String()))
	if err != nil {
		t.Fatal(err)
	}
	plan := exec.PlanShards(len(s.Alphabet()), norm.MinPeriod, norm.MaxPeriod, 2*nWorkers)
	return len(plan)
}

func TestResumeKillAtEveryShardBoundary(t *testing.T) {
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	workers := []string{worker(t), worker(t)}
	total := planSize(t, len(workers))
	if total < 2 {
		t.Fatalf("plan has %d shards; the boundary sweep is vacuous", total)
	}

	for k := 1; k <= total; k++ {
		path := filepath.Join(t.TempDir(), "mine.journal")
		quarantineJournal(t, path)

		// Run 1: cancel the mine once k shards are durably checkpointed.
		ctx, cancel := context.WithCancel(context.Background())
		c1, err := New(Config{
			Workers: workers, ResumeJournal: path, Seed: 3, Logger: discard(),
		})
		if err != nil {
			t.Fatal(err)
		}
		c1.afterJournal = func(appended int) {
			if appended >= k {
				cancel()
			}
		}
		_, err = c1.Mine(ctx, s, fixtureOpt)
		cancel()
		if k < total && err == nil {
			t.Fatalf("k=%d: interrupted mine reported success", k)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("k=%d: interrupted mine left no journal: %v", k, err)
		}

		// Run 2: a fresh coordinator over the same journal. Count dispatches
		// through a no-fault injector.
		counter := netfault.New(nil, netfault.Plan{}, 1)
		counter.SetKeyFunc(shardKey)
		resumedBefore := obs.Dist().ResumedShards.Value()
		c2, err := New(Config{
			Workers: workers, ResumeJournal: path, Seed: 3,
			Client: &httpapi.ShardClient{HTTP: &http.Client{Transport: counter}},
			Logger: discard(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c2.Mine(context.Background(), s, fixtureOpt)
		if err != nil {
			t.Fatalf("k=%d: resumed mine: %v", k, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("k=%d: resumed result differs from single-process mine", k)
		}
		resumed := int(obs.Dist().ResumedShards.Value() - resumedBefore)
		if resumed < k {
			t.Fatalf("k=%d: resume skipped only %d shards, journal held at least %d", k, resumed, k)
		}
		if dispatched := int(counter.Requests()); dispatched != total-resumed {
			t.Fatalf("k=%d: resume dispatched %d shards, want %d (= %d total − %d journaled)",
				k, dispatched, total-resumed, total, resumed)
		}
		// A completed mine deletes its checkpoint.
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("k=%d: journal still present after completed mine (stat err %v)", k, err)
		}
	}
}

// TestResumeJournalKeyMismatch: a journal written by different mine inputs
// must be discarded, not merged — resuming someone else's checkpoint would
// assemble slots for the wrong series.
func TestResumeJournalKeyMismatch(t *testing.T) {
	workers := []string{worker(t)}
	path := filepath.Join(t.TempDir(), "mine.journal")
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)

	// Journal a different mine (different threshold) and interrupt it.
	otherOpt := fixtureOpt
	otherOpt.Threshold = 0.8
	ctx, cancel := context.WithCancel(context.Background())
	c1, err := New(Config{Workers: workers, ResumeJournal: path, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	c1.afterJournal = func(int) { cancel() }
	_, _ = c1.Mine(ctx, s, otherOpt)
	cancel()

	resumedBefore := obs.Dist().ResumedShards.Value()
	c2, err := New(Config{Workers: workers, ResumeJournal: path, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result differs after discarding a mismatched journal")
	}
	if obs.Dist().ResumedShards.Value() != resumedBefore {
		t.Fatal("a journal from different inputs was resumed")
	}
}

// TestResumeTornJournalTail: a torn final record (the crash landed mid-
// append) must resume from the clean prefix and still finish identically.
func TestResumeTornJournalTail(t *testing.T) {
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	workers := []string{worker(t)}
	path := filepath.Join(t.TempDir(), "mine.journal")
	quarantineJournal(t, path)

	ctx, cancel := context.WithCancel(context.Background())
	c1, err := New(Config{Workers: workers, ResumeJournal: path, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	c1.afterJournal = func(appended int) {
		if appended >= 2 {
			cancel()
		}
	}
	_, _ = c1.Mine(ctx, s, fixtureOpt)
	cancel()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Config{Workers: workers, ResumeJournal: path, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result differs after resuming from a torn journal tail")
	}
}

// TestResumeConcurrentMinesSerialized: two concurrent journaled mines on one
// coordinator must not interleave appends into the same file.
func TestResumeConcurrentMinesSerialized(t *testing.T) {
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	path := filepath.Join(t.TempDir(), "mine.journal")
	c, err := New(Config{Workers: []string{worker(t)}, ResumeJournal: path, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			got, err := c.Mine(context.Background(), s, fixtureOpt)
			if err == nil && !reflect.DeepEqual(want, got) {
				err = errInterleaved
			}
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("journal still present after both mines completed (stat err %v)", err)
	}
}

var errInterleaved = errors.New("concurrent journaled mines interleaved")
