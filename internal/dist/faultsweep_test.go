package dist

// The chaos sweep: every netfault failure mode crossed with every dispatch
// stage (first attempt, retry, hedge), driven against real workers through a
// seeded injector. The invariant is the distributed tier's core promise —
// whatever the network does, a mine either fails loudly or returns bytes
// identical to the single-process result. There is no third outcome: a
// corrupt response is rejected by the integrity layer (and counted), never
// merged. Failures reproduce from the printed seed; set
// PERIODICA_NETFAULT_SEED to replay or widen the sweep.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"periodica/internal/httpapi"
	"periodica/internal/netfault"
	"periodica/internal/obs"
)

// lyingWorker serves real /v1/shard responses with one slot perturbed and
// the checksum recomputed — internally consistent, externally wrong, the
// case only cross-worker verification can catch.
func lyingWorker(t *testing.T) string {
	t.Helper()
	real := httpapi.New(httpapi.Config{Logger: discard()})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		real.ServeHTTP(rec, r)
		var resp httpapi.ShardResponse
		if rec.Code != http.StatusOK || json.Unmarshal(rec.Body.Bytes(), &resp) != nil || len(resp.Slots) == 0 {
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			return
		}
		if resp.Slots[0].F2 > 1 {
			resp.Slots[0].F2--
		} else {
			resp.Slots[0].Pairs++
		}
		resp.Checksum = httpapi.ShardChecksum(&resp)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// sweepSeed is 1 unless PERIODICA_NETFAULT_SEED overrides it.
func sweepSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("PERIODICA_NETFAULT_SEED")
	if env == "" {
		return 1
	}
	v, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad PERIODICA_NETFAULT_SEED %q: %v", env, err)
	}
	return v
}

// shardKey buckets requests by the shard they carry, so "fault attempt N of
// every shard" is deterministic under concurrent dispatch. A marshaled
// ShardRequest begins {"shardId":N,... — the prefix up to the first comma
// identifies the shard.
func shardKey(r *http.Request) string {
	b := netfault.PeekBody(r)
	if i := bytes.IndexByte(b, ','); i > 0 {
		return string(b[:i])
	}
	return string(b)
}

func TestSeededNetfaultSweep(t *testing.T) {
	seed := sweepSeed(t)
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	workers := []string{worker(t), worker(t)}

	faults := []netfault.Plan{
		{Fault: netfault.FaultDrop},
		{Fault: netfault.FaultDelay, Delay: 30 * time.Millisecond},
		{Fault: netfault.FaultDuplicate},
		{Fault: netfault.FaultTruncate},
		{Fault: netfault.FaultBitFlip},
		{Fault: netfault.FaultStatus, Status: 500},
		{Fault: netfault.FaultStatus, Status: 429, RetryAfterSecs: 1},
	}
	stages := []string{"first", "retry", "hedge"}

	integrityBefore := obs.Dist().IntegrityFailures.Value()
	for _, plan := range faults {
		for _, stage := range stages {
			plan, stage := plan, stage
			t.Run(fmt.Sprintf("%v_%s_%d", plan.Fault, stage, plan.Status), func(t *testing.T) {
				cfg := Config{
					Workers: workers, RetryBackoff: 2 * time.Millisecond,
					Seed: seed, Logger: discard(),
				}
				// The swept fault rides on inj; the stage decides which
				// request ordinal it hits and what (if anything) steers the
				// coordinator into that stage first.
				var inj *netfault.Injector
				var transport http.RoundTripper
				switch stage {
				case "first":
					p := plan
					p.Attempt = 1
					inj = netfault.New(nil, p, seed)
					inj.SetKeyFunc(shardKey)
					transport = inj
				case "retry":
					// An outer drop loses every shard's first response, so
					// the swept fault lands on the retry dispatch.
					p := plan
					p.Attempt = 2
					inj = netfault.New(nil, p, seed)
					inj.SetKeyFunc(shardKey)
					trigger := netfault.New(inj, netfault.Plan{Fault: netfault.FaultDrop, Attempt: 1}, seed)
					trigger.SetKeyFunc(shardKey)
					transport = trigger
				case "hedge":
					// An outer delay straggles every first attempt well past
					// HedgeAfter; the hedge reaches the inner injector first,
					// so the swept fault lands on the hedge dispatch.
					p := plan
					p.Attempt = 1
					inj = netfault.New(nil, p, seed)
					inj.SetKeyFunc(shardKey)
					straggle := netfault.New(inj, netfault.Plan{
						Fault: netfault.FaultDelay, Attempt: 1, Delay: 500 * time.Millisecond,
					}, seed)
					straggle.SetKeyFunc(shardKey)
					transport = straggle
					cfg.HedgeAfter = 25 * time.Millisecond
				}
				cfg.Client = &httpapi.ShardClient{HTTP: &http.Client{Transport: transport}}
				c, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Mine(context.Background(), s, fixtureOpt)
				if err != nil {
					t.Fatalf("seed %d, fault %v, stage %s: Mine: %v", seed, plan.Fault, stage, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d, fault %v, stage %s: distributed result differs from single-process mine",
						seed, plan.Fault, stage)
				}
				if inj.Fired() == 0 {
					t.Fatalf("seed %d, fault %v, stage %s: fault never fired; the cell is vacuous",
						seed, plan.Fault, stage)
				}
			})
		}
	}
	// Corruption cells (truncate, bitflip) must have exercised the rejection
	// path at least once across the sweep.
	if obs.Dist().IntegrityFailures.Value() == integrityBefore {
		t.Errorf("seed %d: the sweep never incremented the integrity-failure counter", seed)
	}
}

// TestCorruptResponsesNeverMerge: with every response mangled and no local
// fallback to hide behind, a mine must fail — it must never return wrong
// bytes. Retries cannot save it: the injector fires on every attempt.
func TestCorruptResponsesNeverMerge(t *testing.T) {
	seed := sweepSeed(t)
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	workers := []string{worker(t), worker(t)}
	for _, fault := range []netfault.Fault{netfault.FaultTruncate, netfault.FaultBitFlip} {
		inj := netfault.New(nil, netfault.Plan{Fault: fault, Attempt: 0}, seed)
		inj.SetKeyFunc(shardKey)
		before := obs.Dist().IntegrityFailures.Value()
		c, err := New(Config{
			Workers: workers, MaxAttempts: 2, RetryBackoff: time.Millisecond,
			DisableLocalFallback: true, Seed: seed,
			Client: &httpapi.ShardClient{HTTP: &http.Client{Transport: inj}},
			Logger: discard(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Mine(context.Background(), s, fixtureOpt)
		// A mangled body that happens to stay decodable-and-verifiable (a
		// truncation or flip landing in trailing whitespace) passes through
		// unchanged, so success is legal — but only with identical bytes.
		if err == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d, fault %v: mine returned wrong bytes instead of failing", seed, fault)
		}
		if err != nil && obs.Dist().IntegrityFailures.Value() == before {
			t.Errorf("seed %d, fault %v: mine failed without counting an integrity failure", seed, fault)
		}
	}
}

// TestPartitionHealsIntoRecovery: a worker partitioned at the network level
// is absorbed by retries and the breaker; healing lets it serve again.
func TestPartitionHealsIntoRecovery(t *testing.T) {
	seed := sweepSeed(t)
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	w0, w1 := worker(t), worker(t)
	inj := netfault.New(nil, netfault.Plan{}, seed)
	c, err := New(Config{
		Workers: []string{w0, w1}, RetryBackoff: time.Millisecond, Seed: seed,
		Client: &httpapi.ShardClient{HTTP: &http.Client{Transport: inj}},
		Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	host := w0[len("http://"):]
	inj.Partition(host)
	got, err := c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatalf("seed %d: Mine under partition: %v", seed, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("seed %d: result differs under partition", seed)
	}
	inj.Heal(host)
	got, err = c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatalf("seed %d: Mine after heal: %v", seed, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("seed %d: result differs after heal", seed)
	}
}

// TestVerifyShardsCleanAndMismatch: sampled double-dispatch passes silently
// when workers agree, and a worker that returns subtly wrong (but
// checksum-consistent) slots is caught by the cross-check and overridden by
// the authoritative local computation.
func TestVerifyShardsCleanAndMismatch(t *testing.T) {
	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)

	mmBefore := obs.Dist().VerifyMismatches.Value()
	c, err := New(Config{
		Workers: []string{worker(t), worker(t)}, VerifyShards: 1.0, Seed: 7,
		Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result differs with full verification on")
	}
	if obs.Dist().VerifyMismatches.Value() != mmBefore {
		t.Fatal("honest workers produced a verification mismatch")
	}

	// A lying worker: it answers correctly, then one slot is perturbed and
	// the checksum recomputed, so only cross-worker comparison can catch it.
	honest := worker(t)
	liar := lyingWorker(t)
	c, err = New(Config{
		Workers: []string{liar, honest}, VerifyShards: 1.0, Seed: 7,
		Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result differs despite verification catching the lying worker")
	}
	if obs.Dist().VerifyMismatches.Value() == mmBefore {
		t.Fatal("lying worker never tripped the mismatch counter")
	}
}
