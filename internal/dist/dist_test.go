package dist

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"periodica"
	"periodica/internal/httpapi"
	"periodica/internal/obs"
)

func discard() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// worker starts a real mining worker and returns its base URL.
func worker(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(httpapi.New(httpapi.Config{Logger: discard()}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func fixture(t *testing.T) *periodica.Series {
	t.Helper()
	s, err := periodica.NewSeriesFromString(strings.Repeat("abcabbabcb", 40))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var fixtureOpt = periodica.Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}

// mustMine is the single-process reference result.
func mustMine(t *testing.T, s *periodica.Series, opt periodica.Options) *periodica.Result {
	t.Helper()
	want, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Periodicities) == 0 {
		t.Fatal("fixture detected nothing; the test is vacuous")
	}
	return want
}

func TestNewRequiresWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty worker set")
	}
}

func TestCoordinatorMatchesMine(t *testing.T) {
	workers := []string{worker(t), worker(t), worker(t)}
	s := fixture(t)
	for _, eng := range []periodica.Engine{periodica.EngineAuto, periodica.EngineBitset, periodica.EngineFFT} {
		opt := fixtureOpt
		opt.Engine = eng
		want := mustMine(t, s, opt)
		c, err := New(Config{Workers: workers, Logger: discard()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Mine(context.Background(), s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine %v: distributed result differs from Mine", eng)
		}
	}
}

// TestCoordinatorRetries: a worker that fails its first shard requests with
// 500s forces the retry path; the mine must still match and the retry
// counter must move.
func TestCoordinatorRetries(t *testing.T) {
	real := httpapi.New(httpapi.Config{Logger: discard()})
	var failures atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/v1/shard") && failures.Add(1) <= 2 {
			http.Error(w, `{"error":"injected worker crash"}`, http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	before := obs.Dist().Retries.Value()
	c, err := New(Config{
		Workers:      []string{flaky.URL, worker(t)},
		RetryBackoff: time.Millisecond, Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("result differs from Mine after retries")
	}
	if obs.Dist().Retries.Value() == before {
		t.Error("retry counter did not move")
	}
}

// TestCoordinatorHedges: a worker that stalls until the client gives up
// forces the hedge path; the duplicate dispatch must win and the result
// must match.
func TestCoordinatorHedges(t *testing.T) {
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server can detect the hedge winner's
		// cancellation (an unread body blocks the disconnect watcher), then
		// stall until the coordinator gives up on this attempt.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer stalled.Close()

	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	before := obs.Dist().Hedges.Value()
	c, err := New(Config{
		Workers:    []string{stalled.URL, worker(t)},
		HedgeAfter: 20 * time.Millisecond, Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("result differs from Mine after hedging")
	}
	if obs.Dist().Hedges.Value() == before {
		t.Error("hedge counter did not move")
	}
}

// TestCoordinatorLocalFallback: with every worker unreachable, each shard
// exhausts its budget and is computed in-process; the result still matches.
func TestCoordinatorLocalFallback(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close() // keep the URL, kill the listener

	s := fixture(t)
	want := mustMine(t, s, fixtureOpt)
	before := obs.Dist().LocalFallbacks.Value()
	c, err := New(Config{
		Workers: []string{url}, MaxAttempts: 2,
		RetryBackoff: time.Millisecond, Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Mine(context.Background(), s, fixtureOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("result differs from Mine under local fallback")
	}
	if obs.Dist().LocalFallbacks.Value() == before {
		t.Error("local-fallback counter did not move")
	}
}

func TestCoordinatorFallbackDisabled(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close()

	c, err := New(Config{
		Workers: []string{url}, MaxAttempts: 2,
		RetryBackoff: time.Millisecond, DisableLocalFallback: true, Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mine(context.Background(), fixture(t), fixtureOpt); err == nil {
		t.Fatal("Mine succeeded with no reachable worker and fallback disabled")
	}
}

// TestCoordinatorNonRetryableFails: a worker that rejects the request (400)
// must fail the mine immediately — retrying a rejection would loop, and the
// local fallback would mask a real bug in the coordinator's requests.
func TestCoordinatorNonRetryableFails(t *testing.T) {
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusBadRequest)
	}))
	defer rejecting.Close()

	before := obs.Dist().LocalFallbacks.Value()
	c, err := New(Config{Workers: []string{rejecting.URL}, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mine(context.Background(), fixture(t), fixtureOpt); err == nil {
		t.Fatal("Mine succeeded against a rejecting worker")
	}
	if got := obs.Dist().LocalFallbacks.Value(); got != before {
		t.Errorf("rejection triggered %d local fallbacks; want none", got-before)
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	c, err := New(Config{Workers: []string{worker(t)}, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Mine(ctx, fixture(t), fixtureOpt); err == nil {
		t.Fatal("Mine succeeded under a cancelled context")
	}
}

// TestPickWorkerHealth: a worker whose circuit opens is skipped while a
// healthy one exists, gets probed after the cooldown, and rejoins the
// rotation once the probe succeeds.
func TestPickWorkerHealth(t *testing.T) {
	c, err := New(Config{Workers: []string{"w0", "w1"}, Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	c.breakers.now = func() time.Time { return now }
	for i := 0; i < c.cfg.BreakerThreshold; i++ {
		c.noteResult("w0", false)
	}
	if got := c.breakers.get("w0").state; got != breakerOpen {
		t.Fatalf("after %d failures w0 is %v, want open", c.cfg.BreakerThreshold, got)
	}
	for i := 0; i < 4; i++ {
		if w := c.pickWorker(nil); w != "w1" {
			t.Fatalf("pick %d during cooldown: chose open-circuit %q", i, w)
		}
	}
	// Cooldown elapses: the next rotation probes w0 exactly once, and the
	// probe's success closes the circuit.
	now = now.Add(c.cfg.BreakerCooldown)
	picked := map[string]bool{}
	for i := 0; i < 4; i++ {
		w := c.pickWorker(nil)
		picked[w] = true
		c.noteResult(w, true)
	}
	if !picked["w0"] {
		t.Error("recovered worker never probed again")
	}
	if got := c.breakers.get("w0").state; got != breakerClosed {
		t.Errorf("after successful probe w0 is %v, want closed", got)
	}
	// With every worker excluded or refusing, pickWorker still answers.
	if w := c.pickWorker(map[string]bool{"w0": true, "w1": true}); w == "" {
		t.Error("pickWorker returned no worker")
	}
}
