// Package dist is the distributed mining tier: a coordinator that cuts a
// mine into (symbol × candidate-period) shards, dispatches them to worker
// nodes over the httpapi /v1/shard endpoint, and merges the returned slots
// into a Result byte-identical to a single-process mine at any shard plan.
//
// Fault handling: each worker sits behind a circuit breaker (closed →
// open after consecutive failures → half-open probe after a cooldown); a
// failed shard is retried on another worker with seeded jittered exponential
// backoff — floored by any Retry-After the worker sent — up to a bounded
// attempt budget; a straggling shard is optionally hedged — re-dispatched
// once to a second worker, first response wins; and a shard that exhausts
// its budget falls back to local in-process computation unless disabled.
// Hedging is duplicate-safe because a shard's result is accepted exactly
// once, keyed by its shard ID, and the merge re-derives every confidence
// from integer counts.
//
// Trust: every /v1/shard response carries a checksum and request echoes the
// client verifies before the coordinator sees it; a response that fails is a
// retryable integrity error, counted in obs.Dist(). An optional sampled
// fraction of shards is double-dispatched to an independent worker and
// cross-checked byte-for-byte. An optional journal checkpoints completed
// shards through the store's crash-safe framing, so an interrupted mine
// resumes from its last durable shard instead of restarting.
package dist

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"time"

	"periodica"
	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/exec"
	"periodica/internal/httpapi"
	"periodica/internal/iofault"
	"periodica/internal/obs"
	"periodica/internal/query"
	"periodica/internal/series"
	"periodica/internal/store"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers are worker base URLs ("http://host:port"); at least one.
	Workers []string
	// ShardsPerWorker scales the shard plan: the coordinator targets
	// ShardsPerWorker × len(Workers) shards, so a slow worker delays at
	// most 1/target of the mine. Default 2.
	ShardsPerWorker int
	// MaxAttempts bounds the dispatch attempts per shard, including the
	// first. Default 3.
	MaxAttempts int
	// RetryBackoff is the base delay before a retry, doubled per attempt
	// with ±50% jitter. Default 100ms.
	RetryBackoff time.Duration
	// HedgeAfter re-dispatches a shard to a second worker when the first
	// has not answered within this window; the first response wins and the
	// loser is discarded. 0 disables hedging.
	HedgeAfter time.Duration
	// Seed seeds the coordinator's random stream (backoff jitter,
	// verification sampling), so a run is reproducible; 0 means seed 1.
	Seed int64
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an opened circuit refuses requests before
	// admitting a half-open probe; it doubles each time the probe fails.
	// Default 1s.
	BreakerCooldown time.Duration
	// VerifyShards is the fraction of successful remote shards (0..1) that
	// are double-dispatched to an independent worker and compared
	// byte-for-byte; a mismatch is counted and the shard recomputed locally.
	// 0 disables verification.
	VerifyShards float64
	// ResumeJournal, when set, is a file path where completed shards are
	// checkpointed: an interrupted Mine re-run with the same inputs skips
	// the journaled shards. The journal is deleted when a mine completes.
	ResumeJournal string
	// NoCandidatePrecompute disables shipping the coordinator's sweep
	// results with each shard; workers then re-detect over the whole series
	// themselves. The shipped and self-detected paths produce identical
	// slots — this knob exists for benchmarking the difference.
	NoCandidatePrecompute bool
	// Client issues the shard calls; nil means a zero httpapi.ShardClient.
	Client *httpapi.ShardClient
	// DisableLocalFallback turns exhausting a shard's attempt budget into a
	// hard error instead of computing the shard in-process.
	DisableLocalFallback bool
	// Logger receives dispatch warnings; nil means slog.Default().
	Logger *slog.Logger
}

// Coordinator implements httpapi.Distributor over a fixed worker set.
type Coordinator struct {
	cfg    Config
	client *httpapi.ShardClient
	log    *slog.Logger

	mu       sync.Mutex
	rr       int // round-robin cursor over cfg.Workers
	breakers *breakerSet

	rngMu sync.Mutex
	rng   *rand.Rand

	journalMu sync.Mutex // one journaled mine at a time

	// afterJournal, when set by in-package tests, observes the running count
	// of journal records after each append — the hook kill-and-resume tests
	// use to interrupt a mine at an exact checkpoint.
	afterJournal func(appended int)
}

// New builds a Coordinator; it requires at least one worker URL.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: at least one worker required")
	}
	if cfg.ShardsPerWorker <= 0 {
		cfg.ShardsPerWorker = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.VerifyShards < 0 || cfg.VerifyShards > 1 {
		return nil, fmt.Errorf("dist: VerifyShards %v outside [0,1]", cfg.VerifyShards)
	}
	if cfg.Client == nil {
		cfg.Client = &httpapi.ShardClient{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Coordinator{
		cfg:      cfg,
		client:   cfg.Client,
		log:      cfg.Logger,
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Mine shards the request across the worker set and reassembles the result.
// It is byte-identical to periodica.MineContext on the same series and
// options: the wire carries integer counts only, every engine computes
// identical slot values, and the merge applies the same canonical sort and
// pattern enumeration a single-process mine does.
func (c *Coordinator) Mine(ctx context.Context, s *periodica.Series, opt periodica.Options) (*periodica.Result, error) {
	alpha, err := alphabet.New(s.Alphabet()...)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	text := s.String()
	ser, err := series.FromAlphabetText(alpha, text)
	if err != nil {
		// The wire format carries single-rune symbols; a series whose text
		// does not round-trip cannot be distributed.
		return nil, fmt.Errorf("dist: series is not wire-encodable: %w", err)
	}
	copt, err := coreOptions(opt)
	if err != nil {
		return nil, err
	}
	norm, err := core.NormalizeOptions(copt, ser.Len())
	if err != nil {
		return nil, err
	}
	target := c.cfg.ShardsPerWorker * len(c.cfg.Workers)
	plan := exec.PlanShards(alpha.Size(), norm.MinPeriod, norm.MaxPeriod, target)
	if len(plan) == 0 {
		return nil, fmt.Errorf("dist: empty shard plan for periods [%d,%d]", norm.MinPeriod, norm.MaxPeriod)
	}

	// Run the detect and sweep stages once here and ship each shard its
	// survivor slice, so workers resolve directly instead of re-detecting
	// over the whole series. Skipped shards' survivors cost nothing extra —
	// the computation is shared across the plan.
	var surv [][]int32
	if !c.cfg.NoCandidatePrecompute {
		if surv, err = core.ShardSurvivors(ctx, ser, norm); err != nil {
			return nil, err
		}
	}

	var jr *journalRun
	if c.cfg.ResumeJournal != "" {
		c.journalMu.Lock()
		defer c.journalMu.Unlock()
		jr, err = c.openJournal(mineKey(alpha.Symbols(), text, norm), len(plan))
		if err != nil {
			return nil, err
		}
		defer func() { _ = jr.j.Close() }() // no-op after a completed mine's Remove
	}

	// Every shard carries the mine's canonical query string: the worker
	// compiles exactly what the coordinator normalized (modulo the per-shard
	// period band), and the response's QueryCRC echo proves it answered it.
	// The scalar fields ride along for pre-query workers.
	engine := norm.Engine.String()
	normSpec := core.SpecFromOptions(norm)
	canonical := normSpec.Render()
	results := make([][]core.SymbolPeriodicity, len(plan))
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	for i, sh := range plan {
		req := httpapi.ShardRequest{
			ShardID:   sh.ID,
			Alphabet:  alpha.Symbols(),
			Symbols:   text,
			Query:     canonical,
			Threshold: norm.Threshold, MinPeriod: sh.MinPeriod, MaxPeriod: sh.MaxPeriod,
			SymbolLo: sh.SymbolLo, SymbolHi: sh.SymbolHi,
			MinPairs: norm.MinPairs, Engine: engine,
		}
		if surv != nil {
			req.Survivors = clipSurvivors(surv, sh, norm.MinPeriod)
		}
		if jr != nil {
			if wire, ok := jr.completed(sh.ID); ok {
				results[i] = slotsFromWire(wire)
				continue
			}
		}
		wg.Add(1)
		go func(i, shardID int, req httpapi.ShardRequest) {
			defer wg.Done()
			wire, err := c.runShard(ctx, ser, norm, req)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = slotsFromWire(wire)
			if jr != nil {
				n, err := jr.record(shardID, wire)
				if err != nil {
					errs[i] = err
					return
				}
				if c.afterJournal != nil {
					c.afterJournal(n)
				}
			}
		}(i, sh.ID, req)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var slots []core.SymbolPeriodicity
	for _, part := range results {
		slots = append(slots, part...)
	}
	res, err := core.AssembleFromSlots(ctx, ser, norm, slots)
	if err != nil {
		return nil, err
	}
	if jr != nil {
		// The mine is assembled; the checkpoint has nothing left to resume.
		if err := jr.j.Remove(); err != nil {
			c.log.Warn("removing completed resume journal failed", "path", c.cfg.ResumeJournal, "err", err)
		}
	}
	if opt.MaximalOnly {
		res.Patterns = core.FilterMaximal(res.Patterns)
	}
	return convertResult(alpha, res), nil
}

// clipSurvivors slices the full-plan survivor set down to one shard's period
// band and symbol range.
func clipSurvivors(surv [][]int32, sh exec.Shard, minPeriod int) [][]int32 {
	band := make([][]int32, 0, sh.MaxPeriod-sh.MinPeriod+1)
	for p := sh.MinPeriod; p <= sh.MaxPeriod; p++ {
		var clipped []int32
		for _, k := range surv[p-minPeriod] {
			if int(k) >= sh.SymbolLo && int(k) < sh.SymbolHi {
				clipped = append(clipped, k)
			}
		}
		band = append(band, clipped)
	}
	return band
}

// attemptResult is one dispatch outcome; the winning result per shard is the
// first successful one received.
type attemptResult struct {
	worker  string
	resp    *httpapi.ShardResponse
	err     error
	elapsed time.Duration
}

// runShard drives one shard to completion: dispatch, bounded retries with
// jittered backoff, an optional single hedge, and the local fallback. The
// result channel is buffered for every launch the budget allows, so a
// discarded (hedged-loser or post-fallback) attempt never blocks and its
// goroutine always exits.
func (c *Coordinator) runShard(ctx context.Context, ser *series.Series, norm core.Options, req httpapi.ShardRequest) ([]httpapi.ShardSlot, error) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	resCh := make(chan attemptResult, c.cfg.MaxAttempts+1)
	inFlight := map[string]bool{}
	launch := func(excludeInFlight bool) {
		var exclude map[string]bool
		if excludeInFlight {
			exclude = inFlight
		}
		worker := c.pickWorker(exclude)
		inFlight[worker] = true
		//opvet:ignore goroleak joined by the select receive on resCh in runShard; the buffer holds every possible launch so a losing attempt's send never blocks
		go func() {
			start := time.Now()
			resp, err := c.client.MineShard(shardCtx, worker, &req)
			resCh <- attemptResult{worker: worker, resp: resp, err: err, elapsed: time.Since(start)}
		}()
	}

	attempts := 1 // budgeted launches; the hedge is extra
	pending := 1
	launch(false)

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(c.cfg.Workers) > 1 {
		hedgeTimer := time.NewTimer(c.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var backoffC <-chan time.Time
	var backoffFloor time.Duration // largest Retry-After seen from a worker

	for {
		select {
		case r := <-resCh:
			pending--
			delete(inFlight, r.worker)
			c.noteResult(r.worker, r.err == nil)
			if r.err == nil {
				obs.Dist().ObserveShard(r.worker, r.elapsed)
				if c.shouldVerify() && !c.crossVerify(shardCtx, req, r) {
					obs.Dist().VerifyMismatches.Inc()
					c.log.Error("shard verification mismatch: independent workers disagree",
						"shard", req.ShardID, "worker", r.worker)
					// Neither response can be trusted; the local computation
					// is the authoritative tiebreak.
					return c.localFallback(ctx, ser, norm, req,
						fmt.Errorf("verification mismatch on worker %s", r.worker))
				}
				return r.resp.Slots, nil
			}
			var ie *httpapi.ShardIntegrityError
			if errors.As(r.err, &ie) {
				obs.Dist().IntegrityFailures.Inc()
			}
			var wse *httpapi.WorkerStatusError
			if errors.As(r.err, &wse) && wse.RetryAfter > backoffFloor {
				backoffFloor = wse.RetryAfter
			}
			if !retryable(r.err) {
				return nil, fmt.Errorf("dist: shard %d: %w", req.ShardID, r.err)
			}
			c.log.Warn("shard attempt failed", "shard", req.ShardID, "worker", r.worker, "err", r.err)
			switch {
			case backoffC != nil || pending > 0:
				// A retry is already scheduled or another attempt (the
				// hedge) is still in flight; let it play out.
			case attempts < c.cfg.MaxAttempts:
				d := c.jitteredBackoff(attempts)
				if d < backoffFloor {
					d = backoffFloor
				}
				backoff := time.NewTimer(d)
				defer backoff.Stop()
				backoffC = backoff.C
			default:
				return c.localFallback(ctx, ser, norm, req, r.err)
			}
		case <-backoffC:
			backoffC = nil
			attempts++
			pending++
			obs.Dist().Retries.Inc()
			launch(false)
		case <-hedgeC:
			hedgeC = nil
			if pending > 0 {
				pending++
				obs.Dist().Hedges.Inc()
				c.log.Info("hedging straggler shard", "shard", req.ShardID)
				launch(true)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// shouldVerify samples the seeded stream for whether to double-check the
// next successful shard. Verification needs a second, independent worker.
func (c *Coordinator) shouldVerify() bool {
	if c.cfg.VerifyShards <= 0 || len(c.cfg.Workers) < 2 {
		return false
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64() < c.cfg.VerifyShards
}

// crossVerify re-dispatches the shard to a worker other than the one that
// answered and compares the two responses byte-for-byte. It reports false
// only on a definite mismatch: an unavailable or failing verifier means the
// check is inconclusive, which must not fail a shard that already succeeded.
func (c *Coordinator) crossVerify(ctx context.Context, req httpapi.ShardRequest, first attemptResult) bool {
	verifier := c.pickWorker(map[string]bool{first.worker: true})
	if verifier == first.worker {
		return true // no independent worker available; inconclusive
	}
	resp, err := c.client.MineShard(ctx, verifier, &req)
	c.noteResult(verifier, err == nil)
	if err != nil {
		c.log.Warn("shard verification dispatch failed; check inconclusive",
			"shard", req.ShardID, "verifier", verifier, "err", err)
		return true
	}
	return reflect.DeepEqual(resp.Slots, first.resp.Slots)
}

// localFallback computes the shard in-process after the attempt budget is
// exhausted — degraded (the coordinator spends its own CPU) but correct,
// since MineShardSlots is the exact computation a worker runs.
func (c *Coordinator) localFallback(ctx context.Context, ser *series.Series, norm core.Options, req httpapi.ShardRequest, cause error) ([]httpapi.ShardSlot, error) {
	if c.cfg.DisableLocalFallback {
		return nil, fmt.Errorf("dist: shard %d failed remotely: %w", req.ShardID, cause)
	}
	c.log.Warn("computing shard locally", "shard", req.ShardID, "cause", cause)
	obs.Dist().LocalFallbacks.Inc()
	shardOpt := norm
	shardOpt.MinPeriod, shardOpt.MaxPeriod = req.MinPeriod, req.MaxPeriod
	slots, err := core.MineShardSlots(ctx, ser, shardOpt, req.SymbolLo, req.SymbolHi)
	if err != nil {
		return nil, err
	}
	return slotsToWire(slots), nil
}

// jitteredBackoff is the delay before retry number attempt (1-based over
// completed launches): base × 2^(attempt−1), uniformly jittered over
// [0.5×, 1.5×) from the coordinator's seeded stream.
func (c *Coordinator) jitteredBackoff(attempt int) time.Duration {
	d := c.cfg.RetryBackoff << (attempt - 1)
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// pickWorker chooses the next worker round-robin, preferring workers whose
// circuit admits a request and that are not in exclude; it degrades to
// excluded or refusing workers rather than returning none, because a guess
// at a bad worker still beats giving up. Choosing a worker with an elapsed
// cooldown claims its half-open probe slot.
func (c *Coordinator) pickWorker(exclude map[string]bool) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.breakers.now()
	n := len(c.cfg.Workers)
	best, bestRank := c.rr%n, 99
	for i := 0; i < n; i++ {
		idx := (c.rr + i) % n
		w := c.cfg.Workers[idx]
		rank := c.breakers.get(w).rank(now)
		if exclude[w] {
			rank += 3
		}
		if rank < bestRank {
			best, bestRank = idx, rank
			if rank == 0 {
				break
			}
		}
	}
	w := c.cfg.Workers[best]
	c.breakers.get(w).allow(now) // claim the probe slot when half-open
	c.rr = (best + 1) % n
	return w
}

// noteResult feeds a request outcome to the worker's circuit breaker.
func (c *Coordinator) noteResult(worker string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.breakers.get(worker).note(ok, c.breakers.now())
}

// retryable reports whether another dispatch of the same shard could
// succeed: transport failures, integrity failures, and shed/5xx worker
// replies are retryable; context expiry and request rejections (4xx) are
// not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var wse *httpapi.WorkerStatusError
	if errors.As(err, &wse) {
		return wse.Retryable()
	}
	return true
}

// slotsFromWire converts wire slots to core periodicities. Confidence stays
// zero: AssembleFromSlots re-derives it from the integer counts.
func slotsFromWire(in []httpapi.ShardSlot) []core.SymbolPeriodicity {
	out := make([]core.SymbolPeriodicity, 0, len(in))
	for _, sl := range in {
		out = append(out, core.SymbolPeriodicity{
			Symbol: sl.Symbol, Period: sl.Period, Position: sl.Position,
			F2: sl.F2, Pairs: sl.Pairs,
		})
	}
	return out
}

// slotsToWire is the inverse, for journaling locally computed shards in the
// same form remote ones arrive in.
func slotsToWire(in []core.SymbolPeriodicity) []httpapi.ShardSlot {
	out := make([]httpapi.ShardSlot, 0, len(in))
	for _, sp := range in {
		out = append(out, httpapi.ShardSlot{
			Symbol: sp.Symbol, Period: sp.Period, Position: sp.Position,
			F2: sp.F2, Pairs: sp.Pairs,
		})
	}
	return out
}

// coreOptions lowers public options to core options through the query layer:
// lift to the canonical query, compile it (cached, validated), convert. The
// coordinator thus mines under exactly the Spec its shards announce on the
// wire; the distributed parity suite pins this against the root package's own
// conversion, so drift breaks a test rather than byte-identity in production.
func coreOptions(o periodica.Options) (core.Options, error) {
	sp, err := query.Compile(periodica.QueryFromOptions(o).String())
	if err != nil {
		return core.Options{}, fmt.Errorf("dist: %w", err)
	}
	return core.OptionsFromSpec(sp)
}

// convertResult mirrors the root package's core→public conversion, likewise
// pinned by the distributed parity suite.
func convertResult(alpha *alphabet.Alphabet, res *core.Result) *periodica.Result {
	out := &periodica.Result{Periods: res.Periods, Truncated: res.PatternsTruncated}
	for _, sp := range res.Periodicities {
		out.Periodicities = append(out.Periodicities, periodica.Periodicity{
			Symbol:     alpha.Symbol(sp.Symbol),
			Period:     sp.Period,
			Position:   sp.Position,
			Matches:    sp.F2,
			Pairs:      sp.Pairs,
			Confidence: sp.Confidence,
		})
	}
	for _, pt := range res.SingleSymbol {
		out.SingleSymbolPatterns = append(out.SingleSymbolPatterns, periodica.Pattern{
			Period: pt.Period, Text: pt.Render(alpha), Support: pt.Support,
		})
	}
	for _, pt := range res.Patterns {
		out.Patterns = append(out.Patterns, periodica.Pattern{
			Period: pt.Period, Text: pt.Render(alpha), Support: pt.Support,
		})
	}
	return out
}

// journalHeader is a resume journal's first record: it binds the checkpoint
// to one exact mine, so a journal left by different inputs is discarded
// instead of poisoning the merge.
type journalHeader struct {
	Key    uint32 `json:"key"`
	Shards int    `json:"shards"`
}

// journalShard is one completed shard's checkpoint record.
type journalShard struct {
	ShardID int                 `json:"shardId"`
	Slots   []httpapi.ShardSlot `json:"slots"`
}

// journalRun is the live journal of one Mine call.
type journalRun struct {
	j        *store.Journal
	mu       sync.Mutex
	done     map[int][]httpapi.ShardSlot
	appended int
}

// completed returns a shard's journaled slots, if checkpointed.
func (jr *journalRun) completed(shardID int) ([]httpapi.ShardSlot, bool) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	wire, ok := jr.done[shardID]
	return wire, ok
}

// record checkpoints one completed shard and returns the running record
// count. The append fsyncs, so a record returned here survives any crash.
func (jr *journalRun) record(shardID int, wire []httpapi.ShardSlot) (int, error) {
	payload, err := json.Marshal(journalShard{ShardID: shardID, Slots: wire})
	if err != nil {
		return 0, err
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if err := jr.j.Append(payload); err != nil {
		return 0, fmt.Errorf("dist: checkpointing shard %d: %w", shardID, err)
	}
	jr.appended++
	return jr.appended, nil
}

var journalCRCTable = crc32.MakeTable(crc32.Castagnoli)

// mineKey fingerprints a mine's exact inputs — alphabet, text, normalized
// options — so a journal only ever resumes the mine that wrote it.
func mineKey(alpha []string, text string, norm core.Options) uint32 {
	h := crc32.New(journalCRCTable)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = h.Write(b[:])
	}
	put(uint64(httpapi.AlphabetCRC(alpha)))
	put(uint64(len(text)))
	_, _ = io.WriteString(h, text)
	put(math.Float64bits(norm.Threshold))
	put(uint64(int64(norm.MinPeriod)))
	put(uint64(int64(norm.MaxPeriod)))
	put(uint64(int64(norm.MinPairs)))
	put(uint64(int64(norm.Engine)))
	put(uint64(int64(norm.MaxPatternPeriod)))
	put(uint64(int64(norm.MaxPatterns)))
	return h.Sum32()
}

// openJournal opens the configured resume journal, replays any checkpoint
// that matches this mine's key and plan size, and writes the header when
// starting fresh. A journal from different inputs is removed, not reused.
func (c *Coordinator) openJournal(key uint32, planLen int) (*journalRun, error) {
	j, recs, err := store.OpenJournal(iofault.OS(), c.cfg.ResumeJournal)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	done := map[int][]httpapi.ShardSlot{}
	matches := false
	if len(recs) > 0 {
		var hdr journalHeader
		if json.Unmarshal(recs[0], &hdr) == nil && hdr.Key == key && hdr.Shards == planLen {
			matches = true
			for _, rec := range recs[1:] {
				var sh journalShard
				if err := json.Unmarshal(rec, &sh); err != nil {
					// CRC-framed records should always decode; treat damage
					// past the framing like a torn tail and stop replaying.
					c.log.Warn("undecodable journal record; resuming from earlier prefix", "err", err)
					break
				}
				if sh.ShardID < 0 || sh.ShardID >= planLen {
					c.log.Warn("journal record names an unknown shard; ignoring", "shard", sh.ShardID)
					continue
				}
				done[sh.ShardID] = sh.Slots
			}
		}
	}
	if !matches && len(recs) > 0 {
		c.log.Warn("resume journal belongs to a different mine; starting fresh", "path", c.cfg.ResumeJournal)
		if err := j.Remove(); err != nil {
			return nil, fmt.Errorf("dist: resetting stale journal: %w", err)
		}
		if j, _, err = store.OpenJournal(iofault.OS(), c.cfg.ResumeJournal); err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
	}
	if !matches {
		payload, err := json.Marshal(journalHeader{Key: key, Shards: planLen})
		if err != nil {
			return nil, err
		}
		if err := j.Append(payload); err != nil {
			_ = j.Close() // the append error is the one worth reporting
			return nil, fmt.Errorf("dist: writing journal header: %w", err)
		}
	}
	if len(done) > 0 {
		obs.Dist().ResumedMines.Inc()
		obs.Dist().ResumedShards.Add(int64(len(done)))
		c.log.Info("resuming mine from journal",
			"path", c.cfg.ResumeJournal, "completedShards", len(done), "totalShards", planLen)
	}
	return &journalRun{j: j, done: done, appended: len(done)}, nil
}
