// Package dist is the distributed mining tier: a coordinator that cuts a
// mine into (symbol × candidate-period) shards, dispatches them to worker
// nodes over the httpapi /v1/shard endpoint, and merges the returned slots
// into a Result byte-identical to a single-process mine at any shard plan.
//
// Fault handling: each worker carries a consecutive-failure count and is
// skipped while unhealthy; a failed shard is retried on another worker with
// jittered exponential backoff, up to a bounded attempt budget; a straggling
// shard is optionally hedged — re-dispatched once to a second worker, first
// response wins; and a shard that exhausts its budget falls back to local
// in-process computation unless disabled. Hedging is duplicate-safe because
// a shard's result is accepted exactly once, keyed by its shard ID, and the
// merge re-derives every confidence from integer counts.
package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"periodica"
	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/exec"
	"periodica/internal/httpapi"
	"periodica/internal/obs"
	"periodica/internal/series"
)

// unhealthyAfter is the consecutive-failure count at which a worker stops
// receiving new shards until it answers one successfully again.
const unhealthyAfter = 3

// Config tunes a Coordinator.
type Config struct {
	// Workers are worker base URLs ("http://host:port"); at least one.
	Workers []string
	// ShardsPerWorker scales the shard plan: the coordinator targets
	// ShardsPerWorker × len(Workers) shards, so a slow worker delays at
	// most 1/target of the mine. Default 2.
	ShardsPerWorker int
	// MaxAttempts bounds the dispatch attempts per shard, including the
	// first. Default 3.
	MaxAttempts int
	// RetryBackoff is the base delay before a retry, doubled per attempt
	// with ±50% jitter. Default 100ms.
	RetryBackoff time.Duration
	// HedgeAfter re-dispatches a shard to a second worker when the first
	// has not answered within this window; the first response wins and the
	// loser is discarded. 0 disables hedging.
	HedgeAfter time.Duration
	// Client issues the shard calls; nil means a zero httpapi.ShardClient.
	Client *httpapi.ShardClient
	// DisableLocalFallback turns exhausting a shard's attempt budget into a
	// hard error instead of computing the shard in-process.
	DisableLocalFallback bool
	// Logger receives dispatch warnings; nil means slog.Default().
	Logger *slog.Logger
}

// Coordinator implements httpapi.Distributor over a fixed worker set.
type Coordinator struct {
	cfg    Config
	client *httpapi.ShardClient
	log    *slog.Logger

	mu    sync.Mutex
	rr    int            // round-robin cursor over cfg.Workers
	fails map[string]int // consecutive failures per worker
}

// New builds a Coordinator; it requires at least one worker URL.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: at least one worker required")
	}
	if cfg.ShardsPerWorker <= 0 {
		cfg.ShardsPerWorker = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &httpapi.ShardClient{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		log:    cfg.Logger,
		fails:  map[string]int{},
	}, nil
}

// Mine shards the request across the worker set and reassembles the result.
// It is byte-identical to periodica.MineContext on the same series and
// options: the wire carries integer counts only, every engine computes
// identical slot values, and the merge applies the same canonical sort and
// pattern enumeration a single-process mine does.
func (c *Coordinator) Mine(ctx context.Context, s *periodica.Series, opt periodica.Options) (*periodica.Result, error) {
	alpha, err := alphabet.New(s.Alphabet()...)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	text := s.String()
	ser, err := series.FromAlphabetText(alpha, text)
	if err != nil {
		// The wire format carries single-rune symbols; a series whose text
		// does not round-trip cannot be distributed.
		return nil, fmt.Errorf("dist: series is not wire-encodable: %w", err)
	}
	norm, err := core.NormalizeOptions(coreOptions(opt), ser.Len())
	if err != nil {
		return nil, err
	}
	target := c.cfg.ShardsPerWorker * len(c.cfg.Workers)
	plan := exec.PlanShards(alpha.Size(), norm.MinPeriod, norm.MaxPeriod, target)
	if len(plan) == 0 {
		return nil, fmt.Errorf("dist: empty shard plan for periods [%d,%d]", norm.MinPeriod, norm.MaxPeriod)
	}

	engine := norm.Engine.String()
	results := make([][]core.SymbolPeriodicity, len(plan))
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	for i, sh := range plan {
		req := httpapi.ShardRequest{
			ShardID:   sh.ID,
			Alphabet:  alpha.Symbols(),
			Symbols:   text,
			Threshold: norm.Threshold, MinPeriod: sh.MinPeriod, MaxPeriod: sh.MaxPeriod,
			SymbolLo: sh.SymbolLo, SymbolHi: sh.SymbolHi,
			MinPairs: norm.MinPairs, Engine: engine,
		}
		wg.Add(1)
		go func(i int, req httpapi.ShardRequest) {
			defer wg.Done()
			results[i], errs[i] = c.runShard(ctx, ser, norm, req)
		}(i, req)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var slots []core.SymbolPeriodicity
	for _, part := range results {
		slots = append(slots, part...)
	}
	res, err := core.AssembleFromSlots(ctx, ser, norm, slots)
	if err != nil {
		return nil, err
	}
	if opt.MaximalOnly {
		res.Patterns = core.FilterMaximal(res.Patterns)
	}
	return convertResult(alpha, res), nil
}

// attemptResult is one dispatch outcome; the winning result per shard is the
// first successful one received.
type attemptResult struct {
	worker  string
	slots   []core.SymbolPeriodicity
	err     error
	elapsed time.Duration
}

// runShard drives one shard to completion: dispatch, bounded retries with
// jittered backoff, an optional single hedge, and the local fallback. The
// result channel is buffered for every launch the budget allows, so a
// discarded (hedged-loser or post-fallback) attempt never blocks and its
// goroutine always exits.
func (c *Coordinator) runShard(ctx context.Context, ser *series.Series, norm core.Options, req httpapi.ShardRequest) ([]core.SymbolPeriodicity, error) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	resCh := make(chan attemptResult, c.cfg.MaxAttempts+1)
	inFlight := map[string]bool{}
	launch := func(excludeInFlight bool) {
		var exclude map[string]bool
		if excludeInFlight {
			exclude = inFlight
		}
		worker := c.pickWorker(exclude)
		inFlight[worker] = true
		//opvet:ignore goroleak joined by the select receive on resCh in runShard; the buffer holds every possible launch so a losing attempt's send never blocks
		go func() {
			start := time.Now()
			resp, err := c.client.MineShard(shardCtx, worker, &req)
			r := attemptResult{worker: worker, err: err, elapsed: time.Since(start)}
			if err == nil {
				r.slots = slotsFromWire(resp.Slots)
			}
			resCh <- r
		}()
	}

	attempts := 1 // budgeted launches; the hedge is extra
	pending := 1
	launch(false)

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(c.cfg.Workers) > 1 {
		hedgeTimer := time.NewTimer(c.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var backoffC <-chan time.Time

	for {
		select {
		case r := <-resCh:
			pending--
			delete(inFlight, r.worker)
			c.noteResult(r.worker, r.err == nil)
			if r.err == nil {
				obs.Dist().ObserveShard(r.worker, r.elapsed)
				return r.slots, nil
			}
			if !retryable(r.err) {
				return nil, fmt.Errorf("dist: shard %d: %w", req.ShardID, r.err)
			}
			c.log.Warn("shard attempt failed", "shard", req.ShardID, "worker", r.worker, "err", r.err)
			switch {
			case backoffC != nil || pending > 0:
				// A retry is already scheduled or another attempt (the
				// hedge) is still in flight; let it play out.
			case attempts < c.cfg.MaxAttempts:
				backoff := time.NewTimer(c.jitteredBackoff(attempts))
				defer backoff.Stop()
				backoffC = backoff.C
			default:
				return c.localFallback(ctx, ser, norm, req, r.err)
			}
		case <-backoffC:
			backoffC = nil
			attempts++
			pending++
			obs.Dist().Retries.Inc()
			launch(false)
		case <-hedgeC:
			hedgeC = nil
			if pending > 0 {
				pending++
				obs.Dist().Hedges.Inc()
				c.log.Info("hedging straggler shard", "shard", req.ShardID)
				launch(true)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// localFallback computes the shard in-process after the attempt budget is
// exhausted — degraded (the coordinator spends its own CPU) but correct,
// since MineShardSlots is the exact computation a worker runs.
func (c *Coordinator) localFallback(ctx context.Context, ser *series.Series, norm core.Options, req httpapi.ShardRequest, cause error) ([]core.SymbolPeriodicity, error) {
	if c.cfg.DisableLocalFallback {
		return nil, fmt.Errorf("dist: shard %d exhausted %d attempts: %w", req.ShardID, c.cfg.MaxAttempts, cause)
	}
	c.log.Warn("shard attempts exhausted; computing locally",
		"shard", req.ShardID, "attempts", c.cfg.MaxAttempts, "err", cause)
	obs.Dist().LocalFallbacks.Inc()
	shardOpt := norm
	shardOpt.MinPeriod, shardOpt.MaxPeriod = req.MinPeriod, req.MaxPeriod
	return core.MineShardSlots(ctx, ser, shardOpt, req.SymbolLo, req.SymbolHi)
}

// jitteredBackoff is the delay before retry number attempt (1-based over
// completed launches): base × 2^(attempt−1), uniformly jittered over
// [0.5×, 1.5×).
func (c *Coordinator) jitteredBackoff(attempt int) time.Duration {
	d := c.cfg.RetryBackoff << (attempt - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// pickWorker chooses the next worker round-robin, preferring workers that
// are healthy and not in exclude; it degrades to excluded or unhealthy
// workers rather than returning none, because a guess at a bad worker still
// beats giving up.
func (c *Coordinator) pickWorker(exclude map[string]bool) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.cfg.Workers)
	best, bestRank := c.rr%n, 4
	for i := 0; i < n; i++ {
		idx := (c.rr + i) % n
		w := c.cfg.Workers[idx]
		rank := 0
		if exclude[w] {
			rank += 2
		}
		if c.fails[w] >= unhealthyAfter {
			rank++
		}
		if rank < bestRank {
			best, bestRank = idx, rank
			if rank == 0 {
				break
			}
		}
	}
	c.rr = (best + 1) % n
	return c.cfg.Workers[best]
}

// noteResult updates a worker's consecutive-failure health count.
func (c *Coordinator) noteResult(worker string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.fails[worker] = 0
	} else {
		c.fails[worker]++
	}
}

// retryable reports whether another dispatch of the same shard could
// succeed: transport failures and shed/5xx worker replies are retryable;
// context expiry and request rejections (4xx) are not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var wse *httpapi.WorkerStatusError
	if errors.As(err, &wse) {
		return wse.Retryable()
	}
	return true
}

// slotsFromWire converts wire slots to core periodicities. Confidence stays
// zero: AssembleFromSlots re-derives it from the integer counts.
func slotsFromWire(in []httpapi.ShardSlot) []core.SymbolPeriodicity {
	out := make([]core.SymbolPeriodicity, 0, len(in))
	for _, sl := range in {
		out = append(out, core.SymbolPeriodicity{
			Symbol: sl.Symbol, Period: sl.Period, Position: sl.Position,
			F2: sl.F2, Pairs: sl.Pairs,
		})
	}
	return out
}

// coreOptions mirrors periodica.Options.internal; the distributed parity
// suite pins the two against each other, so drift breaks a test rather than
// byte-identity in production.
func coreOptions(o periodica.Options) core.Options {
	return core.Options{
		Threshold: o.Threshold, MinPeriod: o.MinPeriod, MaxPeriod: o.MaxPeriod,
		Engine: coreEngine(o.Engine), MaxPatternPeriod: o.MaxPatternPeriod,
		MaxPatterns: o.MaxPatterns, MinPairs: o.MinPairs,
	}
}

func coreEngine(e periodica.Engine) core.Engine {
	switch e {
	case periodica.EngineNaive:
		return core.EngineNaive
	case periodica.EngineBitset:
		return core.EngineBitset
	case periodica.EngineFFT:
		return core.EngineFFT
	}
	return core.EngineAuto
}

// convertResult mirrors the root package's core→public conversion, likewise
// pinned by the distributed parity suite.
func convertResult(alpha *alphabet.Alphabet, res *core.Result) *periodica.Result {
	out := &periodica.Result{Periods: res.Periods, Truncated: res.PatternsTruncated}
	for _, sp := range res.Periodicities {
		out.Periodicities = append(out.Periodicities, periodica.Periodicity{
			Symbol:     alpha.Symbol(sp.Symbol),
			Period:     sp.Period,
			Position:   sp.Position,
			Matches:    sp.F2,
			Pairs:      sp.Pairs,
			Confidence: sp.Confidence,
		})
	}
	for _, pt := range res.SingleSymbol {
		out.SingleSymbolPatterns = append(out.SingleSymbolPatterns, periodica.Pattern{
			Period: pt.Period, Text: pt.Render(alpha), Support: pt.Support,
		})
	}
	for _, pt := range res.Patterns {
		out.Patterns = append(out.Patterns, periodica.Pattern{
			Period: pt.Period, Text: pt.Render(alpha), Support: pt.Support,
		})
	}
	return out
}
