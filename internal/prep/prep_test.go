package prep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"periodica/internal/core"
)

func TestZScoreNormalizes(t *testing.T) {
	values := []float64{2, 4, 6, 8}
	z := ZScore(values)
	mean, sd := MeanStd(z)
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("mean %v after z-score", mean)
	}
	if math.Abs(sd-1) > 1e-12 {
		t.Fatalf("sd %v after z-score", sd)
	}
}

func TestZScoreConstantSeries(t *testing.T) {
	z := ZScore([]float64{5, 5, 5})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant series z-scored to %v", z)
		}
	}
}

func TestMeanStdEmpty(t *testing.T) {
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("MeanStd(nil) nonzero")
	}
}

func TestDetrendRemovesLinearDrift(t *testing.T) {
	// Periodic signal on a strong linear ramp: after detrending, the ramp is
	// gone and the oscillation dominates.
	n := 400
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)*3 + 10*math.Sin(2*math.Pi*float64(i)/20)
	}
	flat, err := Detrend(values, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Compare first and last quarter means: the ramp would separate them by
	// ~3·n/2; after detrending they must be near equal.
	q := n / 4
	m1, _ := MeanStd(flat[:q])
	m2, _ := MeanStd(flat[3*q:])
	if math.Abs(m2-m1) > 5 {
		t.Fatalf("drift survived detrending: %v vs %v", m1, m2)
	}
}

func TestDetrendValidates(t *testing.T) {
	if _, err := Detrend([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("window 1: want error")
	}
	if _, err := Detrend([]float64{1, 2}, 5); err == nil {
		t.Fatal("window > n: want error")
	}
}

func TestPAA(t *testing.T) {
	out, err := PAA([]float64{1, 3, 5, 7, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 9} // last frame is the single trailing value
	if len(out) != len(want) {
		t.Fatalf("PAA = %v", out)
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("PAA = %v, want %v", out, want)
		}
	}
}

func TestPAAValidates(t *testing.T) {
	if _, err := PAA(nil, 2); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := PAA([]float64{1}, 0); err == nil {
		t.Fatal("frame 0: want error")
	}
}

func TestPAAFrameOneIdentity(t *testing.T) {
	in := []float64{3, 1, 4, 1, 5}
	out, err := PAA(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("frame-1 PAA changed values")
		}
	}
}

func TestSAXSchemeEqualProbability(t *testing.T) {
	// Standard normal draws must land near-uniformly in the SAX levels.
	rng := rand.New(rand.NewSource(1))
	for _, sigma := range []int{3, 5, 8} {
		scheme, err := SAXScheme(sigma)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, sigma)
		const draws = 100000
		for i := 0; i < draws; i++ {
			counts[scheme.Level(rng.NormFloat64())]++
		}
		want := draws / sigma
		for lvl, c := range counts {
			if c < want*8/10 || c > want*12/10 {
				t.Fatalf("σ=%d level %d holds %d of %d draws (want ≈%d)", sigma, lvl, c, draws, want)
			}
		}
	}
}

func TestSAXSchemeValidates(t *testing.T) {
	for _, bad := range []int{1, 11, 0} {
		if _, err := SAXScheme(bad); err == nil {
			t.Fatalf("SAXScheme(%d): want error", bad)
		}
	}
}

func TestSAXPipelineRecoversPeriod(t *testing.T) {
	// A noisy sine with period 24 on a drift, through the full pipeline,
	// must yield a symbol series in which the miner finds period 24.
	rng := rand.New(rand.NewSource(2))
	n := 24 * 60
	values := make([]float64, n)
	for i := range values {
		values[i] = 100 + 0.05*float64(i) + // drift
			40*math.Sin(2*math.Pi*float64(i)/24) + // daily cycle
			rng.NormFloat64()*4
	}
	s, err := SAX(values, SAXConfig{Levels: 5, DetrendWindow: 49})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	if conf := core.PeriodConfidence(s, 24); conf < 0.6 {
		t.Fatalf("period 24 confidence %v after SAX pipeline", conf)
	}
}

func TestSAXWithPAAShrinksSeries(t *testing.T) {
	values := make([]float64, 120)
	for i := range values {
		values[i] = math.Sin(2 * math.Pi * float64(i) / 12)
	}
	s, err := SAX(values, SAXConfig{Levels: 4, Frame: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 40 {
		t.Fatalf("len = %d, want 40", s.Len())
	}
	// Period 12 at frame 3 becomes period 4.
	if conf := core.PeriodConfidence(s, 4); conf < 0.9 {
		t.Fatalf("period 4 confidence %v after PAA", conf)
	}
}

func TestSAXValidates(t *testing.T) {
	if _, err := SAX(nil, SAXConfig{}); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := SAX([]float64{1, 2}, SAXConfig{Levels: 20}); err == nil {
		t.Fatal("σ=20: want error")
	}
	if _, err := SAX([]float64{1, 2}, SAXConfig{DetrendWindow: 10}); err == nil {
		t.Fatal("detrend window > n: want error")
	}
}

func TestZScoreShiftScaleInvariantProperty(t *testing.T) {
	f := func(seed int64, shift, scale float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		if scale <= 0.001 || scale > 1000 || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = a[i]*scale + shift
		}
		za, zb := ZScore(a), ZScore(b)
		for i := range za {
			if math.Abs(za[i]-zb[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
