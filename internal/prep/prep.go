// Package prep prepares raw numeric feature series (temperature, prices,
// consumption — §2.1 of the paper) for symbol mining: normalization,
// detrending, piecewise aggregate approximation, and SAX-style
// equal-probability discretization under a Gaussian assumption. The paper
// treats discretization as orthogonal (its reference [9] surveys the
// techniques); this package supplies the standard ones so numeric data can
// reach the miner without external tooling.
package prep

import (
	"fmt"
	"math"

	"periodica/internal/alphabet"
	"periodica/internal/discretize"
	"periodica/internal/series"
)

// ZScore returns (values − mean)/stddev. A constant series maps to all
// zeros.
func ZScore(values []float64) []float64 {
	mean, sd := MeanStd(values)
	out := make([]float64, len(values))
	if sd == 0 { //opvet:ignore floatcmp division guard; exact zero only from constant input
		return out
	}
	for i, v := range values {
		out[i] = (v - mean) / sd
	}
	return out
}

// MeanStd returns the mean and population standard deviation of values.
func MeanStd(values []float64) (mean, sd float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(values)))
}

// Detrend subtracts a centred moving average of the given window from each
// value, removing slow drift (seasonal baselines, growth trends) that would
// otherwise smear level boundaries. Edges use the available partial window.
// The window must be ≥ 2.
func Detrend(values []float64, window int) ([]float64, error) {
	if window < 2 {
		return nil, fmt.Errorf("prep: detrend window %d < 2", window)
	}
	if window > len(values) {
		return nil, fmt.Errorf("prep: detrend window %d exceeds series length %d", window, len(values))
	}
	// Prefix sums for O(1) window means.
	prefix := make([]float64, len(values)+1)
	for i, v := range values {
		prefix[i+1] = prefix[i] + v
	}
	out := make([]float64, len(values))
	half := window / 2
	for i := range values {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + (window - half - 1)
		if hi >= len(values) {
			hi = len(values) - 1
		}
		mean := (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
		out[i] = values[i] - mean
	}
	return out, nil
}

// PAA reduces values to ⌈n/frame⌉ piecewise aggregate means, each frame's
// average — the standard pre-step before SAX discretization. The last frame
// may be shorter. frame must be ≥ 1.
func PAA(values []float64, frame int) ([]float64, error) {
	if frame < 1 {
		return nil, fmt.Errorf("prep: PAA frame %d < 1", frame)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("prep: empty series")
	}
	out := make([]float64, 0, (len(values)+frame-1)/frame)
	for i := 0; i < len(values); i += frame {
		hi := i + frame
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[i:hi] {
			sum += v
		}
		out = append(out, sum/float64(hi-i))
	}
	return out, nil
}

// gaussianBreakpoints holds the standard SAX breakpoints: the z-values
// splitting a standard normal into equal-probability regions, for alphabet
// sizes 2..10.
var gaussianBreakpoints = map[int][]float64{
	2:  {0},
	3:  {-0.43, 0.43},
	4:  {-0.67, 0, 0.67},
	5:  {-0.84, -0.25, 0.25, 0.84},
	6:  {-0.97, -0.43, 0, 0.43, 0.97},
	7:  {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
	8:  {-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15},
	9:  {-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22},
	10: {-1.28, -0.84, -0.52, -0.25, 0, 0.25, 0.52, 0.84, 1.28},
}

// SAXScheme returns the equal-probability Gaussian discretization for σ
// levels (2 ≤ σ ≤ 10), to be applied to z-scored values.
func SAXScheme(sigma int) (discretize.Scheme, error) {
	breaks, ok := gaussianBreakpoints[sigma]
	if !ok {
		return discretize.Scheme{}, fmt.Errorf("prep: SAX supports 2..10 levels, got %d", sigma)
	}
	return discretize.NewBreakpoints(breaks)
}

// SAXConfig drives the full numeric-to-symbols pipeline.
type SAXConfig struct {
	// Levels is the alphabet size σ (2..10). Default 5, the paper's
	// real-data choice.
	Levels int
	// Frame is the PAA frame length; 1 (default) keeps every point. Note
	// that PAA divides every embedded period by Frame, so Frame should
	// divide the periods of interest.
	Frame int
	// DetrendWindow, when > 0, removes a centred moving average of that
	// window before normalization.
	DetrendWindow int
}

// SAX converts a raw numeric series to a symbol series: optional detrend,
// z-score, optional PAA, then equal-probability Gaussian levels a, b, … —
// the standard SAX pipeline.
func SAX(values []float64, cfg SAXConfig) (*series.Series, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("prep: empty series")
	}
	if cfg.Levels == 0 {
		cfg.Levels = 5
	}
	if cfg.Frame == 0 {
		cfg.Frame = 1
	}
	work := values
	var err error
	if cfg.DetrendWindow > 0 {
		if work, err = Detrend(work, cfg.DetrendWindow); err != nil {
			return nil, err
		}
	}
	work = ZScore(work)
	if cfg.Frame > 1 {
		if work, err = PAA(work, cfg.Frame); err != nil {
			return nil, err
		}
	}
	scheme, err := SAXScheme(cfg.Levels)
	if err != nil {
		return nil, err
	}
	return scheme.Apply(work, alphabet.Letters(cfg.Levels))
}
