package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every `go` statement to have a reachable join: a
// spawned goroutine whose completion nothing ever observes outlives
// cancellation, keeps buffers pinned, and — on the exec worker pool —
// silently shrinks parallelism when it deadlocks. PR 3's pipeline
// shutdown contract is "Stop returns only after the workers drained";
// this rule keeps that structural.
//
// A goroutine counts as joined when, from the block spawning it, the
// function can reach a join construct:
//
//   - a call to a method named Wait (sync.WaitGroup, errgroup-style
//     handles alike — matched by name so fixtures need no real types),
//   - a channel receive (<-ch, including range-over-channel) or a
//     select statement,
//   - or a deferred join (defer wg.Wait() / defer close in the
//     function's defer list, which runs on every exit path).
//
// Alternatively the goroutine's synchronization state may legitimately
// leave the function — the caller joins instead. The rule excuses the
// spawn when the channels and WaitGroups the goroutine touches are
// non-local (fields, globals, parameters) or escape the function
// (EscapeLite): a constructor that starts a worker and returns the
// handle is fine. What remains — a goroutine communicating only through
// function-local, non-escaping state with no reachable join, or
// communicating through nothing at all — is a leak or a fire-and-forget
// the author must justify with an ignore.
type GoroLeak struct{}

func (GoroLeak) Name() string { return "goroleak" }
func (GoroLeak) Doc() string {
	return "every go statement needs a reachable join (Wait/receive/select), a deferred join, or an escaping handle"
}

// Run is empty: the whole analysis is per-function.
func (GoroLeak) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {}

func (GoroLeak) RunFunc(fi *FuncInfo, report func(pos token.Pos, format string, args ...any)) {
	g := fi.CFG
	if g == nil {
		return
	}
	info := fi.Pkg.Info

	// Collect the spawn sites per block first; most functions have none
	// and the rest of the analysis is skipped.
	type spawn struct {
		b    *Block
		stmt *ast.GoStmt
	}
	var spawns []spawn
	for _, b := range g.Blocks {
		inspectShallow(b.Nodes, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				spawns = append(spawns, spawn{b, gs})
				// The spawned call's own subtree (often a FuncLit, already
				// skipped) holds no further spawns of this function.
			}
			return true
		})
	}
	if len(spawns) == 0 {
		return
	}

	joins := map[*Block]bool{}
	for _, b := range g.Blocks {
		if blockJoins(b, info) {
			joins[b] = true
		}
	}
	deferJoins := false
	for _, d := range g.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.SelectorExpr:
				if nn.Sel.Name == "Wait" {
					deferJoins = true
				}
			case *ast.UnaryExpr:
				if nn.Op == token.ARROW {
					deferJoins = true
				}
			}
			return true
		})
	}

	var escaped map[*types.Var]bool // built lazily
	params := map[*types.Var]bool{}
	if ft := funcTypeOf(fi.FuncNode()); ft != nil && ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}

	for _, sp := range spawns {
		if deferJoins {
			continue
		}
		if joinReachable(g, sp.b, sp.stmt, joins, info) {
			continue
		}
		// No join in this function: excused only when the goroutine's
		// synchronization state can be joined by a caller. Escape is
		// computed with go statements excluded — capture by the spawned
		// closure itself must not excuse its own leak.
		if escaped == nil {
			escaped = escapeWalk(fi.Body(), info, func(n ast.Node) bool {
				_, ok := n.(*ast.GoStmt)
				return ok
			})
		}
		syncVars, sawSync := goSyncState(sp.stmt, info)
		if sawSync {
			external := false
			for _, v := range syncVars {
				if v == nil || params[v] || escaped[v] {
					external = true
					break
				}
			}
			if external {
				continue
			}
			report(sp.stmt.Pos(), "goroutine synchronizes only through function-local state with no reachable join; add a Wait/receive on some path or defer one")
			continue
		}
		report(sp.stmt.Pos(), "goroutine has no reachable join and no synchronization handle; its completion is unobservable")
	}
}

// blockJoins reports whether the block contains a join construct: a
// Wait method call, a channel receive, a range over a channel, or a
// select entry.
func blockJoins(b *Block, info *types.Info) bool {
	found := false
	inspectShallow(b.Nodes, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.RangeStmt:
			if info != nil {
				if tv, ok := info.Types[nn.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// joinReachable reports whether a join construct lies on some path from
// the spawn: later in the spawning block itself, or in any block
// reachable from it.
func joinReachable(g *CFG, b *Block, spawn *ast.GoStmt, joins map[*Block]bool, info *types.Info) bool {
	// Same block, after the spawn.
	tail := false
	inspectShallow(b.Nodes, func(n ast.Node) bool {
		if tail {
			return false
		}
		if n.Pos() <= spawn.Pos() {
			return true
		}
		one := &Block{Nodes: []ast.Node{n}}
		if blockJoins(one, info) {
			tail = true
			return false
		}
		return true
	})
	if tail {
		return true
	}
	for j := range joins {
		if j == b {
			continue
		}
		if blockReaches(b.Succs, j, nil) {
			return true
		}
	}
	return false
}

// goSyncState lists the channel- and WaitGroup-typed variables the go
// statement references (in the spawned call and, for a literal, its
// body). A nil entry stands for non-local state — a field selector or
// package global, always joined elsewhere. sawSync is false when the
// goroutine touches no synchronization state at all.
func goSyncState(gs *ast.GoStmt, info *types.Info) (vars []*types.Var, sawSync bool) {
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.Ident:
			obj := info.Uses[nn]
			if obj == nil {
				obj = info.Defs[nn]
			}
			v, ok := obj.(*types.Var)
			if !ok || !isSyncType(v.Type()) {
				return true
			}
			sawSync = true
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() || v.IsField() {
				vars = append(vars, nil) // global or field: external
			} else {
				vars = append(vars, v)
			}
		case *ast.SelectorExpr:
			// x.done, s.wg — synchronization reached through a struct is
			// owned by the struct, not this function.
			if tv, ok := info.Types[nn]; ok && isSyncType(tv.Type) {
				sawSync = true
				vars = append(vars, nil)
				return false
			}
		}
		return true
	})
	return vars, sawSync
}

// funcTypeOf returns the *ast.FuncType of a FuncDecl or FuncLit node.
func funcTypeOf(n ast.Node) *ast.FuncType {
	switch d := n.(type) {
	case *ast.FuncDecl:
		return d.Type
	case *ast.FuncLit:
		return d.Type
	}
	return nil
}

// isSyncType reports whether t is a channel, a sync.WaitGroup, or a
// pointer to one.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = deref(t)
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return namedFrom(t, "sync", "WaitGroup")
}
