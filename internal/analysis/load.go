// Module loading: parse every package of the module with go/parser,
// topologically sort the intra-module import graph, and type-check
// each package with go/types. Imports outside the module resolve
// through the standard importers — compiled export data first (fast),
// falling back to type-checking the dependency from source — so the
// analyzer needs nothing beyond the standard library and a Go
// installation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// LoadModule parses and type-checks every package under the module
// rooted at dir (the directory containing go.mod). Test files
// (*_test.go) and testdata directories are skipped: the rules target
// production code, and several of them exempt tests by definition.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{Path: modPath, Dir: abs, Fset: fset}

	// Parse every directory that holds non-test Go files.
	type parsed struct {
		pkg     *Package
		imports []string // intra-module imports only
	}
	byPath := map[string]*parsed{}
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(abs, path)
		if rerr != nil {
			return rerr
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		byPath[imp] = &parsed{
			pkg:     &Package{Path: imp, Dir: path, Files: files},
			imports: moduleImports(files, modPath),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var paths []string
	for p := range byPath {
		paths = append(paths, p)
	}
	order, err := topoSort(paths, func(p string) ([]string, bool) {
		n, ok := byPath[p]
		if !ok {
			return nil, false
		}
		return n.imports, true
	})
	if err != nil {
		return nil, err
	}

	// Type-check in dependency waves: a package is ready once every one
	// of its intra-module imports is done, and all ready packages check
	// concurrently, bounded by GOMAXPROCS. The FileSet is safe for
	// concurrent position work; the importer serializes behind its own
	// mutex; finished types.Packages are read-only to later waves
	// (imp.local is only written between waves, under wg.Wait ordering).
	imp := newChainImporter(fset)
	done := map[string]bool{}
	for len(done) < len(order) {
		var wave []string
		for _, path := range order {
			if done[path] {
				continue
			}
			ready := true
			for _, d := range byPath[path].imports {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, path)
			}
		}
		if len(wave) == 0 {
			// Unreachable: topoSort already rejected cycles.
			return nil, fmt.Errorf("type-checking stalled with %d packages pending", len(order)-len(done))
		}
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		errs := make([]error, len(wave))
		for i, path := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, path string) {
				defer wg.Done()
				defer func() { <-sem }()
				p := byPath[path]
				tpkg, info, cerr := checkPackage(fset, path, p.pkg.Files, imp)
				if cerr != nil {
					errs[i] = fmt.Errorf("type-checking %s: %w", path, cerr)
					return
				}
				p.pkg.Types, p.pkg.Info = tpkg, info
			}(i, path)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		for _, path := range wave {
			imp.local[path] = byPath[path].pkg.Types
			m.Packages = append(m.Packages, byPath[path].pkg)
			done[path] = true
		}
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	return m, nil
}

// LoadPackageDir parses and type-checks the single package in dir as a
// stand-alone module named path. It backs the golden-file tests, which
// check fixture packages that import nothing but the standard library.
func LoadPackageDir(dir, path string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", abs)
	}
	imp := newChainImporter(fset)
	tpkg, info, err := checkPackage(fset, path, files, imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Module{
		Path: path,
		Dir:  abs,
		Fset: fset,
		Packages: []*Package{
			{Path: path, Dir: abs, Files: files, Types: tpkg, Info: info},
		},
	}, nil
}

// parseDir parses the non-test Go files of one directory, sorted by
// name for deterministic diagnostics.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleImports collects the intra-module import paths of the files.
func moduleImports(files []*ast.File, modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders the package paths so every package follows its
// intra-module imports; an import cycle is an error. deps returns a
// node's dependency list and whether the node exists.
func topoSort(paths []string, deps func(string) ([]string, bool)) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		ds, ok := deps(p)
		if !ok {
			return fmt.Errorf("package %s is imported but has no Go files in the module", p)
		}
		for _, d := range ds {
			if err := visit(d); err != nil {
				return fmt.Errorf("%s imports %s: %w", p, d, err)
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// checkPackage type-checks one package and returns its types.Package
// and filled-in Info.
func checkPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// chainImporter resolves module-local packages from the already-checked
// set and everything else through the gc (export data) importer with a
// source-importer fallback. Results are cached. Import serializes on mu
// because concurrent wave type-checks share one importer and neither
// the cache maps nor the underlying stdlib importers are safe to use
// from multiple goroutines; local is additionally written lock-free
// between waves, when no Import can be in flight.
type chainImporter struct {
	mu     sync.Mutex
	local  map[string]*types.Package
	std    map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func newChainImporter(fset *token.FileSet) *chainImporter {
	return &chainImporter{
		local:  map[string]*types.Package{},
		std:    map[string]*types.Package{},
		gc:     importer.Default(),
		source: importer.ForCompiler(fset, "source", nil),
	}
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.local[path]; p != nil {
		return p, nil
	}
	if p := c.std[path]; p != nil {
		return p, nil
	}
	p, err := c.gc.Import(path)
	if err != nil {
		var serr error
		if p, serr = c.source.Import(path); serr != nil {
			return nil, fmt.Errorf("importing %s: %v (export data: %v)", path, serr, err)
		}
	}
	c.std[path] = p
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module line", file)
}
